//! Offline stand-in for the `mio` crate: readiness-driven I/O polling.
//!
//! Provides the subset of the real mio API the workspace's event loops
//! use — [`Poll`] / [`Events`] / [`Token`] / [`Interest`] / [`Waker`] —
//! backed directly by Linux `epoll(7)` and `eventfd(2)` through raw
//! `extern "C"` declarations (std already links libc, so no external
//! crate is needed; the same pattern as the other `shims/*`).
//!
//! Differences from real mio, chosen for simplicity:
//!
//! * registration is **level-triggered** (no `EPOLLET`): a loop that
//!   does not drain a socket is woken again, which is the forgiving
//!   behaviour the workspace's frame pumps rely on;
//! * sources are registered by [`AsRawFd`] instead of an `event::Source`
//!   trait — std's `TcpStream`/`TcpListener` qualify directly;
//! * [`Registry`] is a cheap clonable handle rather than a borrow.
//!
//! On non-Linux targets the API compiles but every constructor returns
//! `ErrorKind::Unsupported` — mirroring how the workspace's other shims
//! gate platform features (the event-loop tests only run on Linux).

use std::io;
use std::os::fd::RawFd;
#[cfg(unix)]
use std::os::fd::AsRawFd;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Identifies a registered event source in delivered [`Event`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// Readiness interests for registration: readable, writable or both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Interest in read readiness.
    pub const READABLE: Interest = Interest(0b01);
    /// Interest in write readiness.
    pub const WRITABLE: Interest = Interest(0b10);

    /// Combines two interests.
    #[must_use]
    pub const fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// Whether this interest includes read readiness.
    pub const fn is_readable(self) -> bool {
        self.0 & 0b01 != 0
    }

    /// Whether this interest includes write readiness.
    pub const fn is_writable(self) -> bool {
        self.0 & 0b10 != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        self.add(rhs)
    }
}

/// One delivered readiness event.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    token: Token,
    readable: bool,
    writable: bool,
    error: bool,
    read_closed: bool,
}

impl Event {
    /// The token the source was registered with.
    pub fn token(&self) -> Token {
        self.token
    }

    /// Whether the source is ready for reading (includes HUP/error so
    /// the reader observes EOF/failure instead of sleeping on it).
    pub fn is_readable(&self) -> bool {
        self.readable || self.error || self.read_closed
    }

    /// Whether the source is ready for writing.
    pub fn is_writable(&self) -> bool {
        self.writable
    }

    /// Whether the source reported an error condition.
    pub fn is_error(&self) -> bool {
        self.error
    }

    /// Whether the peer closed its write half (EPOLLHUP/EPOLLRDHUP).
    pub fn is_read_closed(&self) -> bool {
        self.read_closed
    }
}

/// A buffer of events filled by [`Poll::poll`].
#[derive(Debug)]
pub struct Events {
    capacity: usize,
    events: Vec<Event>,
}

impl Events {
    /// An event buffer holding up to `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            capacity: capacity.max(1),
            events: Vec::with_capacity(capacity.max(1)),
        }
    }

    /// Iterates the events delivered by the last poll.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.events.iter()
    }

    /// Whether the last poll delivered no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events delivered by the last poll.
    pub fn len(&self) -> usize {
        self.events.len()
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

// ---------------------------------------------------------------------
// Linux backend: epoll + eventfd via extern "C" (std links libc).
// ---------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod sys {
    use super::*;

    // x86_64 declares epoll_event packed in the kernel ABI.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    pub(crate) struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }
    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    pub(crate) struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub(crate) const EPOLL_CLOEXEC: i32 = 0x80000;
    pub(crate) const EPOLL_CTL_ADD: i32 = 1;
    pub(crate) const EPOLL_CTL_DEL: i32 = 2;
    pub(crate) const EPOLL_CTL_MOD: i32 = 3;
    pub(crate) const EPOLLIN: u32 = 0x001;
    pub(crate) const EPOLLOUT: u32 = 0x004;
    pub(crate) const EPOLLERR: u32 = 0x008;
    pub(crate) const EPOLLHUP: u32 = 0x010;
    pub(crate) const EPOLLRDHUP: u32 = 0x2000;
    pub(crate) const EFD_CLOEXEC: i32 = 0x80000;
    pub(crate) const EFD_NONBLOCK: i32 = 0x800;

    extern "C" {
        pub(crate) fn epoll_create1(flags: i32) -> i32;
        pub(crate) fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub(crate) fn epoll_wait(
            epfd: i32,
            events: *mut EpollEvent,
            maxevents: i32,
            timeout_ms: i32,
        ) -> i32;
        pub(crate) fn eventfd(initval: u32, flags: i32) -> i32;
        pub(crate) fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        pub(crate) fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        pub(crate) fn close(fd: i32) -> i32;
    }

    pub(crate) fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }
}

#[derive(Debug)]
struct RegistryInner {
    epfd: RawFd,
    /// Tokens registered by wakers; their eventfds are drained inside
    /// [`Poll::poll`] so a level-triggered registration fires once per
    /// wake batch instead of spinning.
    waker_fds: Mutex<Vec<(usize, RawFd)>>,
}

impl Drop for RegistryInner {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        unsafe {
            let _ = sys::close(self.epfd);
        }
    }
}

/// Handle for registering event sources with a [`Poll`]. Cheap to clone
/// and shareable across threads (wakers hold one).
#[derive(Debug, Clone)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Registry {
    #[cfg(target_os = "linux")]
    fn ctl(&self, op: i32, fd: RawFd, token: Token, interests: Interest) -> io::Result<()> {
        let mut events = sys::EPOLLRDHUP;
        if interests.is_readable() {
            events |= sys::EPOLLIN;
        }
        if interests.is_writable() {
            events |= sys::EPOLLOUT;
        }
        let mut ev = sys::EpollEvent {
            events,
            data: token.0 as u64,
        };
        sys::cvt(unsafe { sys::epoll_ctl(self.inner.epfd, op, fd, &mut ev) }).map(|_| ())
    }

    /// Registers `source` for `interests` under `token` (level-triggered).
    ///
    /// # Errors
    ///
    /// The underlying `epoll_ctl` failure; `Unsupported` off Linux.
    #[cfg(target_os = "linux")]
    pub fn register(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, source.as_raw_fd(), token, interests)
    }

    /// Changes the interests (and/or token) of a registered source.
    ///
    /// # Errors
    ///
    /// The underlying `epoll_ctl` failure; `Unsupported` off Linux.
    #[cfg(target_os = "linux")]
    pub fn reregister(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, source.as_raw_fd(), token, interests)
    }

    /// Removes a source from the poller.
    ///
    /// # Errors
    ///
    /// The underlying `epoll_ctl` failure; `Unsupported` off Linux.
    #[cfg(target_os = "linux")]
    pub fn deregister(&self, source: &impl AsRawFd) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, source.as_raw_fd(), Token(0), Interest(0))
    }

    #[cfg(not(target_os = "linux"))]
    #[allow(missing_docs, clippy::missing_errors_doc)]
    pub fn register<S>(&self, _s: &S, _t: Token, _i: Interest) -> io::Result<()> {
        Err(io::Error::from(io::ErrorKind::Unsupported))
    }

    #[cfg(not(target_os = "linux"))]
    #[allow(missing_docs, clippy::missing_errors_doc)]
    pub fn reregister<S>(&self, _s: &S, _t: Token, _i: Interest) -> io::Result<()> {
        Err(io::Error::from(io::ErrorKind::Unsupported))
    }

    #[cfg(not(target_os = "linux"))]
    #[allow(missing_docs, clippy::missing_errors_doc)]
    pub fn deregister<S>(&self, _s: &S) -> io::Result<()> {
        Err(io::Error::from(io::ErrorKind::Unsupported))
    }
}

/// The readiness poller: wraps one epoll instance.
#[derive(Debug)]
pub struct Poll {
    registry: Registry,
}

impl Poll {
    /// A fresh poller.
    ///
    /// # Errors
    ///
    /// `epoll_create1` failures; `Unsupported` off Linux.
    pub fn new() -> io::Result<Poll> {
        #[cfg(target_os = "linux")]
        {
            let epfd = sys::cvt(unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) })?;
            Ok(Poll {
                registry: Registry {
                    inner: Arc::new(RegistryInner {
                        epfd,
                        waker_fds: Mutex::new(Vec::new()),
                    }),
                },
            })
        }
        #[cfg(not(target_os = "linux"))]
        {
            Err(io::Error::from(io::ErrorKind::Unsupported))
        }
    }

    /// The registration handle.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Blocks until an event arrives or `timeout` elapses (`None` waits
    /// indefinitely), filling `events`. Waker eventfds are drained here,
    /// so one [`Waker::wake`] burst delivers one event.
    ///
    /// # Errors
    ///
    /// `epoll_wait` failures (EINTR is retried internally).
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        #[cfg(target_os = "linux")]
        {
            events.events.clear();
            let timeout_ms: i32 = match timeout {
                None => -1,
                Some(d) => {
                    // Round up so a 0 < d < 1ms wait does not busy-spin.
                    let ms = d.as_millis();
                    if ms == 0 && !d.is_zero() {
                        1
                    } else {
                        ms.min(i32::MAX as u128) as i32
                    }
                }
            };
            let mut raw: Vec<sys::EpollEvent> = Vec::with_capacity(events.capacity);
            let n = loop {
                let r = unsafe {
                    sys::epoll_wait(
                        self.registry.inner.epfd,
                        raw.as_mut_ptr(),
                        events.capacity as i32,
                        timeout_ms,
                    )
                };
                if r >= 0 {
                    break r as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
                // EINTR: retry. (A shortened timeout on retry is
                // acceptable for the loop's callers, all of which treat
                // poll timeouts as routine ticks.)
            };
            // SAFETY: epoll_wait initialized the first `n` entries.
            unsafe { raw.set_len(n) };
            let wakers = self.registry.inner.waker_fds.lock().expect("waker registry");
            for ev in &raw {
                let token = Token(ev.data as usize);
                let bits = ev.events;
                if let Some(&(_, wfd)) = wakers.iter().find(|&&(t, _)| t == token.0) {
                    // Drain the eventfd so the level-triggered
                    // registration goes quiet until the next wake.
                    let mut buf = [0u8; 8];
                    unsafe {
                        let _ = sys::read(wfd, buf.as_mut_ptr(), 8);
                    }
                }
                events.events.push(Event {
                    token,
                    readable: bits & sys::EPOLLIN != 0,
                    writable: bits & sys::EPOLLOUT != 0,
                    error: bits & sys::EPOLLERR != 0,
                    read_closed: bits & (sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
                });
            }
            Ok(())
        }
        #[cfg(not(target_os = "linux"))]
        {
            let _ = (events, timeout);
            Err(io::Error::from(io::ErrorKind::Unsupported))
        }
    }
}

/// Wakes a [`Poll`] blocked in [`Poll::poll`] from another thread —
/// an eventfd registered on the same epoll instance.
#[derive(Debug)]
pub struct Waker {
    #[allow(dead_code)]
    registry: Registry,
    efd: RawFd,
}

impl Waker {
    /// A waker delivering `token` to `registry`'s poller.
    ///
    /// # Errors
    ///
    /// `eventfd`/`epoll_ctl` failures; `Unsupported` off Linux.
    pub fn new(registry: &Registry, token: Token) -> io::Result<Waker> {
        #[cfg(target_os = "linux")]
        {
            let efd = sys::cvt(unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) })?;
            let mut ev = sys::EpollEvent {
                events: sys::EPOLLIN,
                data: token.0 as u64,
            };
            if let Err(e) =
                sys::cvt(unsafe { sys::epoll_ctl(registry.inner.epfd, sys::EPOLL_CTL_ADD, efd, &mut ev) })
            {
                unsafe {
                    let _ = sys::close(efd);
                }
                return Err(e);
            }
            registry
                .inner
                .waker_fds
                .lock()
                .expect("waker registry")
                .push((token.0, efd));
            Ok(Waker {
                registry: registry.clone(),
                efd,
            })
        }
        #[cfg(not(target_os = "linux"))]
        {
            let _ = (registry, token);
            Err(io::Error::from(io::ErrorKind::Unsupported))
        }
    }

    /// Delivers (at least) one readiness event to the poller. Safe to
    /// call from any thread; coalesces with outstanding wakes.
    ///
    /// # Errors
    ///
    /// `write(2)` failures other than `EAGAIN` (a saturated counter
    /// still wakes the poller, so `EAGAIN` is success).
    pub fn wake(&self) -> io::Result<()> {
        #[cfg(target_os = "linux")]
        {
            let one: u64 = 1;
            let r = unsafe { sys::write(self.efd, (&raw const one).cast::<u8>(), 8) };
            if r == 8 {
                return Ok(());
            }
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::WouldBlock {
                Ok(()) // counter saturated: the poller is already waking
            } else {
                Err(err)
            }
        }
        #[cfg(not(target_os = "linux"))]
        {
            Err(io::Error::from(io::ErrorKind::Unsupported))
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        {
            self.registry
                .inner
                .waker_fds
                .lock()
                .expect("waker registry")
                .retain(|&(_, fd)| fd != self.efd);
            unsafe {
                let _ = sys::close(self.efd);
            }
        }
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn poll_times_out_when_idle() {
        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(8);
        let t0 = std::time::Instant::now();
        poll.poll(&mut events, Some(Duration::from_millis(30))).unwrap();
        assert!(events.is_empty());
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn readable_socket_delivers_its_token() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poll = Poll::new().unwrap();
        poll.registry()
            .register(&server, Token(7), Interest::READABLE)
            .unwrap();
        client.write_all(b"x").unwrap();
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(2))).unwrap();
        assert!(events.iter().any(|e| e.token() == Token(7) && e.is_readable()));
    }

    #[test]
    fn waker_wakes_a_blocked_poll_once_per_burst() {
        let mut poll = Poll::new().unwrap();
        let waker = Arc::new(Waker::new(poll.registry(), Token(0)).unwrap());

        // A burst of wakes that all land before the poll coalesces into
        // one delivered event. (The wakes happen on this thread so the
        // burst is provably complete before the drain — wakes racing a
        // concurrent drain may legitimately re-arm the waker.)
        waker.wake().unwrap();
        waker.wake().unwrap();
        waker.wake().unwrap();
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(2))).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events.iter().next().unwrap().token(), Token(0));
        // Drained by delivery: the next poll times out instead of re-firing.
        poll.poll(&mut events, Some(Duration::from_millis(20))).unwrap();
        assert!(events.is_empty());

        // And a wake from another thread unblocks a sleeping poll.
        let w = Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            w.wake().unwrap();
        });
        poll.poll(&mut events, Some(Duration::from_secs(2))).unwrap();
        assert!(events.iter().any(|e| e.token() == Token(0)));
        t.join().unwrap();
    }

    #[test]
    fn write_interest_fires_and_reregister_silences_it() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        client.set_nonblocking(true).unwrap();
        let mut poll = Poll::new().unwrap();
        poll.registry()
            .register(&client, Token(3), Interest::READABLE.add(Interest::WRITABLE))
            .unwrap();
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(2))).unwrap();
        assert!(events.iter().any(|e| e.token() == Token(3) && e.is_writable()));
        // Drop write interest: an idle connected socket goes quiet.
        poll.registry()
            .reregister(&client, Token(3), Interest::READABLE)
            .unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(30))).unwrap();
        assert!(events.is_empty());
    }
}

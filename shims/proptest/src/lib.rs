//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest the workspace's property tests use:
//! the [`proptest!`] macro (with `#![proptest_config(..)]`, `name in
//! strategy` and `name: Type` argument forms), range / tuple / `any` /
//! [`collection::vec`] strategies, `prop_map`, and the `prop_assert*`
//! macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its inputs and seed but is
//!   not minimized.
//! * **Fully deterministic.** Case `i` of test `t` always draws from a
//!   generator seeded with `fnv1a(module::t) ^ i`, so failures reproduce
//!   across runs and machines without a regressions file
//!   (`proptest-regressions` files are ignored).
//! * Strategies sample uniformly; there is no bias toward edge cases.

use std::fmt::Debug;
use std::ops::Range;

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator.
    pub fn seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next uniformly distributed `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        let span = (hi - lo) as u64;
        lo + (self.next_u64() % span) as usize
    }
}

/// Error type carried out of a failing test case body.
pub type TestCaseError = String;

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! int_rangefrom_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (<$t>::MAX as i128 - self.start as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (*self.start() as i128 + off as i128) as $t
            }
        }
    )*};
}

int_rangefrom_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident => $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A => 0, B => 1)
    (A => 0, B => 1, C => 2)
    (A => 0, B => 1, C => 2, D => 3)
}

/// Types with a canonical "anything" strategy (mirrors
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning many magnitudes.
        let m = rng.next_f64() * 2.0 - 1.0;
        let e = (rng.next_u64() % 64) as i32 - 32;
        m * (2f64).powi(e)
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Element-count specification for [`vec`]: an exact size or a
    /// half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 == self.size.hi {
                self.size.lo
            } else {
                rng.usize_in(self.size.lo, self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Drives one property test: runs `config.cases` deterministic cases and
/// panics with seed + message on the first failure. Used by the
/// [`proptest!`] macro expansion; not part of the public proptest API.
pub fn run_cases<F>(config: &ProptestConfig, test_name: &str, body: F)
where
    F: Fn(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(test_name);
    for case in 0..config.cases {
        let seed = base ^ u64::from(case);
        let mut rng = TestRng::seed(seed);
        if let Err(msg) = body(&mut rng) {
            panic!(
                "proptest {test_name}: case {case}/{} failed (seed {seed:#x}):\n{msg}",
                config.cases
            );
        }
    }
}

/// Debug-formats a failing assertion operand, used by `prop_assert_eq!`.
pub fn fmt_operand<T: Debug>(v: &T) -> String {
    format!("{v:?}")
}

/// The common imports of a proptest-based test file.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Asserts a condition inside a property test, failing the case (not the
/// whole process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {}", ::core::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {}\n right: {}",
                ::core::stringify!($left),
                ::core::stringify!($right),
                $crate::fmt_operand(l),
                $crate::fmt_operand(r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: {}",
                ::core::stringify!($left),
                ::core::stringify!($right),
                $crate::fmt_operand(l),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Skips the current case when an assumption does not hold. The shim does
/// not re-draw; the case simply passes vacuously.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

/// The proptest entry macro: declares deterministic property tests.
///
/// Supports the forms the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///
///     /// docs
///     #[test]
///     fn prop(xs in collection::vec(any::<u8>(), 0..100), seed: u64) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    // Entry with an explicit config header.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@tests ($cfg) $($rest)*);
    };

    // Recursion terminator.
    (@tests ($cfg:expr)) => {};

    // One test function, then the rest.
    (@tests ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            $crate::run_cases(
                &cfg,
                ::core::concat!(::core::module_path!(), "::", ::core::stringify!($name)),
                |__proptest_rng| -> ::core::result::Result<(), $crate::TestCaseError> {
                    $crate::proptest!(@bind __proptest_rng, $($params)*);
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::proptest!(@tests ($cfg) $($rest)*);
    };

    // Parameter binding: terminator (with optional trailing comma).
    (@bind $rng:ident $(,)?) => {};

    // `name in strategy` (last parameter).
    (@bind $rng:ident, $pat:ident in $strat:expr) => {
        let $pat = $crate::Strategy::generate(&($strat), $rng);
    };

    // `name in strategy, rest...`.
    (@bind $rng:ident, $pat:ident in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::Strategy::generate(&($strat), $rng);
        $crate::proptest!(@bind $rng, $($rest)*);
    };

    // `name: Type` (last parameter) — shorthand for `any::<Type>()`.
    (@bind $rng:ident, $pat:ident : $ty:ty) => {
        let $pat = $crate::Strategy::generate(&$crate::any::<$ty>(), $rng);
    };

    // `name: Type, rest...`.
    (@bind $rng:ident, $pat:ident : $ty:ty, $($rest:tt)*) => {
        let $pat = $crate::Strategy::generate(&$crate::any::<$ty>(), $rng);
        $crate::proptest!(@bind $rng, $($rest)*);
    };

    // Entry without a config header: default config.
    ($($rest:tt)*) => {
        $crate::proptest!(@tests ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism_same_name_same_draws() {
        let mut a = TestRng::seed(42);
        let mut b = TestRng::seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_strategies_stay_in_bounds() {
        let mut rng = TestRng::seed(7);
        for _ in 0..1000 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let f = (-2.0f64..3.5).generate(&mut rng);
            assert!((-2.0..3.5).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::seed(9);
        for _ in 0..200 {
            let v = collection::vec(any::<u8>(), 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let exact = collection::vec(0u64..10, 8).generate(&mut rng);
        assert_eq!(exact.len(), 8);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself works end to end, both arg forms included.
        #[test]
        fn macro_binds_all_forms(
            xs in collection::vec(any::<u8>(), 0..10),
            k in 1usize..4,
            pair in (0.0f64..1.0, 1u32..5),
            seed: u64,
        ) {
            prop_assert!(xs.len() < 10);
            prop_assert!((1..4).contains(&k));
            prop_assert!(pair.0 >= 0.0 && pair.0 < 1.0, "pair.0 = {}", pair.0);
            prop_assert_ne!(pair.1, 0);
            let _ = seed;
            prop_assert_eq!(k + 1, 1 + k);
        }
    }
}

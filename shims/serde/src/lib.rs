//! Offline stand-in for the `serde` crate.
//!
//! The workspace only *declares* serializability (`#[derive(Serialize,
//! Deserialize)]` on metrics and plan types); no code path serializes
//! anything. This shim supplies the two derive macros (which expand to
//! nothing — see `spcache-serde-derive`) plus empty marker traits under
//! the same names so `use serde::{Serialize, Deserialize}` keeps
//! resolving in both the type and macro namespaces.

pub use spcache_serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the shim).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the shim).
pub trait Deserialize<'de> {}

//! Offline stand-in for the `bytes` crate.
//!
//! Provides a cheaply cloneable, sliceable, immutable byte buffer with the
//! subset of the real `Bytes` API the workspace uses. Clones and slices
//! share one reference-counted allocation, so the store's workers can hand
//! out partition views without copying — the property the real crate is
//! used for.

use std::ops::{Deref, Range};
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable slice of memory.
///
/// Backed by `Arc<Vec<u8>>` rather than `Arc<[u8]>` so that
/// `Bytes::from(vec)` *adopts* the vector's allocation — `Arc<[u8]>`
/// has no way to take ownership of a `Vec`'s buffer and would copy
/// every byte, which silently doubled the receive path's memory
/// traffic (the frame decoder hands multi-megabyte bodies across this
/// boundary).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies `data` into a new buffer (one copy).
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::new(data.to_vec()),
            start: 0,
            end: data.len(),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// A sub-view sharing the same allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(range.start <= range.end, "slice range inverted");
        assert!(range.end <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    /// Adopts the vector's allocation — no byte copy.
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_share_memory() {
        let b = Bytes::from((0u8..100).collect::<Vec<_>>());
        let s = b.slice(10..20);
        assert_eq!(s.len(), 10);
        assert_eq!(s[0], 10);
        assert_eq!(s.as_ref(), &(10u8..20).collect::<Vec<_>>()[..]);
    }

    #[test]
    fn equality_is_by_content() {
        assert_eq!(Bytes::from(vec![1, 2, 3]), Bytes::copy_from_slice(&[1, 2, 3]));
        assert_eq!(Bytes::from(vec![1, 2, 3]).slice(1..3), Bytes::from(vec![2, 3]));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_slice_panics() {
        let _ = Bytes::from(vec![1, 2]).slice(0..3);
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the *exact* slice of the rand 0.10 API it consumes: the fallible
//! [`rand_core::TryRng`] trait that generators implement, the infallible
//! [`Rng`] facade supplied by a blanket impl, and [`SeedableRng`]. All
//! actual generator state lives in `spcache-sim` (`Xoshiro256StarStar`),
//! which only needs these traits as integration points, so no sampling
//! distributions or OS entropy sources are required here.

/// Core generator traits (mirrors `rand::rand_core`).
pub mod rand_core {
    /// A fallible random number generator.
    ///
    /// Implementors with `Error = Infallible` automatically receive the
    /// ergonomic [`crate::Rng`] facade via a blanket impl, matching the
    /// rand 0.10 design.
    pub trait TryRng {
        /// Error produced by a failed draw.
        type Error;

        /// Draws the next `u32`.
        fn try_next_u32(&mut self) -> Result<u32, Self::Error>;

        /// Draws the next `u64`.
        fn try_next_u64(&mut self) -> Result<u64, Self::Error>;

        /// Fills `dest` with random bytes.
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Self::Error>;
    }
}

/// An infallible random number generator.
pub trait Rng {
    /// Draws the next `u32`.
    fn next_u32(&mut self) -> u32;

    /// Draws the next `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<T> Rng for T
where
    T: rand_core::TryRng<Error = core::convert::Infallible>,
{
    #[inline]
    fn next_u32(&mut self) -> u32 {
        match self.try_next_u32() {
            Ok(v) => v,
            Err(e) => match e {},
        }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        match self.try_next_u64() {
            Ok(v) => v,
            Err(e) => match e {},
        }
    }

    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        match self.try_fill_bytes(dest) {
            Ok(()) => {}
            Err(e) => match e {},
        }
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Seed material.
    type Seed;

    /// Builds a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a single `u64` (convenience entry point).
    fn seed_from_u64(state: u64) -> Self;
}

//! No-op derive macros backing the offline `serde` shim.
//!
//! The workspace derives `Serialize`/`Deserialize` on analysis structs so
//! experiment results *can* be exported, but nothing in-tree serializes
//! them (there is no `serde_json` either). The offline shim therefore
//! accepts the derives and expands to nothing — the types compile, and the
//! day a real serializer is needed the shim is swapped for real serde.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and emits no code.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and emits no code.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Offline stand-in for the `crossbeam` crate.
//!
//! Only [`channel`] is provided — the workspace uses crossbeam for its
//! MPMC-flavoured channels and, since the select-driven fork-join read
//! path, for [`channel::Select`]: a ready-set wait over many receivers.
//!
//! Unlike the original shim (a thin wrapper over `std::sync::mpsc`,
//! which offers no selection), channels here are built on a small
//! `Mutex<VecDeque> + Condvar` core so that a receiver can also signal an
//! externally registered [`channel::Select`] waiter when it becomes
//! ready. Semantics preserved from the previous shim and relied on by the
//! store's worker/RPC layer:
//!
//! * `Sender` is `Clone + Send + Sync`; a dropped receiver surfaces as a
//!   send error (how clients detect dead workers),
//! * a dropped last sender surfaces as `Disconnected` on the receive
//!   side (how clients detect crashed workers mid-request),
//! * [`channel::bounded`] does not enforce a capacity — every channel is
//!   unbounded. The workspace only uses `bounded(1)` for single-shot
//!   reply channels, where capacity is irrelevant.

/// Multi-producer channels with disconnect detection and readiness
/// selection.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, TryRecvError};

    /// Error returned when sending on a channel whose receiver is gone.
    /// Carries the unsent message like `crossbeam::channel::SendError`.
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Select::ready_timeout`] when no operation
    /// became ready within the timeout.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ReadyTimeoutError;

    impl std::fmt::Display for ReadyTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("timed out waiting on `ready`")
        }
    }

    impl std::error::Error for ReadyTimeoutError {}

    /// Wake-up flag shared between a blocked [`Select`] and the channels
    /// it watches. Channels fire it on every state change that could make
    /// a `try_recv` non-blocking (message arrival, last sender dropped).
    #[derive(Debug, Default)]
    pub struct SelectSignal {
        fired: Mutex<bool>,
        cv: Condvar,
    }

    impl SelectSignal {
        fn notify(&self) {
            *self.fired.lock().expect("select signal poisoned") = true;
            self.cv.notify_all();
        }

        /// Waits until fired or `deadline`; returns whether it fired.
        fn wait_until(&self, deadline: Option<Instant>) -> bool {
            let mut fired = self.fired.lock().expect("select signal poisoned");
            loop {
                if *fired {
                    return true;
                }
                match deadline {
                    None => fired = self.cv.wait(fired).expect("select signal poisoned"),
                    Some(d) => {
                        let now = Instant::now();
                        if now >= d {
                            return false;
                        }
                        let (guard, _) = self
                            .cv
                            .wait_timeout(fired, d - now)
                            .expect("select signal poisoned");
                        fired = guard;
                    }
                }
            }
        }
    }

    #[derive(Debug)]
    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receiver_alive: bool,
        /// Select waiters to wake on the next readiness change.
        waiters: Vec<Arc<SelectSignal>>,
    }

    #[derive(Debug)]
    struct Core<T> {
        inner: Mutex<Inner<T>>,
        recv_cv: Condvar,
    }

    impl<T> Core<T> {
        fn new() -> Self {
            Core {
                inner: Mutex::new(Inner {
                    queue: VecDeque::new(),
                    senders: 1,
                    receiver_alive: true,
                    waiters: Vec::new(),
                }),
                recv_cv: Condvar::new(),
            }
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
            self.inner.lock().expect("channel poisoned")
        }

        /// Wakes blocked receivers and any registered select waiters.
        fn announce(inner: &mut Inner<T>, recv_cv: &Condvar) {
            recv_cv.notify_all();
            for w in inner.waiters.drain(..) {
                w.notify();
            }
        }
    }

    /// The sending half of a channel.
    #[derive(Debug)]
    pub struct Sender<T> {
        core: Arc<Core<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.core.lock().senders += 1;
            Sender {
                core: Arc::clone(&self.core),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.core.lock();
            inner.senders -= 1;
            if inner.senders == 0 {
                // Disconnect: blocked receivers and selects must observe it.
                Core::announce(&mut inner, &self.core.recv_cv);
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing if the receiver was dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut inner = self.core.lock();
            if !inner.receiver_alive {
                return Err(SendError(msg));
            }
            inner.queue.push_back(msg);
            Core::announce(&mut inner, &self.core.recv_cv);
            Ok(())
        }
    }

    /// The receiving half of a channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        core: Arc<Core<T>>,
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            // Match real crossbeam: dropping the receiver discards every
            // queued message. Anything nested inside them (e.g. a reply
            // `Sender` in a queued request envelope) is dropped too, so
            // parties blocked on those nested channels observe a
            // disconnect instead of waiting forever. The messages are
            // dropped *outside* the lock — their `Drop` impls may take
            // other channel locks.
            let discarded = {
                let mut inner = self.core.lock();
                inner.receiver_alive = false;
                std::mem::take(&mut inner.queue)
            };
            drop(discarded);
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.core.lock();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self
                    .core
                    .recv_cv
                    .wait(inner)
                    .expect("channel poisoned");
            }
        }

        /// Blocks with a deadline; distinguishes timeout from disconnect.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.core.lock();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .core
                    .recv_cv
                    .wait_timeout(inner, deadline - now)
                    .expect("channel poisoned");
                inner = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.core.lock();
            if let Some(v) = inner.queue.pop_front() {
                Ok(v)
            } else if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Iterates over messages until the channel disconnects.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.recv().ok())
        }

        /// Whether a `try_recv` right now would not block: a message is
        /// queued or the channel is disconnected.
        fn is_ready(&self) -> bool {
            let inner = self.core.lock();
            !inner.queue.is_empty() || inner.senders == 0
        }

        /// Registers a select waiter, or returns `true` if already ready
        /// (in which case nothing is registered).
        fn register(&self, signal: &Arc<SelectSignal>) -> bool {
            let mut inner = self.core.lock();
            if !inner.queue.is_empty() || inner.senders == 0 {
                return true;
            }
            inner.waiters.push(Arc::clone(signal));
            false
        }

        /// Removes a previously registered select waiter.
        fn unregister(&self, signal: &Arc<SelectSignal>) {
            self.core
                .lock()
                .waiters
                .retain(|w| !Arc::ptr_eq(w, signal));
        }
    }

    /// An unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let core = Arc::new(Core::new());
        (
            Sender {
                core: Arc::clone(&core),
            },
            Receiver { core },
        )
    }

    /// A "bounded" channel — see the module docs: capacity is not
    /// enforced by the shim.
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }

    /// Type-erased handle to a receiver registered with a [`Select`].
    trait Selectable {
        fn sel_ready(&self) -> bool;
        fn sel_register(&self, signal: &Arc<SelectSignal>) -> bool;
        fn sel_unregister(&self, signal: &Arc<SelectSignal>);
    }

    impl<T> Selectable for Receiver<T> {
        fn sel_ready(&self) -> bool {
            self.is_ready()
        }

        fn sel_register(&self, signal: &Arc<SelectSignal>) -> bool {
            self.register(signal)
        }

        fn sel_unregister(&self, signal: &Arc<SelectSignal>) {
            self.unregister(signal)
        }
    }

    /// A ready-set wait over multiple receivers — the subset of
    /// `crossbeam::channel::Select` the store's fork-join read path
    /// needs. Register receivers with [`Select::recv`]; each returns an
    /// operation index. [`Select::ready`] / [`Select::ready_timeout`] /
    /// [`Select::ready_deadline`] block until *some* registered receiver
    /// would not block (a message is queued or it disconnected) and
    /// return its index; the caller then completes the operation with
    /// `try_recv` on that receiver. Spurious readiness is possible (a
    /// raced-away message); callers must treat `TryRecvError::Empty` as
    /// "go wait again".
    #[derive(Default)]
    pub struct Select<'a> {
        handles: Vec<&'a dyn Selectable>,
        /// Rotating scan offset so one hot low-index receiver cannot
        /// starve the others.
        next_start: usize,
    }

    impl std::fmt::Debug for Select<'_> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Select({} ops)", self.handles.len())
        }
    }

    impl<'a> Select<'a> {
        /// An empty selector.
        pub fn new() -> Self {
            Select {
                handles: Vec::new(),
                next_start: 0,
            }
        }

        /// Registers a receive operation; returns its operation index.
        pub fn recv<T>(&mut self, rx: &'a Receiver<T>) -> usize {
            self.handles.push(rx);
            self.handles.len() - 1
        }

        /// Number of registered operations.
        pub fn len(&self) -> usize {
            self.handles.len()
        }

        /// Whether no operation is registered.
        pub fn is_empty(&self) -> bool {
            self.handles.is_empty()
        }

        fn scan_ready(&mut self) -> Option<usize> {
            let n = self.handles.len();
            let start = self.next_start % n.max(1);
            for off in 0..n {
                let i = (start + off) % n;
                if self.handles[i].sel_ready() {
                    self.next_start = i + 1;
                    return Some(i);
                }
            }
            None
        }

        /// Blocks until some operation is ready; returns its index.
        ///
        /// # Panics
        ///
        /// Panics if no operation is registered (it would block forever).
        pub fn ready(&mut self) -> usize {
            self.wait(None).expect("ready() cannot time out")
        }

        /// Blocks until some operation is ready or `timeout` elapses.
        ///
        /// # Errors
        ///
        /// [`ReadyTimeoutError`] if nothing became ready in time.
        pub fn ready_timeout(&mut self, timeout: Duration) -> Result<usize, ReadyTimeoutError> {
            self.wait(Some(Instant::now() + timeout))
        }

        /// Blocks until some operation is ready or `deadline` passes.
        ///
        /// # Errors
        ///
        /// [`ReadyTimeoutError`] if nothing became ready in time.
        pub fn ready_deadline(&mut self, deadline: Instant) -> Result<usize, ReadyTimeoutError> {
            self.wait(Some(deadline))
        }

        fn wait(&mut self, deadline: Option<Instant>) -> Result<usize, ReadyTimeoutError> {
            assert!(
                !self.handles.is_empty(),
                "selecting over zero operations would block forever"
            );
            loop {
                if let Some(i) = self.scan_ready() {
                    return Ok(i);
                }
                // Register a fresh signal with every handle; a handle
                // that became ready during registration short-circuits.
                let signal = Arc::new(SelectSignal::default());
                let mut became_ready = false;
                let mut registered = 0;
                for (idx, h) in self.handles.iter().enumerate() {
                    if h.sel_register(&signal) {
                        became_ready = true;
                        registered = idx;
                        break;
                    }
                    registered = idx + 1;
                }
                let fired = became_ready || signal.wait_until(deadline);
                for h in &self.handles[..registered.min(self.handles.len())] {
                    h.sel_unregister(&signal);
                }
                if !fired {
                    return Err(ReadyTimeoutError);
                }
                // Loop: re-scan to find which operation is ready (the
                // message may have been consumed elsewhere — spurious
                // wake-ups fall through to another registration round).
                if let Some(i) = self.scan_ready() {
                    return Ok(i);
                }
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        return Err(ReadyTimeoutError);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::{Duration, Instant};

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = bounded(1);
        tx.send(7u32).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
    }

    #[test]
    fn dropped_receiver_fails_send() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1u8).is_err());
    }

    #[test]
    fn dropped_sender_fails_recv() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert!(rx.recv().is_err());
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)).unwrap_err(),
            RecvTimeoutError::Disconnected
        );
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)).unwrap_err(),
            RecvTimeoutError::Timeout
        );
    }

    #[test]
    fn try_recv_distinguishes_empty_and_disconnected() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv().unwrap_err(), TryRecvError::Empty);
        tx.send(3).unwrap();
        assert_eq!(rx.try_recv().unwrap(), 3);
        drop(tx);
        assert_eq!(rx.try_recv().unwrap_err(), TryRecvError::Disconnected);
    }

    #[test]
    fn sender_is_shareable_across_threads() {
        let (tx, rx) = unbounded();
        std::thread::scope(|s| {
            for i in 0..4u64 {
                let tx = tx.clone();
                s.spawn(move || tx.send(i).unwrap());
            }
        });
        drop(tx);
        let mut got: Vec<u64> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn receiver_drop_discards_queued_messages() {
        // Crossbeam semantics: dropping the receiver destroys what was
        // queued. A reply sender nested in a queued message must
        // disconnect its receiver — the pattern behind request
        // envelopes whose serving loop exits with requests still queued.
        let (tx, rx) = unbounded();
        let (reply_tx, reply_rx) = bounded::<u8>(1);
        tx.send(reply_tx).unwrap();
        drop(rx);
        assert_eq!(
            reply_rx.recv_timeout(Duration::from_secs(5)).unwrap_err(),
            RecvTimeoutError::Disconnected,
            "queued reply sender must be dropped with the receiver"
        );
    }

    #[test]
    fn queued_messages_survive_sender_drop() {
        let (tx, rx) = unbounded();
        tx.send(1u8).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn select_returns_the_ready_receiver() {
        let (tx1, rx1) = unbounded::<u8>();
        let (_tx2, rx2) = unbounded::<u8>();
        tx1.send(9).unwrap();
        let mut sel = Select::new();
        let i1 = sel.recv(&rx1);
        let _i2 = sel.recv(&rx2);
        assert_eq!(sel.ready(), i1);
        assert_eq!(rx1.try_recv().unwrap(), 9);
    }

    #[test]
    fn select_times_out_when_nothing_ready() {
        let (_tx1, rx1) = unbounded::<u8>();
        let (_tx2, rx2) = unbounded::<u8>();
        let mut sel = Select::new();
        sel.recv(&rx1);
        sel.recv(&rx2);
        let t0 = Instant::now();
        assert_eq!(
            sel.ready_timeout(Duration::from_millis(30)),
            Err(ReadyTimeoutError)
        );
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn select_wakes_on_concurrent_send() {
        let (tx, rx1) = unbounded::<u8>();
        let (_keep, rx2) = unbounded::<u8>();
        std::thread::scope(|s| {
            s.spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                tx.send(5).unwrap();
            });
            let mut sel = Select::new();
            let i1 = sel.recv(&rx1);
            sel.recv(&rx2);
            let t0 = Instant::now();
            let ready = sel.ready_timeout(Duration::from_secs(2)).unwrap();
            assert_eq!(ready, i1);
            assert!(t0.elapsed() < Duration::from_secs(1));
            assert_eq!(rx1.try_recv().unwrap(), 5);
        });
    }

    #[test]
    fn select_sees_disconnect_as_ready() {
        let (tx, rx) = unbounded::<u8>();
        std::thread::scope(|s| {
            s.spawn(move || {
                std::thread::sleep(Duration::from_millis(15));
                drop(tx);
            });
            let mut sel = Select::new();
            sel.recv(&rx);
            assert_eq!(sel.ready_timeout(Duration::from_secs(2)), Ok(0));
            assert_eq!(rx.try_recv().unwrap_err(), TryRecvError::Disconnected);
        });
    }

    #[test]
    fn select_drains_multiple_out_of_order() {
        // Replies land in arbitrary order; select consumes each as it
        // arrives — the fork-join pattern the store uses.
        let n = 8usize;
        let chans: Vec<_> = (0..n).map(|_| unbounded::<usize>()).collect();
        std::thread::scope(|s| {
            for (j, (tx, _)) in chans.iter().enumerate() {
                let tx = tx.clone();
                s.spawn(move || {
                    // Later indices reply sooner.
                    std::thread::sleep(Duration::from_millis(5 * (n - j) as u64));
                    tx.send(j).unwrap();
                });
            }
            let mut got = vec![false; n];
            let mut remaining = n;
            let deadline = Instant::now() + Duration::from_secs(5);
            while remaining > 0 {
                let mut sel = Select::new();
                let mut idx = Vec::new();
                for (j, (_, rx)) in chans.iter().enumerate() {
                    if !got[j] {
                        idx.push(j);
                        sel.recv(rx);
                    }
                }
                let i = sel.ready_deadline(deadline).unwrap();
                let j = idx[i];
                match chans[j].1.try_recv() {
                    Ok(v) => {
                        assert_eq!(v, j);
                        got[j] = true;
                        remaining -= 1;
                    }
                    Err(TryRecvError::Empty) => continue,
                    Err(e) => panic!("unexpected {e:?}"),
                }
            }
        });
    }
}

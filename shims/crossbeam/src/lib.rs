//! Offline stand-in for the `crossbeam` crate.
//!
//! Only [`channel`] is provided — the workspace uses crossbeam solely for
//! its MPMC-flavoured channels. The shim wraps `std::sync::mpsc` (which,
//! since Rust 1.67, *is* the crossbeam channel implementation upstreamed
//! into std): `Sender` is `Clone + Send + Sync`, and a dropped receiver
//! surfaces as a send error, which is exactly the disconnect semantics the
//! store's worker/RPC layer relies on to detect dead workers.
//!
//! One deliberate divergence: [`channel::bounded`] does not enforce a
//! capacity — every channel is unbounded. The workspace only uses
//! `bounded(1)` for single-shot reply channels, where capacity is
//! irrelevant.

/// Multi-producer channels with disconnect detection.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, TryRecvError};

    /// Error returned when sending on a channel whose receiver is gone.
    /// Carries the unsent message like `crossbeam::channel::SendError`.
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing if the receiver was dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Blocks with a deadline; distinguishes timeout from disconnect.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        /// Iterates over messages until the channel disconnects.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.iter()
        }
    }

    /// An unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    /// A "bounded" channel — see the module docs: capacity is not
    /// enforced by the shim.
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = bounded(1);
        tx.send(7u32).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
    }

    #[test]
    fn dropped_receiver_fails_send() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1u8).is_err());
    }

    #[test]
    fn dropped_sender_fails_recv() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert!(rx.recv().is_err());
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)).unwrap_err(),
            RecvTimeoutError::Disconnected
        );
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)).unwrap_err(),
            RecvTimeoutError::Timeout
        );
    }

    #[test]
    fn sender_is_shareable_across_threads() {
        let (tx, rx) = unbounded();
        std::thread::scope(|s| {
            for i in 0..4u64 {
                let tx = tx.clone();
                s.spawn(move || tx.send(i).unwrap());
            }
        });
        drop(tx);
        let mut got: Vec<u64> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}

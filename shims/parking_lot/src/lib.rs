//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps the std lock types with `parking_lot`'s ergonomics: `lock()`,
//! `read()` and `write()` return guards directly instead of a poison
//! `Result`. Poisoning is deliberately ignored (a panicking holder just
//! passes the lock on), which matches parking_lot's behaviour of not
//! poisoning at all.

use std::sync::{self, LockResult};

fn unpoison<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A reader-writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        unpoison(self.inner.read())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        unpoison(self.inner.write())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }
}

/// A mutual-exclusion lock that does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        unpoison(self.inner.lock())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_survives_holder_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}

//! Offline stand-in for the `criterion` crate.
//!
//! Runs each benchmark a small, fixed number of iterations with
//! wall-clock timing and prints a one-line mean per benchmark — enough
//! for `cargo bench` to produce comparable numbers in the sandbox, and
//! for bench targets to compile under `cargo test`. No statistics,
//! warm-up control, plots or baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Label of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Units processed per iteration, used to report a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Abstract elements per iteration.
    Elements(u64),
}

/// How `iter_batched` amortizes setup; the shim always re-runs setup per
/// iteration regardless.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Setup runs before every routine invocation.
    PerIteration,
    /// Small batches (treated as `PerIteration` by the shim).
    SmallInput,
    /// Large batches (treated as `PerIteration` by the shim).
    LargeInput,
}

/// Passed to benchmark closures; drives the measured iterations.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is not
    /// measured.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }
}

fn report(group: &str, id: &str, b: &Bencher, throughput: Option<Throughput>) {
    if b.iters == 0 {
        println!("bench {group}/{id}: no iterations");
        return;
    }
    let per_iter = b.total.as_secs_f64() / b.iters as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => format!(
            " ({:.1} MB/s)",
            n as f64 / per_iter / 1e6
        ),
        Some(Throughput::Elements(n)) => format!(" ({:.0} elem/s)", n as f64 / per_iter),
        None => String::new(),
    };
    println!(
        "bench {group}/{id}: {:.3} ms/iter over {} iters{rate}",
        per_iter * 1e3,
        b.iters
    );
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many iterations each benchmark runs (criterion's sample
    /// count; the shim uses it directly as the iteration count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Upper bound on measurement time — accepted and ignored.
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(&self.name, &id.id, &b, self.throughput);
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b, input);
        report(&self.name, &id.id, &b, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let name = id.id.clone();
        self.benchmark_group(name).bench_function(id, f);
        self
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_machinery_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3).throughput(Throughput::Bytes(8));
        let mut runs = 0;
        g.bench_with_input(BenchmarkId::from_parameter(1), &7u64, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            });
        });
        g.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut c = Criterion::default();
        let mut setups = 0;
        c.benchmark_group("shim2").sample_size(4).bench_function("b", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![0u8; 8]
                },
                |v| v.len(),
                BatchSize::PerIteration,
            );
        });
        assert_eq!(setups, 4);
    }
}

//! Corruption chaos (DESIGN.md §4.15), run as a twin-transport harness:
//! seeded byte flips land in resident partitions and on the wire while
//! a Zipf workload hammers the cluster, and every read must come back
//! byte-exact anyway — resident flips surface as typed `Corrupt`
//! erasures the client rebuilds from Cauchy-RS parity (no under-store
//! in sight), wire flips are caught by the client-side checksum, and
//! without parity the same flip heals from the under-store instead.
//! The fault log must be *identical* between the in-process channel
//! transport and real loopback TCP, and across same-seed reruns.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::SeedableRng;
use spcache::net::TcpCluster;
use spcache::sim::Xoshiro256StarStar;
use spcache::store::backing::{checkpoint, UnderStore};
use spcache::store::fault::{CorruptSite, FaultRecord};
use spcache::store::rpc::{PartKey, WorkerStats};
use spcache::store::{FaultPlan, RetryPolicy, StoreCluster, StoreConfig};
use spcache::workload::zipf::ZipfSampler;

const N_WORKERS: usize = 6;
const N_FILES: u64 = 20;
const FILE_LEN: usize = 12_000;
const N_READS: usize = 400;
/// Parity partitions per file in the parity scenario (`r`).
const PARITY: usize = 2;

/// Workload seed: 42 unless the CI seed sweep overrides it via
/// `SPCACHE_CHAOS_SEED`.
fn chaos_seed() -> u64 {
    std::env::var("SPCACHE_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn payload(id: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((i as u64).wrapping_mul(131).wrapping_add(id * 17 + 3) % 256) as u8)
        .collect()
}

fn placement(id: u64) -> Vec<usize> {
    vec![id as usize % N_WORKERS, (id as usize + 1) % N_WORKERS]
}

/// The parity-scenario script. Op indices are per-worker *data request*
/// counts, which the sequential write phase pins exactly:
///
/// * worker 0, op 1 — its second request is file 3's parity push-back
///   (file 0's partition 0 landed at op 0), so the flip rots the
///   resident copy of `(0, 0)` mid-write-phase,
/// * worker 1, op 2 — after file 0's partition 1 and file 1's
///   partition 0, its third request is file 4's parity shard; the flip
///   rots `(1, 0)`,
/// * worker 4, op 20 — deep in the read phase (its write phase is 13
///   requests); a *wire-site* flip arms on `(3, 1)`, so the next read
///   of file 3 serves flipped bytes off a pristine store — only the
///   client-side checksum can catch that flavour.
fn parity_plan() -> FaultPlan {
    FaultPlan::none()
        .corrupt(0, 1, PartKey::new(0, 0), CorruptSite::Resident, 3)
        .corrupt(1, 2, PartKey::new(1, 0), CorruptSite::Resident, 7)
        .corrupt(4, 20, PartKey::new(3, 1), CorruptSite::Wire, 11)
}

fn retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 4,
        base_backoff: Duration::from_millis(2),
        deadline: Duration::from_secs(2),
    }
}

fn parity_config() -> StoreConfig {
    StoreConfig::unthrottled(N_WORKERS)
        .with_verify_reads(true)
        .with_parity(PARITY)
        .with_faults(parity_plan())
        .with_retry(retry())
}

/// The no-parity script: one resident flip on worker 0. Its write-phase
/// ops alternate Put / checkpoint-read Get per file, so op 2 is file
/// 5's partition push — *after* file 0's clean bytes were checkpointed
/// at op 1.
fn heal_plan() -> FaultPlan {
    FaultPlan::none().corrupt(0, 2, PartKey::new(0, 0), CorruptSite::Resident, 9)
}

fn heal_config() -> StoreConfig {
    StoreConfig::unthrottled(N_WORKERS)
        .with_verify_reads(true)
        .with_faults(heal_plan())
        .with_retry(retry())
}

/// Polls worker stats until `pred` holds — the read-repair push-back
/// that re-lands a rebuilt partition is fire-and-forget, so the counter
/// it bumps trails the read that triggered it.
fn eventually<F: Fn() -> Vec<WorkerStats>, P: Fn(&[WorkerStats]) -> bool>(
    stats: F,
    pred: P,
    what: &str,
) -> Vec<WorkerStats> {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let s = stats();
        if pred(&s) {
            return s;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}: {s:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Asserts the invariants every parity run must satisfy and distils the
/// run into its cross-run comparable: the fault log.
fn check_parity_run<S: Fn() -> Vec<WorkerStats>>(
    log: Vec<FaultRecord>,
    stats: S,
    transport: &str,
) -> Vec<FaultRecord> {
    assert_eq!(log.len(), 3, "[{transport}] expected the 3 scripted flips: {log:?}");
    assert_eq!(
        log.iter().map(|r| (r.worker, r.op)).collect::<Vec<_>>(),
        vec![(0, 1), (1, 2), (4, 20)],
        "[{transport}] flips fired out of script order"
    );
    // Exactly the two resident flips are detected worker-side (each
    // erases on first touch and stays a typed erasure until the repair
    // re-lands); the wire flip leaves the store pristine and is caught
    // by the client checksum alone.
    let s = eventually(
        stats,
        |s| s.iter().map(|w| w.decode_reconstructions).sum::<u64>() >= 2,
        "read-repair push-backs to land",
    );
    let detected: u64 = s.iter().map(|w| w.corruptions_detected).sum();
    assert_eq!(detected, 2, "[{transport}] wrong detection count: {s:?}");
    assert!(
        s.iter().map(|w| w.parity_bytes).sum::<u64>() > 0,
        "[{transport}] no parity shards were stored"
    );
    log
}

/// One parity-scenario run over the in-process channel transport. The
/// client has **no under-store attached**: the only way a read of a
/// corrupted partition can come back byte-exact is the client-side
/// Cauchy-RS rebuild from the surviving `k`-of-`k+r` shards.
fn run_parity_channel(workload_seed: u64) -> Vec<FaultRecord> {
    let cluster = StoreCluster::spawn(parity_config());
    let client = cluster.client();
    for id in 0..N_FILES {
        client.write(id, &payload(id, FILE_LEN), &placement(id)).unwrap();
    }
    let sampler = ZipfSampler::new(N_FILES as usize, 1.1);
    let mut rng = Xoshiro256StarStar::seed_from_u64(workload_seed);
    for i in 0..N_READS {
        let id = sampler.sample(&mut rng) as u64;
        assert_eq!(
            client.read_quiet(id).unwrap(),
            payload(id, FILE_LEN),
            "read {i} of file {id} not byte-exact under corruption (channel)"
        );
    }
    check_parity_run(
        cluster.fault_log().snapshot(),
        || cluster.worker_stats().unwrap(),
        "channel",
    )
}

/// The same run with every byte crossing a loopback socket: `Corrupt`
/// erasures travel as typed error frames, parity shards as `GetParity`
/// frames, and the checksums ride the `Put` frames.
fn run_parity_tcp(workload_seed: u64) -> Vec<FaultRecord> {
    let cluster = TcpCluster::spawn(parity_config());
    let client = cluster.client();
    for id in 0..N_FILES {
        client.write(id, &payload(id, FILE_LEN), &placement(id)).unwrap();
    }
    let sampler = ZipfSampler::new(N_FILES as usize, 1.1);
    let mut rng = Xoshiro256StarStar::seed_from_u64(workload_seed);
    for i in 0..N_READS {
        let id = sampler.sample(&mut rng) as u64;
        assert_eq!(
            client.read_quiet(id).unwrap(),
            payload(id, FILE_LEN),
            "read {i} of file {id} not byte-exact under corruption (TCP)"
        );
    }
    let log = check_parity_run(
        cluster.fault_log().snapshot(),
        || cluster.worker_stats().unwrap(),
        "tcp",
    );
    cluster.shutdown();
    log
}

/// The shared body of a no-parity run: the flip still surfaces as an
/// erasure (never wrong bytes), but with `r = 0` recovery falls back
/// to the under-store heal path instead of a parity rebuild.
fn heal_workload(client: &spcache::store::Client, under: &Arc<UnderStore>, workload_seed: u64) {
    for id in 0..N_FILES {
        client.write(id, &payload(id, FILE_LEN), &placement(id)).unwrap();
        checkpoint(client, under, id).unwrap();
    }
    let sampler = ZipfSampler::new(N_FILES as usize, 1.1);
    let mut rng = Xoshiro256StarStar::seed_from_u64(workload_seed);
    for i in 0..N_READS {
        let id = sampler.sample(&mut rng) as u64;
        assert_eq!(
            client.read_quiet(id).unwrap(),
            payload(id, FILE_LEN),
            "read {i} of file {id} not byte-exact during under-store heal"
        );
    }
}

fn check_heal_log(log: Vec<FaultRecord>) -> Vec<FaultRecord> {
    assert_eq!(log.len(), 1, "expected the single scripted flip: {log:?}");
    assert_eq!((log[0].worker, log[0].op), (0, 2));
    log
}

fn run_heal_channel(workload_seed: u64) -> Vec<FaultRecord> {
    let cluster = StoreCluster::spawn(heal_config());
    let under = Arc::new(UnderStore::new());
    let client = cluster.client().with_under_store(Arc::clone(&under));
    heal_workload(&client, &under, workload_seed);
    // The one detection healed back through the under-store.
    assert_eq!(
        cluster
            .worker_stats()
            .unwrap()
            .iter()
            .map(|s| s.corruptions_detected)
            .sum::<u64>(),
        1
    );
    check_heal_log(cluster.fault_log().snapshot())
}

fn run_heal_tcp(workload_seed: u64) -> Vec<FaultRecord> {
    let cluster = TcpCluster::spawn(heal_config());
    let under = Arc::new(UnderStore::new());
    let client = cluster.client().with_under_store(Arc::clone(&under));
    heal_workload(&client, &under, workload_seed);
    let log = check_heal_log(cluster.fault_log().snapshot());
    cluster.shutdown();
    log
}

#[test]
fn corrupted_partitions_rebuild_from_parity_without_the_under_store() {
    let log_a = run_parity_channel(chaos_seed());
    let log_b = run_parity_channel(chaos_seed());
    assert_eq!(log_a, log_b, "corruption injection is not reproducible");
}

#[test]
fn corruption_recovery_is_identical_over_tcp_and_reruns_cleanly() {
    let log_a = run_parity_tcp(chaos_seed());
    let log_b = run_parity_tcp(chaos_seed());
    assert_eq!(log_a, log_b, "corruption injection is not reproducible over TCP");
}

#[test]
fn tcp_and_channel_transports_fire_identical_corruption_logs() {
    let tcp = run_parity_tcp(chaos_seed());
    let channel = run_parity_channel(chaos_seed());
    assert_eq!(
        tcp, channel,
        "wire transport changed which corruptions fired — op order diverged"
    );
}

#[test]
fn without_parity_the_same_flip_heals_from_the_under_store() {
    let channel = run_heal_channel(chaos_seed());
    let tcp = run_heal_tcp(chaos_seed());
    assert_eq!(channel, tcp, "heal-path fault logs diverged across transports");
}

//! Integration tests tying the analysis (fork-join bound, Theorem 1,
//! Algorithm 1) to the simulator: the math must predict what the
//! simulation measures.

use rand::SeedableRng;
use spcache::cluster::engine::simulate_reads;
use spcache::cluster::{ClusterConfig, ReadWorkload};
use spcache::core::forkjoin::{system_latency_bound, BoundConfig};
use spcache::core::placement::random_partition_map;
use spcache::core::tuner::{tune_scale_factor_with_rate, TunerConfig};
use spcache::core::variance::{ec_variance, sp_variance};
use spcache::core::{FileSet, SpCache};
use spcache::metrics::LoadTracker;
use spcache::sim::Xoshiro256StarStar;
use spcache::workload::zipf::zipf_popularities;

fn files300() -> FileSet {
    FileSet::uniform_size(100e6, &zipf_popularities(300, 1.05))
}

#[test]
fn bound_upper_bounds_simulated_mean_in_model_regime() {
    // In the regime the bound models (no stragglers, no cache misses),
    // the bound must sit at or above the simulated mean for every α.
    let files = files300();
    let n = 30;
    let bw = 125e6;
    let rate = 8.0;
    let rates = files.request_rates(rate);
    let cfg = ClusterConfig::ec2_default();
    let bound_cfg = BoundConfig::with_client_bandwidth(bw);

    for &k_hot in &[4usize, 10, 30] {
        let alpha = k_hot as f64 / files.max_load();
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let map = random_partition_map(&files, alpha, n, &mut rng);
        let bound = system_latency_bound(&files, &rates, &map, &vec![bw; n], &bound_cfg);
        let scheme = SpCache::with_alpha(alpha);
        let workload = ReadWorkload::poisson(&files, rate, 10_000, 2);
        let sim = simulate_reads(&scheme, &files, &workload, &cfg);
        // Placement differs between bound and sim runs, so allow slack;
        // the paper itself observes occasional crossings (§5.3).
        assert!(
            bound > sim.summary.mean() * 0.8,
            "k_hot={k_hot}: bound {bound} far below simulated {}",
            sim.summary.mean()
        );
    }
}

#[test]
fn tuner_alpha_is_near_simulated_optimum() {
    // The α Algorithm 1 picks should be within ~25% of the best simulated
    // mean over a dense α grid.
    let files = files300();
    let cfg = ClusterConfig::ec2_default();
    let rate = 10.0;
    let tuned = tune_scale_factor_with_rate(&files, 30, cfg.bandwidth, rate, &TunerConfig::default());

    let simulate = |alpha: f64| {
        let scheme = SpCache::with_alpha(alpha);
        let workload = ReadWorkload::poisson(&files, rate, 8_000, 3);
        simulate_reads(&scheme, &files, &workload, &cfg).summary.mean()
    };
    let tuned_mean = simulate(tuned.alpha);
    let best_grid = (1..=10)
        .map(|k| simulate(3.0 * k as f64 / files.max_load()))
        .fold(f64::INFINITY, f64::min);
    assert!(
        tuned_mean <= best_grid * 1.25,
        "tuned mean {tuned_mean} vs best grid {best_grid}"
    );
}

#[test]
fn theorem1_predicts_measured_load_variance_ordering() {
    // The analytic variance comparison (Theorem 1) must agree with the
    // byte-level loads the simulator measures, with SP-Cache configured
    // the way the system configures itself — by Algorithm 1. (A hand-
    // picked α that leaves the cold tail unsplit loses the comparison;
    // the tuned α splits it.)
    // Heavy-load setting (Fig. 12's): at light load Algorithm 1 rightly
    // stops early and leaves the tail unsplit — balance only matters, and
    // is only produced, when the cluster is actually loaded.
    let files = FileSet::uniform_size(100e6, &zipf_popularities(500, 1.05));
    let n = 30;
    let tuned = tune_scale_factor_with_rate(&files, n, 100e6, 18.0, &TunerConfig::default());
    let alpha = tuned.alpha;
    let analytic_sp = sp_variance(&files, alpha, n);
    let analytic_ec = ec_variance(&files, 10, n);
    assert!(analytic_ec > analytic_sp);

    // Theorem 1's variance is an expectation over random placements, so
    // average the measured per-server variance over several independent
    // layouts before comparing.
    let workload = ReadWorkload::poisson(&files, 18.0, 15_000, 4);
    let sp = SpCache::with_alpha(alpha);
    let ec = spcache::baselines::EcCache::paper_config();
    let nv = |lt: &LoadTracker| lt.variance() / lt.mean().powi(2);
    let mut sp_nv = 0.0;
    let mut ec_nv = 0.0;
    let trials = 8;
    for seed in 0..trials {
        let cfg = ClusterConfig::ec2_default().with_bandwidth(100e6).with_seed(seed);
        sp_nv += nv(&simulate_reads(&sp, &files, &workload, &cfg).loads);
        ec_nv += nv(&simulate_reads(&ec, &files, &workload, &cfg).loads);
    }
    assert!(
        ec_nv > sp_nv,
        "measured normalized variance must favor SP: EC {} vs SP {}",
        ec_nv / trials as f64,
        sp_nv / trials as f64
    );
}

#[test]
fn bound_has_elbow_in_alpha() {
    // The bound must fall steeply, then flatten/rise — the Fig. 8 elbow
    // that Algorithm 1's stopping rule relies on.
    let files = files300();
    let n = 30;
    let bw = 125e6;
    let rates = files.request_rates(8.0);
    let bound_cfg = BoundConfig::with_client_bandwidth(bw);
    let bound_at = |k_hot: f64| {
        let alpha = k_hot / files.max_load();
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        let map = random_partition_map(&files, alpha, n, &mut rng);
        system_latency_bound(&files, &rates, &map, &vec![bw; n], &bound_cfg)
    };
    let early = bound_at(2.0);
    let elbow = bound_at(10.0);
    let late = bound_at(30.0);
    assert!(
        early > elbow * 1.2,
        "steep initial descent missing: {early} vs {elbow}"
    );
    assert!(
        (late - elbow).abs() < 0.5 * elbow,
        "post-elbow region should be flat-ish: {elbow} vs {late}"
    );
}

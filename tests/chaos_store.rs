//! Chaos harness for the real store: a skewed Zipf read workload runs
//! while a scripted [`FaultPlan`] crashes one worker and silently drops
//! two cached partitions mid-run. Every read must still come back
//! byte-exact — the client retries, marks the dead worker, and re-hydrates
//! lost partitions from the under-store checkpoint tier (the paper's §8
//! fault-tolerance story). Two runs of the same `(seed, plan)` must
//! produce the identical injected-event sequence and final placement.

use std::sync::Arc;
use std::time::Duration;

use rand::SeedableRng;
use spcache::sim::Xoshiro256StarStar;
use spcache::store::backing::{checkpoint, UnderStore};
use spcache::store::fault::FaultRecord;
use spcache::store::rpc::PartKey;
use spcache::store::{FaultPlan, RetryPolicy, StoreConfig};
use spcache::workload::zipf::ZipfSampler;

const N_WORKERS: usize = 6;
const N_FILES: u64 = 20;
const FILE_LEN: usize = 12_000;
const N_READS: usize = 400;
const DOOMED_WORKER: usize = 2;

/// Workload seed: 42 unless the CI seed sweep overrides it via
/// `SPCACHE_CHAOS_SEED`. The fault log is op-indexed, so every seed must
/// satisfy the same assertions.
fn chaos_seed() -> u64 {
    std::env::var("SPCACHE_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn payload(id: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((i as u64).wrapping_mul(131).wrapping_add(id * 17 + 3) % 256) as u8)
        .collect()
}

/// Two partitions per file, placed deterministically so the fault plan
/// can name exact victim keys.
fn placement(id: u64) -> Vec<usize> {
    vec![id as usize % N_WORKERS, (id as usize + 1) % N_WORKERS]
}

/// The scripted chaos: worker 2 crashes on its 30th data-path request
/// (well into the read phase — setup costs each worker ~14 ops), and two
/// partitions of hot files vanish from their workers' memory shortly
/// after. File 4 lives on workers [4, 5]; file 10 on [4, 5] as well.
fn chaos_plan() -> FaultPlan {
    FaultPlan::none()
        .crash(DOOMED_WORKER, 30)
        .drop_partition(4, 35, PartKey::new(4, 0))
        .drop_partition(5, 40, PartKey::new(10, 1))
}

/// One full chaos run. Returns the injected-event log and the final
/// file placements for cross-run determinism checks.
fn run_chaos(workload_seed: u64) -> (Vec<FaultRecord>, Vec<(u64, Vec<usize>)>) {
    let cfg = StoreConfig::unthrottled(N_WORKERS)
        .with_faults(chaos_plan())
        .with_retry(RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(2),
            deadline: Duration::from_secs(2),
        });
    let cluster = spcache::store::StoreCluster::spawn(cfg);
    let under = Arc::new(UnderStore::new());
    let client = cluster.client().with_under_store(Arc::clone(&under));

    // Setup: write + checkpoint every file before any fault can fire.
    for id in 0..N_FILES {
        client.write(id, &payload(id, FILE_LEN), &placement(id)).unwrap();
        checkpoint(&client, &under, id).unwrap();
    }

    // Skewed Zipf reads while the faults fire underneath.
    let sampler = ZipfSampler::new(N_FILES as usize, 1.1);
    let mut rng = Xoshiro256StarStar::seed_from_u64(workload_seed);
    for i in 0..N_READS {
        let id = sampler.sample(&mut rng) as u64;
        assert_eq!(
            client.read_quiet(id).unwrap(),
            payload(id, FILE_LEN),
            "read {i} of file {id} not byte-exact under chaos"
        );
    }

    // The crash was noticed and the worker excluded from the live fleet.
    assert!(
        !cluster.master().is_alive(DOOMED_WORKER),
        "crashed worker still marked alive after {N_READS} reads"
    );
    // Every file the workload touched on the dead worker was healed off
    // of it; no file placement may still reference a dead server after
    // its post-crash read.
    let placements = cluster.master().placements();
    for (id, servers) in &placements {
        for &s in servers {
            if s == DOOMED_WORKER {
                // Only legal if the workload never read this file after
                // the crash — it must then still be flagged degraded.
                assert!(
                    cluster.master().degraded_files().contains(id),
                    "file {id} placed on dead worker but not degraded"
                );
            }
        }
    }

    (cluster.fault_log().snapshot(), placements)
}

#[test]
fn chaos_reads_stay_byte_exact_and_events_are_reproducible() {
    let (log_a, placements_a) = run_chaos(chaos_seed());
    let (log_b, placements_b) = run_chaos(chaos_seed());

    // All three scripted faults fired, in the scripted order.
    assert_eq!(log_a.len(), 3, "expected exactly the scripted faults: {log_a:?}");
    assert_eq!(
        log_a.iter().map(|r| r.worker).collect::<Vec<_>>(),
        vec![DOOMED_WORKER, 4, 5]
    );

    // Same (seed, plan) ⇒ identical injected-event sequence and final
    // layout. This is the reproducibility contract of the harness.
    assert_eq!(log_a, log_b, "fault injection is not deterministic");
    assert_eq!(placements_a, placements_b, "recovery is not deterministic");
}

#[test]
fn chaos_with_different_seed_still_heals_everything() {
    // A different workload interleaving against the same plan: the event
    // log op-indices are fixed by the plan, so the log is identical even
    // though the read sequence differs.
    let (log, placements) = run_chaos(chaos_seed() ^ 0x5eed);
    assert_eq!(
        log,
        run_chaos(chaos_seed()).0,
        "op-indexed triggers must not depend on workload seed"
    );
    // Nothing readable was lost.
    assert_eq!(placements.len(), N_FILES as usize);
}

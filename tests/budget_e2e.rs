//! End-to-end budget/pacing exercise (ISSUE 7's `budget-e2e` gate): a
//! throttled cluster runs with a 50%-of-working-set memory budget and a
//! 50% background NIC fraction; a worker is killed while a Zipf read
//! storm is in flight, and the supervisor's recovery sweep must heal
//! every degraded file while its background traffic stays inside the
//! configured fraction of the NIC — measured, not assumed.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::SeedableRng;
use spcache::sim::Xoshiro256StarStar;
use spcache::store::backing::{checkpoint, UnderStore};
use spcache::store::supervisor::SupervisorCore;
use spcache::store::transport::Transport;
use spcache::store::{
    RetryPolicy, StoreCluster, StoreConfig, SupervisorConfig,
};
use spcache::workload::zipf::ZipfSampler;

const N_WORKERS: usize = 4;
const N_FILES: u64 = 16;
const FILE_LEN: usize = 100_000;
const BANDWIDTH: f64 = 40e6; // 40 MB/s per worker
const BG_FRACTION: f64 = 0.5;
const DOOMED: usize = 1;

fn payload(id: u64) -> Vec<u8> {
    (0..FILE_LEN)
        .map(|i| ((i as u64).wrapping_mul(167).wrapping_add(id * 23 + 9) % 256) as u8)
        .collect()
}

#[test]
fn heal_under_load_stays_inside_the_background_fraction() {
    // Working set: 16 files x 100 KB x 2 partitions over 4 workers
    // = 800 KB resident per worker unbounded; budget it at 50%.
    let budget = (N_FILES as usize * FILE_LEN * 2 / N_WORKERS) / 2;
    let cfg = StoreConfig::throttled(N_WORKERS, BANDWIDTH)
        .with_memory_budget(Some(budget))
        .with_background_fraction(BG_FRACTION)
        .with_retry(RetryPolicy {
            max_attempts: 6,
            base_backoff: Duration::from_millis(2),
            deadline: Duration::from_secs(5),
        });
    let under = Arc::new(UnderStore::new());
    let mut cluster = StoreCluster::spawn_with_under_store(cfg, Some(Arc::clone(&under)));
    let client = cluster.client().with_under_store(Arc::clone(&under));
    for id in 0..N_FILES {
        client
            .write(
                id,
                &payload(id),
                &[id as usize % N_WORKERS, (id as usize + 1) % N_WORKERS],
            )
            .unwrap();
        checkpoint(&client, &under, id).unwrap();
    }

    let transport: Arc<dyn Transport> = cluster.transport().clone();
    let core = SupervisorCore::new(
        cluster.master().clone(),
        transport,
        Some(Arc::clone(&under)),
        SupervisorConfig::enabled()
            .with_interval(Duration::ZERO)
            .with_probe_timeout(Duration::from_millis(100)),
        RetryPolicy::default(),
    );
    core.tick(); // adopt the fleet

    // Zipf read storm on two client threads for the whole heal window.
    let stop = Arc::new(AtomicBool::new(false));
    let good_reads = Arc::new(AtomicU64::new(0));
    let readers: Vec<_> = (0..2u64)
        .map(|t| {
            let client = cluster.client().with_under_store(Arc::clone(&under));
            let stop = Arc::clone(&stop);
            let good = Arc::clone(&good_reads);
            std::thread::spawn(move || {
                let sampler = ZipfSampler::new(N_FILES as usize, 1.1);
                let mut rng = Xoshiro256StarStar::seed_from_u64(7 + t);
                while !stop.load(Ordering::Relaxed) {
                    let id = sampler.sample(&mut rng) as u64;
                    if let Ok(data) = client.read_quiet(id) {
                        assert_eq!(data, payload(id), "read of file {id} not byte-exact");
                        good.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();

    // Let the storm warm up, then kill a worker mid-flight and measure
    // the heal window.
    std::thread::sleep(Duration::from_millis(50));
    let bg_before: u64 = cluster
        .worker_stats()
        .unwrap()
        .iter()
        .map(|s| s.bytes_background)
        .sum();
    let t0 = Instant::now();
    cluster.kill_worker(DOOMED);
    let deadline = Instant::now() + Duration::from_secs(60);
    while !cluster.master().degraded_files().is_empty() {
        assert!(Instant::now() < deadline, "heal did not complete in 60 s");
        core.tick();
    }
    let elapsed = t0.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }

    // Heal completed: nothing degraded, nothing placed on the corpse,
    // every file byte-exact through a fresh client.
    let verify = cluster.client().with_under_store(Arc::clone(&under));
    for (id, servers) in cluster.master().placements() {
        assert!(servers.iter().all(|&s| s != DOOMED), "file {id} on dead worker");
        assert_eq!(verify.read_quiet(id).unwrap(), payload(id));
    }
    assert!(good_reads.load(Ordering::Relaxed) > 0, "storm never read anything");

    // The measured background bytes over the heal window stay inside
    // 1.1x the configured fraction of the fleet's NIC, plus one
    // in-flight partition per live worker of slack.
    let stats = cluster.worker_stats().unwrap();
    let bg_after: u64 = stats.iter().map(|s| s.bytes_background).sum();
    let bg_bytes = (bg_after - bg_before) as f64;
    let live = (N_WORKERS - 1) as f64;
    let part_len = (FILE_LEN / 2) as f64;
    let cap = 1.1 * BG_FRACTION * BANDWIDTH * elapsed * live + live * part_len;
    assert!(
        bg_bytes <= cap,
        "background traffic broke its fraction: {bg_bytes} bytes in {elapsed:.3} s \
         exceeds cap {cap:.0}"
    );

    // The budget held through the storm.
    for (w, s) in stats.iter().enumerate() {
        assert!(
            s.resident_bytes <= budget as u64,
            "worker {w} resident {} over budget {budget}",
            s.resident_bytes
        );
    }
}

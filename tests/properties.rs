//! Cross-crate property-based tests (proptest): the invariants DESIGN.md
//! §6 promises.

use proptest::prelude::*;

use rand::SeedableRng;
use spcache::core::placement::{least_loaded, random_distinct};
use spcache::core::repartition::plan_repartition;
use spcache::core::{partition_count, FileSet};
use spcache::ec::{join_shards, split_into_shards, ReedSolomon};
use spcache::metrics::{LoadTracker, Samples, Summary};
use spcache::sim::Xoshiro256StarStar;
use spcache::workload::zipf::zipf_popularities;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Reed–Solomon reconstructs the original bytes from *any* k-subset.
    #[test]
    fn rs_roundtrip_any_erasure_pattern(
        data in proptest::collection::vec(any::<u8>(), 1..4096),
        k in 1usize..8,
        extra in 0usize..4,
        seed in any::<u64>(),
    ) {
        let n = k + extra;
        let rs = ReedSolomon::new(k, n);
        let shards = rs.encode_bytes(&data);
        prop_assert_eq!(shards.len(), n);

        // Drop a random max-size erasure set.
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let mut partial: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        let drop = spcache::core::placement::random_distinct(extra.max(1).min(n), n, &mut rng);
        for &d in drop.iter().take(extra) {
            partial[d] = None;
        }
        let rec = rs.reconstruct_data(&mut partial).unwrap();
        prop_assert_eq!(&rec[..data.len()], &data[..]);
    }

    /// Splitting and joining is the identity for every (len, k).
    #[test]
    fn split_join_identity(
        data in proptest::collection::vec(any::<u8>(), 0..10_000),
        k in 1usize..40,
    ) {
        let shards = split_into_shards(&data, k);
        prop_assert_eq!(shards.len(), k);
        // Equal-size shards.
        let len0 = shards[0].len();
        prop_assert!(shards.iter().all(|s| s.len() == len0));
        prop_assert_eq!(join_shards(&shards, data.len()), data);
    }

    /// Eq. 1 is monotone in both α and load, and never returns 0.
    #[test]
    fn partition_count_monotone(
        alpha in 0.0f64..10.0,
        load in 0.0f64..1e9,
        bump in 0.0f64..1.0,
    ) {
        let k = partition_count(alpha, load);
        prop_assert!(k >= 1);
        prop_assert!(partition_count(alpha + bump, load) >= k);
        prop_assert!(partition_count(alpha, load * (1.0 + bump)) >= k);
    }

    /// Random placement always yields distinct in-range servers.
    #[test]
    fn placement_distinct_and_in_range(
        k in 1usize..32,
        extra in 0usize..100,
        seed in any::<u64>(),
    ) {
        let n = k + extra;
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let servers = random_distinct(k, n, &mut rng);
        prop_assert_eq!(servers.len(), k);
        let mut sorted = servers.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), k, "duplicates in {:?}", servers);
        prop_assert!(servers.iter().all(|&s| s < n));
    }

    /// The greedy picks exactly the k smallest loads.
    #[test]
    fn least_loaded_is_minimal(
        loads in proptest::collection::vec(0.0f64..100.0, 1..50),
        k_frac in 0.0f64..1.0,
    ) {
        let k = ((loads.len() as f64 * k_frac) as usize).clamp(1, loads.len());
        let picked = least_loaded(k, &loads);
        let max_picked = picked.iter().map(|&i| loads[i]).fold(f64::MIN, f64::max);
        let mut rest: Vec<f64> = (0..loads.len())
            .filter(|i| !picked.contains(i))
            .map(|i| loads[i])
            .collect();
        rest.sort_by(|a, b| a.partial_cmp(b).unwrap());
        if let Some(&min_rest) = rest.first() {
            prop_assert!(max_picked <= min_rest);
        }
    }

    /// Algorithm 2 conserves files: unchanged + moved = all, the new map
    /// honors the requested counts, and executors hold an old partition.
    #[test]
    fn repartition_plan_conserves(
        n_files in 2usize..60,
        exponent in 0.5f64..1.5,
        seed in any::<u64>(),
    ) {
        let n_servers = 12;
        let pops = zipf_popularities(n_files, exponent);
        let files = FileSet::uniform_size(10e6, &pops);
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let old = spcache::core::placement::random_partition_map(
            &files, 2e-7, n_servers, &mut rng,
        );
        // Arbitrary new counts in range.
        let new_counts: Vec<usize> = (0..n_files)
            .map(|i| 1 + (seed as usize + i * 7) % n_servers)
            .collect();
        let plan = plan_repartition(&files, &old, &new_counts, &mut rng);
        prop_assert_eq!(plan.jobs.len() + plan.unchanged.len(), n_files);
        for (i, &k) in new_counts.iter().enumerate() {
            prop_assert_eq!(plan.new_map.k_of(i), k, "file {}", i);
        }
        for job in &plan.jobs {
            prop_assert!(job.old_servers.contains(&job.executor));
            prop_assert!(job.network_bytes(10e6) >= 0.0);
        }
        for &i in &plan.unchanged {
            prop_assert_eq!(plan.new_map.servers_of(i), old.servers_of(i));
        }
    }

    /// Welford summary matches the two-pass reference on arbitrary data.
    #[test]
    fn summary_matches_two_pass(xs in proptest::collection::vec(-1e6f64..1e6, 2..300)) {
        let s = Summary::from_slice(&xs);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        prop_assert!((s.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() <= 1e-6 * (1.0 + var.abs()));
    }

    /// Percentiles are monotone in p and bracketed by min/max.
    #[test]
    fn percentiles_monotone(xs in proptest::collection::vec(-1e3f64..1e3, 1..200)) {
        let mut s = Samples::from_vec(xs.clone());
        let p25 = s.percentile(25.0);
        let p50 = s.percentile(50.0);
        let p95 = s.percentile(95.0);
        prop_assert!(p25 <= p50 && p50 <= p95);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p25 >= min && p95 <= max);
    }

    /// η is zero iff all loads are equal, and scale-invariant.
    #[test]
    fn imbalance_factor_properties(
        loads in proptest::collection::vec(0.1f64..1e3, 2..40),
        scale in 0.1f64..100.0,
    ) {
        let mut a = LoadTracker::new(loads.len());
        let mut b = LoadTracker::new(loads.len());
        for (i, &l) in loads.iter().enumerate() {
            a.add(i, l);
            b.add(i, l * scale);
        }
        prop_assert!((a.imbalance_factor() - b.imbalance_factor()).abs() < 1e-9);
        prop_assert!(a.imbalance_factor() >= 0.0);
    }
}

//! Failover chaos: the active master dies mid-repartition and a standby
//! takes over from the write-ahead op-log (DESIGN.md §4.14), driven
//! deterministically against a seeded Zipf workload on both transports.
//!
//! The script: master A journals every mutation through a shared meta
//! tier, supervises one read phase, then is killed with a repair slot
//! still open (the mid-repartition crash). Master B recovers from the
//! journal alone, abandons the orphaned repair, claims a bumped master
//! epoch and fences the fleet under it. During B's reign a scripted
//! network partition swallows one worker's heartbeats — ping-indexed,
//! so it fires at the same probe regardless of the workload seed — and
//! B's supervisor must detect the death and re-materialize every file
//! the worker held, including the one A crashed repairing. Finally A's
//! supervisor rejoins as a zombie: its first adoption announcement
//! carries the old master epoch, a worker bounces it with `StaleEpoch`,
//! and A fences itself forever.
//!
//! Every observable — fault log, B's sweep plan, final placements,
//! fencing epochs, read bytes — must be identical across two same-seed
//! runs *and* across the channel and TCP transports.

use std::sync::Arc;
use std::time::Duration;

use rand::SeedableRng;
use spcache::net::{MasterClient, MasterServer, TcpCluster};
use spcache::sim::Xoshiro256StarStar;
use spcache::store::backing::{checkpoint, UnderStore};
use spcache::store::client::Client;
use spcache::store::fault::FaultRecord;
use spcache::store::master::{Master, MetaService};
use spcache::store::rpc::{Reply, Request};
use spcache::store::supervisor::{Supervisor, SupervisorCore, SweepRecord};
use spcache::store::transport::Transport;
use spcache::store::{
    FaultPlan, MetaLog, RetryPolicy, StoreCluster, StoreConfig, SupervisorConfig,
};
use spcache::workload::zipf::ZipfSampler;

const N_WORKERS: usize = 6;
const N_FILES: u64 = 20;
const FILE_LEN: usize = 9_000;
/// Reads per phase (one phase under each master).
const PHASE_READS: usize = 150;
/// Reads between supervisor ticks.
const TICK_EVERY: usize = 25;
/// Loses its heartbeats (not its data) once B reigns: B must declare it
/// dead and re-materialize everything it held.
const PARTITIONED_WORKER: usize = 4;
/// The repair master A leaves open when it dies — B must abandon the
/// slot at takeover or the file stays unhealable forever.
const MARKER_FILE: u64 = 3;
const ADDR_A: &str = "10.0.0.1:9000";
const ADDR_B: &str = "10.0.0.2:9000";

/// Workload seed, overridable for the CI seed sweep.
fn chaos_seed() -> u64 {
    std::env::var("SPCACHE_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn payload(id: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((i as u64).wrapping_mul(137).wrapping_add(id * 19 + 5) % 256) as u8)
        .collect()
}

fn placement(id: u64) -> Vec<usize> {
    vec![id as usize % N_WORKERS, (id as usize + 1) % N_WORKERS]
}

/// Files with a partition on [`PARTITIONED_WORKER`] — what B's sweep
/// must heal, ascending (the sweep enumerates degraded ids sorted).
fn partitioned_files() -> Vec<u64> {
    (0..N_FILES)
        .filter(|&id| placement(id).contains(&PARTITIONED_WORKER))
        .collect()
}

/// Master A ticks once at adoption plus once per [`TICK_EVERY`] reads in
/// phase 1, so B's first probe is ping index `1 + PHASE_READS/TICK_EVERY`
/// at every worker — where the partition script starts, independent of
/// the workload seed (heartbeat drops are ping-indexed, not op-indexed).
fn first_b_ping() -> u64 {
    1 + (PHASE_READS as u64).div_ceil(TICK_EVERY as u64)
}

fn chaos_plan() -> FaultPlan {
    let p = first_b_ping();
    FaultPlan::none()
        .drop_heartbeat(PARTITIONED_WORKER, p)
        .drop_heartbeat(PARTITIONED_WORKER, p + 1)
        .drop_heartbeat(PARTITIONED_WORKER, p + 2)
}

fn chaos_config() -> StoreConfig {
    StoreConfig::unthrottled(N_WORKERS)
        .with_faults(chaos_plan())
        .with_retry(RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(2),
            deadline: Duration::from_secs(2),
        })
        .with_supervisor(
            SupervisorConfig::enabled()
                .with_interval(Duration::ZERO) // manual ticks only
                .with_probe_timeout(Duration::from_millis(400)),
        )
}

/// Everything a failover run produces that must be reproducible.
#[derive(Debug, PartialEq)]
struct RunTrace {
    faults: Vec<FaultRecord>,
    sweeps: Vec<SweepRecord>,
    placements: Vec<(u64, Vec<usize>)>,
    epochs: Vec<u64>,
}

/// The transport-agnostic pieces one run needs.
struct Pieces {
    master_a: Arc<Master>,
    transport: Arc<dyn Transport>,
    under: Arc<UnderStore>,
    meta: Arc<UnderStore>,
    client_a: Client,
}

/// Drives one failover run. `client_b_of` builds the successor's client
/// (in-process against the recovered master, or over a fresh wire
/// server — the transport-specific part). Returns the trace with
/// `faults` left empty for the caller to snapshot.
fn drive(
    p: &Pieces,
    sup_a: &Supervisor,
    client_b_of: impl FnOnce(&Arc<Master>) -> Client,
    workload_seed: u64,
) -> RunTrace {
    // --- Master A's reign: durable from the first mutation. ---
    p.master_a
        .enable_journal(Arc::new(MetaLog::open(Arc::clone(&p.meta))));
    assert_eq!(
        p.master_a.claim_master_epoch(p.master_a.master_epoch(), ADDR_A),
        1,
        "fresh master claims its boot epoch"
    );
    assert!(sup_a.tick().is_none(), "sweep before any file exists");
    assert_eq!(p.master_a.worker_epochs(N_WORKERS), vec![1; N_WORKERS]);

    for id in 0..N_FILES {
        p.client_a
            .write(id, &payload(id, FILE_LEN), &placement(id))
            .unwrap();
        checkpoint(&p.client_a, &p.under, id).unwrap();
    }

    let sampler = ZipfSampler::new(N_FILES as usize, 1.1);
    let mut rng = Xoshiro256StarStar::seed_from_u64(workload_seed);
    for i in 0..PHASE_READS {
        if i % TICK_EVERY == 0 {
            sup_a.tick();
        }
        let id = sampler.sample(&mut rng) as u64;
        assert_eq!(
            p.client_a.read_quiet(id).unwrap(),
            payload(id, FILE_LEN),
            "read {i} of file {id} not byte-exact under master A"
        );
    }

    // --- kill -9 mid-repartition: a repair slot is held, the journal
    // linkage dies with the process, no shutdown runs. ---
    assert!(p.master_a.begin_repair(MARKER_FILE));
    p.master_a.detach_journal();

    // --- Takeover: B is a pure function of the journal. ---
    let master_b = Arc::new(Master::recover(Arc::clone(&p.meta)));
    assert_eq!(
        master_b.image(),
        p.master_a.image(),
        "recovered image must equal the dead master's last state"
    );
    assert!(master_b.repairing(MARKER_FILE), "open repair survives recovery");
    assert_eq!(master_b.abandon_repairs(), vec![MARKER_FILE]);
    let epoch_b = master_b.claim_master_epoch(master_b.master_epoch() + 1, ADDR_B);
    assert_eq!(epoch_b, 2, "takeover bumps the master epoch");
    // Fence the fleet under the new reign (what `spcached --standby`
    // broadcasts at takeover): every worker raises its watermark.
    for w in 0..N_WORKERS {
        let reply = p
            .transport
            .call(w, Request::SetMasterEpoch(epoch_b), Duration::from_millis(500))
            .unwrap();
        assert!(matches!(reply, Reply::Done), "worker {w} rejected the new reign");
    }
    let sup_b = Supervisor::spawn(SupervisorCore::new(
        Arc::clone(&master_b),
        Arc::clone(&p.transport),
        Some(Arc::clone(&p.under)),
        SupervisorConfig::enabled()
            .with_interval(Duration::ZERO)
            .with_probe_timeout(Duration::from_millis(400)),
        RetryPolicy::default(),
    ));
    // B's first three probes run back-to-back before it admits client
    // traffic (a successful data reply is a sign of life that would
    // reset the suspicion ladder). The partition script swallows all
    // three heartbeats: two suspicions, then death — and the death
    // tick's sweep re-materializes everything the worker held.
    assert!(sup_b.tick().is_none(), "first miss is suspicion, not death");
    assert!(sup_b.tick().is_none(), "second miss is suspicion, not death");
    let rec = sup_b.tick().expect("third miss kills and sweeps");
    assert_eq!(rec.dead, vec![PARTITIONED_WORKER]);
    assert_eq!(rec.healed, partitioned_files());
    let client_b = client_b_of(&master_b);

    // --- Master B's reign: the partition script fires tick by tick. ---
    for i in 0..PHASE_READS {
        if i % TICK_EVERY == 0 {
            sup_b.tick();
        }
        let id = sampler.sample(&mut rng) as u64;
        assert_eq!(
            client_b.read_quiet(id).unwrap(),
            payload(id, FILE_LEN),
            "read {i} of file {id} not byte-exact under master B"
        );
    }

    // Quiesce: tick until two consecutive rounds find nothing degraded.
    let mut idle = 0;
    for _ in 0..12 {
        if sup_b.tick().is_none() {
            idle += 1;
            if idle >= 2 {
                break;
            }
        } else {
            idle = 0;
        }
    }
    assert!(idle >= 2, "successor never quiesced — files stayed degraded");

    // Post-recovery: every file byte-exact, every partitioned file
    // re-homed off the declared-dead worker (its data was never lost,
    // but a dead worker must hold no placements), the orphaned repair
    // healed rather than skipped forever.
    for id in 0..N_FILES {
        assert_eq!(client_b.read_quiet(id).unwrap(), payload(id, FILE_LEN));
    }
    let placements = master_b.placements();
    for &id in &partitioned_files() {
        let (_, servers) = placements
            .iter()
            .find(|(f, _)| *f == id)
            .map(|(f, s)| (*f, s.clone()))
            .expect("file registered");
        assert!(
            !servers.contains(&PARTITIONED_WORKER),
            "file {id} still placed on partitioned worker after B's sweep"
        );
    }
    let sweeps = sup_b.sweep_log().snapshot();
    let healed: Vec<u64> = sweeps.iter().flat_map(|r| r.healed.iter().copied()).collect();
    assert_eq!(
        healed,
        partitioned_files(),
        "B must heal exactly the partitioned worker's files, once each"
    );
    assert!(
        healed.contains(&MARKER_FILE),
        "the abandoned repair slot must not block the marker file's heal"
    );
    for rec in &sweeps {
        assert!(rec.unrecoverable.is_empty(), "checkpointed file unrecoverable: {rec:?}");
    }
    let epochs = master_b.worker_epochs(N_WORKERS);
    assert_eq!(
        epochs[PARTITIONED_WORKER], 3,
        "partitioned worker: boot grant + death bump + re-adoption, got {epochs:?}"
    );

    // --- The zombie rejoins: A's supervisor wakes up, announces master
    // epoch 1 while adopting the re-granted worker, gets bounced, and
    // fences itself forever. ---
    assert!(!p.master_a.is_fenced());
    assert!(sup_a.tick().is_none(), "a deposed master must not sweep");
    assert!(p.master_a.is_fenced(), "rejoined stale master must self-fence");
    assert!(sup_a.tick().is_none(), "fenced is forever");
    assert_eq!(p.master_a.master_epoch(), 1, "fencing does not steal the epoch");

    // --- The journal outlives them both: a third recovery images B
    // exactly, and records B as the owning master — a restarted A would
    // see a foreign owner and boot fenced. ---
    let recovered = Master::recover(Arc::clone(&p.meta));
    assert_eq!(recovered.image(), master_b.image(), "journal is the system of record");
    assert_eq!(recovered.master_epoch(), 2);
    assert_eq!(recovered.owner_addr(), ADDR_B);

    RunTrace {
        faults: Vec::new(),
        sweeps,
        placements,
        epochs,
    }
}

/// One failover run over in-process channels.
fn run_failover_channel(workload_seed: u64) -> RunTrace {
    let under = Arc::new(UnderStore::new());
    let cluster = StoreCluster::spawn_with_under_store(chaos_config(), Some(Arc::clone(&under)));
    let sup_a = cluster.supervisor().expect("supervisor enabled");
    let pieces = Pieces {
        master_a: Arc::clone(cluster.master()),
        transport: cluster.transport().clone(),
        under,
        meta: Arc::new(UnderStore::new()),
        client_a: cluster.client(),
    };
    let cfg = chaos_config();
    let mut trace = drive(
        &pieces,
        sup_a,
        |master_b| {
            Client::new(Arc::clone(master_b) as Arc<dyn MetaService>, pieces.transport.clone())
                .with_retry(cfg.retry)
                .with_fencing(true)
                .with_under_store(Arc::clone(&pieces.under))
        },
        workload_seed,
    );
    trace.faults = cluster.fault_log().snapshot();
    trace
}

/// The same run with every byte crossing a loopback socket; the
/// successor serves metadata through its own wire `MasterServer`, and
/// the deposed master's server is probed for the redirect behaviour.
fn run_failover_tcp(workload_seed: u64) -> RunTrace {
    let under = Arc::new(UnderStore::new());
    let cluster = TcpCluster::spawn_with_under_store(chaos_config(), Some(Arc::clone(&under)));
    let sup_a = cluster.supervisor().expect("supervisor enabled");
    let pieces = Pieces {
        master_a: Arc::clone(cluster.master()),
        transport: cluster.transport().clone(),
        under,
        meta: Arc::new(UnderStore::new()),
        client_a: cluster.client(),
    };
    let cfg = chaos_config();
    let worker_addrs = cluster.worker_addrs();
    let mut server_b = None;
    let mut trace = drive(
        &pieces,
        sup_a,
        |master_b| {
            let server = MasterServer::spawn_with_deadline(
                Arc::clone(master_b),
                "127.0.0.1:0",
                worker_addrs,
                Duration::from_secs(2),
            )
            .expect("bind successor master listener");
            let meta = MasterClient::connect(server.addr()).with_deadline(cfg.retry.deadline);
            server_b = Some(server);
            Client::new(Arc::new(meta) as Arc<dyn MetaService>, pieces.transport.clone())
                .with_retry(cfg.retry)
                .with_fencing(true)
                .with_under_store(Arc::clone(&pieces.under))
        },
        workload_seed,
    );
    trace.faults = cluster.fault_log().snapshot();

    // Wire-level fencing: the deposed master's server still answers
    // Status (active = false) but redirects everything else, and with
    // no recorded successor the redirect dead-ends as an error rather
    // than serving stale metadata.
    let stale = cluster.master_client();
    let (epoch, active, files, _next_lsn) = stale.status().expect("status bypasses the fence");
    assert_eq!((epoch, active), (1, false), "deposed master must report itself fenced");
    assert_eq!(files, N_FILES, "fenced master keeps its last metadata");
    assert!(
        stale.locate(0).is_err(),
        "fenced master must redirect metadata reads, not serve them"
    );

    let server_b = server_b.expect("successor server spawned");
    let _ = MasterClient::connect(server_b.addr()).shutdown_server();
    server_b.join();
    cluster.shutdown();
    trace
}

#[test]
fn failover_chaos_heals_and_is_reproducible_in_process() {
    let a = run_failover_channel(chaos_seed());
    let b = run_failover_channel(chaos_seed());
    // The partition script fired exactly thrice, on the scripted worker.
    assert_eq!(a.faults.len(), 3, "expected the three swallowed heartbeats: {:?}", a.faults);
    assert!(a.faults.iter().all(|r| r.worker == PARTITIONED_WORKER));
    assert_eq!(a, b, "same seed must reproduce the whole failover trace");
}

#[test]
fn failover_chaos_is_transport_invariant() {
    // The same `(seed, plan)` over channels and TCP: ping-indexed
    // partitions, journal replay and deterministic heal targeting must
    // agree on every observable — the wire changes the medium, not the
    // succession story.
    let chan = run_failover_channel(chaos_seed());
    let tcp = run_failover_tcp(chaos_seed());
    assert_eq!(chan.faults, tcp.faults, "fault logs diverged across transports");
    assert_eq!(chan.sweeps, tcp.sweeps, "sweep plans diverged across transports");
    assert_eq!(chan.epochs, tcp.epochs, "fencing epochs diverged across transports");
    assert_eq!(chan.placements, tcp.placements, "healed placements diverged across transports");
}

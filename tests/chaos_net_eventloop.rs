//! Chaos twin for the readiness-driven TCP data plane: the same seeded
//! `FaultPlan` — now including the **wire faults** the event loop must
//! reproduce (`drop-connection`, `truncate-frame`, `delay-frame`,
//! `lose-reply`) plus a hard crash — fires under a Zipf read workload on
//! both the in-process channel transport and the batched TCP event
//! loop. The op-indexed fault log must come out *identical* across the
//! two transports and across same-seed reruns, every read must stay
//! byte-exact, and the supervisor's sweep log must be reproducible.
//!
//! A second harness aims the wire faults at the middle of a **pipelined
//! batch**: ≥64 requests multiplexed onto one connection via
//! `Transport::submit_batch`, with a `drop-connection` scripted inside
//! the first batch and a `truncate-frame` inside the second. Every
//! receiver must resolve (no lost or hung replies), every successful
//! reply must carry exactly its own file's bytes (no cross-wired
//! replies), and the split between delivered and failed replies must be
//! the deterministic one the FIFO service order dictates.

use std::sync::Arc;
use std::time::Duration;

use rand::SeedableRng;
use spcache::net::TcpCluster;
use spcache::sim::Xoshiro256StarStar;
use spcache::store::backing::{checkpoint, UnderStore};
use spcache::store::fault::FaultRecord;
use spcache::store::rpc::{PartKey, Reply, Request};
use spcache::store::supervisor::SweepRecord;
use spcache::store::{FaultPlan, RetryPolicy, StoreCluster, StoreConfig, SupervisorConfig};
use spcache::workload::zipf::ZipfSampler;

const N_WORKERS: usize = 6;
const N_FILES: u64 = 20;
const FILE_LEN: usize = 12_000;
const N_READS: usize = 300;
/// Reads between supervisor ticks.
const TICK_EVERY: usize = 50;
/// Crashes for good mid-workload; its partitions survive only in the
/// under-store.
const DOOMED_WORKER: usize = 3;

/// Workload seed: 42 unless the CI seed sweep overrides it via
/// `SPCACHE_CHAOS_SEED`.
fn chaos_seed() -> u64 {
    std::env::var("SPCACHE_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn payload(id: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((i as u64).wrapping_mul(131).wrapping_add(id * 17 + 3) % 256) as u8)
        .collect()
}

fn placement(id: u64) -> Vec<usize> {
    vec![id as usize % N_WORKERS, (id as usize + 1) % N_WORKERS]
}

/// Every wire fault the event loop knows, plus a hard crash — all
/// op-indexed, all past the ~13 setup ops each worker spends on puts and
/// checkpoint gets.
fn chaos_plan() -> FaultPlan {
    FaultPlan::none()
        .drop_connection(1, 25)
        .truncate_frame(2, 40)
        .delay_frame(4, 45, Duration::from_millis(30))
        .lose_reply(5, 50)
        .crash(DOOMED_WORKER, 60)
}

fn chaos_config() -> StoreConfig {
    StoreConfig::unthrottled(N_WORKERS)
        .with_faults(chaos_plan())
        .with_retry(RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(2),
            deadline: Duration::from_secs(2),
        })
        .with_supervisor(
            SupervisorConfig::enabled()
                .with_interval(Duration::ZERO) // manual ticks only
                .with_probe_timeout(Duration::from_millis(500)),
        )
}

/// Everything one supervised wire-chaos run produces that must be
/// reproducible under the same `(seed, plan)`.
#[derive(Debug, PartialEq)]
struct RunTrace {
    faults: Vec<FaultRecord>,
    sweeps: Vec<SweepRecord>,
    placements: Vec<(u64, Vec<usize>)>,
}

/// Drives one run over an already-spawned cluster. Cluster-agnostic:
/// the channel and TCP harnesses feed it identical pieces.
fn drive(
    master: &Arc<spcache::store::master::Master>,
    supervisor: &spcache::store::supervisor::Supervisor,
    under: &Arc<UnderStore>,
    client: &spcache::store::client::Client,
    workload_seed: u64,
) -> (Vec<SweepRecord>, Vec<(u64, Vec<usize>)>) {
    // Tick 1 adopts the fleet; nothing to sweep yet.
    assert!(supervisor.tick().is_none(), "sweep before any file exists");

    for id in 0..N_FILES {
        client.write(id, &payload(id, FILE_LEN), &placement(id)).unwrap();
        checkpoint(client, under, id).unwrap();
    }

    let sampler = ZipfSampler::new(N_FILES as usize, 1.1);
    let mut rng = Xoshiro256StarStar::seed_from_u64(workload_seed);
    for i in 0..N_READS {
        if i % TICK_EVERY == 0 {
            supervisor.tick();
        }
        let id = sampler.sample(&mut rng) as u64;
        match client.read_quiet(id) {
            Ok(bytes) => assert_eq!(
                bytes,
                payload(id, FILE_LEN),
                "read {i} of file {id} not byte-exact under wire chaos"
            ),
            // The retry budget absorbs every scripted wire fault; only
            // a read racing the supervisor's view of the hard crash may
            // shed. One tick must heal it.
            Err(err) => {
                supervisor.tick();
                assert_eq!(
                    client.read_quiet(id).expect("read must heal after a tick"),
                    payload(id, FILE_LEN),
                    "read {i} of file {id} not byte-exact after healing tick \
                     (first error: {err:?})"
                );
            }
        }
    }

    // Quiesce: tick until two consecutive rounds find nothing degraded.
    let mut idle = 0;
    for _ in 0..12 {
        if supervisor.tick().is_none() {
            idle += 1;
            if idle >= 2 {
                break;
            }
        } else {
            idle = 0;
        }
    }
    assert!(idle >= 2, "supervisor never quiesced — files stayed degraded");

    // Post-recovery: every file byte-exact, nothing left on the corpse.
    for id in 0..N_FILES {
        assert_eq!(client.read_quiet(id).unwrap(), payload(id, FILE_LEN));
    }
    assert!(!master.is_alive(DOOMED_WORKER), "crashed worker still alive");
    let placements = master.placements();
    for (id, servers) in &placements {
        assert!(
            !servers.contains(&DOOMED_WORKER),
            "file {id} still placed on dead worker after quiesce"
        );
    }
    (supervisor.sweep_log().snapshot(), placements)
}

fn run_wire_chaos_channel(workload_seed: u64) -> RunTrace {
    let under = Arc::new(UnderStore::new());
    let cluster = StoreCluster::spawn_with_under_store(chaos_config(), Some(Arc::clone(&under)));
    let supervisor = cluster.supervisor().expect("supervisor enabled");
    let client = cluster.client();
    let (sweeps, placements) = drive(cluster.master(), supervisor, &under, &client, workload_seed);
    RunTrace {
        faults: cluster.fault_log().snapshot(),
        sweeps,
        placements,
    }
}

fn run_wire_chaos_tcp(workload_seed: u64) -> RunTrace {
    let under = Arc::new(UnderStore::new());
    let cluster = TcpCluster::spawn_with_under_store(chaos_config(), Some(Arc::clone(&under)));
    let supervisor = cluster.supervisor().expect("supervisor enabled");
    let client = cluster.client();
    let (sweeps, placements) = drive(cluster.master(), supervisor, &under, &client, workload_seed);
    let trace = RunTrace {
        faults: cluster.fault_log().snapshot(),
        sweeps,
        placements,
    };
    cluster.shutdown();
    trace
}

#[test]
fn wire_chaos_fault_logs_are_identical_across_transports() {
    let tcp = run_wire_chaos_tcp(chaos_seed());
    let channel = run_wire_chaos_channel(chaos_seed());

    // All five scripted faults fired on the scripted workers at the
    // scripted ops, on both transports. (The log's append order is the
    // order the workload reached each worker's trigger — deterministic,
    // but not sorted — so membership is checked sorted and ordering by
    // the cross-transport equality below.)
    let mut fired: Vec<_> = tcp.faults.iter().map(|r| (r.worker, r.op)).collect();
    fired.sort_unstable();
    assert_eq!(
        fired,
        vec![(1, 25), (2, 40), (DOOMED_WORKER, 60), (4, 45), (5, 50)],
        "unexpected fault firing over TCP: {:?}",
        tcp.faults
    );
    assert_eq!(
        tcp.faults, channel.faults,
        "wire transport changed which faults fired — op order diverged"
    );
}

#[test]
fn wire_chaos_runs_are_reproducible_per_transport() {
    let a = run_wire_chaos_tcp(chaos_seed());
    let b = run_wire_chaos_tcp(chaos_seed());
    assert_eq!(a, b, "same-seed TCP wire-chaos runs diverged");

    let c = run_wire_chaos_channel(chaos_seed());
    let d = run_wire_chaos_channel(chaos_seed());
    assert_eq!(c, d, "same-seed channel wire-chaos runs diverged");
}

// ---------------------------------------------------------------------
// Mid-batch wire faults on one pipelined connection.
// ---------------------------------------------------------------------

/// Files in the pipelined-batch harness, all placed on one worker so
/// every request in a batch multiplexes onto the same connection.
const BATCH_FILES: u64 = 96;
const BATCH_LEN: usize = 4_096;
/// The wire fault fires at the 32nd get of the batch: ops 0..96 are the
/// setup puts, so op 96+32 is the 33rd pipelined get. (Each fault kind
/// gets its own cluster — a killed connection discards requests still
/// unread in the socket, so op indices *after* the first wire fault are
/// not comparable across runs.)
const FAULT_AT: u64 = BATCH_FILES + 32;

/// Issues one pipelined batch of `BATCH_FILES` gets against worker 0
/// and returns, per file, the successful payload (if any). Every
/// receiver must resolve — a lost reply would hang the deadline here.
fn run_batch(transport: &dyn spcache::store::transport::Transport) -> Vec<Option<Vec<u8>>> {
    let reqs = (0..BATCH_FILES)
        .map(|id| {
            (
                0usize,
                Request::Get {
                    key: PartKey::new(id, 0),
                },
            )
        })
        .collect();
    let rxs = transport.submit_batch(reqs).expect("batch submission failed");
    assert_eq!(rxs.len() as u64, BATCH_FILES);
    rxs.into_iter()
        .enumerate()
        .map(|(i, rx)| {
            match rx
                .recv_timeout(Duration::from_secs(10))
                .unwrap_or_else(|e| panic!("reply {i} lost (receiver: {e:?})"))
            {
                Reply::Data(b) => Some(b.to_vec()),
                Reply::Err(e) => {
                    assert!(e.is_retryable(), "reply {i} failed permanently: {e:?}");
                    None
                }
                other => panic!("reply {i} has wrong shape: {other:?}"),
            }
        })
        .collect()
}

/// Runs one mid-batch wire-fault scenario: 96 requests pipelined onto
/// one connection, the scripted fault firing at the 33rd. Returns the
/// delivered-prefix length after asserting the invariants every fault
/// kind shares: every receiver resolves, delivered replies form a
/// byte-exact prefix ending before the fault, the fault log records
/// exactly the scripted firing, and the retrying client heals.
fn run_mid_batch(plan: FaultPlan) -> usize {
    let cfg = StoreConfig::unthrottled(1).with_faults(plan).with_retry(RetryPolicy {
        max_attempts: 4,
        base_backoff: Duration::from_millis(2),
        deadline: Duration::from_secs(2),
    });
    let cluster = TcpCluster::spawn(cfg);
    let client = cluster.client();

    for id in 0..BATCH_FILES {
        client.write(id, &payload(id, BATCH_LEN), &[0]).unwrap();
    }

    let results = run_batch(cluster.transport().as_ref());
    let fault_index = (FAULT_AT - BATCH_FILES) as usize;
    let delivered = results.iter().filter(|r| r.is_some()).count();
    // FIFO service order + in-order frame delivery on one stream: the
    // delivered replies are a *prefix* of the batch ending before the
    // faulted frame. (A killed connection may additionally discard
    // replies already queued but not yet flushed, so the prefix can be
    // shorter than the fault index.)
    assert!(
        delivered <= fault_index,
        "a reply at/after the wire fault was delivered ({delivered} > {fault_index})"
    );
    for (id, got) in results.iter().enumerate() {
        match got {
            Some(bytes) => {
                assert!(
                    id < delivered,
                    "delivered replies are not a prefix (gap before {id})"
                );
                assert_eq!(
                    bytes,
                    &payload(id as u64, BATCH_LEN),
                    "pipelined reply {id} cross-wired"
                );
            }
            None => assert!(
                id >= delivered,
                "delivered replies are not a prefix (hole at {id})"
            ),
        }
    }

    // Exactly the scripted fault fired, and the client's retry path
    // (redial on a fresh connection) still reads every byte back.
    let log = cluster.fault_log().snapshot();
    assert_eq!(
        log.iter().map(|r| (r.worker, r.op)).collect::<Vec<_>>(),
        vec![(0, FAULT_AT)],
        "unexpected wire-fault firing: {log:?}"
    );
    for id in 0..BATCH_FILES {
        assert_eq!(
            client.read_quiet(id).unwrap(),
            payload(id, BATCH_LEN),
            "file {id} unreadable after the mid-batch wire fault"
        );
    }
    cluster.shutdown();
    delivered
}

#[test]
fn mid_batch_drop_connection_never_cross_wires_pipelined_replies() {
    run_mid_batch(FaultPlan::none().drop_connection(0, FAULT_AT));
}

#[test]
fn mid_batch_truncate_frame_never_cross_wires_pipelined_replies() {
    // A truncated frame drains the already-queued replies before the
    // connection closes, so the prefix is exactly the pre-fault window.
    let delivered = run_mid_batch(FaultPlan::none().truncate_frame(0, FAULT_AT));
    assert_eq!(
        delivered,
        (FAULT_AT - BATCH_FILES) as usize,
        "truncate must flush every queued pre-fault reply first"
    );
}

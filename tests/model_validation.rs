//! Numerical validation: the cluster simulator must agree with the M/G/1
//! (Pollaczek–Khinchin) analytic model in the regimes where the model is
//! exact — the foundation everything else is built on.

use spcache::cluster::engine::simulate_reads;
use spcache::cluster::{ClusterConfig, GoodputModel, ReadWorkload};
use spcache::core::mg1::ClusterModel;
use spcache::core::partition::PartitionMap;
use spcache::core::{FileSet, SpCache};
use spcache::workload::StragglerModel;

/// Single file, single server, exponential service: the simulated mean
/// sojourn must match M/M/1's `1/(μ − λ)` closely.
#[test]
fn simulator_matches_mm1_closed_form() {
    // 100 MB at 125 MB/s → 0.8 s service; λ = 0.75/s → ρ = 0.6.
    let files = FileSet::uniform_size(100e6, &[1.0]);
    let lambda = 0.75;
    let mut cfg = ClusterConfig::ec2_default();
    cfg.n_servers = 1;
    cfg.goodput = GoodputModel::ideal();
    cfg.stragglers = StragglerModel::none();
    let scheme = SpCache::with_alpha(0.0);

    // Average over several long runs to tame M/M/1's heavy autocorrelation
    // at ρ = 0.6.
    let mut mean = 0.0;
    let runs = 4;
    for seed in 0..runs {
        let workload = ReadWorkload::poisson(&files, lambda, 60_000, seed);
        let res = simulate_reads(&scheme, &files, &workload, &cfg.clone().with_seed(seed));
        mean += res.summary.mean();
    }
    mean /= runs as f64;

    let mu = 125e6 / 100e6; // 1.25 services/s
    let theory = 1.0 / (mu - lambda); // 2.0 s
    assert!(
        (mean - theory).abs() / theory < 0.08,
        "simulated M/M/1 mean {mean} vs theory {theory}"
    );
}

/// Multi-class single server: the simulated mean waiting time must match
/// the P-K formula `λ Γ² / (2 (1 − ρ))` plus the class's service time.
#[test]
fn simulator_matches_pollaczek_khinchin_two_classes() {
    // Two files of different sizes on one server.
    let files = FileSet::from_parts(&[100e6, 25e6], &[0.4, 0.6]);
    let lambda = 1.6; // ρ = 1.6 × (0.4·0.8 + 0.6·0.2) = 0.704
    let mut cfg = ClusterConfig::ec2_default();
    cfg.n_servers = 1;
    cfg.goodput = GoodputModel::ideal();
    let scheme = SpCache::with_alpha(0.0);

    let mut sim_mean = 0.0;
    let runs = 4;
    for seed in 10..10 + runs {
        let workload = ReadWorkload::poisson(&files, lambda, 60_000, seed);
        let res = simulate_reads(&scheme, &files, &workload, &cfg.clone().with_seed(seed));
        sim_mean += res.summary.mean();
    }
    sim_mean /= runs as f64;

    // Analytic: popularity-weighted mean sojourn from the mg1 module.
    let map = PartitionMap::new(vec![vec![0], vec![0]], 1);
    let rates = files.request_rates(lambda);
    let model = ClusterModel::build(&files, &rates, &map, &[125e6]);
    assert!(model.all_stable());
    let mut analytic = 0.0;
    for (i, meta) in files.iter() {
        let (mean_q, _) = model.sojourn_moments(&files, &map, i)[0];
        analytic += meta.popularity * mean_q;
    }
    assert!(
        (sim_mean - analytic).abs() / analytic < 0.08,
        "simulated two-class mean {sim_mean} vs P-K {analytic}"
    );
}

/// Fork-join over idle servers: with deterministic service the read
/// latency equals exactly the client floor (no queueing, no jitter).
#[test]
fn fork_join_floor_is_exact_when_idle() {
    use spcache::cluster::config::ServiceModel;
    let files = FileSet::uniform_size(80e6, &[1.0]);
    let cfg = ClusterConfig::ec2_default()
        .with_service(ServiceModel::Deterministic)
        .with_seed(3);
    let k = 8;
    let scheme = SpCache::with_alpha(k as f64 / files.max_load());
    // One slow read at a time: arrivals 100 s apart.
    let trace: Vec<(f64, usize)> = (0..50).map(|i| (i as f64 * 100.0, 0)).collect();
    let workload = ReadWorkload::from_trace(trace);
    let res = simulate_reads(&scheme, &files, &workload, &cfg);
    let expect = 80e6 / (cfg.bandwidth * cfg.goodput.factor(k));
    for &l in res.latencies.as_slice() {
        assert!(
            (l - expect).abs() < 1e-9,
            "idle fork-join read {l} should equal the floor {expect}"
        );
    }
}

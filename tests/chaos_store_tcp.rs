//! The chaos harness of `chaos_store.rs`, run over real loopback TCP:
//! the same scripted crash and partition drops fire while a Zipf
//! workload reads through retries and under-store recovery — but every
//! request now crosses a socket, the crash surfaces as a `WorkerDown`
//! frame, and the fault log must come out *identical* to an in-process
//! run of the same `(seed, plan)`. That equality is the proof that the
//! wire transport preserves the store's fault semantics, not just its
//! bytes.

use std::sync::Arc;
use std::time::Duration;

use rand::SeedableRng;
use spcache::net::TcpCluster;
use spcache::sim::Xoshiro256StarStar;
use spcache::store::backing::{checkpoint, UnderStore};
use spcache::store::fault::FaultRecord;
use spcache::store::rpc::PartKey;
use spcache::store::{FaultPlan, RetryPolicy, StoreCluster, StoreConfig};
use spcache::workload::zipf::ZipfSampler;

const N_WORKERS: usize = 6;
const N_FILES: u64 = 20;
const FILE_LEN: usize = 12_000;
const N_READS: usize = 400;
const DOOMED_WORKER: usize = 2;

/// Workload seed: 42 unless the CI seed sweep overrides it via
/// `SPCACHE_CHAOS_SEED`.
fn chaos_seed() -> u64 {
    std::env::var("SPCACHE_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn payload(id: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((i as u64).wrapping_mul(131).wrapping_add(id * 17 + 3) % 256) as u8)
        .collect()
}

fn placement(id: u64) -> Vec<usize> {
    vec![id as usize % N_WORKERS, (id as usize + 1) % N_WORKERS]
}

/// The identical script to the in-process harness: a crash and two
/// silent partition drops, all data-plane faults keyed on op indices.
fn chaos_plan() -> FaultPlan {
    FaultPlan::none()
        .crash(DOOMED_WORKER, 30)
        .drop_partition(4, 35, PartKey::new(4, 0))
        .drop_partition(5, 40, PartKey::new(10, 1))
}

fn chaos_config() -> StoreConfig {
    StoreConfig::unthrottled(N_WORKERS)
        .with_faults(chaos_plan())
        .with_retry(RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(2),
            deadline: Duration::from_secs(2),
        })
}

/// One chaos run over TCP. Structurally the twin of `run_chaos` in
/// `chaos_store.rs`; only the cluster construction differs.
fn run_chaos_tcp(workload_seed: u64) -> (Vec<FaultRecord>, Vec<(u64, Vec<usize>)>) {
    run_chaos_tcp_cfg(workload_seed, chaos_config())
}

fn run_chaos_tcp_cfg(
    workload_seed: u64,
    cfg: StoreConfig,
) -> (Vec<FaultRecord>, Vec<(u64, Vec<usize>)>) {
    let cluster = TcpCluster::spawn(cfg);
    let under = Arc::new(UnderStore::new());
    let client = cluster.client().with_under_store(Arc::clone(&under));

    for id in 0..N_FILES {
        client.write(id, &payload(id, FILE_LEN), &placement(id)).unwrap();
        checkpoint(&client, &under, id).unwrap();
    }

    let sampler = ZipfSampler::new(N_FILES as usize, 1.1);
    let mut rng = Xoshiro256StarStar::seed_from_u64(workload_seed);
    for i in 0..N_READS {
        let id = sampler.sample(&mut rng) as u64;
        assert_eq!(
            client.read_quiet(id).unwrap(),
            payload(id, FILE_LEN),
            "read {i} of file {id} not byte-exact under chaos over TCP"
        );
    }

    assert!(
        !cluster.master().is_alive(DOOMED_WORKER),
        "crashed worker still marked alive after {N_READS} reads"
    );
    let placements = cluster.master().placements();
    for (id, servers) in &placements {
        for &s in servers {
            if s == DOOMED_WORKER {
                assert!(
                    cluster.master().degraded_files().contains(id),
                    "file {id} placed on dead worker but not degraded"
                );
            }
        }
    }

    (cluster.fault_log().snapshot(), placements)
}

/// The in-process control run, for the cross-transport comparison.
/// Returns the fault log and the fleet-wide eviction count.
fn run_chaos_channel(workload_seed: u64) -> Vec<FaultRecord> {
    run_chaos_channel_cfg(workload_seed, chaos_config()).0
}

fn run_chaos_channel_cfg(workload_seed: u64, cfg: StoreConfig) -> (Vec<FaultRecord>, u64) {
    let cluster = StoreCluster::spawn(cfg);
    let under = Arc::new(UnderStore::new());
    let client = cluster.client().with_under_store(Arc::clone(&under));
    for id in 0..N_FILES {
        client.write(id, &payload(id, FILE_LEN), &placement(id)).unwrap();
        checkpoint(&client, &under, id).unwrap();
    }
    let sampler = ZipfSampler::new(N_FILES as usize, 1.1);
    let mut rng = Xoshiro256StarStar::seed_from_u64(workload_seed);
    for _ in 0..N_READS {
        let id = sampler.sample(&mut rng) as u64;
        assert_eq!(client.read_quiet(id).unwrap(), payload(id, FILE_LEN));
    }
    let evictions: u64 = cluster
        .worker_stats()
        .unwrap()
        .iter()
        .map(|s| s.evictions)
        .sum();
    (cluster.fault_log().snapshot(), evictions)
}

#[test]
fn tcp_chaos_reads_stay_byte_exact_and_events_are_reproducible() {
    let (log_a, placements_a) = run_chaos_tcp(chaos_seed());
    let (log_b, placements_b) = run_chaos_tcp(chaos_seed());

    assert_eq!(log_a.len(), 3, "expected exactly the scripted faults: {log_a:?}");
    assert_eq!(
        log_a.iter().map(|r| r.worker).collect::<Vec<_>>(),
        vec![DOOMED_WORKER, 4, 5]
    );
    assert_eq!(log_a, log_b, "fault injection is not deterministic over TCP");
    assert_eq!(placements_a, placements_b, "recovery is not deterministic over TCP");
}

#[test]
fn tcp_and_channel_transports_fire_identical_fault_logs() {
    // The same (seed, plan) over both transports: op-indexed triggers
    // depend only on the per-worker request order, which both transports
    // must deliver identically.
    let (tcp_log, _) = run_chaos_tcp(chaos_seed());
    let channel_log = run_chaos_channel(chaos_seed());
    assert_eq!(
        tcp_log, channel_log,
        "wire transport changed which faults fired — op order diverged"
    );
}

#[test]
fn eviction_under_chaos_is_deterministic_across_transports() {
    // The same twin run with a per-worker budget tight enough that
    // partitions are constantly evicted and reloaded mid-fault-storm.
    // Eviction is keyed only on the per-worker FIFO request order, so
    // it must not perturb which faults fire, the recovery placements,
    // or byte-exactness (every read is asserted inside the runners).
    let cfg = || chaos_config().with_memory_budget(Some(FILE_LEN));
    let (tcp_log, tcp_placements) = run_chaos_tcp_cfg(chaos_seed(), cfg());
    let (tcp_log_b, tcp_placements_b) = run_chaos_tcp_cfg(chaos_seed(), cfg());
    assert_eq!(tcp_log, tcp_log_b, "budgeted TCP chaos is not reproducible");
    assert_eq!(tcp_placements, tcp_placements_b);

    let (channel_log, evictions) = run_chaos_channel_cfg(chaos_seed(), cfg());
    assert_eq!(
        tcp_log, channel_log,
        "eviction changed which faults fired across transports"
    );
    assert!(
        evictions > 0,
        "budget of one file must force evictions in this workload"
    );
}

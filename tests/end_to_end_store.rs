//! End-to-end integration: the real store driven through the façade crate
//! — write, skewed reads, Algorithm 1 + 2 rebalance, byte-exact reads
//! after the dust settles.

use rand::SeedableRng;
use spcache::core::tuner::TunerConfig;
use spcache::sim::Xoshiro256StarStar;
use spcache::store::repartitioner::run_parallel;
use spcache::store::{StoreCluster, StoreConfig};
use spcache::workload::zipf::ZipfSampler;

fn payload(id: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((i as u64).wrapping_mul(31).wrapping_add(id * 7) % 256) as u8)
        .collect()
}

#[test]
fn full_lifecycle_write_read_rebalance_read() {
    let n_workers = 6;
    let n_files = 30u64;
    let len = 20_000;
    let cluster = StoreCluster::spawn(StoreConfig::unthrottled(n_workers));
    let client = cluster.client();

    // Write every file whole (the SP-Cache write path).
    for id in 0..n_files {
        client
            .write(id, &payload(id, len), &[(id as usize) % n_workers])
            .unwrap();
    }

    // Skewed reads to build popularity.
    let sampler = ZipfSampler::new(n_files as usize, 1.2);
    let mut rng = Xoshiro256StarStar::seed_from_u64(5);
    for _ in 0..2_000 {
        let id = sampler.sample(&mut rng) as u64;
        assert_eq!(client.read(id).unwrap(), payload(id, len));
    }

    // Rebalance.
    let (ids, plan, tuned) =
        cluster
            .master()
            .plan_rebalance(n_workers, 1e9, 8.0, &TunerConfig::default(), 9);
    assert!(tuned.alpha > 0.0);
    assert!(
        !plan.jobs.is_empty(),
        "skewed accesses must trigger repartitioning"
    );
    run_parallel(&plan, &ids, cluster.master().as_ref(), cluster.transport().as_ref()).unwrap();

    // The hottest file is split; every file still reads byte-for-byte.
    let hottest_k = cluster.master().peek(0).unwrap().1.len();
    assert!(hottest_k > 1, "hottest file should be partitioned");
    for id in 0..n_files {
        assert_eq!(client.read_quiet(id).unwrap(), payload(id, len), "file {id}");
    }

    // Partition bookkeeping is exact: resident partitions = Σ k_i.
    let expected: usize = (0..n_files)
        .map(|id| cluster.master().peek(id).unwrap().1.len())
        .sum();
    let resident: usize = cluster
        .worker_stats()
        .unwrap()
        .iter()
        .map(|s| s.resident_parts)
        .sum();
    assert_eq!(resident, expected, "stale or missing partitions");
}

#[test]
fn rebalance_spreads_served_load() {
    let n_workers = 8;
    let cluster = StoreCluster::spawn(StoreConfig::unthrottled(n_workers));
    let client = cluster.client();
    let len = 50_000;
    // Everything initially on worker 0 — worst case.
    for id in 0..20u64 {
        client.write(id, &payload(id, len), &[0]).unwrap();
    }
    let sampler = ZipfSampler::new(20, 1.1);
    let mut rng = Xoshiro256StarStar::seed_from_u64(6);
    for _ in 0..500 {
        let id = sampler.sample(&mut rng) as u64;
        client.read(id).unwrap();
    }
    let before = cluster.served_bytes().unwrap();
    assert!(before[1..].iter().all(|&b| b == 0.0));

    let (ids, plan, _) =
        cluster
            .master()
            .plan_rebalance(n_workers, 1e9, 8.0, &TunerConfig::default(), 10);
    run_parallel(&plan, &ids, cluster.master().as_ref(), cluster.transport().as_ref()).unwrap();

    // Drive the same skew again; load must now hit multiple workers.
    for _ in 0..500 {
        let id = sampler.sample(&mut rng) as u64;
        client.read(id).unwrap();
    }
    let after = cluster.served_bytes().unwrap();
    let newly_serving = after
        .iter()
        .zip(&before)
        .filter(|(a, b)| **a > **b + 1.0)
        .count();
    assert!(
        newly_serving >= n_workers / 2,
        "load still concentrated: {after:?}"
    );
}

#[test]
fn concurrent_clients_with_repartition_running() {
    // Readers keep reading while a repartition happens; every read that
    // succeeds must be byte-exact (metadata races may surface as clean
    // errors, never corruption).
    let n_workers = 4;
    let cluster = StoreCluster::spawn(StoreConfig::unthrottled(n_workers));
    let client = cluster.client();
    let len = 30_000;
    for id in 0..10u64 {
        client.write(id, &payload(id, len), &[(id as usize) % n_workers]).unwrap();
    }
    for _ in 0..50 {
        client.read(0).unwrap();
    }
    let (ids, plan, _) =
        cluster
            .master()
            .plan_rebalance(n_workers, 1e9, 8.0, &TunerConfig::default(), 11);

    std::thread::scope(|s| {
        let reader_client = cluster.client();
        let reader = s.spawn(move || {
            let mut ok = 0usize;
            for round in 0..200 {
                let id = (round % 10) as u64;
                if let Ok(bytes) = reader_client.read_quiet(id) {
                    assert_eq!(bytes, payload(id, len), "corrupt read of file {id}");
                    ok += 1;
                }
            }
            ok
        });
        run_parallel(&plan, &ids, cluster.master().as_ref(), cluster.transport().as_ref()).unwrap();
        let ok = reader.join().unwrap();
        assert!(ok > 0, "no read succeeded during repartition");
    });
}

//! Supervised chaos: the autonomous self-healing loop (DESIGN.md §4.11)
//! driven deterministically against a seeded Zipf workload while two
//! scripted faults fire underneath — a **crash-restart** (worker 2 comes
//! back cold with epoch 0: a zombie that must be fenced until the
//! supervisor re-adopts it) and a **hard crash** (worker 4 dies for
//! good: the supervisor's recovery sweep must re-materialize every
//! partition it held from the under-store, exactly once, onto the
//! least-loaded survivors).
//!
//! The supervisor runs with `heartbeat_interval == 0` — no background
//! thread — and is ticked at fixed read indices, so a run is a pure
//! function of `(workload seed, fault plan)`. The test asserts that the
//! fault log, the sweep log, the fencing epochs, the final placements
//! and even the indices of the reads that failed inside the zombie
//! window are identical across two same-seed runs *and* across the
//! channel and TCP transports.

use std::sync::Arc;
use std::time::Duration;

use rand::SeedableRng;
use spcache::net::TcpCluster;
use spcache::sim::Xoshiro256StarStar;
use spcache::store::backing::{checkpoint, UnderStore};
use spcache::store::client::Client;
use spcache::store::fault::FaultRecord;
use spcache::store::master::Master;
use spcache::store::supervisor::{Supervisor, SweepRecord};
use spcache::store::{FaultPlan, RetryPolicy, StoreCluster, StoreConfig, SupervisorConfig};
use spcache::workload::zipf::ZipfSampler;

const N_WORKERS: usize = 6;
const N_FILES: u64 = 20;
const FILE_LEN: usize = 12_000;
const N_READS: usize = 400;
/// Reads between supervisor ticks.
const TICK_EVERY: usize = 25;
/// Crash-restarts in place: a zombie at epoch 0 until re-adopted.
const ZOMBIE_WORKER: usize = 2;
/// Crashes for good: its partitions only survive in the under-store.
const DOOMED_WORKER: usize = 4;

/// Workload seed, overridable for the CI seed sweep.
fn chaos_seed() -> u64 {
    std::env::var("SPCACHE_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn payload(id: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((i as u64).wrapping_mul(131).wrapping_add(id * 17 + 3) % 256) as u8)
        .collect()
}

fn placement(id: u64) -> Vec<usize> {
    vec![id as usize % N_WORKERS, (id as usize + 1) % N_WORKERS]
}

/// Both victims hold 6 files' partitions and spend 12 data ops in setup
/// (6 puts + 6 checkpoint gets), so both faults fire well into the read
/// phase.
fn chaos_plan() -> FaultPlan {
    FaultPlan::none()
        .crash_restart(ZOMBIE_WORKER, 30)
        .crash(DOOMED_WORKER, 35)
}

fn chaos_config() -> StoreConfig {
    StoreConfig::unthrottled(N_WORKERS)
        .with_faults(chaos_plan())
        .with_retry(RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(2),
            deadline: Duration::from_secs(2),
        })
        .with_supervisor(
            SupervisorConfig::enabled()
                .with_interval(Duration::ZERO) // manual ticks only
                .with_probe_timeout(Duration::from_millis(500)),
        )
}

/// Everything a supervised run produces that must be reproducible.
#[derive(Debug, PartialEq)]
struct RunTrace {
    faults: Vec<FaultRecord>,
    sweeps: Vec<SweepRecord>,
    placements: Vec<(u64, Vec<usize>)>,
    epochs: Vec<u64>,
    /// `(read index, file id)` of reads that failed in the zombie
    /// window and succeeded after the adoption tick.
    hiccups: Vec<(usize, u64)>,
}

/// Drives one supervised chaos run: register the fleet, load it, read
/// through the faults with a tick every [`TICK_EVERY`] reads, then
/// quiesce. Cluster-agnostic — both transports feed it the same pieces.
/// Returns the trace with `faults` left empty (the caller snapshots the
/// cluster's fault log).
fn drive(
    master: &Arc<Master>,
    supervisor: &Supervisor,
    under: &Arc<UnderStore>,
    client: &Client,
    workload_seed: u64,
) -> RunTrace {
    // Tick 1 adopts every worker at epoch 1; nothing is degraded yet.
    assert!(supervisor.tick().is_none(), "sweep before any file exists");
    assert_eq!(master.worker_epochs(N_WORKERS), vec![1; N_WORKERS]);

    for id in 0..N_FILES {
        client.write(id, &payload(id, FILE_LEN), &placement(id)).unwrap();
        checkpoint(client, under, id).unwrap();
    }

    let sampler = ZipfSampler::new(N_FILES as usize, 1.1);
    let mut rng = Xoshiro256StarStar::seed_from_u64(workload_seed);
    let mut hiccups = Vec::new();
    for i in 0..N_READS {
        if i % TICK_EVERY == 0 {
            supervisor.tick();
        }
        let id = sampler.sample(&mut rng) as u64;
        match client.read_quiet(id) {
            Ok(bytes) => assert_eq!(
                bytes,
                payload(id, FILE_LEN),
                "read {i} of file {id} not byte-exact under supervised chaos"
            ),
            // Only the zombie window may shed a read: the restarted
            // worker bounces fenced requests with `StaleEpoch` until the
            // supervisor re-adopts it. One tick must clear it.
            Err(err) => {
                hiccups.push((i, id));
                supervisor.tick();
                assert_eq!(
                    client.read_quiet(id).expect("read must heal after adoption tick"),
                    payload(id, FILE_LEN),
                    "read {i} of file {id} not byte-exact after adoption (first error: {err:?})"
                );
            }
        }
    }

    // Quiesce: tick until two consecutive rounds find nothing degraded.
    let mut idle = 0;
    for _ in 0..12 {
        if supervisor.tick().is_none() {
            idle += 1;
            if idle >= 2 {
                break;
            }
        } else {
            idle = 0;
        }
    }
    assert!(idle >= 2, "supervisor never quiesced — files stayed degraded");

    // Post-recovery: every file byte-exact, nothing placed on the dead
    // worker, the zombie re-fenced and serving.
    for id in 0..N_FILES {
        assert_eq!(client.read_quiet(id).unwrap(), payload(id, FILE_LEN));
    }
    assert!(!master.is_alive(DOOMED_WORKER), "crashed worker still alive");
    assert!(master.is_alive(ZOMBIE_WORKER), "re-adopted worker not alive");
    let placements = master.placements();
    for (id, servers) in &placements {
        assert!(
            !servers.contains(&DOOMED_WORKER),
            "file {id} still placed on dead worker {DOOMED_WORKER} after quiesce"
        );
    }
    let epochs = master.worker_epochs(N_WORKERS);
    assert!(epochs[ZOMBIE_WORKER] >= 2, "zombie kept its pre-crash epoch: {epochs:?}");
    assert!(epochs[DOOMED_WORKER] >= 2, "death did not bump the fencing epoch: {epochs:?}");

    // The sweep dedup contract: across the whole run no file is healed
    // twice by sweeps, and this run has no competing repairs to skip.
    let sweeps = supervisor.sweep_log().snapshot();
    let healed: Vec<u64> = sweeps.iter().flat_map(|r| r.healed.iter().copied()).collect();
    let mut deduped = healed.clone();
    deduped.sort_unstable();
    deduped.dedup();
    assert_eq!(deduped.len(), healed.len(), "a sweep healed some file twice: {sweeps:?}");
    for rec in &sweeps {
        assert!(rec.unrecoverable.is_empty(), "checkpointed file unrecoverable: {rec:?}");
    }
    // The hard crash must have been healed by the *sweep* for at least
    // one file (lazy reads may race it for the hot ones, but a whole
    // tick window of cold files belongs to the supervisor).
    assert!(
        sweeps.iter().any(|r| r.dead.contains(&DOOMED_WORKER) && !r.healed.is_empty()),
        "no sweep proactively healed the dead worker's files: {sweeps:?}"
    );

    RunTrace {
        faults: Vec::new(),
        sweeps,
        placements,
        epochs,
        hiccups,
    }
}

/// One supervised chaos run over in-process channels.
fn run_supervised_channel(workload_seed: u64) -> RunTrace {
    let under = Arc::new(UnderStore::new());
    let cluster = StoreCluster::spawn_with_under_store(chaos_config(), Some(Arc::clone(&under)));
    let supervisor = cluster.supervisor().expect("supervisor enabled");
    let client = cluster.client();
    let mut trace = drive(cluster.master(), supervisor, &under, &client, workload_seed);
    trace.faults = cluster.fault_log().snapshot();
    trace
}

/// The same run with every byte crossing a loopback socket.
fn run_supervised_tcp(workload_seed: u64) -> RunTrace {
    let under = Arc::new(UnderStore::new());
    let cluster = TcpCluster::spawn_with_under_store(chaos_config(), Some(Arc::clone(&under)));
    let supervisor = cluster.supervisor().expect("supervisor enabled");
    let client = cluster.client();
    let mut trace = drive(cluster.master(), supervisor, &under, &client, workload_seed);
    trace.faults = cluster.fault_log().snapshot();
    cluster.shutdown();
    trace
}

#[test]
fn supervised_chaos_heals_and_is_reproducible_in_process() {
    let a = run_supervised_channel(chaos_seed());
    let b = run_supervised_channel(chaos_seed());

    // Both scripted faults fired, in scripted order.
    assert_eq!(
        a.faults.iter().map(|r| r.worker).collect::<Vec<_>>(),
        vec![ZOMBIE_WORKER, DOOMED_WORKER],
        "expected exactly the scripted faults: {:?}",
        a.faults
    );
    assert_eq!(a, b, "same seed must reproduce the whole supervised trace");
}

#[test]
fn supervised_chaos_is_transport_invariant() {
    // The same `(seed, plan)` over channels and TCP: op-indexed faults,
    // tick-indexed probes and deterministic target selection must agree
    // on every observable — the wire changes the medium, not the story.
    let chan = run_supervised_channel(chaos_seed());
    let tcp = run_supervised_tcp(chaos_seed());
    assert_eq!(chan.faults, tcp.faults, "fault logs diverged across transports");
    assert_eq!(chan.sweeps, tcp.sweeps, "sweep plans diverged across transports");
    assert_eq!(chan.epochs, tcp.epochs, "fencing epochs diverged across transports");
    assert_eq!(chan.hiccups, tcp.hiccups, "zombie-window reads diverged across transports");
    assert_eq!(chan.placements, tcp.placements, "healed placements diverged across transports");
}

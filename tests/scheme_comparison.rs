//! Integration tests for the paper's headline claims, run through the
//! façade crate on the event-driven simulator.

use spcache::baselines::{EcCache, FixedChunking, SelectiveReplication, SimplePartition};
use spcache::cluster::runner::compare_schemes;
use spcache::cluster::ClusterConfig;
use spcache::core::tuner::TunerConfig;
use spcache::core::{FileSet, SpCache};
use spcache::workload::zipf::zipf_popularities;
use spcache::workload::StragglerModel;

fn paper_files() -> FileSet {
    FileSet::uniform_size(100e6, &zipf_popularities(500, 1.05))
}

fn congested_cfg() -> ClusterConfig {
    ClusterConfig::ec2_default().with_bandwidth(100e6)
}

fn tuned(files: &FileSet, cfg: &ClusterConfig, rate: f64) -> SpCache {
    SpCache::tuned(files, cfg.n_servers, cfg.bandwidth, rate, &TunerConfig::default()).0
}

#[test]
fn headline_sp_beats_ec_and_sr_with_less_memory() {
    let files = paper_files();
    let cfg = congested_cfg();
    let sp = tuned(&files, &cfg, 18.0);
    let ec = EcCache::paper_config();
    let sr = SelectiveReplication::paper_config();
    let stats = compare_schemes(&[&sp, &ec, &sr], &files, 18.0, 10_000, &cfg);

    // Mean & tail ordering (Fig. 13).
    assert!(stats[0].mean < stats[1].mean, "SP must beat EC in mean");
    assert!(stats[1].mean < stats[2].mean, "EC must beat SR in mean");
    assert!(stats[0].p95 <= stats[1].p95 * 1.05, "SP tail must not lose to EC");
    // Memory (the "40% less" headline).
    assert!(
        stats[0].layout_bytes < 0.75 * stats[1].layout_bytes,
        "SP must use much less memory than EC"
    );
    // Load balance ordering (Fig. 12).
    assert!(stats[0].eta < stats[1].eta && stats[1].eta < stats[2].eta);
}

#[test]
fn congestion_separates_schemes_as_rate_grows() {
    let files = paper_files();
    let cfg = congested_cfg();
    let sp = tuned(&files, &cfg, 18.0);
    let ec = EcCache::paper_config();
    let lo = compare_schemes(&[&sp, &ec], &files, 6.0, 8_000, &cfg);
    let hi = compare_schemes(&[&sp, &ec], &files, 22.0, 8_000, &cfg);
    let gain_lo = (lo[1].mean - lo[0].mean) / lo[1].mean;
    let gain_hi = (hi[1].mean - hi[0].mean) / hi[1].mean;
    assert!(
        gain_hi > gain_lo,
        "SP's advantage must grow with load: {gain_lo:.2} → {gain_hi:.2}"
    );
    // SP stays nearly flat across the sweep (its selling point).
    assert!(
        hi[0].mean < lo[0].mean * 1.5,
        "SP latency should stay almost flat: {} → {}",
        lo[0].mean,
        hi[0].mean
    );
}

#[test]
fn selective_beats_uniform_partition() {
    // SP-Cache vs simple partition with the same *average* parallelism:
    // selectivity must not lose, and wins on tail under load.
    let files = paper_files();
    let cfg = congested_cfg();
    let sp = tuned(&files, &cfg, 18.0);
    let ks = sp.partition_counts(&files, cfg.n_servers);
    let avg_k = (ks.iter().sum::<usize>() as f64 / ks.len() as f64).round() as usize;
    let uniform = SimplePartition::new(avg_k.max(1));
    let stats = compare_schemes(&[&sp, &uniform], &files, 20.0, 10_000, &cfg);
    assert!(
        stats[0].mean <= stats[1].mean * 1.05,
        "selective {} vs uniform {}",
        stats[0].mean,
        stats[1].mean
    );
}

#[test]
fn big_chunks_cannot_dissolve_hot_spots() {
    let files = paper_files();
    let cfg = congested_cfg();
    let sp = tuned(&files, &cfg, 18.0);
    let big = FixedChunking::megabytes(64.0); // 2 chunks per 100 MB file
    let stats = compare_schemes(&[&sp, &big], &files, 20.0, 10_000, &cfg);
    assert!(
        stats[1].mean > 1.5 * stats[0].mean,
        "big chunks should hot-spot: SP {} vs 64MB {}",
        stats[0].mean,
        stats[1].mean
    );
}

#[test]
fn sp_wins_under_stragglers_at_high_load() {
    let files = paper_files();
    let cfg = congested_cfg().with_stragglers(StragglerModel::bing(0.05));
    let tuner = TunerConfig {
        stragglers: StragglerModel::bing(0.05),
        ..TunerConfig::default()
    };
    let (sp, _) = SpCache::tuned(&files, cfg.n_servers, cfg.bandwidth, 22.0, &tuner);
    let ec = EcCache::paper_config();
    let sr = SelectiveReplication::paper_config();
    let stats = compare_schemes(&[&sp, &ec, &sr], &files, 22.0, 10_000, &cfg);
    assert!(
        stats[0].mean < stats[1].mean && stats[0].mean < stats[2].mean,
        "SP must win under stragglers at high load: {} vs EC {} vs SR {}",
        stats[0].mean,
        stats[1].mean,
        stats[2].mean
    );
}

#[test]
fn hit_ratio_ordering_under_throttled_budget() {
    let files = paper_files();
    let raw = files.total_bytes();
    let cfg = congested_cfg().with_cache_capacity(raw * 0.5 / 30.0);
    let sp = tuned(&files, &cfg, 10.0);
    let ec = EcCache::paper_config();
    let sr = SelectiveReplication::paper_config();
    let stats = compare_schemes(&[&sp, &ec, &sr], &files, 10.0, 10_000, &cfg);
    assert!(
        stats[0].hit_ratio > stats[1].hit_ratio,
        "SP hit {} must beat EC {}",
        stats[0].hit_ratio,
        stats[1].hit_ratio
    );
    assert!(
        stats[1].hit_ratio > stats[2].hit_ratio,
        "EC hit {} must beat SR {}",
        stats[1].hit_ratio,
        stats[2].hit_ratio
    );
}

#[test]
fn write_latency_ordering_matches_fig22() {
    use spcache::cluster::engine::simulate_writes;
    use spcache::core::scheme::CachingScheme;
    use spcache::core::spcache::SpCacheSplitWrite;

    let files = FileSet::from_parts(&[200e6], &[1.0]);
    let cfg = ClusterConfig::ec2_default();
    let sp = SpCacheSplitWrite::new(20.0 / files.max_load());
    let ec = EcCache::paper_config();
    let sr = SelectiveReplication::new(1.0, 4);
    let schemes: [&dyn CachingScheme; 3] = [&sp, &ec, &sr];
    let writes = vec![0usize; 50];
    let means: Vec<f64> = schemes
        .iter()
        .map(|s| simulate_writes(*s, &files, &writes, &cfg).mean())
        .collect();
    assert!(means[0] < means[1], "SP writes {} vs EC {}", means[0], means[1]);
    assert!(means[1] < means[2], "EC writes {} vs SR {}", means[1], means[2]);
    // SR pushes 4 full copies: ~4x SP's bytes (paper: 3.71x slower).
    assert!(
        means[2] / means[0] > 2.5,
        "SR/SP write ratio {:.2} too small",
        means[2] / means[0]
    );
}

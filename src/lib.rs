#![warn(missing_docs)]

//! # SP-Cache
//!
//! A from-scratch Rust reproduction of **"SP-Cache: Load-Balanced,
//! Redundancy-Free Cluster Caching with Selective Partition"**
//! (Yu, Wang, Huang, Zhang, Letaief — SC 2018 / IEEE TPDS 2019).
//!
//! This façade crate re-exports the whole workspace:
//!
//! * [`core`] — the paper's contribution: selective partition, the fork-join
//!   latency upper bound, Algorithm 1 (scale-factor search) and Algorithm 2
//!   (parallel repartition planning).
//! * [`baselines`] — EC-Cache, selective replication, simple partition and
//!   fixed-size chunking, all behind one [`core::scheme::CachingScheme`]
//!   abstraction.
//! * [`cluster`] — an event-driven cluster-cache simulator (the "EC2
//!   deployment" substitute) with M/G/1 server queues, a goodput/incast
//!   network model, straggler injection and LRU cache management.
//! * [`store`] — a real concurrent in-memory distributed cache (the
//!   "Alluxio" substitute): master, worker threads holding byte partitions,
//!   parallel fork-join client reads and parallel repartitioners.
//! * [`ec`] — GF(2⁸) + systematic Reed–Solomon coding (EC-Cache substrate).
//! * [`workload`] — Zipf popularity, Yahoo-like trace synthesis, Poisson and
//!   bursty (MMPP) arrivals, straggler models.
//! * [`metrics`] — streaming statistics, percentiles, CV, imbalance factor.
//! * [`sim`] — the deterministic discrete-event kernel.
//!
//! ## Quickstart
//!
//! ```
//! use spcache::core::{FileMeta, FileSet, tuner};
//! use spcache::workload::zipf::zipf_popularities;
//!
//! // 100 files of 100 MB with Zipf(1.05) popularity on 30 servers.
//! let pops = zipf_popularities(100, 1.05);
//! let files = FileSet::new(
//!     pops.iter().map(|&p| FileMeta::new(100.0 * 1e6, p)).collect(),
//! );
//! let tuned = tuner::tune_scale_factor(&files, 30, 1e9, &tuner::TunerConfig::default());
//! // Selective partition: the hotter the file, the finer it is split.
//! let ks = files.partition_counts(tuned.alpha);
//! assert!(ks[0] > *ks.last().unwrap());
//! assert!(ks[0] > 1);
//! ```

pub use spcache_baselines as baselines;
pub use spcache_cluster as cluster;
pub use spcache_core as core;
pub use spcache_ec as ec;
pub use spcache_metrics as metrics;
pub use spcache_net as net;
pub use spcache_sim as sim;
pub use spcache_store as store;
pub use spcache_workload as workload;

//! Fault tolerance (§8): SP-Cache is redundancy-free, so a dead cache
//! server loses partitions — and recovers them from the checkpointed
//! under-store, exactly like Alluxio over S3/HDFS.
//!
//! ```bash
//! cargo run --release --example fault_tolerance
//! ```

use spcache::store::backing::{checkpoint, read_or_recover, UnderStore};
use spcache::store::{StoreCluster, StoreConfig};

fn main() {
    let mut cluster = StoreCluster::spawn(StoreConfig::unthrottled(6));
    let client = cluster.client();
    let data: Vec<u8> = (0..2_000_000).map(|i| ((i * 131 + 7) % 256) as u8).collect();

    // A hot file split across four workers, plus a cold one.
    client.write(1, &data, &[0, 1, 2, 3]).expect("write hot");
    client.write(2, &data[..50_000], &[4]).expect("write cold");
    println!("wrote file 1 (4 partitions) and file 2 (1 partition)");

    // Periodic checkpointing to the (slow) stable tier.
    let under = UnderStore::with_bandwidth(60e6); // disk-like 60 MB/s
    checkpoint(&client, &under, 1).expect("checkpoint 1");
    checkpoint(&client, &under, 2).expect("checkpoint 2");
    println!("checkpointed both files to the under-store");

    // A machine dies, taking file 1's partition 2 with it.
    cluster.kill_worker(2);
    println!("\nworker 2 died");
    match client.read(1) {
        Err(e) => println!("plain read of file 1 now fails: {e}"),
        Ok(_) => unreachable!("partition 2 is gone"),
    }

    // The fault-tolerant read path recovers from the under-store.
    let t0 = std::time::Instant::now();
    let recovered = read_or_recover(&client, cluster.master().as_ref(), &under, 1, &[0, 1, 3, 5])
        .expect("recovery");
    println!(
        "read_or_recover restored file 1 in {:.3}s ({} bytes, byte-exact: {})",
        t0.elapsed().as_secs_f64(),
        recovered.len(),
        recovered == data
    );

    // Subsequent reads are served from cache again, at cache speed.
    let t0 = std::time::Instant::now();
    let again = client.read(1).expect("cached read");
    println!(
        "next plain read: {:.4}s from the new layout {:?}",
        t0.elapsed().as_secs_f64(),
        cluster.master().peek(1).expect("meta").1
    );
    assert_eq!(again, data);

    // The file that never touched the dead worker is unaffected.
    assert_eq!(client.read(2).expect("cold"), &data[..50_000]);
    println!("file 2 was never affected — redundancy-free, but nothing lost");
}

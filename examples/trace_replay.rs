//! Trace replay: drive the cluster simulator with a synthetic Yahoo!-like
//! population and a bursty (Google-trace-like) arrival process, the §7.7
//! trace-driven methodology.
//!
//! ```bash
//! cargo run --release --example trace_replay
//! ```

use rand::SeedableRng;
use spcache::baselines::EcCache;
use spcache::cluster::engine::simulate_reads;
use spcache::cluster::{ClusterConfig, ReadWorkload};
use spcache::core::tuner::TunerConfig;
use spcache::core::{FileSet, SpCache};
use spcache::sim::Xoshiro256StarStar;
use spcache::workload::yahoo;
use spcache::workload::zipf::zipf_popularities;
use spcache::workload::StragglerModel;

fn main() {
    // 1. Synthesize a Yahoo-like population: heavy-tailed access counts,
    //    hot files much larger than cold ones (Fig. 1).
    let mut rng = Xoshiro256StarStar::seed_from_u64(7);
    let n_files = 2_000;
    let sizes: Vec<f64> = yahoo::generate_trace_files(n_files, &mut rng)
        .into_iter()
        .map(|s| s.clamp(1e6, 500e6))
        .collect();
    let population = yahoo::generate_files(n_files, &mut rng);
    let stats = yahoo::stats(&population);
    println!(
        "population: {n_files} files; {:.0}% cold (<10 accesses), {:.1}% hot (>=100)",
        stats.count_fractions[0] * 100.0,
        (stats.count_fractions[2] + stats.count_fractions[3]) * 100.0
    );

    // Larger file = more popular (§7.7).
    let files = FileSet::from_parts(&sizes, &zipf_popularities(n_files, 1.1));
    println!(
        "total bytes {:.1} GB, largest file {:.0} MB",
        files.total_bytes() / 1e9,
        sizes[0] / 1e6
    );

    // 2. Cluster with stragglers and a finite cache budget.
    let cfg = ClusterConfig::ec2_default()
        .with_cache_capacity(files.total_bytes() / 25.0)
        .with_stragglers(StragglerModel::bing(0.05));

    // 3. Bursty arrivals standing in for the Google submission sequence.
    let mean_req_bytes: f64 = files
        .iter()
        .map(|(_, f)| f.popularity * f.size_bytes)
        .sum();
    let rate = 0.5 * cfg.n_servers as f64 * cfg.bandwidth / mean_req_bytes;
    println!("replaying bursty arrivals at {rate:.1} req/s average ...\n");
    let workload = ReadWorkload::bursty(&files, rate, 8.0, 10_000, 99);

    // 4. SP-Cache (tuned, straggler-aware) vs EC-Cache on the same trace.
    let tuner = TunerConfig {
        stragglers: StragglerModel::bing(0.05),
        ..TunerConfig::default()
    };
    let (sp, _) = SpCache::tuned(&files, cfg.n_servers, cfg.bandwidth, rate, &tuner);
    let ec = EcCache::paper_config();

    for (name, res) in [
        ("SP-Cache", simulate_reads(&sp, &files, &workload, &cfg)),
        ("EC-Cache", simulate_reads(&ec, &files, &workload, &cfg)),
    ] {
        let mut r = res;
        println!(
            "{name:<10} mean {:>6.2}s  p50 {:>6.2}s  p95 {:>7.2}s  hit ratio {:>5.1}%  η {:.2}",
            r.mean_latency(),
            r.latencies.percentile(50.0),
            r.p95_latency(),
            r.hit_ratio * 100.0,
            r.imbalance_factor(),
        );
    }
}

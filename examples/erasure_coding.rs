//! The erasure-coding substrate on its own: encode a file with the
//! (10, 14) Reed–Solomon code EC-Cache uses, lose shards, reconstruct,
//! and measure the decode overhead the paper's Fig. 4 is about.
//!
//! ```bash
//! cargo run --release --example erasure_coding
//! ```

use spcache::ec::{split_into_shards, ReedSolomon};

fn main() {
    let rs = ReedSolomon::new(10, 14);
    println!(
        "(10,14) Reed-Solomon: {} data + {} parity shards, {:.0}% memory overhead\n",
        rs.data_shards(),
        rs.parity_shards(),
        rs.overhead() * 100.0
    );

    // A 64 MB "file".
    let size = 64 * 1024 * 1024;
    let data: Vec<u8> = (0..size).map(|i| ((i * 131 + 7) % 256) as u8).collect();

    // Encode.
    let t0 = std::time::Instant::now();
    let shards = rs.encode_bytes(&data);
    let encode = t0.elapsed().as_secs_f64();
    println!(
        "encoded {} MB into {} shards of {:.1} MB in {:.3}s ({:.2} GB/s)",
        size / 1_048_576,
        shards.len(),
        shards[0].len() as f64 / 1e6,
        encode,
        size as f64 / encode / 1e9
    );

    // Verify parity consistency.
    assert_eq!(rs.verify(&shards), Ok(true));
    println!("parity verified");

    // Lose any 4 shards (the maximum) and reconstruct.
    let mut partial: Vec<Option<Vec<u8>>> = shards.iter().cloned().map(Some).collect();
    for idx in [0usize, 3, 11, 13] {
        partial[idx] = None;
    }
    let t0 = std::time::Instant::now();
    let recovered = rs.reconstruct_data(&mut partial).expect("decodable");
    let decode = t0.elapsed().as_secs_f64();
    assert_eq!(&recovered[..size], &data[..]);
    println!(
        "reconstructed from 10 surviving shards in {:.3}s ({:.2} GB/s)",
        decode,
        size as f64 / decode / 1e9
    );

    // The Fig. 4 number: decode time relative to the 1 Gbps wire time.
    let transfer = size as f64 / 125e6;
    println!(
        "decode overhead at 1 Gbps: {:.0}% of read latency (paper: >15% for >=100 MB files)",
        decode / (decode + transfer) * 100.0
    );

    // Contrast: SP-Cache's "codec" is a plain split — free.
    let t0 = std::time::Instant::now();
    let parts = split_into_shards(&data, 10);
    let split = t0.elapsed().as_secs_f64();
    println!(
        "\nselective partition of the same file into 10: {:.4}s — no parity, no decode, no overhead ({}x faster than encoding)",
        split,
        (encode / split.max(1e-9)) as u64
    );
    assert_eq!(parts.len(), 10);
}

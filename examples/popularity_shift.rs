//! Popularity shift end-to-end: the §7.4 scenario on the real store.
//! Ranks get shuffled, the master replans, and the parallel repartitioners
//! race the naive sequential scheme.
//!
//! ```bash
//! cargo run --release --example popularity_shift
//! ```

use rand::SeedableRng;
use spcache::core::placement::random_partition_map;
use spcache::core::repartition::plan_repartition;
use spcache::core::tuner::{tune_scale_factor_with_rate, TunerConfig};
use spcache::core::FileSet;
use spcache::sim::Xoshiro256StarStar;
use spcache::store::repartitioner::{run_parallel, run_sequential};
use spcache::store::{StoreCluster, StoreConfig};
use spcache::workload::PopularityModel;

const N_WORKERS: usize = 10;
const N_FILES: usize = 120;
const FILE_BYTES: usize = 300_000;
const BANDWIDTH: f64 = 120e6;

/// Builds a cluster laid out for `pops`, returns it plus the layout map.
fn build(pops: &PopularityModel, seed: u64) -> (StoreCluster, spcache::core::partition::PartitionMap) {
    let cluster = StoreCluster::spawn(StoreConfig::throttled(N_WORKERS, BANDWIDTH).with_seed(seed));
    let client = cluster.client();
    let sizes = vec![FILE_BYTES as f64; N_FILES];
    let files = FileSet::from_parts(&sizes, &pops.popularities());
    let tuned = tune_scale_factor_with_rate(&files, N_WORKERS, BANDWIDTH, 8.0, &TunerConfig::default());
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let map = random_partition_map(&files, tuned.alpha, N_WORKERS, &mut rng);
    let payload: Vec<u8> = (0..FILE_BYTES).map(|i| (i % 249) as u8).collect();
    for i in 0..N_FILES {
        client.write(i as u64, &payload, map.servers_of(i)).expect("write");
    }
    (cluster, map)
}

fn main() {
    let mut pops = PopularityModel::zipf(N_FILES, 1.1);
    let mut rng = Xoshiro256StarStar::seed_from_u64(4242);

    println!("initial layout tuned for Zipf(1.1) over {N_FILES} files on {N_WORKERS} workers");

    // The shift: shuffle every rank (more drastic than production, per the
    // paper).
    let original = pops.clone();
    pops.shift(&mut rng);
    println!(
        "popularity shift: {:.0}% of files changed rank",
        original.rank_change_fraction(&pops) * 100.0
    );

    // Replan against the shifted popularity.
    let sizes = vec![FILE_BYTES as f64; N_FILES];
    let shifted_files = FileSet::from_parts(&sizes, &pops.popularities());
    let tuned = tune_scale_factor_with_rate(
        &shifted_files,
        N_WORKERS,
        BANDWIDTH,
        8.0,
        &TunerConfig::default(),
    );
    let counts: Vec<usize> = shifted_files
        .partition_counts(tuned.alpha)
        .into_iter()
        .map(|k| k.min(N_WORKERS))
        .collect();

    // Parallel repartition (Algorithm 2).
    let (cluster, map) = build(&original, 1);
    let plan = plan_repartition(&shifted_files, &map, &counts, &mut rng);
    println!(
        "plan: {} files move ({:.0}%), {:.1} MB crosses the network",
        plan.jobs.len(),
        plan.moved_fraction() * 100.0,
        plan.total_network_bytes(&shifted_files) / 1e6
    );
    let ids: Vec<u64> = (0..N_FILES as u64).collect();
    let t0 = std::time::Instant::now();
    run_parallel(&plan, &ids, cluster.master().as_ref(), cluster.transport().as_ref()).expect("parallel");
    let par = t0.elapsed().as_secs_f64();
    println!("parallel repartition (per-worker executors): {par:.3}s");

    // Sequential strawman on an identical cluster.
    let (cluster2, map2) = build(&original, 1);
    let plan2 = plan_repartition(&shifted_files, &map2, &counts, &mut rng);
    let t0 = std::time::Instant::now();
    run_sequential(&plan2, &ids, cluster2.master().as_ref(), cluster2.transport().as_ref()).expect("sequential");
    let seq = t0.elapsed().as_secs_f64();
    println!("sequential strawman (collect everything at one node): {seq:.3}s");
    println!("\nspeedup: {:.0}x (paper: two orders of magnitude at EC2 scale)", seq / par.max(1e-9));

    // Sanity: data survived.
    let client = cluster.client();
    let expect: Vec<u8> = (0..FILE_BYTES).map(|i| (i % 249) as u8).collect();
    for id in 0..N_FILES as u64 {
        assert_eq!(client.read_quiet(id).expect("read"), expect, "file {id}");
    }
    println!("all {N_FILES} files verified byte-for-byte after repartition");
}

//! Quickstart: tune SP-Cache with Algorithm 1 and compare it against
//! EC-Cache and selective replication on one simulated cluster.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use spcache::baselines::{EcCache, SelectiveReplication};
use spcache::cluster::runner::compare_schemes;
use spcache::cluster::ClusterConfig;
use spcache::core::tuner::TunerConfig;
use spcache::core::{FileSet, SpCache};
use spcache::workload::zipf::zipf_popularities;

fn main() {
    // 1. A skewed workload: 500 files of 100 MB, Zipf(1.05) popularity —
    //    the paper's §7.3 setting.
    let files = FileSet::uniform_size(100e6, &zipf_popularities(500, 1.05));
    println!(
        "workload: {} files, hottest load {:.1} MB/request-unit",
        files.len(),
        files.max_load() / 1e6
    );

    // 2. The cluster: 30 cache servers at an effective 0.8 Gbps.
    let cfg = ClusterConfig::ec2_default().with_bandwidth(100e6);

    // 3. Algorithm 1: exponential search for the scale factor α using the
    //    fork-join latency upper bound (Eq. 9).
    let rate = 18.0; // aggregate client request rate, req/s
    let (sp, tuned) = SpCache::tuned(
        &files,
        cfg.n_servers,
        cfg.bandwidth,
        rate,
        &TunerConfig::default(),
    );
    println!(
        "Algorithm 1: α = {:.3e} after {} iterations (bound {:.3} s)",
        sp.alpha(),
        tuned.iterations,
        tuned.bound
    );
    let ks = sp.partition_counts(&files, cfg.n_servers);
    println!(
        "selective partition: hottest file → {} partitions, coldest → {}",
        ks[0],
        ks.last().unwrap()
    );

    // 4. Head-to-head on the exact same Poisson workload.
    let ec = EcCache::paper_config();
    let sr = SelectiveReplication::paper_config();
    println!("\nsimulating {rate} req/s ...");
    let stats = compare_schemes(&[&sp, &ec, &sr], &files, rate, 15_000, &cfg);
    println!(
        "{:<38} {:>9} {:>9} {:>7} {:>12}",
        "scheme", "mean (s)", "p95 (s)", "η", "cache bytes"
    );
    for s in &stats {
        println!(
            "{:<38} {:>9.2} {:>9.2} {:>7.2} {:>9.0} MB",
            s.scheme,
            s.mean,
            s.p95,
            s.eta,
            s.layout_bytes / 1e6
        );
    }

    let gain = (stats[1].mean - stats[0].mean) / stats[1].mean * 100.0;
    println!(
        "\nSP-Cache beats EC-Cache by {gain:.0}% in mean latency using {:.0}% less memory.",
        (1.0 - stats[0].layout_bytes / stats[1].layout_bytes) * 100.0
    );
}

//! Hot-spot mitigation on the *real* in-process store: write skewed
//! files, watch one worker melt, then let SP-Cache repartition and watch
//! the load even out.
//!
//! ```bash
//! cargo run --release --example hotspot_mitigation
//! ```

use spcache::core::tuner::TunerConfig;
use spcache::store::repartitioner::run_parallel;
use spcache::store::{StoreCluster, StoreConfig};
use spcache::workload::zipf::ZipfSampler;
use rand::SeedableRng;
use spcache::sim::Xoshiro256StarStar;

const N_WORKERS: usize = 8;
const N_FILES: u64 = 40;
const FILE_BYTES: usize = 256 * 1024;
const BANDWIDTH: f64 = 200e6;

fn served_summary(cluster: &StoreCluster) -> (Vec<f64>, f64) {
    let served = cluster.served_bytes().expect("stats");
    let mean = served.iter().sum::<f64>() / served.len() as f64;
    let max = served.iter().cloned().fold(0.0f64, f64::max);
    let eta = if mean > 0.0 { (max - mean) / mean } else { 0.0 };
    (served, eta)
}

fn drive_reads(cluster: &StoreCluster, n_reads: usize, seed: u64) {
    let client = cluster.client();
    let sampler = ZipfSampler::new(N_FILES as usize, 1.1);
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    for _ in 0..n_reads {
        let file = sampler.sample(&mut rng) as u64;
        client.read(file).expect("read");
    }
}

fn main() {
    // A throttled 8-worker cluster holding 40 files, every file whole on
    // one worker (SP-Cache's write path: new files are not split).
    let cluster = StoreCluster::spawn(StoreConfig::throttled(N_WORKERS, BANDWIDTH));
    let client = cluster.client();
    let payload: Vec<u8> = (0..FILE_BYTES).map(|i| (i % 251) as u8).collect();
    for id in 0..N_FILES {
        client
            .write(id, &payload, &[(id as usize) % N_WORKERS])
            .expect("write");
    }

    // Phase 1: skewed reads → hot spots.
    println!("phase 1: 600 Zipf(1.1) reads against unsplit files ...");
    let t0 = std::time::Instant::now();
    drive_reads(&cluster, 600, 1);
    let phase1 = t0.elapsed().as_secs_f64();
    let (served, eta) = served_summary(&cluster);
    println!("  took {phase1:.2}s; per-worker MB served: {:?}",
        served.iter().map(|b| (b / 1e6 * 10.0).round() / 10.0).collect::<Vec<_>>());
    println!("  imbalance factor η = {eta:.2} (hot spot!)");

    // Phase 2: the master replans from observed popularity (Algorithm 1)
    // and the per-worker repartitioners execute Algorithm 2 in parallel.
    println!("\nphase 2: rebalancing (Algorithms 1 + 2) ...");
    let (ids, plan, tuned) = cluster.master().plan_rebalance(
        N_WORKERS,
        BANDWIDTH,
        8.0,
        &TunerConfig::default(),
        42,
    );
    println!(
        "  tuned α = {:.3e}; {} of {} files repartitioned ({:.0}% moved)",
        tuned.alpha,
        plan.jobs.len(),
        N_FILES,
        plan.moved_fraction() * 100.0
    );
    let t0 = std::time::Instant::now();
    run_parallel(&plan, &ids, cluster.master().as_ref(), cluster.transport().as_ref()).expect("repartition");
    println!("  parallel repartition finished in {:.3}s", t0.elapsed().as_secs_f64());
    let hottest = ids
        .iter()
        .map(|&id| cluster.master().peek(id).expect("meta").1.len())
        .max()
        .unwrap();
    println!("  hottest file now spans {hottest} workers");

    // Phase 3: same skewed reads against the balanced layout.
    println!("\nphase 3: 600 more Zipf(1.1) reads against the balanced layout ...");
    let before = cluster.served_bytes().expect("stats");
    let t0 = std::time::Instant::now();
    drive_reads(&cluster, 600, 2);
    let phase3 = t0.elapsed().as_secs_f64();
    let served_now = cluster.served_bytes().expect("stats");
    let delta: Vec<f64> = served_now
        .iter()
        .zip(&before)
        .map(|(now, past)| now - past)
        .collect();
    let mean = delta.iter().sum::<f64>() / delta.len() as f64;
    let max = delta.iter().cloned().fold(0.0f64, f64::max);
    println!("  took {phase3:.2}s (was {phase1:.2}s before rebalancing)");
    println!(
        "  post-rebalance imbalance factor η = {:.2}",
        if mean > 0.0 { (max - mean) / mean } else { 0.0 }
    );
    println!(
        "\nspeedup from selective partition: {:.1}x",
        phase1 / phase3
    );
}

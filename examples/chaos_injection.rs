//! Deterministic chaos: a scripted [`FaultPlan`] crashes a worker, hangs
//! another and drops a cached partition while a client keeps reading —
//! every read survives via retries, under-store healing and hedging, and
//! the injected-event log replays identically run after run.
//!
//! ```bash
//! cargo run --release --example chaos_injection
//! ```

use std::sync::Arc;
use std::time::Duration;

use spcache::store::backing::{checkpoint, UnderStore};
use spcache::store::rpc::PartKey;
use spcache::store::{FaultPlan, HedgePolicy, RetryPolicy, StoreCluster, StoreConfig};

fn payload(id: u64, len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i as u64 * 131 + id * 17) % 256) as u8).collect()
}

fn run_once() -> Vec<spcache::store::FaultRecord> {
    // Worker 1 crashes on its 4th data-path request, worker 3 stalls
    // 80 ms on its 5th, and worker 4 silently loses file 2's partition 0.
    let plan = FaultPlan::none()
        .crash(1, 4)
        .hang(3, 5, Duration::from_millis(80))
        .drop_partition(4, 5, PartKey::new(2, 0));

    let cluster = StoreCluster::spawn(
        StoreConfig::unthrottled(6)
            .with_faults(plan)
            .with_retry(RetryPolicy::default())
            .with_hedge(HedgePolicy::after(Duration::from_millis(20))),
    );
    let under = Arc::new(UnderStore::new());
    let client = cluster.client().with_under_store(Arc::clone(&under));

    for id in 0..4u64 {
        let servers = vec![id as usize % 6, (id as usize + 2) % 6];
        client.write(id, &payload(id, 64_000), &servers).unwrap();
        checkpoint(&client, &under, id).unwrap();
    }

    // Read everything, repeatedly, while the faults fire underneath.
    for round in 0..4 {
        for id in 0..4u64 {
            let bytes = client.read_quiet(id).expect("read must survive chaos");
            assert_eq!(bytes, payload(id, 64_000), "round {round}, file {id}");
        }
    }

    println!(
        "  all 16 reads byte-exact; worker 1 alive: {}; hedged fetches: {}",
        cluster.master().is_alive(1),
        client.hedged_fetches(),
    );
    cluster.fault_log().snapshot()
}

fn main() {
    println!("run A:");
    let a = run_once();
    println!("run B:");
    let b = run_once();

    println!("\ninjected events (identical across runs: {}):", a == b);
    for r in &a {
        println!("  worker {} op {:>2}: {:?}", r.worker, r.op, r.action);
    }
}

//! `spcached` worker server: a TCP front end over the store's channel
//! worker.
//!
//! Threading model (chosen for *deterministic op order*, which the
//! fault-injection scripts key on):
//!
//! * an **acceptor** thread takes connections,
//! * one **reader** thread per connection parses request frames
//!   (zero-copy payloads) and feeds them into a single service queue,
//! * one **service** thread pops that queue in arrival order, consults
//!   the worker's *wire* fault script, and forwards each request to the
//!   channel worker — so the worker observes exactly one global request
//!   order and the Nth data request over TCP is the same Nth data
//!   request an in-process run would count,
//! * one short-lived **replier** per request awaits the worker's answer
//!   and writes the reply frame back on the request's connection.
//!   Because clients demultiplex by `req_id`, replies need no ordering
//!   and a slow request never blocks the replies behind it.
//!
//! Wire faults fire here, not in the worker (which runs only the data
//! half of the script):
//!
//! * `DropConnection` — the request is served, then the connection is
//!   closed without the reply frame,
//! * `TruncateFrame` — half the reply frame is written, then the
//!   connection is closed,
//! * `DelayFrame` — the reply frame is written after the pause.
//!
//! Graceful shutdown: a `Shutdown` request drains through the same
//! queue, so everything submitted before it is already forwarded (and
//! the worker itself serves FIFO before acknowledging). The ack frame
//! goes out, the listener closes, the worker thread is joined.

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use spcache_store::fault::{FaultAction, FaultLog, WorkerScript};
use spcache_store::rpc::{Envelope, Reply, Request, StoreError};
use spcache_store::worker::spawn_worker_with_scripts;
use spcache_store::StoreConfig;
use std::io::{self, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::frame::{decode_request, encode_reply, read_frame, write_frame, Frame};

/// How long the service side waits on the channel worker before treating
/// a request as unanswerable. A `LoseReply` data fault looks exactly
/// like this — the replier then sends *nothing*, so the remote client
/// times out just as an in-process client would.
const FORWARD_DEADLINE: Duration = Duration::from_secs(5);

/// Write half of one client connection, shared between repliers.
#[derive(Debug)]
struct ConnWriter {
    stream: Mutex<BufWriter<TcpStream>>,
}

impl ConnWriter {
    /// Writes one whole frame atomically with respect to other repliers.
    fn write(&self, frame: &[u8]) -> io::Result<()> {
        write_frame(&mut *self.stream.lock(), frame)
    }

    /// Writes a prefix of `frame` (a deliberately cut-off message), then
    /// closes the connection.
    fn write_truncated(&self, frame: &[u8]) {
        let mut s = self.stream.lock();
        let _ = s.write_all(&frame[..frame.len() / 2]);
        let _ = s.flush();
        let _ = s.get_ref().shutdown(std::net::Shutdown::Both);
    }

    fn close(&self) {
        let _ = self.stream.lock().get_ref().shutdown(std::net::Shutdown::Both);
    }
}

/// One unit of work for the service thread.
struct Job {
    req: Request,
    req_id: u64,
    conn: Arc<ConnWriter>,
}

/// A running worker server. Dropping it abandons the threads; call
/// [`WorkerServer::join`] after a graceful shutdown for a clean exit.
#[derive(Debug)]
pub struct WorkerServer {
    id: usize,
    addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
}

impl WorkerServer {
    /// Spawns worker `id` of a cluster described by `cfg`, listening on
    /// `bind` (use port 0 for an ephemeral port; the chosen address is
    /// [`WorkerServer::addr`]). The worker thread receives the *data*
    /// half of `cfg.faults`; the wire half fires in this server. Both
    /// log into `fault_log`.
    ///
    /// # Errors
    ///
    /// I/O errors binding the listener.
    pub fn spawn(
        id: usize,
        bind: &str,
        cfg: &StoreConfig,
        fault_log: Arc<FaultLog>,
    ) -> io::Result<WorkerServer> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let worker = spawn_worker_with_scripts(
            id,
            cfg.bandwidth,
            cfg.stragglers.clone(),
            cfg.seed.wrapping_add(id as u64),
            cfg.faults.data_script_for(id),
            cfg.faults.heartbeat_script_for(id),
            Arc::clone(&fault_log),
        );
        let wire_script = cfg.faults.wire_script_for(id);

        let (job_tx, job_rx) = unbounded::<Job>();
        let stop = Arc::new(AtomicBool::new(false));

        let acceptor = {
            let stop = Arc::clone(&stop);
            let job_tx = job_tx.clone();
            std::thread::Builder::new()
                .name(format!("spcached-{id}-accept"))
                .spawn(move || accept_loop(&listener, &job_tx, &stop))
                .expect("spawn acceptor")
        };

        let service = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name(format!("spcached-{id}-service"))
                .spawn(move || {
                    service_loop(id, addr, &job_rx, worker, wire_script, &fault_log, &stop);
                })
                .expect("spawn service thread")
        };

        Ok(WorkerServer {
            id,
            addr,
            threads: vec![acceptor, service],
        })
    }

    /// Worker index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The address the server listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the server threads to finish (they exit after a
    /// `Shutdown` request has been served).
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, job_tx: &Sender<Job>, stop: &Arc<AtomicBool>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stop.load(Ordering::SeqCst) {
                    return; // woken up by the shutdown dial
                }
                let _ = stream.set_nodelay(true);
                let writer = match stream.try_clone() {
                    Ok(w) => Arc::new(ConnWriter {
                        stream: Mutex::new(BufWriter::new(w)),
                    }),
                    Err(_) => continue,
                };
                let job_tx = job_tx.clone();
                let _ = std::thread::Builder::new()
                    .name("spcached-conn".into())
                    .spawn(move || conn_reader(stream, &writer, &job_tx));
            }
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

/// Parses request frames off one connection into the service queue.
fn conn_reader(mut stream: TcpStream, writer: &Arc<ConnWriter>, job_tx: &Sender<Job>) {
    loop {
        match read_frame(&mut stream) {
            Ok(Some(buf)) => {
                let (req_id, req) = match Frame::parse(buf).and_then(|f| {
                    let req = decode_request(&f)?;
                    Ok((f.req_id, req))
                }) {
                    Ok(ok) => ok,
                    Err(e) => {
                        // Protocol violation: answer (best effort, the
                        // req_id may be unknowable) and cut the
                        // connection — framing can no longer be trusted.
                        let _ = writer.write(&encode_reply(&Reply::Err(e), 0));
                        writer.close();
                        return;
                    }
                };
                if job_tx
                    .send(Job {
                        req,
                        req_id,
                        conn: Arc::clone(writer),
                    })
                    .is_err()
                {
                    // Service thread is gone (post-shutdown).
                    writer.close();
                    return;
                }
            }
            Ok(None) | Err(_) => return, // peer closed or died
        }
    }
}

/// The single-threaded request forwarder; owns the wire fault script
/// and the worker's sender half.
fn service_loop(
    id: usize,
    addr: SocketAddr,
    jobs: &Receiver<Job>,
    mut worker: spcache_store::worker::WorkerHandle,
    mut wire_script: WorkerScript,
    fault_log: &Arc<FaultLog>,
    stop: &Arc<AtomicBool>,
) {
    let mut op: u64 = 0;
    while let Ok(Job { req, req_id, conn }) = jobs.recv() {
        if matches!(req, Request::Shutdown) {
            // Everything queued before this job has already been
            // forwarded; the worker drains FIFO and acks.
            let done = forward(&worker, Request::Shutdown);
            let ack = match done.and_then(|rx| rx.recv_timeout(FORWARD_DEADLINE).ok()) {
                Some(reply) => reply,
                None => Reply::Err(StoreError::WorkerDown(id)),
            };
            let _ = conn.write(&encode_reply(&ack, req_id));
            stop.store(true, Ordering::SeqCst);
            // Wake the acceptor so it observes the flag and drops the
            // listener.
            let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
            worker.shutdown();
            return;
        }

        // Control requests bypass fault injection and op counting —
        // mirrored from the in-process worker loop.
        let mut delay = Duration::ZERO;
        let mut drop_conn = false;
        let mut truncate = false;
        if !req.is_control() {
            for action in wire_script.fire(op) {
                fault_log.record(id, op, action.clone());
                match action {
                    FaultAction::DropConnection => drop_conn = true,
                    FaultAction::TruncateFrame => truncate = true,
                    FaultAction::DelayFrame(pause) => delay += pause,
                    // Data actions never reach a wire script.
                    _ => unreachable!("data fault in wire script"),
                }
            }
            op += 1;
        }

        let Some(rx) = forward(&worker, req) else {
            // Worker thread is gone: every further request gets a
            // definitive WorkerDown, same as a closed channel in-process.
            let _ = conn.write(&encode_reply(
                &Reply::Err(StoreError::WorkerDown(id)),
                req_id,
            ));
            continue;
        };

        // Detached replier: awaits the worker and writes the reply with
        // the scripted wire behaviour applied.
        let worker_id = id;
        let _ = std::thread::Builder::new()
            .name(format!("spcached-{id}-reply"))
            .spawn(move || {
                let reply = match rx.recv_timeout(FORWARD_DEADLINE) {
                    Ok(reply) => reply,
                    Err(RecvTimeoutError::Disconnected) => {
                        // Worker crashed mid-request (Crash fault): tell
                        // the client definitively.
                        let _ = conn.write(&encode_reply(
                            &Reply::Err(StoreError::WorkerDown(worker_id)),
                            req_id,
                        ));
                        return;
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        // The worker swallowed the reply (LoseReply) or
                        // is hanging far past the deadline. Send nothing:
                        // the remote client times out, exactly like an
                        // in-process client facing LoseReply.
                        return;
                    }
                };
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                if drop_conn {
                    conn.close();
                    return;
                }
                let frame = encode_reply(&reply, req_id);
                if truncate {
                    conn.write_truncated(&frame);
                } else {
                    let _ = conn.write(&frame);
                }
            });
    }
}

/// Sends one request into the channel worker; `None` when the worker
/// thread has exited.
fn forward(
    worker: &spcache_store::worker::WorkerHandle,
    req: Request,
) -> Option<Receiver<Reply>> {
    let (tx, rx) = crossbeam::channel::bounded(1);
    worker
        .sender()
        .send(Envelope { req, reply: tx })
        .ok()
        .map(|()| rx)
}

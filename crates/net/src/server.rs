//! `spcached` worker server: a TCP front end over the store's channel
//! worker, served by readiness event loops.
//!
//! Threading model (chosen for *deterministic op order*, which the
//! fault-injection scripts key on — DESIGN.md §4.12):
//!
//! * **I/O shard loops** (one per core by default) own the sockets:
//!   shard 0 accepts connections and deals them round-robin across the
//!   shards; each loop parses request frames off its non-blocking
//!   sockets with an incremental [`FrameReader`] (zero-copy payloads)
//!   and feeds them into a single service queue. Reply frames are
//!   batch-flushed through per-connection [`WriteQueue`]s, so a burst
//!   of pipelined replies shares one `writev` round,
//! * one **service** thread pops that queue in arrival order, consults
//!   the worker's *wire* fault script, and forwards each request to the
//!   channel worker — so the worker observes exactly one global request
//!   order and the Nth data request over TCP is the same Nth data
//!   request an in-process run would count,
//! * one **reply pump** thread selects over every in-flight worker
//!   reply at once and hands each finished frame back to the owning
//!   shard as a completion — no per-request threads anywhere. Because
//!   clients demultiplex by `req_id`, replies need no ordering and a
//!   slow request never blocks the replies behind it.
//!
//! Wire faults fire here, not in the worker (which runs only the data
//! half of the script):
//!
//! * `DropConnection` — the request is served, then the connection is
//!   closed without the reply frame,
//! * `TruncateFrame` — half the reply frame is written, then the
//!   connection is closed,
//! * `DelayFrame` — the reply frame is written after the pause (a
//!   shard timer, not a sleeping thread).
//!
//! Graceful shutdown: a `Shutdown` request drains through the same
//! queue, so everything submitted before it is already forwarded (and
//! the worker itself serves FIFO before acknowledging). The ack frame
//! is queued on the owning shard, every shard then drains its write
//! queues and closes, and the worker thread is joined.

use crossbeam::channel::{unbounded, Receiver, Select, Sender, TryRecvError};
use mio::{Events, Interest, Poll, Token, Waker};
use spcache_store::backing::UnderStore;
use spcache_store::fault::{FaultAction, FaultLog, WorkerScript};
use spcache_store::rpc::{Envelope, Reply, Request, StoreError};
use spcache_store::worker::{spawn_worker_opts, WorkerOptions};
use spcache_store::StoreConfig;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;

use crate::frame::{decode_request, encode_reply, encode_reply_parts, Frame};
use crate::poll::{FrameReader, PumpStatus, Timers, WireFrame, WriteQueue};

/// How long the reply pump waits on the channel worker before treating
/// a request as unanswerable. A `LoseReply` data fault looks exactly
/// like this — the pump then sends *nothing*, so the remote client
/// times out just as an in-process client would.
const FORWARD_DEADLINE: Duration = Duration::from_secs(5);

/// How long a shard keeps flushing unsent replies after `Stop` before
/// giving up on a peer that stopped reading.
const DRAIN_DEADLINE: Duration = Duration::from_secs(5);

/// Token of the shard's cross-thread waker.
const WAKER_TOK: Token = Token(0);
/// Token of the listener (shard 0 only).
const LISTENER_TOK: Token = Token(1);
/// First token handed to accepted connections.
const CONN_BASE: usize = 2;

/// What to do on a connection once its reply is ready.
enum Action {
    /// Write the frame (header + zero-copy payload).
    Frame(WireFrame),
    /// `DropConnection`: close without writing anything.
    Close,
    /// `TruncateFrame`: write the first half of the materialised
    /// frame, then close.
    Truncate(Vec<u8>),
}

/// Commands into a shard I/O loop.
enum SrvCmd {
    /// Take ownership of an accepted connection.
    Adopt(TcpStream),
    /// Apply `action` to connection `token` after `delay`.
    Complete {
        token: usize,
        action: Action,
        delay: Duration,
    },
    /// Drain write queues and exit.
    Stop,
}

/// Address of one shard loop: its command queue and waker.
#[derive(Clone)]
struct ShardRef {
    tx: Sender<SrvCmd>,
    waker: Arc<Waker>,
}

impl ShardRef {
    fn send(&self, cmd: SrvCmd) {
        if self.tx.send(cmd).is_ok() {
            let _ = self.waker.wake();
        }
    }
}

/// Routes a reply back to the connection its request arrived on.
#[derive(Clone)]
struct ConnRef {
    shard: ShardRef,
    token: usize,
}

impl ConnRef {
    fn complete(&self, action: Action, delay: Duration) {
        self.shard.send(SrvCmd::Complete {
            token: self.token,
            action,
            delay,
        });
    }

    /// Queues a reply frame with no fault behaviour.
    fn reply(&self, reply: &Reply, req_id: u64) {
        self.complete(Action::Frame(encode_reply_parts(reply, req_id)), Duration::ZERO);
    }
}

/// One unit of work for the service thread.
struct Job {
    req: Request,
    req_id: u64,
    conn: ConnRef,
}

/// An in-flight worker reply the pump is waiting on.
struct PendingReply {
    rx: Receiver<Reply>,
    conn: ConnRef,
    req_id: u64,
    worker_id: usize,
    delay: Duration,
    drop_conn: bool,
    truncate: bool,
    deadline: Instant,
}

/// A running worker server. Dropping it abandons the threads; call
/// [`WorkerServer::join`] after a graceful shutdown for a clean exit.
#[derive(Debug)]
pub struct WorkerServer {
    id: usize,
    addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
}

impl WorkerServer {
    /// Spawns worker `id` of a cluster described by `cfg`, listening on
    /// `bind` (use port 0 for an ephemeral port; the chosen address is
    /// [`WorkerServer::addr`]), with one I/O shard per core. The worker
    /// thread receives the *data* half of `cfg.faults`; the wire half
    /// fires in this server. Both log into `fault_log`.
    ///
    /// # Errors
    ///
    /// I/O errors binding the listener or creating the pollers.
    pub fn spawn(
        id: usize,
        bind: &str,
        cfg: &StoreConfig,
        fault_log: Arc<FaultLog>,
    ) -> io::Result<WorkerServer> {
        let shards = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self::spawn_sharded(id, bind, cfg, fault_log, shards)
    }

    /// Like [`spawn`](WorkerServer::spawn) with an explicit I/O shard
    /// count (the `spcached --io-shards` flag lands here).
    ///
    /// # Errors
    ///
    /// I/O errors binding the listener or creating the pollers.
    pub fn spawn_sharded(
        id: usize,
        bind: &str,
        cfg: &StoreConfig,
        fault_log: Arc<FaultLog>,
        io_shards: usize,
    ) -> io::Result<WorkerServer> {
        Self::spawn_sharded_with_spill(id, bind, cfg, fault_log, io_shards, None)
    }

    /// Like [`spawn_sharded`](WorkerServer::spawn_sharded) with an
    /// explicit spill tier for the budgeted worker: evicted partitions
    /// land in `spill` (normally the deployment's shared under-store,
    /// so whole-file checkpoints there make evictions free drops).
    /// Without one, a budgeted worker backs itself with a private
    /// under-store — eviction stays a performance event either way.
    ///
    /// # Errors
    ///
    /// I/O errors binding the listener or creating the pollers.
    pub fn spawn_sharded_with_spill(
        id: usize,
        bind: &str,
        cfg: &StoreConfig,
        fault_log: Arc<FaultLog>,
        io_shards: usize,
        spill: Option<Arc<UnderStore>>,
    ) -> io::Result<WorkerServer> {
        crate::poll::tune_allocator_once();
        let listener = TcpListener::bind(bind)?;
        listener.set_nonblocking(true)?;
        // Accepted sockets inherit the listener's buffer sizes, so the
        // window is already wide during the handshake.
        crate::poll::tune_socket(&listener);
        let addr = listener.local_addr()?;
        let mut opts = WorkerOptions::new(
            id,
            cfg.bandwidth,
            cfg.stragglers.clone(),
            cfg.seed.wrapping_add(id as u64),
        )
        .with_scripts(
            cfg.faults.data_script_for(id),
            cfg.faults.heartbeat_script_for(id),
            Arc::clone(&fault_log),
        )
        .with_memory_budget(cfg.memory_budget)
        .with_background_fraction(cfg.background_fraction)
        .with_max_transfer_wait(Some(cfg.executor_deadline))
        .with_verify_reads(cfg.verify_reads)
        .with_corruption_log(cfg.log_corruptions);
        if let Some(u) = spill {
            opts = opts.with_spill(u);
        }
        let worker = spawn_worker_opts(opts);
        let wire_script = cfg.faults.wire_script_for(id);

        let n = io_shards.max(1);
        let (job_tx, job_rx) = unbounded::<Job>();
        let (pump_tx, pump_rx) = unbounded::<PendingReply>();

        // Build every shard's poller + command channel up front so
        // shard 0 (the acceptor) can deal connections to all of them.
        let mut polls = Vec::with_capacity(n);
        let mut refs: Vec<ShardRef> = Vec::with_capacity(n);
        for _ in 0..n {
            let poll = Poll::new()?;
            let waker = Arc::new(Waker::new(poll.registry(), WAKER_TOK)?);
            let (tx, rx) = unbounded::<SrvCmd>();
            refs.push(ShardRef { tx, waker });
            polls.push((poll, rx));
        }

        let mut threads = Vec::with_capacity(n + 2);
        let mut listener = Some(listener);
        for (i, (poll, rx)) in polls.into_iter().enumerate() {
            let me = refs[i].clone();
            let all = refs.clone();
            let job_tx = job_tx.clone();
            let l = listener.take(); // shard 0 gets the listener
            threads.push(
                std::thread::Builder::new()
                    .name(format!("spcached-{id}-io-{i}"))
                    .spawn(move || srv_shard_loop(poll, rx, l, me, all, &job_tx))
                    .expect("spawn io shard"),
            );
        }
        drop(job_tx);

        let service = {
            let shards = refs.clone();
            std::thread::Builder::new()
                .name(format!("spcached-{id}-service"))
                .spawn(move || {
                    service_loop(id, &job_rx, worker, wire_script, &fault_log, pump_tx, &shards);
                })
                .expect("spawn service thread")
        };
        threads.push(service);

        // The pump is detached: after shutdown it may hold LoseReply
        // entries that only expire at FORWARD_DEADLINE, and join()
        // must not wait on those.
        let _ = std::thread::Builder::new()
            .name(format!("spcached-{id}-pump"))
            .spawn(move || pump_loop(&pump_rx));

        Ok(WorkerServer { id, addr, threads })
    }

    /// Worker index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The address the server listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the server threads to finish (they exit after a
    /// `Shutdown` request has been served).
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Shard I/O loop
// ---------------------------------------------------------------------------

/// One client connection owned by a shard.
struct SrvConn {
    stream: TcpStream,
    reader: FrameReader,
    wq: WriteQueue,
    writable_armed: bool,
    /// Close the socket once the write queue drains (fault injection
    /// or protocol violation).
    closing: bool,
}

/// The shard readiness loop: accepts (shard 0), reads request frames
/// into the service queue, applies reply completions (with scripted
/// delays on the timer heap), and batch-flushes write queues.
fn srv_shard_loop(
    mut poll: Poll,
    rx: Receiver<SrvCmd>,
    listener: Option<TcpListener>,
    me: ShardRef,
    all: Vec<ShardRef>,
    job_tx: &Sender<Job>,
) {
    if let Some(l) = &listener {
        let _ = poll
            .registry()
            .register(l, LISTENER_TOK, Interest::READABLE);
    }
    let mut events = Events::with_capacity(256);
    let mut conns: HashMap<usize, SrvConn> = HashMap::new();
    let mut next_token = CONN_BASE;
    let mut rr = 0usize; // round-robin dealing cursor (shard 0)
    // Scripted reply delays: a timer per delayed completion.
    let mut timers: Timers<u64> = Timers::new();
    let mut delayed: HashMap<u64, (usize, Action)> = HashMap::new();
    let mut delay_seq = 0u64;
    let mut inbound: Vec<Bytes> = Vec::new();

    'run: loop {
        let timeout = timers
            .next_deadline()
            .map(|d| d.saturating_duration_since(Instant::now()));
        if poll.poll(&mut events, timeout).is_err() {
            break 'run;
        }

        let mut dirty: Vec<usize> = Vec::new();

        // Commands: adoptions and reply completions.
        loop {
            match rx.try_recv() {
                Ok(SrvCmd::Adopt(stream)) => {
                    let token = next_token;
                    next_token += 1;
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    crate::poll::tune_socket(&stream);
                    if poll
                        .registry()
                        .register(&stream, Token(token), Interest::READABLE)
                        .is_ok()
                    {
                        conns.insert(
                            token,
                            SrvConn {
                                stream,
                                reader: FrameReader::new(),
                                wq: WriteQueue::new(),
                                writable_armed: false,
                                closing: false,
                            },
                        );
                    }
                }
                Ok(SrvCmd::Complete {
                    token,
                    action,
                    delay,
                }) => {
                    if delay.is_zero() {
                        apply_action(&mut conns, token, action, &mut dirty);
                    } else {
                        timers.insert(Instant::now() + delay, delay_seq);
                        delayed.insert(delay_seq, (token, action));
                        delay_seq += 1;
                    }
                }
                Ok(SrvCmd::Stop) => break 'run,
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => break 'run,
            }
        }

        // Socket readiness.
        for ev in &events {
            let Token(t) = ev.token();
            if t == WAKER_TOK.0 {
                continue;
            }
            if t == LISTENER_TOK.0 {
                if let Some(l) = &listener {
                    accept_burst(l, &all, &mut rr);
                }
                continue;
            }
            let Some(closing) = conns.get(&t).map(|c| c.closing) else {
                continue;
            };
            if (ev.is_readable() || ev.is_error()) && !closing {
                read_requests(&mut conns, t, &me, job_tx, &mut inbound, &mut dirty);
            }
            if ev.is_writable() && conns.contains_key(&t) && !dirty.contains(&t) {
                dirty.push(t);
            }
        }

        // Expired reply delays.
        let now = Instant::now();
        while let Some(seq) = timers.pop_due(now) {
            if let Some((token, action)) = delayed.remove(&seq) {
                apply_action(&mut conns, token, action, &mut dirty);
            }
        }

        // One flush per touched connection.
        for token in dirty {
            flush_srv_conn(&poll, &mut conns, token);
        }
    }

    // Stop: drain unsent replies (bounded), then close everything.
    let drain_until = Instant::now() + DRAIN_DEADLINE;
    while Instant::now() < drain_until {
        let mut left = false;
        let tokens: Vec<usize> = conns.keys().copied().collect();
        for token in tokens {
            flush_srv_conn(&poll, &mut conns, token);
            if conns.get(&token).is_some_and(|c| !c.wq.is_empty()) {
                left = true;
            }
        }
        if !left {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    for (_, conn) in conns.drain() {
        let _ = conn.stream.shutdown(std::net::Shutdown::Both);
    }
}

/// Accepts every connection the listener has ready and deals them
/// round-robin across the shards (self-adoption also rides the command
/// queue so token assignment stays in one place).
fn accept_burst(listener: &TcpListener, all: &[ShardRef], rr: &mut usize) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                all[*rr % all.len()].send(SrvCmd::Adopt(stream));
                *rr += 1;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
}

/// Pumps one readable connection, decoding request frames into jobs.
/// Kills the connection on protocol violations or death.
fn read_requests(
    conns: &mut HashMap<usize, SrvConn>,
    token: usize,
    me: &ShardRef,
    job_tx: &Sender<Job>,
    inbound: &mut Vec<Bytes>,
    dirty: &mut Vec<usize>,
) {
    let Some(conn) = conns.get_mut(&token) else {
        return;
    };
    inbound.clear();
    let status = conn.reader.pump(&mut conn.stream, inbound);
    let mut service_gone = false;
    for buf in inbound.drain(..) {
        match Frame::parse(buf).and_then(|f| decode_request(&f).map(|req| (f.req_id, req))) {
            Ok((req_id, req)) => {
                let job = Job {
                    req,
                    req_id,
                    conn: ConnRef {
                        shard: me.clone(),
                        token,
                    },
                };
                if job_tx.send(job).is_err() {
                    service_gone = true; // post-shutdown
                    break;
                }
            }
            Err(e) => {
                // Protocol violation: answer (best effort, the req_id
                // may be unknowable) and cut the connection once the
                // error flushes — framing can no longer be trusted.
                conn.wq.push(encode_reply_parts(&Reply::Err(e), 0));
                conn.closing = true;
                if !dirty.contains(&token) {
                    dirty.push(token);
                }
                return;
            }
        }
    }
    let dead = service_gone
        || match status {
            Ok(PumpStatus::Open) => false,
            Ok(PumpStatus::Closed) | Err(_) => true, // peer closed or died
        };
    if dead {
        if let Some(conn) = conns.remove(&token) {
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// Applies a completion action to a connection (no-op if the
/// connection already died).
fn apply_action(
    conns: &mut HashMap<usize, SrvConn>,
    token: usize,
    action: Action,
    dirty: &mut Vec<usize>,
) {
    let Some(conn) = conns.get_mut(&token) else {
        return;
    };
    match action {
        Action::Frame(wf) => {
            // A closing stream ends at the torn half-frame: appending a
            // full frame behind it would let the peer misparse those
            // bytes as the torn frame's body.
            if !conn.closing {
                conn.wq.push(wf);
            }
        }
        Action::Close => {
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
            conns.remove(&token);
            return;
        }
        Action::Truncate(full) => {
            let half = full.len() / 2;
            conn.wq.push(WireFrame::contiguous(full[..half].to_vec()));
            conn.closing = true;
        }
    }
    if !dirty.contains(&token) {
        dirty.push(token);
    }
}

/// Flushes one connection's write queue, arming/disarming write
/// interest; closes it on error or once a closing queue drains.
fn flush_srv_conn(poll: &Poll, conns: &mut HashMap<usize, SrvConn>, token: usize) {
    let Some(conn) = conns.get_mut(&token) else {
        return;
    };
    match conn.wq.flush(&mut conn.stream) {
        Ok(true) => {
            if conn.closing {
                let _ = poll.registry().deregister(&conn.stream);
                let _ = conn.stream.shutdown(std::net::Shutdown::Both);
                conns.remove(&token);
                return;
            }
            if conn.writable_armed {
                conn.writable_armed = false;
                let _ = poll
                    .registry()
                    .reregister(&conn.stream, Token(token), Interest::READABLE);
            }
        }
        Ok(false) => {
            if !conn.writable_armed {
                conn.writable_armed = true;
                let _ = poll.registry().reregister(
                    &conn.stream,
                    Token(token),
                    Interest::READABLE | Interest::WRITABLE,
                );
            }
        }
        Err(_) => {
            let _ = poll.registry().deregister(&conn.stream);
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
            conns.remove(&token);
        }
    }
}

// ---------------------------------------------------------------------------
// Service thread
// ---------------------------------------------------------------------------

/// The single-threaded request forwarder; owns the wire fault script
/// and the worker's sender half.
fn service_loop(
    id: usize,
    jobs: &Receiver<Job>,
    mut worker: spcache_store::worker::WorkerHandle,
    mut wire_script: WorkerScript,
    fault_log: &Arc<FaultLog>,
    pump_tx: Sender<PendingReply>,
    shards: &[ShardRef],
) {
    let mut op: u64 = 0;
    while let Ok(Job { req, req_id, conn }) = jobs.recv() {
        if matches!(req, Request::Shutdown) {
            // Everything queued before this job has already been
            // forwarded; the worker drains FIFO and acks.
            let done = forward(&worker, Request::Shutdown);
            let ack = match done.and_then(|rx| rx.recv_timeout(FORWARD_DEADLINE).ok()) {
                Some(reply) => reply,
                None => Reply::Err(StoreError::WorkerDown(id)),
            };
            // The ack rides the conn's own shard queue, so it is
            // applied before that shard sees Stop.
            conn.reply(&ack, req_id);
            for s in shards {
                s.send(SrvCmd::Stop);
            }
            worker.shutdown();
            drop(pump_tx); // pump drains its remaining entries and exits
            return;
        }

        // Control requests bypass fault injection and op counting —
        // mirrored from the in-process worker loop.
        let mut delay = Duration::ZERO;
        let mut drop_conn = false;
        let mut truncate = false;
        if !req.is_control() {
            for action in wire_script.fire(op) {
                fault_log.record(id, op, action.clone());
                match action {
                    FaultAction::DropConnection => drop_conn = true,
                    FaultAction::TruncateFrame => truncate = true,
                    FaultAction::DelayFrame(pause) => delay += pause,
                    // Data actions never reach a wire script.
                    _ => unreachable!("data fault in wire script"),
                }
            }
            op += 1;
        }

        let Some(rx) = forward(&worker, req) else {
            // Worker thread is gone: every further request gets a
            // definitive WorkerDown, same as a closed channel in-process.
            conn.reply(&Reply::Err(StoreError::WorkerDown(id)), req_id);
            continue;
        };

        let _ = pump_tx.send(PendingReply {
            rx,
            conn,
            req_id,
            worker_id: id,
            delay,
            drop_conn,
            truncate,
            deadline: Instant::now() + FORWARD_DEADLINE,
        });
    }
}

// ---------------------------------------------------------------------------
// Reply pump
// ---------------------------------------------------------------------------

/// Waits on every in-flight worker reply at once and turns each into a
/// shard completion: the scripted wire behaviour (delay / drop /
/// truncate) rides along, and entries that outlive [`FORWARD_DEADLINE`]
/// are dropped silently — the `LoseReply` shape, the remote client
/// times out.
///
/// Completions are delivered in **op order**: the pending list keeps
/// submission order and every wake sweeps it front-to-back, delivering
/// all ready entries. The worker serves FIFO, so a ready reply implies
/// every earlier non-lost reply is ready too — the sweep therefore
/// flushes reply frames onto each connection in the same deterministic
/// order the requests were served, even when a pipelined burst makes
/// many replies ready within one wake. Only scripted lost replies are
/// skipped over (they expire in place).
fn pump_loop(inject: &Receiver<PendingReply>) {
    let mut pendings: Vec<PendingReply> = Vec::new();
    let mut inject_open = true;
    loop {
        if !inject_open && pendings.is_empty() {
            return;
        }

        // The select set is rebuilt each round (registration is cheap
        // in the channel shim; the fork-join client does the same).
        let mut sel = Select::new();
        if inject_open {
            sel.recv(inject);
        }
        for p in &pendings {
            sel.recv(&p.rx);
        }
        let next_deadline = pendings.iter().map(|p| p.deadline).min();
        let ready = match next_deadline {
            Some(d) => sel.ready_deadline(d).ok(),
            None => Some(sel.ready()),
        };

        if ready.is_some() {
            if inject_open {
                loop {
                    match inject.try_recv() {
                        Ok(p) => pendings.push(p),
                        Err(TryRecvError::Empty) => break,
                        Err(TryRecvError::Disconnected) => {
                            inject_open = false;
                            break;
                        }
                    }
                }
            }
            // Ordered sweep: deliver every ready reply, oldest first.
            let mut i = 0;
            while i < pendings.len() {
                match pendings[i].rx.try_recv() {
                    Ok(reply) => {
                        let p = pendings.remove(i);
                        deliver(&p, &reply);
                    }
                    Err(TryRecvError::Empty) => i += 1, // not ready yet
                    Err(TryRecvError::Disconnected) => {
                        // Worker crashed mid-request (Crash fault): tell
                        // the client definitively.
                        let p = pendings.remove(i);
                        p.conn
                            .reply(&Reply::Err(StoreError::WorkerDown(p.worker_id)), p.req_id);
                    }
                }
            }
        }

        // LoseReply shape: expired entries vanish without a frame.
        let now = Instant::now();
        pendings.retain(|p| p.deadline > now);
    }
}

/// Turns a worker reply into the scripted completion for its connection.
fn deliver(p: &PendingReply, reply: &Reply) {
    if p.drop_conn {
        p.conn.complete(Action::Close, p.delay);
    } else if p.truncate {
        p.conn
            .complete(Action::Truncate(encode_reply(reply, p.req_id)), p.delay);
    } else {
        p.conn
            .complete(Action::Frame(encode_reply_parts(reply, p.req_id)), p.delay);
    }
}

/// Sends one request into the channel worker; `None` when the worker
/// thread has exited.
fn forward(
    worker: &spcache_store::worker::WorkerHandle,
    req: Request,
) -> Option<Receiver<Reply>> {
    let (tx, rx) = crossbeam::channel::bounded(1);
    worker
        .sender()
        .send(Envelope { req, reply: tx })
        .ok()
        .map(|()| rx)
}

//! A full store cluster over loopback TCP: N [`WorkerServer`]s, a
//! [`MasterServer`] and a wire [`Client`] — the drop-in twin of the
//! in-process `StoreCluster`, with every byte crossing a real socket.

use spcache_store::client::Client;
use spcache_store::fault::FaultLog;
use spcache_store::master::Master;
use spcache_store::rpc::{Request, StoreError, WorkerStats};
use spcache_store::transport::Transport;
use spcache_store::StoreConfig;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use crate::master_net::{MasterClient, MasterServer};
use crate::server::WorkerServer;
use crate::tcp::TcpTransport;

/// A running loopback-TCP store cluster.
///
/// # Examples
///
/// ```
/// use spcache_net::TcpCluster;
/// use spcache_store::StoreConfig;
///
/// let cluster = TcpCluster::spawn(StoreConfig::unthrottled(3));
/// let client = cluster.client();
/// client.write(1, b"over real sockets", &[0, 2]).unwrap();
/// assert_eq!(client.read(1).unwrap(), b"over real sockets");
/// cluster.shutdown();
/// ```
#[derive(Debug)]
pub struct TcpCluster {
    workers: Vec<WorkerServer>,
    master_server: MasterServer,
    transport: Arc<TcpTransport>,
    fault_log: Arc<FaultLog>,
    cfg: StoreConfig,
}

impl TcpCluster {
    /// Spawns `cfg.n_workers` worker servers and a master server, all on
    /// ephemeral loopback ports. Worker threads get the data half of
    /// `cfg.faults`, the servers the wire half; both log into
    /// [`TcpCluster::fault_log`].
    ///
    /// # Panics
    ///
    /// Panics if `cfg.n_workers == 0` or a listener cannot bind.
    pub fn spawn(cfg: StoreConfig) -> Self {
        assert!(cfg.n_workers > 0, "need at least one worker");
        let fault_log = Arc::new(FaultLog::new());
        let workers: Vec<WorkerServer> = (0..cfg.n_workers)
            .map(|id| {
                WorkerServer::spawn(id, "127.0.0.1:0", &cfg, Arc::clone(&fault_log))
                    .expect("bind worker listener")
            })
            .collect();
        let addrs: Vec<SocketAddr> = workers.iter().map(WorkerServer::addr).collect();
        let master = Arc::new(Master::new());
        master.ensure_workers(cfg.n_workers);
        let master_server = MasterServer::spawn(master, "127.0.0.1:0", addrs.clone())
            .expect("bind master listener");
        let transport =
            Arc::new(TcpTransport::connect(addrs).with_deadline(cfg.retry.deadline));
        TcpCluster {
            workers,
            master_server,
            transport,
            fault_log,
            cfg,
        }
    }

    /// Number of workers.
    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    /// Worker listen addresses, in index order.
    pub fn worker_addrs(&self) -> Vec<SocketAddr> {
        self.workers.iter().map(WorkerServer::addr).collect()
    }

    /// The master's listen address.
    pub fn master_addr(&self) -> SocketAddr {
        self.master_server.addr()
    }

    /// The in-process [`Master`] behind the master server — the same
    /// instance the wire mutates, so tests can assert on metadata
    /// without another RPC layer.
    pub fn master(&self) -> &Arc<Master> {
        self.master_server.master()
    }

    /// The record of injected faults that have fired so far.
    pub fn fault_log(&self) -> &Arc<FaultLog> {
        &self.fault_log
    }

    /// The shared worker transport.
    pub fn transport(&self) -> &Arc<TcpTransport> {
        &self.transport
    }

    /// A fresh wire-backed [`MasterClient`] for this cluster's master.
    pub fn master_client(&self) -> MasterClient {
        MasterClient::connect(self.master_server.addr()).with_deadline(self.cfg.retry.deadline)
    }

    /// Creates a client whose metadata *and* data paths both run over
    /// TCP, carrying the cluster's retry and hedge policies.
    pub fn client(&self) -> Client {
        Client::new(Arc::new(self.master_client()), self.transport.clone())
            .with_retry(self.cfg.retry)
            .with_hedge(self.cfg.hedge)
    }

    /// Collects per-worker service counters over the wire. Workers that
    /// fail to answer report defaults.
    pub fn worker_stats(&self) -> Result<Vec<WorkerStats>, StoreError> {
        Ok(self
            .workers
            .iter()
            .map(|w| {
                self.transport
                    .call(w.id(), Request::Stats, Duration::from_secs(5))
                    .and_then(|r| r.stats())
                    .unwrap_or_default()
            })
            .collect())
    }

    /// Gracefully stops the whole cluster: each worker drains its queue
    /// and exits (over the wire), then the master server closes.
    pub fn shutdown(self) {
        for w in &self.workers {
            let _ = self
                .transport
                .call(w.id(), Request::Shutdown, Duration::from_secs(10));
        }
        let client = self.master_client();
        let _ = client.shutdown_server();
        for w in self.workers {
            w.join();
        }
        self.master_server.join();
    }
}

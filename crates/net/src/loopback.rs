//! A full store cluster over loopback TCP: N [`WorkerServer`]s, a
//! [`MasterServer`] and a wire [`Client`] — the drop-in twin of the
//! in-process `StoreCluster`, with every byte crossing a real socket.

use spcache_store::backing::UnderStore;
use spcache_store::client::Client;
use spcache_store::fault::FaultLog;
use spcache_store::master::Master;
use spcache_store::rpc::{Request, StoreError, WorkerStats};
use spcache_store::supervisor::{Supervisor, SupervisorCore};
use spcache_store::transport::Transport;
use spcache_store::StoreConfig;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use crate::master_net::{MasterClient, MasterServer};
use crate::server::WorkerServer;
use crate::tcp::TcpTransport;

/// A running loopback-TCP store cluster.
///
/// # Examples
///
/// ```
/// use spcache_net::TcpCluster;
/// use spcache_store::StoreConfig;
///
/// let cluster = TcpCluster::spawn(StoreConfig::unthrottled(3));
/// let client = cluster.client();
/// client.write(1, b"over real sockets", &[0, 2]).unwrap();
/// assert_eq!(client.read(1).unwrap(), b"over real sockets");
/// cluster.shutdown();
/// ```
#[derive(Debug)]
pub struct TcpCluster {
    // Declared first so it drops (stopping its heartbeat thread) before
    // the worker servers go away — mirrors `StoreCluster`.
    supervisor: Option<Supervisor>,
    workers: Vec<WorkerServer>,
    master_server: MasterServer,
    transport: Arc<TcpTransport>,
    fault_log: Arc<FaultLog>,
    under: Option<Arc<UnderStore>>,
    cfg: StoreConfig,
}

impl TcpCluster {
    /// Spawns `cfg.n_workers` worker servers and a master server, all on
    /// ephemeral loopback ports. Worker threads get the data half of
    /// `cfg.faults`, the servers the wire half; both log into
    /// [`TcpCluster::fault_log`].
    ///
    /// # Panics
    ///
    /// Panics if `cfg.n_workers == 0` or a listener cannot bind.
    pub fn spawn(cfg: StoreConfig) -> Self {
        TcpCluster::spawn_with_under_store(cfg, None)
    }

    /// Like [`TcpCluster::spawn`], with a backing under-store the
    /// supervisor's recovery sweep (and clients created via
    /// [`TcpCluster::client`]) heal from. When `cfg.supervisor.enabled`,
    /// the [`Supervisor`] runs master-side over this cluster's own wire
    /// transport — the deployment shape of `spcached master`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.n_workers == 0` or a listener cannot bind.
    pub fn spawn_with_under_store(cfg: StoreConfig, under: Option<Arc<UnderStore>>) -> Self {
        assert!(cfg.n_workers > 0, "need at least one worker");
        let fault_log = Arc::new(FaultLog::new());
        let io_shards = std::thread::available_parallelism().map_or(1, |n| n.get());
        let workers: Vec<WorkerServer> = (0..cfg.n_workers)
            .map(|id| {
                // Budgeted workers spill into the cluster's shared
                // under-store tier (mirrors `StoreCluster`): whole-file
                // checkpoints there make evictions free drops.
                WorkerServer::spawn_sharded_with_spill(
                    id,
                    "127.0.0.1:0",
                    &cfg,
                    Arc::clone(&fault_log),
                    io_shards,
                    under.clone(),
                )
                .expect("bind worker listener")
            })
            .collect();
        let addrs: Vec<SocketAddr> = workers.iter().map(WorkerServer::addr).collect();
        let master = Arc::new(Master::new());
        master.ensure_workers(cfg.n_workers);
        let master_server = MasterServer::spawn_with_deadline(
            master.clone(),
            "127.0.0.1:0",
            addrs.clone(),
            cfg.executor_deadline,
        )
        .expect("bind master listener");
        let transport =
            Arc::new(TcpTransport::connect(addrs).with_deadline(cfg.retry.deadline));
        let supervisor = cfg.supervisor.enabled.then(|| {
            let t: Arc<dyn Transport> = transport.clone();
            Supervisor::spawn(SupervisorCore::new(
                master,
                t,
                under.clone(),
                cfg.supervisor,
                cfg.retry,
            ))
        });
        TcpCluster {
            supervisor,
            workers,
            master_server,
            transport,
            fault_log,
            under,
            cfg,
        }
    }

    /// Number of workers.
    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    /// Worker listen addresses, in index order.
    pub fn worker_addrs(&self) -> Vec<SocketAddr> {
        self.workers.iter().map(WorkerServer::addr).collect()
    }

    /// The master's listen address.
    pub fn master_addr(&self) -> SocketAddr {
        self.master_server.addr()
    }

    /// The in-process [`Master`] behind the master server — the same
    /// instance the wire mutates, so tests can assert on metadata
    /// without another RPC layer.
    pub fn master(&self) -> &Arc<Master> {
        self.master_server.master()
    }

    /// The record of injected faults that have fired so far.
    pub fn fault_log(&self) -> &Arc<FaultLog> {
        &self.fault_log
    }

    /// The shared worker transport.
    pub fn transport(&self) -> &Arc<TcpTransport> {
        &self.transport
    }

    /// The supervisor, when `cfg.supervisor.enabled` spawned one.
    pub fn supervisor(&self) -> Option<&Supervisor> {
        self.supervisor.as_ref()
    }

    /// The attached under-store, when the cluster was spawned with one.
    pub fn under_store(&self) -> Option<&Arc<UnderStore>> {
        self.under.as_ref()
    }

    /// A fresh wire-backed [`MasterClient`] for this cluster's master.
    pub fn master_client(&self) -> MasterClient {
        MasterClient::connect(self.master_server.addr()).with_deadline(self.cfg.retry.deadline)
    }

    /// Creates a client whose metadata *and* data paths both run over
    /// TCP, carrying the cluster's retry and hedge policies. Under a
    /// supervisor the client is additionally **fenced** and applies the
    /// configured degraded-mode admission policy; the cluster's
    /// under-store, if any, is attached for read-path healing.
    pub fn client(&self) -> Client {
        let mut c = Client::new(Arc::new(self.master_client()), self.transport.clone())
            .with_retry(self.cfg.retry)
            .with_hedge(self.cfg.hedge)
            .with_fencing(self.cfg.supervisor.enabled)
            .with_degraded_policy(self.cfg.supervisor.degraded)
            .with_verify(self.cfg.verify_reads)
            .with_parity(self.cfg.parity);
        if let Some(under) = &self.under {
            c = c.with_under_store(under.clone());
        }
        c
    }

    /// Collects per-worker service counters over the wire. Workers that
    /// fail to answer report defaults.
    pub fn worker_stats(&self) -> Result<Vec<WorkerStats>, StoreError> {
        Ok(self
            .workers
            .iter()
            .map(|w| {
                self.transport
                    .call(w.id(), Request::Stats, Duration::from_secs(5))
                    .and_then(|r| r.stats())
                    .unwrap_or_default()
            })
            .collect())
    }

    /// Gracefully stops the whole cluster: the supervisor halts first
    /// (so it cannot mis-record the drain as deaths), then each worker
    /// drains its queue and exits (over the wire), then the master
    /// server closes.
    pub fn shutdown(mut self) {
        if let Some(mut s) = self.supervisor.take() {
            s.stop();
        }
        for w in &self.workers {
            let _ = self
                .transport
                .call(w.id(), Request::Shutdown, Duration::from_secs(10));
        }
        let client = self.master_client();
        let _ = client.shutdown_server();
        for w in self.workers {
            w.join();
        }
        self.master_server.join();
    }
}

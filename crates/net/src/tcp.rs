//! Client-side TCP transport: [`TcpTransport`] implements the store's
//! [`Transport`] trait over real sockets.
//!
//! One connection per worker, lazily established and pooled. Each
//! in-flight request gets a fresh `req_id`; a per-connection reader
//! thread demultiplexes reply frames back to the waiting
//! [`Receiver`]s, so any number of requests overlap on one socket and
//! replies may arrive out of order (the fork-join read path depends on
//! this).
//!
//! Failure mapping (the wire-level half of the retry story):
//!
//! * connect/write/read failure, connection reset, a frame cut off
//!   mid-stream → [`StoreError::Io`] — *retryable*; the remote may be
//!   healthy and a reconnect can succeed,
//! * protocol violation in a reply → [`StoreError::Codec`] — permanent,
//! * no reply within the deadline → the caller's `recv_timeout` yields
//!   [`StoreError::Timeout`] exactly as with the in-process channel
//!   transport.
//!
//! The configured [`deadline`](TcpTransport::with_deadline) (take it
//! from `RetryPolicy::deadline`) maps onto the sockets: it bounds
//! connection establishment, every blocking write, and the reader
//! thread's poll interval; entries that outlive `2 * deadline` without
//! a reply are reaped with [`StoreError::Timeout`] so the pending map
//! cannot grow without bound.

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use spcache_store::rpc::{Reply, Request, StoreError};
use spcache_store::transport::Transport;
use std::collections::HashMap;
use std::io::{self, BufWriter};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::frame::{decode_reply, encode_request, read_frame, write_frame, Frame};

/// Requests waiting for their reply frame, keyed by `req_id`. Shared
/// between submitters and the connection's reader thread.
type PendingMap = Arc<Mutex<HashMap<u64, (Instant, Sender<Reply>)>>>;

/// One live connection to a worker.
#[derive(Debug)]
struct Conn {
    writer: BufWriter<TcpStream>,
    pending: PendingMap,
}

impl Conn {
    /// Fails every in-flight request with `err` (connection death).
    fn fail_all(pending: &PendingMap, err: &StoreError) {
        for (_, (_, tx)) in pending.lock().drain() {
            let _ = tx.send(Reply::Err(err.clone()));
        }
    }
}

/// Per-worker connection slot.
#[derive(Debug)]
struct Peer {
    addr: SocketAddr,
    conn: Mutex<Option<Conn>>,
}

/// A [`Transport`] over real TCP connections, one per worker.
#[derive(Debug)]
pub struct TcpTransport {
    peers: Vec<Peer>,
    next_id: AtomicU64,
    deadline: Duration,
}

impl TcpTransport {
    /// A transport speaking to workers at `addrs` (worker `i` ↔
    /// `addrs[i]`), with the default 5 s deadline.
    ///
    /// # Panics
    ///
    /// Panics if `addrs` is empty.
    pub fn connect(addrs: Vec<SocketAddr>) -> Self {
        assert!(!addrs.is_empty(), "need at least one worker address");
        TcpTransport {
            peers: addrs
                .into_iter()
                .map(|addr| Peer {
                    addr,
                    conn: Mutex::new(None),
                })
                .collect(),
            next_id: AtomicU64::new(1),
            deadline: Duration::from_secs(5),
        }
    }

    /// Sets the socket deadline (builder style). Pass the client's
    /// `RetryPolicy::deadline` so wire-level waits and the retry loop
    /// agree on what "too slow" means.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline.max(Duration::from_millis(1));
        self
    }

    /// The worker address list.
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.peers.iter().map(|p| p.addr).collect()
    }

    /// Establishes a connection to `worker` and spawns its reader
    /// thread.
    fn dial(&self, worker: usize) -> io::Result<Conn> {
        let peer = &self.peers[worker];
        let stream = TcpStream::connect_timeout(&peer.addr, self.deadline)?;
        stream.set_nodelay(true)?;
        stream.set_write_timeout(Some(self.deadline))?;
        let pending: PendingMap = Arc::new(Mutex::new(HashMap::new()));
        let reader = stream.try_clone()?;
        // The reader polls at the deadline so it can reap abandoned
        // entries even when the server goes silent without closing.
        reader.set_read_timeout(Some(self.deadline))?;
        let reader_pending = Arc::clone(&pending);
        let reap_after = self.deadline * 2;
        std::thread::Builder::new()
            .name(format!("spcache-net-rx-{worker}"))
            .spawn(move || reader_loop(reader, &reader_pending, worker, reap_after))
            .expect("spawn reader thread");
        Ok(Conn {
            writer: BufWriter::new(stream),
            pending,
        })
    }
}

/// Demultiplexes reply frames into the pending map until the connection
/// dies, then fails whatever is still in flight.
fn reader_loop(mut stream: TcpStream, pending: &PendingMap, worker: usize, reap_after: Duration) {
    let death = loop {
        match read_frame(&mut stream) {
            Ok(Some(buf)) => {
                let reply = match Frame::parse(buf) {
                    Ok(frame) => match decode_reply(&frame) {
                        Ok(reply) => {
                            if let Some((_, tx)) = pending.lock().remove(&frame.req_id) {
                                let _ = tx.send(reply);
                            }
                            continue;
                        }
                        Err(e) => e,
                    },
                    Err(e) => e,
                };
                // A malformed reply poisons the whole stream (framing is
                // lost); surface the codec error and drop the connection.
                break reply;
            }
            Ok(None) => break StoreError::Io(worker),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // Idle tick: reap requests nobody will answer.
                let now = Instant::now();
                pending.lock().retain(|_, (t0, tx)| {
                    if now.duration_since(*t0) > reap_after {
                        let _ = tx.send(Reply::Err(StoreError::Timeout(worker)));
                        false
                    } else {
                        true
                    }
                });
                // A dropped writer half means the transport is gone and
                // this thread should die with it.
                if Arc::strong_count(pending) == 1 && pending.lock().is_empty() {
                    break StoreError::Io(worker);
                }
            }
            Err(_) => break StoreError::Io(worker),
        }
    };
    Conn::fail_all(pending, &death);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

impl Transport for TcpTransport {
    fn n_workers(&self) -> usize {
        self.peers.len()
    }

    fn submit(&self, worker: usize, req: Request) -> Result<Receiver<Reply>, StoreError> {
        assert!(worker < self.peers.len(), "worker index out of range");
        let mut slot = self.peers[worker].conn.lock();
        if slot.is_none() {
            match self.dial(worker) {
                Ok(conn) => *slot = Some(conn),
                Err(_) => return Err(StoreError::Io(worker)),
            }
        }
        let conn = slot.as_mut().expect("connection just ensured");
        let req_id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = bounded(1);
        conn.pending.lock().insert(req_id, (Instant::now(), tx));
        let wire = encode_request(&req, req_id);
        if let Err(_e) = write_frame(&mut conn.writer, &wire) {
            // Connection is broken: fail everything on it (including the
            // entry just inserted) and clear the slot so the next submit
            // redials.
            let dead = slot.take().expect("connection present");
            let _ = dead.writer.get_ref().shutdown(std::net::Shutdown::Both);
            Conn::fail_all(&dead.pending, &StoreError::Io(worker));
            return Err(StoreError::Io(worker));
        }
        Ok(rx)
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        // Shut the sockets down so reader threads observe EOF and exit
        // instead of lingering on a blocking read.
        for peer in &self.peers {
            if let Some(conn) = peer.conn.lock().take() {
                let _ = conn.writer.get_ref().shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcache_store::rpc::PartKey;
    use std::net::TcpListener;

    #[test]
    fn refused_connection_is_retryable_io() {
        // Bind-then-drop guarantees a port nobody listens on.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let t = TcpTransport::connect(vec![addr]).with_deadline(Duration::from_millis(200));
        let err = t
            .submit(0, Request::Get { key: PartKey::new(1, 0) })
            .expect_err("must fail");
        assert_eq!(err, StoreError::Io(0));
        assert!(err.is_retryable());
    }

    #[test]
    fn server_closing_mid_request_fails_pending_with_io() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            // Read the request frame, then slam the connection shut
            // without replying.
            let mut s = stream.try_clone().unwrap();
            let _ = read_frame(&mut s);
            drop(stream);
        });
        let t = TcpTransport::connect(vec![addr]).with_deadline(Duration::from_millis(300));
        let rx = t
            .submit(0, Request::Get { key: PartKey::new(1, 0) })
            .unwrap();
        let reply = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(reply, Reply::Err(StoreError::Io(0)));
        server.join().unwrap();
    }

    #[test]
    fn garbage_reply_surfaces_codec_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let _ = read_frame(&mut stream);
            // A frame with a bogus version byte.
            let mut evil = vec![];
            evil.extend_from_slice(&10u32.to_le_bytes());
            evil.extend_from_slice(&[0xBA; 10]);
            use std::io::Write;
            stream.write_all(&evil).unwrap();
            stream.flush().unwrap();
            // Hold the connection open long enough for the client to
            // parse the garbage.
            std::thread::sleep(Duration::from_millis(200));
        });
        let t = TcpTransport::connect(vec![addr]).with_deadline(Duration::from_millis(300));
        let rx = t.submit(0, Request::Ping).unwrap();
        let reply = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let Reply::Err(e) = reply else {
            panic!("expected error, got {reply:?}")
        };
        assert!(matches!(e, StoreError::Codec(_)), "got {e:?}");
        assert!(!e.is_retryable(), "codec violations must be permanent");
        server.join().unwrap();
    }
}

//! Client-side TCP transport: [`TcpTransport`] implements the store's
//! [`Transport`] trait over real sockets, driven by readiness-polled
//! event loops instead of per-connection reader threads.
//!
//! One connection per worker, lazily established and pooled.
//! Connections are sharded across a small set of I/O loop threads
//! (worker `w` lives on shard `w % N`, one shard per core by default);
//! each loop multiplexes its sockets with a [`mio::Poll`]er. Each
//! in-flight request gets a fresh `req_id`; the owning loop
//! demultiplexes reply frames back to the waiting [`Receiver`]s, so
//! any number of requests overlap on one socket and replies may arrive
//! out of order (the fork-join read path depends on this).
//!
//! The data path is batched and zero-copy: submitters encode frames as
//! header + [`bytes::Bytes`] payload parts ([`crate::frame::encode_request_parts`]),
//! the loop gathers every frame queued since its last wakeup into
//! shared `writev` calls ([`crate::poll::WriteQueue`]), and inbound
//! frames are decoded incrementally off non-blocking reads
//! ([`crate::poll::FrameReader`]). A burst of pipelined requests —
//! e.g. the fork-join fan-out submitting k partition reads at once via
//! [`Transport::submit_batch`] — shares one syscall round instead of
//! paying one write and one thread handoff each.
//!
//! Failure mapping (the wire-level half of the retry story):
//!
//! * connect/write/read failure, connection reset, a frame cut off
//!   mid-stream → [`StoreError::Io`] — *retryable*; the remote may be
//!   healthy and a reconnect can succeed,
//! * protocol violation in a reply → [`StoreError::Codec`] — permanent,
//! * no reply within the deadline → the caller's `recv_timeout` yields
//!   [`StoreError::Timeout`] exactly as with the in-process channel
//!   transport.
//!
//! The configured [`deadline`](TcpTransport::with_deadline) (take it
//! from `RetryPolicy::deadline`) maps onto the loop's timer heap:
//! it bounds connection establishment, and every submitted request
//! arms a poller timer at `2 * deadline` — entries that outlive it
//! without a reply are reaped with [`StoreError::Timeout`] so the
//! pending map cannot grow without bound.

use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TryRecvError};
use mio::{Events, Interest, Poll, Token, Waker};
use parking_lot::Mutex;
use spcache_store::rpc::{Reply, Request, StoreError};
use spcache_store::transport::Transport;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;

use crate::frame::{decode_reply, encode_request_parts, Frame};
use crate::poll::{FrameReader, PumpStatus, Timers, WireFrame, WriteQueue};

/// Token reserved for the shard's cross-thread waker.
const WAKER: Token = Token(0);

/// Socket tokens are the worker index shifted past the waker slot.
fn worker_token(worker: usize) -> Token {
    Token(worker + 1)
}

/// Work handed from submitters to a shard's event loop.
enum Cmd {
    /// Adopt a freshly connected (non-blocking) socket for `worker`.
    Dial { worker: usize, stream: TcpStream },
    /// Queue one encoded request frame on `worker`'s connection.
    Submit {
        worker: usize,
        req_id: u64,
        frame: WireFrame,
        /// Reap the pending entry with `Timeout` at this instant.
        reap_at: Instant,
        reply: Sender<Reply>,
    },
    /// Drain and exit (transport drop).
    Shutdown,
}

/// Peer state shared between submitters and the owning shard: the
/// `connected` flag is the dial gate — set under its lock by the first
/// submitter to find it false, cleared by the loop when the connection
/// dies so the next submit redials.
struct PeerShared {
    addr: SocketAddr,
    connected: Mutex<bool>,
}

/// Handle to one I/O loop thread.
struct Shard {
    tx: Sender<Cmd>,
    waker: Waker,
    thread: Option<JoinHandle<()>>,
}

/// A [`Transport`] over real TCP connections, one per worker, served
/// by sharded readiness event loops.
pub struct TcpTransport {
    peers: Arc<Vec<PeerShared>>,
    shards: Vec<Shard>,
    next_id: AtomicU64,
    deadline: Duration,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("addrs", &self.addrs())
            .field("io_shards", &self.shards.len())
            .field("deadline", &self.deadline)
            .finish()
    }
}

impl TcpTransport {
    /// A transport speaking to workers at `addrs` (worker `i` ↔
    /// `addrs[i]`), with the default 5 s deadline and one I/O shard
    /// per core (capped at the worker count).
    ///
    /// # Panics
    ///
    /// Panics if `addrs` is empty or the poller cannot be created.
    pub fn connect(addrs: Vec<SocketAddr>) -> Self {
        let shards = default_shards().min(addrs.len().max(1));
        Self::connect_sharded(addrs, shards)
    }

    /// Like [`connect`](TcpTransport::connect) with an explicit I/O
    /// shard count (the `spcached --io-shards` flag lands here).
    ///
    /// # Panics
    ///
    /// Panics if `addrs` is empty or the poller cannot be created.
    pub fn connect_sharded(addrs: Vec<SocketAddr>, io_shards: usize) -> Self {
        assert!(!addrs.is_empty(), "need at least one worker address");
        crate::poll::tune_allocator_once();
        let peers: Arc<Vec<PeerShared>> = Arc::new(
            addrs
                .into_iter()
                .map(|addr| PeerShared {
                    addr,
                    connected: Mutex::new(false),
                })
                .collect(),
        );
        let n = io_shards.clamp(1, peers.len());
        let shards = (0..n)
            .map(|i| spawn_shard(i, Arc::clone(&peers)))
            .collect();
        TcpTransport {
            peers,
            shards,
            next_id: AtomicU64::new(1),
            deadline: Duration::from_secs(5),
        }
    }

    /// Sets the socket deadline (builder style). Pass the client's
    /// `RetryPolicy::deadline` so wire-level waits and the retry loop
    /// agree on what "too slow" means.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline.max(Duration::from_millis(1));
        self
    }

    /// The worker address list.
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.peers.iter().map(|p| p.addr).collect()
    }

    /// Number of I/O loop threads serving this transport.
    pub fn io_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, worker: usize) -> &Shard {
        &self.shards[worker % self.shards.len()]
    }

    /// Ensures `worker`'s connection is live (dialling synchronously if
    /// not), then returns whether a `Dial` was handed to the loop.
    /// Serialises concurrent dial attempts on the peer's lock.
    fn ensure_connected(&self, worker: usize) -> Result<(), StoreError> {
        let peer = &self.peers[worker];
        let mut connected = peer.connected.lock();
        if *connected {
            return Ok(());
        }
        let stream = TcpStream::connect_timeout(&peer.addr, self.deadline)
            .and_then(|s| {
                s.set_nodelay(true)?;
                s.set_nonblocking(true)?;
                crate::poll::tune_socket(&s);
                Ok(s)
            })
            .map_err(|_| StoreError::Io(worker))?;
        let shard = self.shard_of(worker);
        shard
            .tx
            .send(Cmd::Dial { worker, stream })
            .map_err(|_| StoreError::Io(worker))?;
        *connected = true;
        Ok(())
    }

    /// Builds the `Submit` command for one request (fresh `req_id`,
    /// parts-encoded frame, reap deadline) plus its reply receiver.
    fn make_submit(&self, worker: usize, req: &Request) -> (Cmd, Receiver<Reply>) {
        let req_id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = bounded(1);
        let cmd = Cmd::Submit {
            worker,
            req_id,
            frame: encode_request_parts(req, req_id),
            reap_at: Instant::now() + self.deadline * 2,
            reply: tx,
        };
        (cmd, rx)
    }
}

/// One I/O shard per core by default (this machine's parallelism).
fn default_shards() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

impl Transport for TcpTransport {
    fn n_workers(&self) -> usize {
        self.peers.len()
    }

    fn submit(&self, worker: usize, req: Request) -> Result<Receiver<Reply>, StoreError> {
        assert!(worker < self.peers.len(), "worker index out of range");
        self.ensure_connected(worker)?;
        let (cmd, rx) = self.make_submit(worker, &req);
        let shard = self.shard_of(worker);
        shard.tx.send(cmd).map_err(|_| StoreError::Io(worker))?;
        let _ = shard.waker.wake();
        Ok(rx)
    }

    /// Batched submission: every frame reaches its shard before a
    /// single wake per shard, so the loop flushes the whole burst in
    /// shared `writev` calls — this is what makes a k-way fork-join
    /// read one syscall round instead of k.
    fn submit_batch(
        &self,
        reqs: Vec<(usize, Request)>,
    ) -> Result<Vec<Receiver<Reply>>, StoreError> {
        let mut receivers = Vec::with_capacity(reqs.len());
        let mut woken = vec![false; self.shards.len()];
        for (worker, req) in reqs {
            assert!(worker < self.peers.len(), "worker index out of range");
            self.ensure_connected(worker)?;
            let (cmd, rx) = self.make_submit(worker, &req);
            self.shard_of(worker)
                .tx
                .send(cmd)
                .map_err(|_| StoreError::Io(worker))?;
            woken[worker % self.shards.len()] = true;
            receivers.push(rx);
        }
        for (i, fire) in woken.into_iter().enumerate() {
            if fire {
                let _ = self.shards[i].waker.wake();
            }
        }
        Ok(receivers)
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        for shard in &mut self.shards {
            let _ = shard.tx.send(Cmd::Shutdown);
            let _ = shard.waker.wake();
            if let Some(t) = shard.thread.take() {
                let _ = t.join();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The shard event loop
// ---------------------------------------------------------------------------

/// One live multiplexed connection owned by a shard loop.
struct Conn {
    stream: TcpStream,
    reader: FrameReader,
    wq: WriteQueue,
    pending: HashMap<u64, Sender<Reply>>,
    /// Whether the socket is currently registered for write readiness.
    writable_armed: bool,
}

impl Conn {
    fn fail_all(&mut self, err: &StoreError) {
        for (_, tx) in self.pending.drain() {
            let _ = tx.send(Reply::Err(err.clone()));
        }
    }
}

fn spawn_shard(index: usize, peers: Arc<Vec<PeerShared>>) -> Shard {
    let poll = Poll::new().expect("create poller");
    let waker = Waker::new(poll.registry(), WAKER).expect("create waker");
    let (tx, rx) = unbounded();
    let thread = std::thread::Builder::new()
        .name(format!("spcache-net-io-{index}"))
        .spawn(move || shard_loop(poll, rx, &peers))
        .expect("spawn io shard");
    Shard {
        tx,
        waker,
        thread: Some(thread),
    }
}

/// The readiness loop: drains submitter commands, pumps readable
/// sockets through the incremental decoder, batch-flushes write
/// queues, and reaps expired request deadlines — all on one thread,
/// no per-connection threads anywhere.
fn shard_loop(mut poll: Poll, rx: Receiver<Cmd>, peers: &[PeerShared]) {
    let mut events = Events::with_capacity(256);
    let mut conns: HashMap<usize, Conn> = HashMap::new();
    // Timer keys are (worker, req_id); req_ids are globally unique, so
    // a stale timer outliving its connection reaps nothing.
    let mut timers: Timers<(usize, u64)> = Timers::new();
    let mut inbound: Vec<Bytes> = Vec::new();

    'run: loop {
        let timeout = timers
            .next_deadline()
            .map(|d| d.saturating_duration_since(Instant::now()));
        if poll.poll(&mut events, timeout).is_err() {
            break 'run; // poller failure is fatal; drain below
        }

        // Commands first: frames submitted since the last wakeup land
        // in the write queues before the single flush pass below.
        let mut dirty: Vec<usize> = Vec::new();
        loop {
            match rx.try_recv() {
                Ok(Cmd::Dial { worker, stream }) => {
                    let ok = poll
                        .registry()
                        .register(&stream, worker_token(worker), Interest::READABLE)
                        .is_ok();
                    if ok {
                        conns.insert(
                            worker,
                            Conn {
                                stream,
                                reader: FrameReader::new(),
                                wq: WriteQueue::new(),
                                pending: HashMap::new(),
                                writable_armed: false,
                            },
                        );
                    } else {
                        *peers[worker].connected.lock() = false;
                    }
                }
                Ok(Cmd::Submit {
                    worker,
                    req_id,
                    frame,
                    reap_at,
                    reply,
                }) => match conns.get_mut(&worker) {
                    Some(conn) => {
                        conn.pending.insert(req_id, reply);
                        conn.wq.push(frame);
                        timers.insert(reap_at, (worker, req_id));
                        if !dirty.contains(&worker) {
                            dirty.push(worker);
                        }
                    }
                    // The connection died between submit and delivery;
                    // a retryable error sends the caller back around.
                    None => {
                        let _ = reply.send(Reply::Err(StoreError::Io(worker)));
                    }
                },
                Ok(Cmd::Shutdown) | Err(TryRecvError::Disconnected) => break 'run,
                Err(TryRecvError::Empty) => break,
            }
        }

        // Socket readiness.
        for ev in &events {
            let Token(t) = ev.token();
            if t == WAKER.0 {
                continue;
            }
            let worker = t - 1;
            let Some(conn) = conns.get_mut(&worker) else {
                continue;
            };
            if ev.is_readable() || ev.is_error() {
                if let Some(death) = pump_replies(conn, worker, &mut inbound) {
                    kill_conn(&poll, &mut conns, peers, worker, &death);
                    continue;
                }
            }
            if ev.is_writable() && !dirty.contains(&worker) {
                dirty.push(worker);
            }
        }

        // One flush per touched connection: everything queued above
        // goes out in batched vectored writes.
        for worker in dirty {
            let Some(conn) = conns.get_mut(&worker) else {
                continue;
            };
            if let Err(death) = flush_conn(&poll, conn, worker) {
                kill_conn(&poll, &mut conns, peers, worker, &death);
            }
        }

        // Reap expired deadlines.
        let now = Instant::now();
        while let Some((worker, req_id)) = timers.pop_due(now) {
            if let Some(conn) = conns.get_mut(&worker) {
                if let Some(tx) = conn.pending.remove(&req_id) {
                    let _ = tx.send(Reply::Err(StoreError::Timeout(worker)));
                }
            }
        }
    }

    // Shutdown (or poller death): fail whatever is still in flight so
    // no caller blocks forever, and mark peers disconnected.
    for (worker, mut conn) in conns.drain() {
        conn.fail_all(&StoreError::Io(worker));
        let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        *peers[worker].connected.lock() = false;
    }
}

/// Pumps a readable connection and routes every decoded reply to its
/// waiting receiver. Returns the connection's cause of death, if any.
fn pump_replies(conn: &mut Conn, worker: usize, inbound: &mut Vec<Bytes>) -> Option<StoreError> {
    inbound.clear();
    let status = conn.reader.pump(&mut conn.stream, inbound);
    for buf in inbound.drain(..) {
        match Frame::parse(buf).and_then(|f| decode_reply(&f).map(|r| (f.req_id, r))) {
            Ok((req_id, reply)) => {
                if let Some(tx) = conn.pending.remove(&req_id) {
                    let _ = tx.send(reply);
                }
            }
            // A malformed reply poisons the whole stream (framing is
            // lost); surface the codec error and drop the connection.
            Err(e) => return Some(e),
        }
    }
    match status {
        Ok(PumpStatus::Open) => None,
        Ok(PumpStatus::Closed) | Err(_) => Some(StoreError::Io(worker)),
    }
}

/// Flushes a connection's write queue, arming or disarming write
/// interest to match whether the socket pushed back.
fn flush_conn(poll: &Poll, conn: &mut Conn, worker: usize) -> Result<(), StoreError> {
    match conn.wq.flush(&mut conn.stream) {
        Ok(drained) => {
            if drained && conn.writable_armed {
                conn.writable_armed = false;
                let _ = poll
                    .registry()
                    .reregister(&conn.stream, worker_token(worker), Interest::READABLE);
            } else if !drained && !conn.writable_armed {
                conn.writable_armed = true;
                let _ = poll.registry().reregister(
                    &conn.stream,
                    worker_token(worker),
                    Interest::READABLE | Interest::WRITABLE,
                );
            }
            Ok(())
        }
        Err(_) => Err(StoreError::Io(worker)),
    }
}

/// Tears down a dead connection: fails its in-flight requests with
/// `death` and clears the peer's connected flag so the next submit
/// redials.
fn kill_conn(
    poll: &Poll,
    conns: &mut HashMap<usize, Conn>,
    peers: &[PeerShared],
    worker: usize,
    death: &StoreError,
) {
    if let Some(mut conn) = conns.remove(&worker) {
        let _ = poll.registry().deregister(&conn.stream);
        let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        conn.fail_all(death);
    }
    *peers[worker].connected.lock() = false;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{encode_reply, read_frame, write_frame};
    use spcache_store::rpc::PartKey;
    use std::net::TcpListener;

    #[test]
    fn refused_connection_is_retryable_io() {
        // Bind-then-drop guarantees a port nobody listens on.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let t = TcpTransport::connect(vec![addr]).with_deadline(Duration::from_millis(200));
        let err = t
            .submit(0, Request::Get { key: PartKey::new(1, 0) })
            .expect_err("must fail");
        assert_eq!(err, StoreError::Io(0));
        assert!(err.is_retryable());
    }

    #[test]
    fn server_closing_mid_request_fails_pending_with_io() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            // Read the request frame, then slam the connection shut
            // without replying.
            let mut s = stream.try_clone().unwrap();
            let _ = read_frame(&mut s);
            drop(stream);
        });
        let t = TcpTransport::connect(vec![addr]).with_deadline(Duration::from_millis(300));
        let rx = t
            .submit(0, Request::Get { key: PartKey::new(1, 0) })
            .unwrap();
        let reply = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(reply, Reply::Err(StoreError::Io(0)));
        server.join().unwrap();
    }

    #[test]
    fn garbage_reply_surfaces_codec_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let _ = read_frame(&mut stream);
            // A frame with a bogus version byte.
            let mut evil = vec![];
            evil.extend_from_slice(&10u32.to_le_bytes());
            evil.extend_from_slice(&[0xBA; 10]);
            use std::io::Write;
            stream.write_all(&evil).unwrap();
            stream.flush().unwrap();
            // Hold the connection open long enough for the client to
            // parse the garbage.
            std::thread::sleep(Duration::from_millis(200));
        });
        let t = TcpTransport::connect(vec![addr]).with_deadline(Duration::from_millis(300));
        let rx = t.submit(0, Request::Ping).unwrap();
        let reply = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let Reply::Err(e) = reply else {
            panic!("expected error, got {reply:?}")
        };
        assert!(matches!(e, StoreError::Codec(_)), "got {e:?}");
        assert!(!e.is_retryable(), "codec violations must be permanent");
        server.join().unwrap();
    }

    /// A blocking echo server that answers every request with a `Pong`
    /// carrying the request id in the epoch field, slightly shuffling
    /// reply order to exercise out-of-order demultiplexing.
    fn pong_server(listener: TcpListener) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut held: Option<Vec<u8>> = None;
            while let Ok(Some(buf)) = read_frame(&mut stream) {
                let frame = Frame::parse(buf).unwrap();
                let wire = encode_reply(
                    &Reply::Pong {
                        worker: 0,
                        epoch: frame.req_id,
                    },
                    frame.req_id,
                );
                // Hold every other reply back one frame: replies go out
                // out of order relative to requests.
                match held.take() {
                    None => held = Some(wire),
                    Some(prev) => {
                        write_frame(&mut stream, &wire).unwrap();
                        write_frame(&mut stream, &prev).unwrap();
                    }
                }
            }
            if let Some(prev) = held {
                let _ = write_frame(&mut stream, &prev);
            }
        })
    }

    #[test]
    fn pipelined_batch_multiplexes_one_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = pong_server(listener);

        let t = TcpTransport::connect(vec![addr]).with_deadline(Duration::from_secs(2));
        let reqs: Vec<(usize, Request)> = (0..128).map(|_| (0, Request::Ping)).collect();
        let rxs = t.submit_batch(reqs).unwrap();
        // Every receiver gets the pong for *its* request id, proving
        // the demultiplexer never cross-wires replies under batching.
        let mut epochs = Vec::new();
        for rx in rxs {
            let reply = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            let Reply::Pong { epoch, .. } = reply else {
                panic!("expected pong, got {reply:?}")
            };
            epochs.push(epoch);
        }
        let mut sorted = epochs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 128, "every request got a distinct reply");
        assert_eq!(epochs, sorted, "receivers arrived in submit order");
        drop(t);
        server.join().unwrap();
    }
}

//! Event-loop plumbing shared by the TCP client and servers: an
//! incremental frame decoder for non-blocking sockets, a vectored
//! write queue that batches many frames into one `writev` syscall,
//! and a deadline timer heap.
//!
//! These three pieces are deliberately free of any socket ownership or
//! threading policy — the readiness loops in [`crate::tcp`],
//! [`crate::server`] and [`crate::master_net`] compose them around a
//! [`mio::Poll`] instance. Keeping them standalone makes the decoder
//! and write queue testable against plain in-memory readers/writers
//! (the codec proptests drive [`FrameReader`] with adversarial split
//! points without a socket in sight).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::io::{self, Read, Write};
use std::os::fd::AsFd;
use std::time::Instant;

use bytes::Bytes;

use crate::frame::{HEADER_LEN, MAX_FRAME};

/// Read granularity of [`FrameReader`]: one `read` syscall fills at
/// most this many bytes, and frames that fit entirely inside a single
/// chunk are returned as zero-copy slices of it.
pub const READ_CHUNK: usize = 64 * 1024;

/// Upper bound on iovecs handed to a single `writev` call. Linux
/// accepts up to `IOV_MAX` (1024); 64 keeps the stack array small
/// while still coalescing dozens of pipelined frames per syscall.
const MAX_IOV: usize = 64;

// ---------------------------------------------------------------------------
// FrameReader: incremental non-blocking frame decoder
// ---------------------------------------------------------------------------

/// What [`FrameReader::pump`] observed about the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PumpStatus {
    /// The socket would block (or the pump budget was exhausted); more
    /// frames may arrive later.
    Open,
    /// Clean EOF at a frame boundary — the peer closed between
    /// messages.
    Closed,
}

/// A frame whose length is known but whose body is still arriving; the
/// remainder is read straight into the exact-size buffer, so a frame
/// spanning many chunks costs one kernel→user copy total.
///
/// The buffer grows in zeroed steps of [`FILL_STEP`] just ahead of the
/// read cursor instead of being zeroed to `len` up front: for
/// multi-megabyte frames an up-front `vec![0; len]` pays a full
/// memset pass whenever the allocator recycles a dirty block, one
/// extra sweep over every payload byte received.
struct Partial {
    /// Target body length.
    len: usize,
    /// Body bytes received so far; `buf.len()` ≥ `filled` always.
    filled: usize,
    buf: Vec<u8>,
}

/// Zeroed-growth step for [`Partial`] buffers (must be ≥ 1). Larger
/// than [`READ_CHUNK`]: once a frame's length is known, each `read`
/// may drain up to a full socket buffer in one syscall, while the step
/// stays small enough that the zero-then-overwrite window is still
/// cache-resident.
const FILL_STEP: usize = 1 << 20;

impl Partial {
    fn with_capacity(len: usize) -> Self {
        Partial {
            len,
            filled: 0,
            buf: Vec::with_capacity(len),
        }
    }

    /// Appends the next `data` bytes of the body (caller guarantees it
    /// fits). Returns the completed body when `len` is reached.
    fn extend(&mut self, data: &[u8]) -> Option<Vec<u8>> {
        debug_assert!(self.filled + data.len() <= self.len);
        self.buf.truncate(self.filled);
        self.buf.extend_from_slice(data);
        self.filled += data.len();
        self.complete()
    }

    /// The zeroed, not-yet-filled window the next `read` may land in.
    fn window(&mut self) -> &mut [u8] {
        let grow = (self.filled + FILL_STEP).min(self.len);
        if self.buf.len() < grow {
            self.buf.resize(grow, 0);
        }
        &mut self.buf[self.filled..]
    }

    /// Marks `n` bytes of the window as filled; returns the completed
    /// body when `len` is reached.
    fn advance(&mut self, n: usize) -> Option<Vec<u8>> {
        self.filled += n;
        debug_assert!(self.filled <= self.buf.len());
        self.complete()
    }

    fn complete(&mut self) -> Option<Vec<u8>> {
        if self.filled == self.len {
            let mut buf = std::mem::take(&mut self.buf);
            buf.truncate(self.len);
            Some(buf)
        } else {
            None
        }
    }
}

/// Incremental decoder for the length-prefixed wire framing, built for
/// non-blocking sockets: each [`pump`](FrameReader::pump) call drains
/// whatever the kernel has buffered and appends every completed frame
/// (the bytes *after* the length prefix, same contract as
/// [`crate::frame::read_frame`]) to the caller's vector.
///
/// Copy discipline: frames wholly contained in one read chunk are
/// zero-copy [`Bytes::slice`] views of that chunk; a frame straddling
/// a chunk boundary is completed into an exact-size buffer filled
/// directly by subsequent `read` calls. Partial length prefixes (< 4
/// bytes at a chunk tail) are the only bytes ever re-buffered.
#[derive(Default)]
pub struct FrameReader {
    /// 0–3 bytes of a length prefix split across reads.
    prefix: Vec<u8>,
    /// In-progress frame body that did not fit its origin chunk.
    partial: Option<Partial>,
}

impl FrameReader {
    /// New decoder with no buffered state.
    pub fn new() -> Self {
        Self::default()
    }

    /// True if a frame (or its length prefix) is partially buffered —
    /// EOF now would be mid-message, not a clean close.
    pub fn mid_frame(&self) -> bool {
        !self.prefix.is_empty() || self.partial.is_some()
    }

    /// Reads from `r` until it would block (or EOF), appending every
    /// completed frame to `out`.
    ///
    /// `WouldBlock` is not an error — it ends the pump with
    /// [`PumpStatus::Open`]. `Interrupted` reads are retried.
    ///
    /// # Errors
    ///
    /// `InvalidData` when a length prefix is below the minimum header
    /// size or above [`MAX_FRAME`]; `UnexpectedEof` when the stream
    /// ends mid-frame; any other I/O error from `r`.
    pub fn pump(&mut self, r: &mut impl Read, out: &mut Vec<Bytes>) -> io::Result<PumpStatus> {
        loop {
            // Finish an in-progress oversized/straddling frame first:
            // its remainder reads straight into the exact buffer.
            if let Some(p) = &mut self.partial {
                match r.read(p.window()) {
                    Ok(0) => return Err(eof_mid_frame()),
                    Ok(n) => {
                        if let Some(body) = p.advance(n) {
                            self.partial = None;
                            out.push(Bytes::from(body));
                        }
                        continue;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        return Ok(PumpStatus::Open)
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }

            let mut chunk = vec![0u8; READ_CHUNK];
            let n = match r.read(&mut chunk) {
                Ok(0) => {
                    return if self.mid_frame() {
                        Err(eof_mid_frame())
                    } else {
                        Ok(PumpStatus::Closed)
                    }
                }
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(PumpStatus::Open),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            chunk.truncate(n);
            let chunk = Bytes::from(chunk);
            self.scan_chunk(&chunk, out)?;
        }
    }

    /// Splits one freshly read chunk into complete frames (zero-copy
    /// slices) plus at most one trailing partial frame or prefix.
    fn scan_chunk(&mut self, chunk: &Bytes, out: &mut Vec<Bytes>) -> io::Result<()> {
        let mut pos = 0;

        // A split length prefix from the previous chunk comes first.
        if !self.prefix.is_empty() {
            let need = 4 - self.prefix.len();
            let take = need.min(chunk.len());
            self.prefix.extend_from_slice(&chunk[..take]);
            pos = take;
            if self.prefix.len() < 4 {
                return Ok(()); // still mid-prefix; wait for more bytes
            }
            let len = frame_len(&self.prefix)?;
            self.prefix.clear();
            pos += self.begin_frame(len, chunk, pos, out);
        }

        while chunk.len() - pos >= 4 {
            let len = frame_len(&chunk[pos..pos + 4])?;
            pos += 4;
            if chunk.len() - pos >= len {
                // Whole frame inside this chunk: zero-copy view.
                out.push(chunk.slice(pos..pos + len));
                pos += len;
            } else {
                pos += self.begin_frame(len, chunk, pos, out);
            }
        }
        if pos < chunk.len() {
            self.prefix.extend_from_slice(&chunk[pos..]);
        }
        Ok(())
    }

    /// Starts collecting a frame of `len` body bytes whose tail is not
    /// (necessarily) in `chunk`; copies whatever is available starting
    /// at `pos` and returns how many chunk bytes were consumed.
    fn begin_frame(&mut self, len: usize, chunk: &Bytes, pos: usize, out: &mut Vec<Bytes>) -> usize {
        let avail = chunk.len() - pos;
        let take = avail.min(len);
        let mut p = Partial::with_capacity(len);
        match p.extend(&chunk[pos..pos + take]) {
            Some(body) => out.push(Bytes::from(body)),
            None => self.partial = Some(p),
        }
        take
    }
}

fn frame_len(prefix: &[u8]) -> io::Result<usize> {
    let len = u32::from_le_bytes(prefix[..4].try_into().expect("4 bytes"));
    if len < HEADER_LEN as u32 || len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("invalid frame length {len}"),
        ));
    }
    Ok(len as usize)
}

fn eof_mid_frame() -> io::Error {
    io::Error::new(io::ErrorKind::UnexpectedEof, "eof inside frame")
}

// ---------------------------------------------------------------------------
// WireFrame + WriteQueue: batched vectored writes
// ---------------------------------------------------------------------------

/// An encoded frame split for vectored writing: a small owned header
/// (length prefix, wire header and fixed body fields) plus an optional
/// zero-copy payload tail ([`Bytes`] shared with the store — `Put`
/// data and `Reply::Data` bodies are never memcpy'd onto the wire).
#[derive(Debug, Clone)]
pub struct WireFrame {
    /// Length prefix + everything before the payload.
    pub header: Vec<u8>,
    /// Zero-copy payload tail, if the frame carries bulk data.
    pub payload: Option<Bytes>,
}

impl WireFrame {
    /// Wraps a fully contiguous encoded frame (no separate payload).
    pub fn contiguous(frame: Vec<u8>) -> Self {
        WireFrame {
            header: frame,
            payload: None,
        }
    }

    /// Total on-wire size in bytes (prefix included).
    pub fn len(&self) -> usize {
        self.header.len() + self.payload.as_ref().map_or(0, |p| p.len())
    }

    /// True when the frame is empty (never the case for well-formed
    /// frames, which carry at least a prefix and header).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialises the full contiguous wire bytes (one copy); used by
    /// the fault injector to truncate a frame mid-body.
    pub fn to_contiguous(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(self.len());
        v.extend_from_slice(&self.header);
        if let Some(p) = &self.payload {
            v.extend_from_slice(p);
        }
        v
    }

    /// The two wire slices in order, skipping the first `offset`
    /// already-written bytes. Returns up to two entries.
    fn slices(&self, offset: usize) -> impl Iterator<Item = &[u8]> {
        let h = &self.header[offset.min(self.header.len())..];
        let poff = offset.saturating_sub(self.header.len());
        let p = self
            .payload
            .as_deref()
            .map(|p| &p[poff.min(p.len())..])
            .unwrap_or(&[]);
        [h, p].into_iter().filter(|s| !s.is_empty())
    }
}

/// Outbound frame queue for one non-blocking socket. Frames accumulate
/// between poll wakeups and [`flush`](WriteQueue::flush) pushes as
/// many as fit into batched `writev` calls, so a burst of pipelined
/// replies shares one syscall round instead of one `write` each.
#[derive(Default)]
pub struct WriteQueue {
    queue: VecDeque<WireFrame>,
    /// Bytes of `queue[0]` already written by a previous short write.
    offset: usize,
}

impl WriteQueue {
    /// New empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a frame to the tail of the queue.
    pub fn push(&mut self, frame: WireFrame) {
        self.queue.push_back(frame);
    }

    /// True when every queued byte has been written.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Number of frames still (fully or partially) unwritten.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Writes queued frames until the queue drains or the socket would
    /// block. Returns `true` when fully drained (deregister write
    /// interest), `false` when the socket pushed back (keep write
    /// interest armed).
    ///
    /// # Errors
    ///
    /// Any I/O error from the socket other than `WouldBlock` (which is
    /// flow control, not failure) or `Interrupted` (retried).
    pub fn flush<W: Write + AsFd>(&mut self, w: &mut W) -> io::Result<bool> {
        while !self.queue.is_empty() {
            let written = match self.writev_front(w) {
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if written == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "socket accepted zero bytes",
                ));
            }
            self.advance(written);
        }
        Ok(true)
    }

    /// One gather-write over the first [`MAX_IOV`] slices of the queue.
    fn writev_front<W: Write + AsFd>(&self, w: &mut W) -> io::Result<usize> {
        let mut iov: Vec<&[u8]> = Vec::with_capacity(MAX_IOV);
        let mut offset = self.offset;
        'fill: for f in &self.queue {
            for s in f.slices(offset) {
                iov.push(s);
                if iov.len() == MAX_IOV {
                    break 'fill;
                }
            }
            offset = 0;
        }
        sys::writev(w, &iov)
    }

    /// Pops fully written frames and tracks the partial offset into
    /// the new front.
    fn advance(&mut self, mut written: usize) {
        while written > 0 {
            let front_left = self.queue[0].len() - self.offset;
            if written >= front_left {
                written -= front_left;
                self.offset = 0;
                self.queue.pop_front();
            } else {
                self.offset += written;
                written = 0;
            }
        }
    }
}

#[cfg(unix)]
mod sys {
    //! Raw `writev` / `setsockopt` bindings — std exposes no
    //! vectored-write API for `TcpStream` slices without the
    //! `io-slice` adaptors allocating, and no socket-buffer control at
    //! all; the container has no libc crate, but std already links
    //! libc so the symbols resolve.
    use std::io::{self, Write};
    use std::os::fd::{AsFd, AsRawFd};

    #[repr(C)]
    struct IoVec {
        iov_base: *const u8,
        iov_len: usize,
    }

    extern "C" {
        #[link_name = "writev"]
        fn c_writev(fd: i32, iov: *const IoVec, iovcnt: i32) -> isize;
        #[link_name = "setsockopt"]
        fn c_setsockopt(fd: i32, level: i32, optname: i32, optval: *const u8, optlen: u32)
            -> i32;
    }

    const SOL_SOCKET: i32 = 1;
    const SO_SNDBUF: i32 = 7;
    const SO_RCVBUF: i32 = 8;

    extern "C" {
        #[link_name = "mallopt"]
        fn c_mallopt(param: i32, value: i32) -> i32;
    }

    const M_TRIM_THRESHOLD: i32 = -1;
    const M_MMAP_THRESHOLD: i32 = -3;

    /// Keeps multi-megabyte frame buffers on the reusable heap.
    ///
    /// glibc serves large allocations via `mmap` and returns them with
    /// `munmap`, so every received multi-megabyte frame body would
    /// fault in each of its pages from scratch (~16k minor faults per
    /// 64 MB read — measured as the difference between a ~40 ms and a
    /// ~70 ms read). Its *dynamic* mmap threshold sometimes adapts
    /// past the frame size on its own; pinning the threshold makes the
    /// fast path deterministic. The threshold must sit *above* (not
    /// at) the largest buffer the data path assembles — glibc mmaps
    /// any request `>= threshold`, and whole-file joins reach 64 MB —
    /// so it is pinned at 128 MB, with the trim threshold above that
    /// so freed blocks stay on the heap. Best-effort no-op on
    /// non-glibc.
    pub(super) fn tune_allocator() {
        // SAFETY: mallopt only writes process-global malloc parameters.
        unsafe {
            let _ = c_mallopt(M_MMAP_THRESHOLD, 128 << 20);
            let _ = c_mallopt(M_TRIM_THRESHOLD, 192 << 20);
        }
    }

    /// Best-effort: grow `s`'s kernel send/receive buffers to `bytes`
    /// (the kernel clamps to `net.core.{w,r}mem_max`). Failure is
    /// ignored — the socket still works, just with default buffers.
    pub(super) fn set_buffers<F: AsFd>(s: &F, bytes: i32) {
        let fd = s.as_fd().as_raw_fd();
        let val = bytes.to_ne_bytes();
        for opt in [SO_SNDBUF, SO_RCVBUF] {
            // SAFETY: optval points at a live 4-byte int; optlen matches.
            unsafe {
                let _ = c_setsockopt(fd, SOL_SOCKET, opt, val.as_ptr(), val.len() as u32);
            }
        }
    }

    /// Gather-writes `slices` to `w`'s file descriptor in one syscall.
    pub(super) fn writev<W: Write + AsFd>(w: &mut W, slices: &[&[u8]]) -> io::Result<usize> {
        let iov: Vec<IoVec> = slices
            .iter()
            .map(|s| IoVec {
                iov_base: s.as_ptr(),
                iov_len: s.len(),
            })
            .collect();
        let fd = w.as_fd().as_raw_fd();
        // SAFETY: every iovec points into a live borrowed slice for
        // the duration of the call; iovcnt matches the array length.
        let rc = unsafe { c_writev(fd, iov.as_ptr(), iov.len() as i32) };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(rc as usize)
        }
    }
}

#[cfg(not(unix))]
mod sys {
    //! Portable fallback: sequential `write` calls (one per slice,
    //! stopping at the first short write to preserve writev semantics)
    //! and no socket-buffer tuning.
    use std::io::{self, Write};
    use std::os::fd::AsFd;

    pub(super) fn writev<W: Write + AsFd>(w: &mut W, slices: &[&[u8]]) -> io::Result<usize> {
        let mut total = 0;
        for s in slices {
            let n = w.write(s)?;
            total += n;
            if n < s.len() {
                break;
            }
        }
        Ok(total)
    }

    pub(super) fn set_buffers<F: AsFd>(_s: &F, _bytes: i32) {}

    pub(super) fn tune_allocator() {}
}

/// Kernel socket buffer size the data plane asks for on every
/// connection: big enough that a multi-megabyte partition transfer
/// fits in flight, so a 1-core loopback exchange ping-pongs between
/// producer and consumer a handful of times instead of once per
/// default-sized (hundreds of KiB) buffer fill.
pub const SOCK_BUF_BYTES: i32 = 4 << 20;

/// Best-effort socket tuning for a data-plane connection: grow both
/// kernel buffers to [`SOCK_BUF_BYTES`]. A failure (platform cap,
/// exotic fd) is silently ignored.
pub fn tune_socket<F: AsFd>(s: &F) {
    sys::set_buffers(s, SOCK_BUF_BYTES);
}

/// Process-wide, once-only allocator tuning for data-plane endpoints:
/// pins glibc's mmap threshold above the largest common frame size so
/// received frame bodies recycle heap blocks instead of faulting in
/// fresh `mmap` pages on every read (see `sys::tune_allocator`).
/// Called by `TcpTransport` and the servers on startup; safe to call
/// from multiple threads.
pub fn tune_allocator_once() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(sys::tune_allocator);
}

// ---------------------------------------------------------------------------
// Timers: deadline min-heap
// ---------------------------------------------------------------------------

/// Min-heap of `(deadline, key)` pairs driving poll timeouts: the
/// event loop sleeps until [`next_deadline`](Timers::next_deadline)
/// and reaps everything [`pop_due`](Timers::pop_due) yields.
///
/// There is no cancel operation — a timer whose request already
/// completed simply finds nothing to reap when it fires. Callers must
/// treat a popped key whose state is gone as a no-op.
pub struct Timers<K> {
    heap: BinaryHeap<Reverse<(Instant, K)>>,
}

impl<K: Ord> Timers<K> {
    /// New empty timer heap.
    pub fn new() -> Self {
        Timers {
            heap: BinaryHeap::new(),
        }
    }

    /// Schedules `key` to fire at `at`.
    pub fn insert(&mut self, at: Instant, key: K) {
        self.heap.push(Reverse((at, key)));
    }

    /// Earliest pending deadline, if any — the poll timeout bound.
    pub fn next_deadline(&self) -> Option<Instant> {
        self.heap.peek().map(|Reverse((at, _))| *at)
    }

    /// Pops the next timer whose deadline is at or before `now`.
    pub fn pop_due(&mut self, now: Instant) -> Option<K> {
        if self.next_deadline()? <= now {
            self.heap.pop().map(|Reverse((_, k))| k)
        } else {
            None
        }
    }

    /// True when no timers are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<K: Ord> Default for Timers<K> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{encode_reply, encode_request};
    use spcache_store::rpc::{PartKey, Reply, Request};
    use std::time::Duration;

    /// Reader that serves a byte script in caller-chosen segment sizes
    /// and then reports WouldBlock (like an idle non-blocking socket).
    struct Script {
        data: Vec<u8>,
        cuts: Vec<usize>, // segment lengths; after the last, WouldBlock
        pos: usize,
        cut_idx: usize,
        eof_at_end: bool,
    }

    impl Script {
        fn new(data: Vec<u8>, cuts: Vec<usize>, eof_at_end: bool) -> Self {
            Script {
                data,
                cuts,
                pos: 0,
                cut_idx: 0,
                eof_at_end,
            }
        }
    }

    impl Read for Script {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos == self.data.len() {
                return if self.eof_at_end {
                    Ok(0)
                } else {
                    Err(io::ErrorKind::WouldBlock.into())
                };
            }
            let seg = if self.cut_idx < self.cuts.len() {
                self.cuts[self.cut_idx]
            } else {
                self.data.len() - self.pos
            };
            self.cut_idx += 1;
            let n = seg.min(buf.len()).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    fn sample_frames() -> (Vec<u8>, Vec<Bytes>) {
        let key = PartKey { file: 9, part: 3 };
        let frames = vec![
            encode_request(&Request::Get { key }, 1),
            encode_reply(&Reply::Data(Bytes::from(vec![0xAB; 5000])), 2),
            encode_request(&Request::Ping, 3),
            encode_reply(&Reply::Data(Bytes::from(vec![0xCD; 200_000])), 4),
            encode_request(&Request::Delete { key }, 5),
        ];
        let mut wire = Vec::new();
        let mut bodies = Vec::new();
        for f in &frames {
            wire.extend_from_slice(f);
            bodies.push(Bytes::from(f[4..].to_vec()));
        }
        (wire, bodies)
    }

    fn pump_all(script: Script) -> (Vec<Bytes>, PumpStatus) {
        let mut r = FrameReader::new();
        let mut out = Vec::new();
        let mut s = script;
        let status = r.pump(&mut s, &mut out).expect("pump");
        (out, status)
    }

    #[test]
    fn whole_stream_in_one_read_parses_every_frame() {
        let (wire, bodies) = sample_frames();
        let (out, status) = pump_all(Script::new(wire, vec![], true));
        assert_eq!(status, PumpStatus::Closed);
        assert_eq!(out, bodies);
    }

    #[test]
    fn adversarial_split_points_reassemble_identically() {
        let (wire, bodies) = sample_frames();
        // One-byte reads: every header and payload boundary is split.
        let cuts = vec![1; wire.len()];
        let (out, status) = pump_all(Script::new(wire.clone(), cuts, true));
        assert_eq!(status, PumpStatus::Closed);
        assert_eq!(out, bodies);

        // Split mid-length-prefix, mid-header, and mid-payload.
        let (out, status) = pump_all(Script::new(wire, vec![2, 3, 7, 4999, 1, 65536], true));
        assert_eq!(status, PumpStatus::Closed);
        assert_eq!(out, bodies);
    }

    #[test]
    fn would_block_pauses_and_resumes() {
        let (wire, bodies) = sample_frames();
        let half = wire.len() / 2;
        let mut reader = FrameReader::new();
        let mut out = Vec::new();

        let mut first = Script::new(wire[..half].to_vec(), vec![], false);
        assert_eq!(
            reader.pump(&mut first, &mut out).unwrap(),
            PumpStatus::Open
        );

        let mut second = Script::new(wire[half..].to_vec(), vec![], true);
        assert_eq!(
            reader.pump(&mut second, &mut out).unwrap(),
            PumpStatus::Closed
        );
        assert_eq!(out, bodies);
    }

    #[test]
    fn eof_mid_frame_is_unexpected_eof() {
        let (wire, _) = sample_frames();
        let mut truncated = Script::new(wire[..wire.len() - 3].to_vec(), vec![], true);
        let mut reader = FrameReader::new();
        let mut out = Vec::new();
        let err = reader.pump(&mut truncated, &mut out).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn lying_length_prefix_is_invalid_data() {
        for bad in [3u32, MAX_FRAME + 1] {
            let mut wire = bad.to_le_bytes().to_vec();
            wire.extend_from_slice(&[0u8; 16]);
            let mut s = Script::new(wire, vec![], true);
            let mut reader = FrameReader::new();
            let mut out = Vec::new();
            let err = reader.pump(&mut s, &mut out).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        }
    }

    #[test]
    fn write_queue_batches_and_drains_over_a_socket() {
        use std::io::Read as _;
        use std::net::{TcpListener, TcpStream};

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut tx = TcpStream::connect(addr).unwrap();
        let (mut rx, _) = listener.accept().unwrap();
        tx.set_nonblocking(true).unwrap();

        let payload = Bytes::from(vec![0x5A; 100_000]);
        let mut wq = WriteQueue::new();
        let mut expected = Vec::new();
        for i in 0..80u8 {
            let f = WireFrame {
                header: vec![i; 9],
                payload: Some(payload.clone()),
            };
            expected.extend_from_slice(&f.to_contiguous());
            wq.push(f);
        }

        // Drain concurrently: flush until empty while the peer reads.
        let reader = std::thread::spawn(move || {
            let mut got = Vec::new();
            rx.read_to_end(&mut got).unwrap();
            got
        });
        loop {
            match wq.flush(&mut tx) {
                Ok(true) => break,
                Ok(false) => std::thread::sleep(Duration::from_millis(1)),
                Err(e) => panic!("flush failed: {e}"),
            }
        }
        drop(tx);
        assert_eq!(reader.join().unwrap(), expected);
    }

    #[test]
    fn wire_frame_slices_respect_partial_offsets() {
        let f = WireFrame {
            header: vec![1, 2, 3],
            payload: Some(Bytes::from(vec![4, 5])),
        };
        let flat = |off: usize| -> Vec<u8> {
            f.slices(off).flat_map(|s| s.iter().copied()).collect()
        };
        assert_eq!(flat(0), vec![1, 2, 3, 4, 5]);
        assert_eq!(flat(2), vec![3, 4, 5]);
        assert_eq!(flat(3), vec![4, 5]);
        assert_eq!(flat(4), vec![5]);
        assert_eq!(flat(5), Vec::<u8>::new());
    }

    #[test]
    fn timers_fire_in_deadline_order() {
        let base = Instant::now();
        let mut t = Timers::new();
        t.insert(base + Duration::from_millis(30), 3u64);
        t.insert(base + Duration::from_millis(10), 1u64);
        t.insert(base + Duration::from_millis(20), 2u64);
        assert_eq!(t.next_deadline(), Some(base + Duration::from_millis(10)));
        assert_eq!(t.pop_due(base), None);
        let later = base + Duration::from_millis(25);
        assert_eq!(t.pop_due(later), Some(1));
        assert_eq!(t.pop_due(later), Some(2));
        assert_eq!(t.pop_due(later), None);
        assert_eq!(t.next_deadline(), Some(base + Duration::from_millis(30)));
    }
}

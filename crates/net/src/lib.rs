#![warn(missing_docs)]

//! `spcache-net`: a real TCP wire protocol and transport for the store.
//!
//! The store crate's data and control planes are pure data
//! ([`spcache_store::rpc::Request`] / [`Reply`] and the
//! [`spcache_store::master::MetaService`] trait) behind the
//! [`spcache_store::transport::Transport`] abstraction. This crate puts
//! them on sockets:
//!
//! * [`frame`] — the length-prefixed binary codec (hand-rolled on
//!   [`bytes::Bytes`], zero-copy on receive; DESIGN.md §4.10),
//! * [`poll`] — the event-loop building blocks (DESIGN.md §4.12): an
//!   incremental [`poll::FrameReader`] for non-blocking sockets, a
//!   batching [`poll::WriteQueue`] that gathers pipelined frames into
//!   single `writev` calls, and a [`poll::Timers`] deadline heap,
//! * [`tcp::TcpTransport`] — the client side: readiness-driven shard
//!   loops multiplexing every worker connection, with per-connection
//!   request-id multiplexing, frame batching and
//!   `RetryPolicy`-derived poller timers,
//! * [`server::WorkerServer`] — the `spcached` worker: a sharded
//!   event-loop TCP front end over the store's channel worker,
//!   including wire-level fault injection (dropped connections,
//!   delayed and truncated frames) and graceful drain-then-exit
//!   shutdown,
//! * [`master_net`] — the master protocol: [`master_net::MasterServer`]
//!   serving metadata plus a one-RPC cluster `Rebalance`, and
//!   [`master_net::MasterClient`], a wire-backed `MetaService`,
//! * [`loopback::TcpCluster`] — everything wired together over
//!   127.0.0.1 for tests and benchmarks, interchangeable with the
//!   in-process `StoreCluster`,
//! * the `spcached` binary — `spcached worker|master` for real
//!   multi-process deployments (see the README quickstart).
//!
//! [`Reply`]: spcache_store::rpc::Reply

pub mod frame;
pub mod loopback;
pub mod master_net;
pub mod poll;
pub mod server;
pub mod tcp;

pub use loopback::TcpCluster;
pub use master_net::{MasterClient, MasterServer};
pub use server::WorkerServer;
pub use tcp::TcpTransport;

//! Master wire protocol: [`MasterServer`] exposes a [`Master`] over
//! TCP; [`MasterClient`] implements [`MetaService`] against it.
//!
//! Same frame layout as the worker protocol (see [`crate::frame`]), in
//! a disjoint opcode space (`0x81..` requests / `0xC1..` replies) so a
//! client dialed into the wrong port fails with a codec error instead
//! of silently misreading messages.
//!
//! Metadata calls are small and synchronous, so the client keeps one
//! pooled connection and runs strict request→reply on it (no
//! multiplexing needed). Health-table updates (`mark_alive`,
//! `mark_dead`, `suspect`) are best-effort by contract: if the master
//! is unreachable they degrade to no-ops rather than failing the data
//! path that triggered them.
//!
//! The server side is a single readiness event loop (no per-connection
//! threads): metadata calls are in-memory and answered inline off the
//! poller, so one loop serves any number of supervisor, client and
//! worker connections.
//!
//! The server additionally understands `Rebalance`: the master plans
//! against its metadata (Algorithm 1 + 2 planning) and runs the
//! repartition over its *own* [`TcpTransport`] to the workers, so one
//! RPC drives a whole cluster rebalance — the deployment shape of the
//! paper's SP-Master. Rebalance is the one slow call, so it runs on a
//! detached thread and completes back through the loop's waker.

use mio::{Events, Interest, Poll, Token, Waker};
use parking_lot::Mutex;
use spcache_core::tuner::TunerConfig;
use spcache_store::master::{Master, MetaService};
use spcache_store::FileIntegrity;
use spcache_store::repartitioner::{run_parallel_with_deadline, DEFAULT_EXECUTOR_DEADLINE};
use spcache_store::rpc::{StoreError, MASTER_ENDPOINT};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::frame::{read_frame, write_frame, Frame, FrameBuilder};
use crate::poll::{FrameReader, PumpStatus, WireFrame, WriteQueue};
use crate::tcp::TcpTransport;

// Master-protocol opcodes.
const MOP_REGISTER: u8 = 0x81;
const MOP_UNREGISTER: u8 = 0x82;
const MOP_LOCATE: u8 = 0x83;
const MOP_PEEK: u8 = 0x84;
const MOP_APPLY_PLACEMENT: u8 = 0x85;
const MOP_MARK_ALIVE: u8 = 0x86;
const MOP_MARK_DEAD: u8 = 0x87;
const MOP_SUSPECT: u8 = 0x88;
const MOP_IS_ALIVE: u8 = 0x89;
const MOP_LIVE_WORKERS: u8 = 0x8A;
const MOP_DEGRADED: u8 = 0x8B;
const MOP_REBALANCE: u8 = 0x8C;
const MOP_SHUTDOWN: u8 = 0x8D;
const MOP_WORKER_EPOCHS: u8 = 0x8E;
const MOP_REGISTER_WORKER: u8 = 0x8F;
const MOP_BEGIN_REPAIR: u8 = 0x90;
const MOP_END_REPAIR: u8 = 0x91;
const MOP_STATUS: u8 = 0x92;
const MOP_LOG_TAIL: u8 = 0x93;
const MOP_TAKEOVER: u8 = 0x94;
const MOP_REGISTER_BATCH: u8 = 0x95;
const MOP_SET_INTEGRITY: u8 = 0x96;
const MOP_INTEGRITY: u8 = 0x97;
const MOP_R_DONE: u8 = 0xC1;
const MOP_R_INFO: u8 = 0xC2;
const MOP_R_MAYBE: u8 = 0xC3;
const MOP_R_COUNT: u8 = 0xC4;
const MOP_R_FLAG: u8 = 0xC5;
const MOP_R_WORKERS: u8 = 0xC6;
const MOP_R_FILES: u8 = 0xC7;
const MOP_R_REBALANCED: u8 = 0xC8;
const MOP_R_ERR: u8 = 0xC9;
const MOP_R_EPOCHS: u8 = 0xCA;
const MOP_R_EPOCH: u8 = 0xCB;
const MOP_R_REDIRECT: u8 = 0xCC;
const MOP_R_STATUS: u8 = 0xCD;
const MOP_R_LOG: u8 = 0xCE;
const MOP_R_INTEGRITY: u8 = 0xCF;

fn codec(msg: impl Into<String>) -> StoreError {
    StoreError::Codec(msg.into())
}

/// Pure-data form of one metadata request (the master protocol's
/// counterpart of [`spcache_store::rpc::Request`]).
#[derive(Debug, Clone, PartialEq)]
pub enum MetaRequest {
    /// `MetaService::register`.
    Register {
        /// File id.
        id: u64,
        /// File size in bytes.
        size: u64,
        /// Placement (one server per partition).
        servers: Vec<usize>,
    },
    /// `MetaService::unregister_file`.
    Unregister {
        /// File id.
        id: u64,
    },
    /// `MetaService::locate` (counts an access).
    Locate {
        /// File id.
        id: u64,
    },
    /// `MetaService::peek` (no access count).
    Peek {
        /// File id.
        id: u64,
    },
    /// `MetaService::apply_placement`.
    ApplyPlacement {
        /// File id.
        id: u64,
        /// New placement.
        servers: Vec<usize>,
    },
    /// `MetaService::mark_alive`.
    MarkAlive {
        /// Worker index.
        w: u64,
    },
    /// `MetaService::mark_dead`.
    MarkDead {
        /// Worker index.
        w: u64,
    },
    /// `MetaService::suspect`.
    Suspect {
        /// Worker index.
        w: u64,
    },
    /// `MetaService::is_alive`.
    IsAlive {
        /// Worker index.
        w: u64,
    },
    /// `MetaService::live_workers`.
    LiveWorkers {
        /// Fleet size.
        n: u64,
    },
    /// `MetaService::degraded_files`.
    Degraded,
    /// Plan a rebalance (Algorithm 1 + 2) and execute it over the
    /// master's worker transport.
    Rebalance {
        /// Per-worker NIC bandwidth, bytes/s.
        bandwidth: f64,
        /// Total arrival rate for the tuner.
        lambda: f64,
        /// Partition-placement RNG seed.
        seed: u64,
    },
    /// `MetaService::worker_epochs`.
    WorkerEpochs {
        /// Fleet size.
        n: u64,
    },
    /// `MetaService::register_worker` (the crash-restart rejoin path).
    RegisterWorker {
        /// Worker index.
        w: u64,
    },
    /// `MetaService::begin_repair`.
    BeginRepair {
        /// File id.
        id: u64,
    },
    /// `MetaService::end_repair`.
    EndRepair {
        /// File id.
        id: u64,
    },
    /// Liveness/authority probe: master epoch, active-vs-fenced flag,
    /// file count and journal head. Served even by a fenced master (a
    /// standby polls it to measure lag and detect death).
    Status,
    /// Stream every journalled metadata op with `lsn >= from` — the
    /// standby's replication pull (§4.14).
    LogTail {
        /// First LSN the caller has not yet applied.
        from: u64,
    },
    /// A successor announces it has taken over at `epoch`; the receiver
    /// fences itself and redirects future callers to `addr`.
    Takeover {
        /// The successor's (higher) master epoch.
        epoch: u64,
        /// The successor's listen address, `host:port`.
        addr: String,
    },
    /// `MetaService::register_batch`: one metadata round-trip
    /// registering a whole chunk of `(id, size, servers)` rows — the
    /// million-file seeding path.
    RegisterBatch {
        /// The rows, in registration order.
        entries: Vec<(u64, u64, Vec<usize>)>,
    },
    /// `MetaService::set_integrity` (§4.15): record or clear a file's
    /// checksum + parity row.
    SetIntegrity {
        /// File id.
        id: u64,
        /// The row (empty = clear).
        integrity: FileIntegrity,
    },
    /// `MetaService::integrity`: fetch a file's integrity row.
    Integrity {
        /// File id.
        id: u64,
    },
    /// Stop the master server.
    Shutdown,
}

/// Pure-data form of one metadata reply.
#[derive(Debug, Clone, PartialEq)]
pub enum MetaReply {
    /// Success without payload.
    Done,
    /// `(size, servers)` lookup result.
    Info {
        /// File size in bytes.
        size: u64,
        /// Placement.
        servers: Vec<usize>,
    },
    /// Optional `(size, servers)` (unregister of a possibly-unknown id).
    Maybe(Option<(u64, Vec<usize>)>),
    /// Suspicion count.
    Count(u32),
    /// Boolean outcome.
    Flag(bool),
    /// Worker-index list.
    Workers(Vec<usize>),
    /// File-id list.
    Files(Vec<u64>),
    /// Fencing epoch table.
    Epochs(Vec<u64>),
    /// One granted fencing epoch.
    Epoch(u64),
    /// Rebalance outcome: `(files_repartitioned, skipped_file_ids)`.
    Rebalanced {
        /// Number of files the plan moved.
        moved: u64,
        /// Files skipped because a worker was unavailable.
        skipped: Vec<u64>,
    },
    /// The receiver is a fenced (deposed) master: retry against `to`
    /// (empty when the successor is unknown — the caller must
    /// rediscover the master out of band).
    Redirect {
        /// The successor's listen address, `host:port`.
        to: String,
    },
    /// `Status` result.
    Status {
        /// The master's current master epoch.
        epoch: u64,
        /// `false` once fenced by a takeover.
        active: bool,
        /// Registered file count.
        files: u64,
        /// The journal's next LSN (0 = no journal attached).
        next_lsn: u64,
    },
    /// `LogTail` result: raw journal record bytes (the standby decodes
    /// them with [`spcache_store::metalog::decode_records`]).
    Log {
        /// First LSN **after** the returned records — the `from` of the
        /// next poll.
        next_lsn: u64,
        /// Concatenated wire records, oldest first.
        bytes: Vec<u8>,
    },
    /// `Integrity` result: the row, when one is recorded.
    IntegrityRow(Option<FileIntegrity>),
    /// The request failed.
    Err(StoreError),
}

/// Appends a [`FileIntegrity`] body: the checksum list, then the
/// `(server, sum)` parity pairs.
fn put_integrity(b: FrameBuilder, fi: &FileIntegrity) -> FrameBuilder {
    let mut b = b.u64_list(&fi.sums).u32(fi.parity.len() as u32);
    for &(server, sum) in &fi.parity {
        b = b.u64(server as u64).u64(sum);
    }
    b
}

/// Decodes a [`FileIntegrity`] body (guarded against length lies).
fn read_integrity(c: &mut crate::frame::Cursor) -> Result<FileIntegrity, StoreError> {
    let sums = c.u64_list()?;
    let n = c.guarded_count(16)?;
    let parity = (0..n)
        .map(|_| Ok((c.u64()? as usize, c.u64()?)))
        .collect::<Result<Vec<_>, StoreError>>()?;
    Ok(FileIntegrity { sums, parity })
}

/// Encodes one metadata request into a wire frame.
pub fn encode_meta_request(req: &MetaRequest, req_id: u64) -> Vec<u8> {
    match req {
        MetaRequest::Register { id, size, servers } => FrameBuilder::new(MOP_REGISTER, req_id)
            .u64(*id)
            .u64(*size)
            .usize_list(servers)
            .finish(),
        MetaRequest::Unregister { id } => {
            FrameBuilder::new(MOP_UNREGISTER, req_id).u64(*id).finish()
        }
        MetaRequest::Locate { id } => FrameBuilder::new(MOP_LOCATE, req_id).u64(*id).finish(),
        MetaRequest::Peek { id } => FrameBuilder::new(MOP_PEEK, req_id).u64(*id).finish(),
        MetaRequest::ApplyPlacement { id, servers } => {
            FrameBuilder::new(MOP_APPLY_PLACEMENT, req_id)
                .u64(*id)
                .usize_list(servers)
                .finish()
        }
        MetaRequest::MarkAlive { w } => FrameBuilder::new(MOP_MARK_ALIVE, req_id).u64(*w).finish(),
        MetaRequest::MarkDead { w } => FrameBuilder::new(MOP_MARK_DEAD, req_id).u64(*w).finish(),
        MetaRequest::Suspect { w } => FrameBuilder::new(MOP_SUSPECT, req_id).u64(*w).finish(),
        MetaRequest::IsAlive { w } => FrameBuilder::new(MOP_IS_ALIVE, req_id).u64(*w).finish(),
        MetaRequest::LiveWorkers { n } => {
            FrameBuilder::new(MOP_LIVE_WORKERS, req_id).u64(*n).finish()
        }
        MetaRequest::Degraded => FrameBuilder::new(MOP_DEGRADED, req_id).finish(),
        MetaRequest::Rebalance {
            bandwidth,
            lambda,
            seed,
        } => FrameBuilder::new(MOP_REBALANCE, req_id)
            .f64(*bandwidth)
            .f64(*lambda)
            .u64(*seed)
            .finish(),
        MetaRequest::WorkerEpochs { n } => {
            FrameBuilder::new(MOP_WORKER_EPOCHS, req_id).u64(*n).finish()
        }
        MetaRequest::RegisterWorker { w } => {
            FrameBuilder::new(MOP_REGISTER_WORKER, req_id).u64(*w).finish()
        }
        MetaRequest::BeginRepair { id } => {
            FrameBuilder::new(MOP_BEGIN_REPAIR, req_id).u64(*id).finish()
        }
        MetaRequest::EndRepair { id } => {
            FrameBuilder::new(MOP_END_REPAIR, req_id).u64(*id).finish()
        }
        MetaRequest::Status => FrameBuilder::new(MOP_STATUS, req_id).finish(),
        MetaRequest::LogTail { from } => {
            FrameBuilder::new(MOP_LOG_TAIL, req_id).u64(*from).finish()
        }
        MetaRequest::Takeover { epoch, addr } => FrameBuilder::new(MOP_TAKEOVER, req_id)
            .u64(*epoch)
            .string(addr)
            .finish(),
        MetaRequest::RegisterBatch { entries } => {
            let mut b = FrameBuilder::new(MOP_REGISTER_BATCH, req_id).u32(entries.len() as u32);
            for (id, size, servers) in entries {
                b = b.u64(*id).u64(*size).usize_list(servers);
            }
            b.finish()
        }
        MetaRequest::SetIntegrity { id, integrity } => put_integrity(
            FrameBuilder::new(MOP_SET_INTEGRITY, req_id).u64(*id),
            integrity,
        )
        .finish(),
        MetaRequest::Integrity { id } => {
            FrameBuilder::new(MOP_INTEGRITY, req_id).u64(*id).finish()
        }
        MetaRequest::Shutdown => FrameBuilder::new(MOP_SHUTDOWN, req_id).finish(),
    }
}

/// Decodes a metadata request frame.
///
/// # Errors
///
/// [`StoreError::Codec`] on malformed input.
pub fn decode_meta_request(frame: &Frame) -> Result<MetaRequest, StoreError> {
    let mut c = frame.body_cursor();
    let req = match frame.opcode {
        MOP_REGISTER => MetaRequest::Register {
            id: c.u64()?,
            size: c.u64()?,
            servers: c.usize_list()?,
        },
        MOP_UNREGISTER => MetaRequest::Unregister { id: c.u64()? },
        MOP_LOCATE => MetaRequest::Locate { id: c.u64()? },
        MOP_PEEK => MetaRequest::Peek { id: c.u64()? },
        MOP_APPLY_PLACEMENT => MetaRequest::ApplyPlacement {
            id: c.u64()?,
            servers: c.usize_list()?,
        },
        MOP_MARK_ALIVE => MetaRequest::MarkAlive { w: c.u64()? },
        MOP_MARK_DEAD => MetaRequest::MarkDead { w: c.u64()? },
        MOP_SUSPECT => MetaRequest::Suspect { w: c.u64()? },
        MOP_IS_ALIVE => MetaRequest::IsAlive { w: c.u64()? },
        MOP_LIVE_WORKERS => MetaRequest::LiveWorkers { n: c.u64()? },
        MOP_DEGRADED => MetaRequest::Degraded,
        MOP_REBALANCE => MetaRequest::Rebalance {
            bandwidth: c.f64()?,
            lambda: c.f64()?,
            seed: c.u64()?,
        },
        MOP_WORKER_EPOCHS => MetaRequest::WorkerEpochs { n: c.u64()? },
        MOP_REGISTER_WORKER => MetaRequest::RegisterWorker { w: c.u64()? },
        MOP_BEGIN_REPAIR => MetaRequest::BeginRepair { id: c.u64()? },
        MOP_END_REPAIR => MetaRequest::EndRepair { id: c.u64()? },
        MOP_STATUS => MetaRequest::Status,
        MOP_LOG_TAIL => MetaRequest::LogTail { from: c.u64()? },
        MOP_TAKEOVER => MetaRequest::Takeover {
            epoch: c.u64()?,
            addr: c.string()?,
        },
        MOP_REGISTER_BATCH => {
            let n = c.guarded_count(20)?;
            let entries = (0..n)
                .map(|_| Ok((c.u64()?, c.u64()?, c.usize_list()?)))
                .collect::<Result<Vec<_>, StoreError>>()?;
            MetaRequest::RegisterBatch { entries }
        }
        MOP_SET_INTEGRITY => MetaRequest::SetIntegrity {
            id: c.u64()?,
            integrity: read_integrity(&mut c)?,
        },
        MOP_INTEGRITY => MetaRequest::Integrity { id: c.u64()? },
        MOP_SHUTDOWN => MetaRequest::Shutdown,
        op => return Err(codec(format!("unknown meta request opcode {op:#04x}"))),
    };
    c.finish()?;
    Ok(req)
}

/// Encodes one metadata reply into a wire frame.
pub fn encode_meta_reply(reply: &MetaReply, req_id: u64) -> Vec<u8> {
    match reply {
        MetaReply::Done => FrameBuilder::new(MOP_R_DONE, req_id).finish(),
        MetaReply::Info { size, servers } => FrameBuilder::new(MOP_R_INFO, req_id)
            .u64(*size)
            .usize_list(servers)
            .finish(),
        MetaReply::Maybe(opt) => {
            let b = FrameBuilder::new(MOP_R_MAYBE, req_id);
            match opt {
                None => b.u8(0).finish(),
                Some((size, servers)) => b.u8(1).u64(*size).usize_list(servers).finish(),
            }
        }
        MetaReply::Count(n) => FrameBuilder::new(MOP_R_COUNT, req_id).u32(*n).finish(),
        MetaReply::Flag(f) => FrameBuilder::new(MOP_R_FLAG, req_id).u8(*f as u8).finish(),
        MetaReply::Workers(w) => FrameBuilder::new(MOP_R_WORKERS, req_id)
            .usize_list(w)
            .finish(),
        MetaReply::Files(f) => FrameBuilder::new(MOP_R_FILES, req_id).u64_list(f).finish(),
        MetaReply::Epochs(e) => FrameBuilder::new(MOP_R_EPOCHS, req_id).u64_list(e).finish(),
        MetaReply::Epoch(e) => FrameBuilder::new(MOP_R_EPOCH, req_id).u64(*e).finish(),
        MetaReply::Rebalanced { moved, skipped } => FrameBuilder::new(MOP_R_REBALANCED, req_id)
            .u64(*moved)
            .u64_list(skipped)
            .finish(),
        MetaReply::Redirect { to } => FrameBuilder::new(MOP_R_REDIRECT, req_id)
            .string(to)
            .finish(),
        MetaReply::Status {
            epoch,
            active,
            files,
            next_lsn,
        } => FrameBuilder::new(MOP_R_STATUS, req_id)
            .u64(*epoch)
            .u8(*active as u8)
            .u64(*files)
            .u64(*next_lsn)
            .finish(),
        MetaReply::Log { next_lsn, bytes } => FrameBuilder::new(MOP_R_LOG, req_id)
            .u64(*next_lsn)
            .bytes(bytes)
            .finish(),
        MetaReply::IntegrityRow(opt) => {
            let b = FrameBuilder::new(MOP_R_INTEGRITY, req_id);
            match opt {
                None => b.u8(0).finish(),
                Some(fi) => put_integrity(b.u8(1), fi).finish(),
            }
        }
        MetaReply::Err(e) => crate::frame::encode_err_frame(MOP_R_ERR, req_id, e),
    }
}

/// Decodes a metadata reply frame.
///
/// # Errors
///
/// [`StoreError::Codec`] on malformed input.
pub fn decode_meta_reply(frame: &Frame) -> Result<MetaReply, StoreError> {
    let mut c = frame.body_cursor();
    let reply = match frame.opcode {
        MOP_R_DONE => MetaReply::Done,
        MOP_R_INFO => MetaReply::Info {
            size: c.u64()?,
            servers: c.usize_list()?,
        },
        MOP_R_MAYBE => match c.u8()? {
            0 => MetaReply::Maybe(None),
            1 => MetaReply::Maybe(Some((c.u64()?, c.usize_list()?))),
            t => return Err(codec(format!("bad option tag {t}"))),
        },
        MOP_R_COUNT => MetaReply::Count(c.u32()?),
        MOP_R_FLAG => MetaReply::Flag(c.u8()? != 0),
        MOP_R_WORKERS => MetaReply::Workers(c.usize_list()?),
        MOP_R_FILES => MetaReply::Files(c.u64_list()?),
        MOP_R_EPOCHS => MetaReply::Epochs(c.u64_list()?),
        MOP_R_EPOCH => MetaReply::Epoch(c.u64()?),
        MOP_R_REBALANCED => MetaReply::Rebalanced {
            moved: c.u64()?,
            skipped: c.u64_list()?,
        },
        MOP_R_REDIRECT => MetaReply::Redirect { to: c.string()? },
        MOP_R_STATUS => MetaReply::Status {
            epoch: c.u64()?,
            active: c.u8()? != 0,
            files: c.u64()?,
            next_lsn: c.u64()?,
        },
        MOP_R_LOG => MetaReply::Log {
            next_lsn: c.u64()?,
            bytes: c.rest().to_vec(),
        },
        MOP_R_INTEGRITY => match c.u8()? {
            0 => MetaReply::IntegrityRow(None),
            1 => MetaReply::IntegrityRow(Some(read_integrity(&mut c)?)),
            t => return Err(codec(format!("bad option tag {t}"))),
        },
        MOP_R_ERR => MetaReply::Err(c.store_error()?),
        op => return Err(codec(format!("unknown meta reply opcode {op:#04x}"))),
    };
    c.finish()?;
    Ok(reply)
}

/// A running master server. The in-process [`Master`] it serves remains
/// directly inspectable through [`MasterServer::master`].
#[derive(Debug)]
pub struct MasterServer {
    master: Arc<Master>,
    addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
}

impl MasterServer {
    /// Serves `master` on `bind` (port 0 for ephemeral). `worker_addrs`
    /// is the fleet the `Rebalance` RPC repartitions over; pass the
    /// workers' listen addresses in index order.
    ///
    /// # Errors
    ///
    /// I/O errors binding the listener.
    pub fn spawn(
        master: Arc<Master>,
        bind: &str,
        worker_addrs: Vec<SocketAddr>,
    ) -> io::Result<MasterServer> {
        MasterServer::spawn_with_deadline(master, bind, worker_addrs, DEFAULT_EXECUTOR_DEADLINE)
    }

    /// [`MasterServer::spawn`] with an explicit per-reply executor
    /// deadline for the `Rebalance` RPC (normally
    /// [`spcache_store::StoreConfig::executor_deadline`]).
    ///
    /// # Errors
    ///
    /// I/O errors binding the listener.
    pub fn spawn_with_deadline(
        master: Arc<Master>,
        bind: &str,
        worker_addrs: Vec<SocketAddr>,
        executor_deadline: Duration,
    ) -> io::Result<MasterServer> {
        let listener = TcpListener::bind(bind)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let poll = Poll::new()?;
        let waker = Arc::new(Waker::new(poll.registry(), META_WAKER)?);
        let loop_master = Arc::clone(&master);
        let event_loop = std::thread::Builder::new()
            .name("spcache-master-io".into())
            .spawn(move || {
                meta_loop(
                    poll,
                    &waker,
                    &listener,
                    &loop_master,
                    &worker_addrs,
                    executor_deadline,
                );
            })
            .expect("spawn master event loop");
        Ok(MasterServer {
            master,
            addr,
            threads: vec![event_loop],
        })
    }

    /// The address the server listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served metadata master (same instance the wire mutates).
    pub fn master(&self) -> &Arc<Master> {
        &self.master
    }

    /// Waits for the acceptor to exit (after a `Shutdown` request).
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Waker token of the master event loop (rebalance completions).
const META_WAKER: Token = Token(0);
/// Listener token of the master event loop.
const META_LISTENER: Token = Token(1);
/// First connection token.
const META_CONN_BASE: usize = 2;

/// One metadata connection owned by the loop.
struct MetaConn {
    stream: TcpStream,
    reader: FrameReader,
    wq: WriteQueue,
    writable_armed: bool,
    closing: bool,
}

/// The master's single event loop: every metadata call is served
/// inline (they are fast in-memory operations), while `Rebalance` —
/// which drives worker RPCs — runs on a detached thread and completes
/// back through the waker so one long rebalance never stalls
/// heartbeats or lookups on other connections.
fn meta_loop(
    mut poll: Poll,
    waker: &Arc<Waker>,
    listener: &TcpListener,
    master: &Arc<Master>,
    worker_addrs: &[SocketAddr],
    executor_deadline: Duration,
) {
    let _ = poll
        .registry()
        .register(listener, META_LISTENER, Interest::READABLE);
    let (done_tx, done_rx) = crossbeam::channel::unbounded::<(usize, u64, MetaReply)>();
    let mut events = Events::with_capacity(64);
    let mut conns: HashMap<usize, MetaConn> = HashMap::new();
    let mut next_token = META_CONN_BASE;
    let mut inbound: Vec<bytes::Bytes> = Vec::new();
    let mut stopping = false;

    'run: loop {
        if poll.poll(&mut events, None).is_err() {
            break 'run;
        }

        let mut dirty: Vec<usize> = Vec::new();

        // Finished rebalances.
        while let Ok((token, req_id, reply)) = done_rx.try_recv() {
            if let Some(conn) = conns.get_mut(&token) {
                conn.wq
                    .push(WireFrame::contiguous(encode_meta_reply(&reply, req_id)));
                if !dirty.contains(&token) {
                    dirty.push(token);
                }
            }
        }

        for ev in &events {
            let Token(t) = ev.token();
            if t == META_WAKER.0 {
                continue;
            }
            if t == META_LISTENER.0 {
                if stopping {
                    continue;
                }
                loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let _ = stream.set_nodelay(true);
                            if stream.set_nonblocking(true).is_err() {
                                continue;
                            }
                            let token = next_token;
                            next_token += 1;
                            if poll
                                .registry()
                                .register(&stream, Token(token), Interest::READABLE)
                                .is_ok()
                            {
                                conns.insert(
                                    token,
                                    MetaConn {
                                        stream,
                                        reader: FrameReader::new(),
                                        wq: WriteQueue::new(),
                                        writable_armed: false,
                                        closing: false,
                                    },
                                );
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => break,
                    }
                }
                continue;
            }

            // Connection readiness.
            let Some(closing) = conns.get(&t).map(|c| c.closing) else {
                continue;
            };
            if (ev.is_readable() || ev.is_error()) && !closing {
                stopping |= serve_conn_input(
                    &mut conns,
                    t,
                    master,
                    worker_addrs,
                    executor_deadline,
                    &done_tx,
                    waker,
                    &mut inbound,
                    &mut dirty,
                );
            }
            if ev.is_writable() && conns.contains_key(&t) && !dirty.contains(&t) {
                dirty.push(t);
            }
        }

        for token in dirty {
            flush_meta_conn(&poll, &mut conns, token);
        }

        // Shutdown: once the ack (and everything else) has flushed,
        // close up shop.
        if stopping && conns.values().all(|c| c.wq.is_empty()) {
            break 'run;
        }
    }
    for (_, conn) in conns.drain() {
        let _ = conn.stream.shutdown(std::net::Shutdown::Both);
    }
}

/// Pumps one readable metadata connection and serves every decoded
/// request. Returns `true` when a `Shutdown` was served.
#[allow(clippy::too_many_arguments)]
fn serve_conn_input(
    conns: &mut HashMap<usize, MetaConn>,
    token: usize,
    master: &Arc<Master>,
    worker_addrs: &[SocketAddr],
    executor_deadline: Duration,
    done_tx: &crossbeam::channel::Sender<(usize, u64, MetaReply)>,
    waker: &Arc<Waker>,
    inbound: &mut Vec<bytes::Bytes>,
    dirty: &mut Vec<usize>,
) -> bool {
    let Some(conn) = conns.get_mut(&token) else {
        return false;
    };
    inbound.clear();
    let status = conn.reader.pump(&mut conn.stream, inbound);
    let mut shutdown = false;
    for buf in inbound.drain(..) {
        let (req_id, req) = match Frame::parse(buf).and_then(|f| {
            let req = decode_meta_request(&f)?;
            Ok((f.req_id, req))
        }) {
            Ok(ok) => ok,
            Err(e) => {
                // Protocol violation: answer best-effort and cut the
                // connection once the error flushes.
                conn.wq
                    .push(WireFrame::contiguous(encode_meta_reply(&MetaReply::Err(e), 0)));
                conn.closing = true;
                if !dirty.contains(&token) {
                    dirty.push(token);
                }
                return false;
            }
        };
        match req {
            MetaRequest::Rebalance { .. } => {
                // Worker RPCs are slow; never run them on the loop.
                let master = Arc::clone(master);
                let workers = worker_addrs.to_vec();
                let done_tx = done_tx.clone();
                let waker = Arc::clone(waker);
                let _ = std::thread::Builder::new()
                    .name("spcache-master-rebalance".into())
                    .spawn(move || {
                        let reply = serve_meta(&master, &workers, req, executor_deadline);
                        if done_tx.send((token, req_id, reply)).is_ok() {
                            let _ = waker.wake();
                        }
                    });
            }
            other => {
                shutdown |= matches!(other, MetaRequest::Shutdown);
                let reply = serve_meta(master, worker_addrs, other, executor_deadline);
                conn.wq
                    .push(WireFrame::contiguous(encode_meta_reply(&reply, req_id)));
                if !dirty.contains(&token) {
                    dirty.push(token);
                }
            }
        }
    }
    let dead = match status {
        Ok(PumpStatus::Open) => false,
        Ok(PumpStatus::Closed) | Err(_) => true,
    };
    if dead {
        if let Some(conn) = conns.remove(&token) {
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        }
    }
    shutdown
}

/// Flushes one metadata connection, mirroring the worker server's
/// interest-arming discipline.
fn flush_meta_conn(poll: &Poll, conns: &mut HashMap<usize, MetaConn>, token: usize) {
    let Some(conn) = conns.get_mut(&token) else {
        return;
    };
    match conn.wq.flush(&mut conn.stream) {
        Ok(true) => {
            if conn.closing {
                let _ = poll.registry().deregister(&conn.stream);
                let _ = conn.stream.shutdown(std::net::Shutdown::Both);
                conns.remove(&token);
                return;
            }
            if conn.writable_armed {
                conn.writable_armed = false;
                let _ = poll
                    .registry()
                    .reregister(&conn.stream, Token(token), Interest::READABLE);
            }
        }
        Ok(false) => {
            if !conn.writable_armed {
                conn.writable_armed = true;
                let _ = poll.registry().reregister(
                    &conn.stream,
                    Token(token),
                    Interest::READABLE | Interest::WRITABLE,
                );
            }
        }
        Err(_) => {
            let _ = poll.registry().deregister(&conn.stream);
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
            conns.remove(&token);
        }
    }
}

fn serve_meta(
    master: &Arc<Master>,
    worker_addrs: &[SocketAddr],
    req: MetaRequest,
    executor_deadline: Duration,
) -> MetaReply {
    // A fenced master answers nothing but probes and takeover
    // handshakes: every other call is bounced to the successor so a
    // client that cached this endpoint re-aims itself instead of
    // mutating deposed metadata (§4.14).
    if master.is_fenced()
        && !matches!(
            req,
            MetaRequest::Status | MetaRequest::Shutdown | MetaRequest::Takeover { .. }
        )
    {
        return MetaReply::Redirect {
            to: master.successor().unwrap_or_default(),
        };
    }
    match req {
        MetaRequest::Register { id, size, servers } => {
            match MetaService::register(master.as_ref(), id, size as usize, servers) {
                Ok(()) => MetaReply::Done,
                Err(e) => MetaReply::Err(e),
            }
        }
        MetaRequest::Unregister { id } => MetaReply::Maybe(
            master
                .unregister_file(id)
                .map(|(size, servers)| (size as u64, servers)),
        ),
        MetaRequest::Locate { id } => match master.locate(id) {
            Ok((size, servers)) => MetaReply::Info {
                size: size as u64,
                servers,
            },
            Err(e) => MetaReply::Err(e),
        },
        MetaRequest::Peek { id } => match MetaService::peek(master.as_ref(), id) {
            Ok((size, servers)) => MetaReply::Info {
                size: size as u64,
                servers,
            },
            Err(e) => MetaReply::Err(e),
        },
        MetaRequest::ApplyPlacement { id, servers } => {
            match MetaService::apply_placement(master.as_ref(), id, servers) {
                Ok(()) => MetaReply::Done,
                Err(e) => MetaReply::Err(e),
            }
        }
        MetaRequest::MarkAlive { w } => {
            master.mark_alive(w as usize);
            MetaReply::Done
        }
        MetaRequest::MarkDead { w } => {
            master.mark_dead(w as usize);
            MetaReply::Done
        }
        MetaRequest::Suspect { w } => MetaReply::Count(master.suspect(w as usize)),
        MetaRequest::IsAlive { w } => MetaReply::Flag(master.is_alive(w as usize)),
        MetaRequest::LiveWorkers { n } => MetaReply::Workers(master.live_workers(n as usize)),
        MetaRequest::Degraded => MetaReply::Files(master.degraded_files()),
        MetaRequest::WorkerEpochs { n } => MetaReply::Epochs(master.worker_epochs(n as usize)),
        MetaRequest::RegisterWorker { w } => {
            MetaReply::Epoch(master.register_worker(w as usize))
        }
        MetaRequest::BeginRepair { id } => MetaReply::Flag(master.begin_repair(id)),
        MetaRequest::EndRepair { id } => {
            master.end_repair(id);
            MetaReply::Done
        }
        MetaRequest::Rebalance {
            bandwidth,
            lambda,
            seed,
        } => {
            let n = worker_addrs.len();
            let (ids, plan, _) =
                master.plan_rebalance(n, bandwidth, lambda, &TunerConfig::default(), seed);
            let moved = plan.jobs.len() as u64;
            let transport = TcpTransport::connect(worker_addrs.to_vec());
            match run_parallel_with_deadline(
                &plan,
                &ids,
                master.as_ref(),
                &transport,
                executor_deadline,
            ) {
                Ok(skipped) => MetaReply::Rebalanced { moved, skipped },
                Err(e) => MetaReply::Err(e),
            }
        }
        MetaRequest::Status => MetaReply::Status {
            epoch: master.master_epoch(),
            active: !master.is_fenced(),
            files: master.file_count() as u64,
            next_lsn: master.journal_next_lsn(),
        },
        MetaRequest::LogTail { from } => {
            let (next_lsn, bytes) = master.journal_tail(from);
            MetaReply::Log { next_lsn, bytes }
        }
        MetaRequest::Takeover { epoch, addr } => {
            if epoch >= master.master_epoch() {
                master.self_fence(Some(addr));
                MetaReply::Done
            } else {
                // A *lower*-epoch "successor" is itself the stale one.
                MetaReply::Err(StoreError::StaleEpoch(MASTER_ENDPOINT))
            }
        }
        MetaRequest::RegisterBatch { entries } => {
            let rows: Vec<(u64, usize, Vec<usize>)> = entries
                .into_iter()
                .map(|(id, size, servers)| (id, size as usize, servers))
                .collect();
            match master.register_batch(&rows) {
                Ok(()) => MetaReply::Done,
                Err(e) => MetaReply::Err(e),
            }
        }
        MetaRequest::SetIntegrity { id, integrity } => {
            match master.set_integrity(id, integrity) {
                Ok(()) => MetaReply::Done,
                Err(e) => MetaReply::Err(e),
            }
        }
        MetaRequest::Integrity { id } => MetaReply::IntegrityRow(master.integrity(id)),
        MetaRequest::Shutdown => MetaReply::Done,
    }
}

/// A [`MetaService`] implementation speaking the master wire protocol.
///
/// The endpoint is **mutable**: when a fenced (deposed) master answers
/// with [`MetaReply::Redirect`], the client re-aims itself at the
/// successor and retries — callers keep one `MasterClient` across a
/// failover and never learn it happened.
#[derive(Debug)]
pub struct MasterClient {
    addr: Mutex<SocketAddr>,
    conn: Mutex<Option<TcpStream>>,
    next_id: std::sync::atomic::AtomicU64,
    deadline: Duration,
}

impl MasterClient {
    /// A client for the master at `addr`, with the default 5 s deadline.
    pub fn connect(addr: SocketAddr) -> Self {
        MasterClient {
            addr: Mutex::new(addr),
            conn: Mutex::new(None),
            next_id: std::sync::atomic::AtomicU64::new(1),
            deadline: Duration::from_secs(5),
        }
    }

    /// Sets the socket deadline (builder style).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline.max(Duration::from_millis(1));
        self
    }

    /// The master endpoint this client currently aims at (updated by
    /// redirects).
    pub fn addr(&self) -> SocketAddr {
        *self.addr.lock()
    }

    /// One synchronous request→reply exchange, **following redirects**:
    /// a fenced master's [`MetaReply::Redirect`] re-aims the client at
    /// the successor and retries, up to 3 hops. Any transport failure
    /// maps to [`StoreError::Io`] against [`MASTER_ENDPOINT`] and drops
    /// the pooled connection so the next call redials.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on transport failure or a redirect to nowhere
    /// (a fenced master with no known successor), [`StoreError::Codec`]
    /// on malformed replies, plus whatever error the master returns.
    pub fn roundtrip(&self, req: &MetaRequest) -> Result<MetaReply, StoreError> {
        for _ in 0..3 {
            match self.exchange(req)? {
                MetaReply::Redirect { to } => {
                    let next: SocketAddr = to
                        .parse()
                        .map_err(|_| StoreError::Io(MASTER_ENDPOINT))?;
                    *self.addr.lock() = next;
                    if let Some(s) = self.conn.lock().take() {
                        let _ = s.shutdown(std::net::Shutdown::Both);
                    }
                }
                reply => return Ok(reply),
            }
        }
        // A redirect loop (two masters each claiming the other) is a
        // deployment bug; surface it as an endpoint failure.
        Err(StoreError::Io(MASTER_ENDPOINT))
    }

    /// One raw request→reply exchange against the current endpoint
    /// (no redirect handling).
    fn exchange(&self, req: &MetaRequest) -> Result<MetaReply, StoreError> {
        let addr = *self.addr.lock();
        let mut slot = self.conn.lock();
        if slot.is_none() {
            let stream = TcpStream::connect_timeout(&addr, self.deadline)
                .map_err(|_| StoreError::Io(MASTER_ENDPOINT))?;
            let _ = stream.set_nodelay(true);
            stream
                .set_read_timeout(Some(self.deadline))
                .and_then(|()| stream.set_write_timeout(Some(self.deadline)))
                .map_err(|_| StoreError::Io(MASTER_ENDPOINT))?;
            *slot = Some(stream);
        }
        let stream = slot.as_mut().expect("connection just ensured");
        let req_id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let exchange = (|| -> Result<MetaReply, StoreError> {
            write_frame(stream, &encode_meta_request(req, req_id))
                .map_err(|_| StoreError::Io(MASTER_ENDPOINT))?;
            let buf = read_frame(stream)
                .map_err(|_| StoreError::Io(MASTER_ENDPOINT))?
                .ok_or(StoreError::Io(MASTER_ENDPOINT))?;
            let frame = Frame::parse(buf)?;
            if frame.req_id != req_id {
                return Err(codec(format!(
                    "reply id {} does not match request id {req_id}",
                    frame.req_id
                )));
            }
            decode_meta_reply(&frame)
        })();
        if exchange.is_err() {
            // Poisoned stream (I/O failure or framing loss): redial next
            // call.
            if let Some(s) = slot.take() {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
        exchange
    }

    fn expect_done(&self, req: &MetaRequest) -> Result<(), StoreError> {
        match self.roundtrip(req)? {
            MetaReply::Done => Ok(()),
            MetaReply::Err(e) => Err(e),
            other => Err(codec(format!("unexpected reply {other:?}"))),
        }
    }

    fn expect_info(&self, req: &MetaRequest) -> Result<(usize, Vec<usize>), StoreError> {
        match self.roundtrip(req)? {
            MetaReply::Info { size, servers } => Ok((size as usize, servers)),
            MetaReply::Err(e) => Err(e),
            other => Err(codec(format!("unexpected reply {other:?}"))),
        }
    }

    /// Asks the master to plan and execute a cluster rebalance; returns
    /// `(files_moved, skipped_file_ids)`.
    ///
    /// # Errors
    ///
    /// Transport errors, or the first non-availability executor error.
    pub fn rebalance(
        &self,
        bandwidth: f64,
        lambda: f64,
        seed: u64,
    ) -> Result<(u64, Vec<u64>), StoreError> {
        match self.roundtrip(&MetaRequest::Rebalance {
            bandwidth,
            lambda,
            seed,
        })? {
            MetaReply::Rebalanced { moved, skipped } => Ok((moved, skipped)),
            MetaReply::Err(e) => Err(e),
            other => Err(codec(format!("unexpected reply {other:?}"))),
        }
    }

    /// Asks the master server to stop accepting connections.
    ///
    /// # Errors
    ///
    /// Transport errors reaching the master.
    pub fn shutdown_server(&self) -> Result<(), StoreError> {
        self.expect_done(&MetaRequest::Shutdown)
    }

    /// Probes the master's authority and journal head:
    /// `(master_epoch, active, file_count, next_lsn)`. Served even by
    /// a fenced master — this is the standby's lag/liveness probe.
    ///
    /// # Errors
    ///
    /// Transport errors reaching the master.
    pub fn status(&self) -> Result<(u64, bool, u64, u64), StoreError> {
        match self.exchange(&MetaRequest::Status)? {
            MetaReply::Status {
                epoch,
                active,
                files,
                next_lsn,
            } => Ok((epoch, active, files, next_lsn)),
            MetaReply::Err(e) => Err(e),
            other => Err(codec(format!("unexpected reply {other:?}"))),
        }
    }

    /// Pulls every journalled metadata op with `lsn >= from`; returns
    /// `(next_lsn, raw record bytes)` for
    /// [`spcache_store::metalog::decode_records`].
    ///
    /// # Errors
    ///
    /// Transport errors reaching the master.
    pub fn log_tail(&self, from: u64) -> Result<(u64, Vec<u8>), StoreError> {
        match self.roundtrip(&MetaRequest::LogTail { from })? {
            MetaReply::Log { next_lsn, bytes } => Ok((next_lsn, bytes)),
            MetaReply::Err(e) => Err(e),
            other => Err(codec(format!("unexpected reply {other:?}"))),
        }
    }

    /// Announces a takeover: the receiver (the old master) fences
    /// itself and redirects future callers to `addr`.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`StoreError::StaleEpoch`] when `epoch` is
    /// below the receiver's own (the caller is the stale one).
    pub fn takeover(&self, epoch: u64, addr: &str) -> Result<(), StoreError> {
        match self.exchange(&MetaRequest::Takeover {
            epoch,
            addr: addr.to_string(),
        })? {
            MetaReply::Done => Ok(()),
            MetaReply::Err(e) => Err(e),
            other => Err(codec(format!("unexpected reply {other:?}"))),
        }
    }
}

impl MetaService for MasterClient {
    fn register(&self, id: u64, size: usize, servers: Vec<usize>) -> Result<(), StoreError> {
        self.expect_done(&MetaRequest::Register {
            id,
            size: size as u64,
            servers,
        })
    }

    fn unregister_file(&self, id: u64) -> Option<(usize, Vec<usize>)> {
        match self.roundtrip(&MetaRequest::Unregister { id }) {
            Ok(MetaReply::Maybe(opt)) => opt.map(|(size, servers)| (size as usize, servers)),
            _ => None,
        }
    }

    fn locate(&self, id: u64) -> Result<(usize, Vec<usize>), StoreError> {
        self.expect_info(&MetaRequest::Locate { id })
    }

    fn peek(&self, id: u64) -> Result<(usize, Vec<usize>), StoreError> {
        self.expect_info(&MetaRequest::Peek { id })
    }

    fn apply_placement(&self, id: u64, servers: Vec<usize>) -> Result<(), StoreError> {
        self.expect_done(&MetaRequest::ApplyPlacement { id, servers })
    }

    fn mark_alive(&self, w: usize) {
        let _ = self.roundtrip(&MetaRequest::MarkAlive { w: w as u64 });
    }

    fn mark_dead(&self, w: usize) {
        let _ = self.roundtrip(&MetaRequest::MarkDead { w: w as u64 });
    }

    fn suspect(&self, w: usize) -> u32 {
        match self.roundtrip(&MetaRequest::Suspect { w: w as u64 }) {
            Ok(MetaReply::Count(n)) => n,
            _ => 0,
        }
    }

    fn is_alive(&self, w: usize) -> bool {
        match self.roundtrip(&MetaRequest::IsAlive { w: w as u64 }) {
            Ok(MetaReply::Flag(f)) => f,
            // Unreachable master: assume alive and let the data path
            // discover the truth, rather than spuriously excluding
            // healthy workers.
            _ => true,
        }
    }

    fn live_workers(&self, n: usize) -> Vec<usize> {
        match self.roundtrip(&MetaRequest::LiveWorkers { n: n as u64 }) {
            Ok(MetaReply::Workers(w)) => w,
            _ => (0..n).collect(),
        }
    }

    fn degraded_files(&self) -> Vec<u64> {
        match self.roundtrip(&MetaRequest::Degraded) {
            Ok(MetaReply::Files(f)) => f,
            _ => Vec::new(),
        }
    }

    fn worker_epochs(&self, n: usize) -> Vec<u64> {
        match self.roundtrip(&MetaRequest::WorkerEpochs { n: n as u64 }) {
            Ok(MetaReply::Epochs(e)) => e,
            // Unreachable master: an empty table means "unknown — do not
            // fence", so clients keep serving instead of bouncing
            // everything on a guessed epoch.
            _ => Vec::new(),
        }
    }

    fn register_worker(&self, w: usize) -> u64 {
        match self.roundtrip(&MetaRequest::RegisterWorker { w: w as u64 }) {
            Ok(MetaReply::Epoch(e)) => e,
            // 0 is never a granted epoch, so a failed grant is visible
            // to the caller (the supervisor retries next tick).
            _ => 0,
        }
    }

    fn begin_repair(&self, id: u64) -> bool {
        match self.roundtrip(&MetaRequest::BeginRepair { id }) {
            Ok(MetaReply::Flag(f)) => f,
            // Availability over strict dedup: an unreachable master must
            // not block the heal that would end the outage.
            _ => true,
        }
    }

    fn end_repair(&self, id: u64) {
        let _ = self.roundtrip(&MetaRequest::EndRepair { id });
    }

    fn register_batch(&self, entries: &[(u64, usize, Vec<usize>)]) -> Result<(), StoreError> {
        self.expect_done(&MetaRequest::RegisterBatch {
            entries: entries
                .iter()
                .map(|(id, size, servers)| (*id, *size as u64, servers.clone()))
                .collect(),
        })
    }

    fn set_integrity(&self, id: u64, integrity: FileIntegrity) -> Result<(), StoreError> {
        self.expect_done(&MetaRequest::SetIntegrity { id, integrity })
    }

    fn integrity(&self, id: u64) -> Option<FileIntegrity> {
        match self.roundtrip(&MetaRequest::Integrity { id }) {
            Ok(MetaReply::IntegrityRow(row)) => row,
            // Unreachable master: no row means reads skip verification
            // and parity recovery — degraded but never wrong (the worker
            // and framing checks still hold).
            _ => None,
        }
    }
}

//! Length-prefixed binary framing for the store's RPC surface
//! (DESIGN.md §4.10).
//!
//! Every message on a connection — request or reply, worker or master
//! protocol — is one frame:
//!
//! ```text
//! | u32 LE: len | u8: version | u8: opcode | u64 LE: req_id | body... |
//! ```
//!
//! `len` counts everything after the length field itself (version byte
//! through end of body), so a reader pulls 4 bytes, then exactly `len`
//! more. `req_id` is a per-connection sequence number chosen by the
//! requester and echoed verbatim in the reply, which lets one connection
//! multiplex any number of in-flight requests with out-of-order replies.
//!
//! Decoding is zero-copy on the receive side: a frame is read into one
//! [`Bytes`] buffer and every payload (`Put` data, `Get` reply bytes)
//! is a [`Bytes::slice`] view borrowing that buffer — no per-payload
//! allocation or memcpy.
//!
//! Malformed input never panics and never over-reads: every decode path
//! returns [`StoreError::Codec`] (a *permanent* error — resending the
//! same bytes reproduces the violation) with bounds-checked cursors.

use crate::poll::WireFrame;
use bytes::Bytes;
use spcache_store::rpc::{PartKey, Reply, Request, StoreError, WorkerStats};
use std::io::{self, Read, Write};

/// Protocol version stamped into every frame. Peers reject frames with
/// any other value, so incompatible protocol revisions fail loudly at
/// the first message instead of corrupting state.
///
/// v2: `Put` carries a per-partition checksum, `GetParity` and the
/// `Corrupt` error kind exist, and the stats frame grew the integrity
/// counters (§4.15).
pub const WIRE_VERSION: u8 = 2;

/// Hard ceiling on `len` (1 GiB). A corrupt or hostile length prefix
/// must not make a reader allocate unbounded memory.
pub const MAX_FRAME: u32 = 1 << 30;

/// Bytes of header counted by `len`: version (1) + opcode (1) +
/// req_id (8).
pub const HEADER_LEN: usize = 10;

// Worker-protocol opcodes. Requests sit in 0x01.., replies in 0x41..;
// the master protocol (see `master_net`) uses 0x81../0xC1.. so a frame
// arriving on the wrong port is an immediate codec error, not a
// misinterpretation.
pub(crate) const OP_PUT: u8 = 0x01;
pub(crate) const OP_GET: u8 = 0x02;
pub(crate) const OP_GET_RANGE: u8 = 0x03;
pub(crate) const OP_RENAME: u8 = 0x04;
pub(crate) const OP_DELETE: u8 = 0x05;
pub(crate) const OP_STATS: u8 = 0x06;
pub(crate) const OP_PING: u8 = 0x07;
pub(crate) const OP_SHUTDOWN: u8 = 0x08;
pub(crate) const OP_FENCED: u8 = 0x09;
pub(crate) const OP_SET_EPOCH: u8 = 0x0A;
pub(crate) const OP_BACKGROUND: u8 = 0x0B;
pub(crate) const OP_SET_MASTER_EPOCH: u8 = 0x0C;
pub(crate) const OP_GET_PARITY: u8 = 0x0D;
pub(crate) const OP_R_DONE: u8 = 0x41;
pub(crate) const OP_R_DATA: u8 = 0x42;
pub(crate) const OP_R_FLAG: u8 = 0x43;
pub(crate) const OP_R_STATS: u8 = 0x44;
pub(crate) const OP_R_PONG: u8 = 0x45;
pub(crate) const OP_R_ERR: u8 = 0x46;

// StoreError wire kinds (body of `OP_R_ERR` / `MOP_R_ERR`).
const ERR_NOT_FOUND: u8 = 1;
const ERR_WORKER_DOWN: u8 = 2;
const ERR_UNKNOWN_FILE: u8 = 3;
const ERR_ALREADY_EXISTS: u8 = 4;
const ERR_TIMEOUT: u8 = 5;
const ERR_IO: u8 = 6;
const ERR_CODEC: u8 = 7;
const ERR_STALE_EPOCH: u8 = 8;
const ERR_DEGRADED: u8 = 9;
const ERR_CORRUPT: u8 = 10;

fn codec(msg: impl Into<String>) -> StoreError {
    StoreError::Codec(msg.into())
}

/// A parsed frame: header fields plus a zero-copy handle on the raw
/// buffer (everything after the length prefix).
#[derive(Debug, Clone)]
pub struct Frame {
    /// Operation code.
    pub opcode: u8,
    /// Requester-chosen id, echoed in the reply.
    pub req_id: u64,
    buf: Bytes,
}

impl Frame {
    /// Parses a frame buffer (the `len` bytes following the length
    /// prefix).
    ///
    /// # Errors
    ///
    /// [`StoreError::Codec`] on a short header or wrong version byte.
    pub fn parse(buf: Bytes) -> Result<Frame, StoreError> {
        if buf.len() < HEADER_LEN {
            return Err(codec(format!("frame too short: {} bytes", buf.len())));
        }
        if buf[0] != WIRE_VERSION {
            return Err(codec(format!(
                "unsupported wire version {} (want {WIRE_VERSION})",
                buf[0]
            )));
        }
        let opcode = buf[1];
        let req_id = u64::from_le_bytes(buf[2..10].try_into().expect("8 bytes"));
        Ok(Frame {
            opcode,
            req_id,
            buf,
        })
    }

    /// Cursor over the body (bytes after the header), for decoding.
    pub(crate) fn body_cursor(&self) -> Cursor<'_> {
        Cursor {
            buf: &self.buf,
            pos: HEADER_LEN,
        }
    }
}

/// Bounds-checked reader over a frame buffer. Payload reads return
/// [`Bytes::slice`] views (zero-copy); every accessor fails with a
/// codec error instead of reading past the end.
pub(crate) struct Cursor<'a> {
    buf: &'a Bytes,
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| codec("truncated frame body"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn key(&mut self) -> Result<PartKey, StoreError> {
        let file = self.u64()?;
        let part = self.u32()?;
        Ok(PartKey { file, part })
    }

    /// Remaining body as a zero-copy view of the frame buffer.
    pub(crate) fn rest(&mut self) -> Bytes {
        let s = self.buf.slice(self.pos..self.buf.len());
        self.pos = self.buf.len();
        s
    }

    pub(crate) fn string(&mut self) -> Result<String, StoreError> {
        let n = self.u32()? as usize;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| codec("invalid utf-8 in string field"))
    }

    pub(crate) fn usize_list(&mut self) -> Result<Vec<usize>, StoreError> {
        let n = self.u32()? as usize;
        // A length claim larger than the bytes actually present is a lie;
        // reject before reserving memory for it.
        if n.saturating_mul(4) > self.buf.len() - self.pos {
            return Err(codec("list length exceeds frame"));
        }
        (0..n).map(|_| Ok(self.u32()? as usize)).collect()
    }

    /// Reads a `u32` element count for a list whose entries occupy at
    /// least `min_entry_bytes` each, rejecting counts that could not
    /// possibly fit in the remaining body (a length lie).
    pub(crate) fn guarded_count(&mut self, min_entry_bytes: usize) -> Result<usize, StoreError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_entry_bytes) > self.buf.len() - self.pos {
            return Err(codec("list length exceeds frame"));
        }
        Ok(n)
    }

    pub(crate) fn u64_list(&mut self) -> Result<Vec<u64>, StoreError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(8) > self.buf.len() - self.pos {
            return Err(codec("list length exceeds frame"));
        }
        (0..n).map(|_| self.u64()).collect()
    }

    /// Asserts the body was fully consumed (trailing garbage is a
    /// protocol violation).
    pub(crate) fn finish(self) -> Result<(), StoreError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(codec(format!(
                "{} trailing bytes after message body",
                self.buf.len() - self.pos
            )))
        }
    }
}

/// Builder for an encoded frame; finishes into the full on-wire byte
/// string (length prefix included).
pub(crate) struct FrameBuilder {
    out: Vec<u8>,
}

impl FrameBuilder {
    pub(crate) fn new(opcode: u8, req_id: u64) -> Self {
        let mut out = Vec::with_capacity(32);
        out.extend_from_slice(&[0u8; 4]); // length patched in finish()
        out.push(WIRE_VERSION);
        out.push(opcode);
        out.extend_from_slice(&req_id.to_le_bytes());
        FrameBuilder { out }
    }

    pub(crate) fn u8(mut self, v: u8) -> Self {
        self.out.push(v);
        self
    }

    pub(crate) fn u32(mut self, v: u32) -> Self {
        self.out.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub(crate) fn u64(mut self, v: u64) -> Self {
        self.out.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub(crate) fn f64(self, v: f64) -> Self {
        self.u64(v.to_bits())
    }

    pub(crate) fn key(self, k: PartKey) -> Self {
        self.u64(k.file).u32(k.part)
    }

    pub(crate) fn bytes(mut self, b: &[u8]) -> Self {
        self.out.extend_from_slice(b);
        self
    }

    pub(crate) fn string(self, s: &str) -> Self {
        self.u32(s.len() as u32).bytes(s.as_bytes())
    }

    pub(crate) fn usize_list(mut self, v: &[usize]) -> Self {
        self = self.u32(v.len() as u32);
        for &x in v {
            self = self.u32(x as u32);
        }
        self
    }

    pub(crate) fn u64_list(mut self, v: &[u64]) -> Self {
        self = self.u32(v.len() as u32);
        for &x in v {
            self = self.u64(x);
        }
        self
    }

    pub(crate) fn finish(mut self) -> Vec<u8> {
        let len = (self.out.len() - 4) as u32;
        assert!(len <= MAX_FRAME, "frame exceeds MAX_FRAME");
        self.out[..4].copy_from_slice(&len.to_le_bytes());
        self.out
    }

    /// Finishes into a [`WireFrame`] whose payload tail is the given
    /// zero-copy `Bytes` — the length prefix counts the payload but
    /// the bytes are never appended to the header buffer, so bulk
    /// data rides to the socket via `writev` without a memcpy.
    pub(crate) fn finish_parts(mut self, payload: Bytes) -> WireFrame {
        let len = (self.out.len() - 4 + payload.len()) as u32;
        assert!(len <= MAX_FRAME, "frame exceeds MAX_FRAME");
        self.out[..4].copy_from_slice(&len.to_le_bytes());
        WireFrame {
            header: self.out,
            payload: Some(payload),
        }
    }
}

/// Encodes a request as a [`WireFrame`] for the vectored write path:
/// `Put` payloads (plain or fenced) become zero-copy `Bytes` tails;
/// every other request is contiguous (their bodies are a few fixed
/// fields, not bulk data).
pub fn encode_request_parts(req: &Request, req_id: u64) -> WireFrame {
    match req {
        Request::Put { key, data, sum } => FrameBuilder::new(OP_PUT, req_id)
            .key(*key)
            .u64(*sum)
            .finish_parts(data.clone()),
        Request::Fenced { epoch, master, inner } => match &**inner {
            // The fenced body embeds the inner frame minus its length
            // prefix; for a fenced Put the inner header is appended to
            // the outer one and the payload still rides zero-copy.
            Request::Put { key, data, sum } => FrameBuilder::new(OP_FENCED, req_id)
                .u64(*epoch)
                .u64(*master)
                .u8(WIRE_VERSION)
                .u8(OP_PUT)
                .u64(req_id)
                .key(*key)
                .u64(*sum)
                .finish_parts(data.clone()),
            _ => WireFrame::contiguous(encode_request(req, req_id)),
        },
        _ => WireFrame::contiguous(encode_request(req, req_id)),
    }
}

/// Encodes a reply as a [`WireFrame`]: `Data` payloads become
/// zero-copy `Bytes` tails, everything else is contiguous.
pub fn encode_reply_parts(reply: &Reply, req_id: u64) -> WireFrame {
    match reply {
        Reply::Data(d) => FrameBuilder::new(OP_R_DATA, req_id).finish_parts(d.clone()),
        _ => WireFrame::contiguous(encode_reply(reply, req_id)),
    }
}

/// Encodes one worker-protocol request into a wire frame.
pub fn encode_request(req: &Request, req_id: u64) -> Vec<u8> {
    match req {
        // The checksum rides between the key and the payload tail (the
        // payload must stay last for the zero-copy `rest()` decode).
        Request::Put { key, data, sum } => FrameBuilder::new(OP_PUT, req_id)
            .key(*key)
            .u64(*sum)
            .bytes(data)
            .finish(),
        Request::Get { key } => FrameBuilder::new(OP_GET, req_id).key(*key).finish(),
        Request::GetParity { key } => {
            FrameBuilder::new(OP_GET_PARITY, req_id).key(*key).finish()
        }
        Request::GetRange { key, offset, len } => FrameBuilder::new(OP_GET_RANGE, req_id)
            .key(*key)
            .u64(*offset)
            .u64(*len)
            .finish(),
        Request::Rename { from, to } => FrameBuilder::new(OP_RENAME, req_id)
            .key(*from)
            .key(*to)
            .finish(),
        Request::Delete { key } => FrameBuilder::new(OP_DELETE, req_id).key(*key).finish(),
        Request::Stats => FrameBuilder::new(OP_STATS, req_id).finish(),
        Request::Ping => FrameBuilder::new(OP_PING, req_id).finish(),
        Request::Shutdown => FrameBuilder::new(OP_SHUTDOWN, req_id).finish(),
        Request::SetEpoch(e) => FrameBuilder::new(OP_SET_EPOCH, req_id).u64(*e).finish(),
        Request::SetMasterEpoch(m) => {
            FrameBuilder::new(OP_SET_MASTER_EPOCH, req_id).u64(*m).finish()
        }
        // The fenced body embeds the inner request as a headered frame
        // minus its length prefix (version | opcode | req_id | body), so
        // the inner message reuses the whole codec unchanged. The two
        // stamps (worker epoch, master epoch) precede it.
        Request::Fenced { epoch, master, inner } => FrameBuilder::new(OP_FENCED, req_id)
            .u64(*epoch)
            .u64(*master)
            .bytes(&encode_request(inner, req_id)[4..])
            .finish(),
        // Background mirrors the fenced embedding (sans epoch): the body
        // is the inner frame minus its length prefix.
        Request::Background { inner } => FrameBuilder::new(OP_BACKGROUND, req_id)
            .bytes(&encode_request(inner, req_id)[4..])
            .finish(),
    }
}

/// Decodes a worker-protocol request frame. `Put` payloads are zero-copy
/// views of the frame buffer.
///
/// # Errors
///
/// [`StoreError::Codec`] on unknown opcodes, truncated bodies or
/// trailing garbage.
pub fn decode_request(frame: &Frame) -> Result<Request, StoreError> {
    let mut c = frame.body_cursor();
    let req = match frame.opcode {
        OP_PUT => {
            let key = c.key()?;
            let sum = c.u64()?;
            let data = c.rest();
            Request::Put { key, data, sum }
        }
        OP_GET => Request::Get { key: c.key()? },
        OP_GET_PARITY => Request::GetParity { key: c.key()? },
        OP_GET_RANGE => Request::GetRange {
            key: c.key()?,
            offset: c.u64()?,
            len: c.u64()?,
        },
        OP_RENAME => Request::Rename {
            from: c.key()?,
            to: c.key()?,
        },
        OP_DELETE => Request::Delete { key: c.key()? },
        OP_STATS => Request::Stats,
        OP_PING => Request::Ping,
        OP_SHUTDOWN => Request::Shutdown,
        OP_SET_EPOCH => Request::SetEpoch(c.u64()?),
        OP_SET_MASTER_EPOCH => Request::SetMasterEpoch(c.u64()?),
        OP_FENCED => {
            let epoch = c.u64()?;
            let master = c.u64()?;
            let inner = Frame::parse(c.rest())?;
            if inner.opcode == OP_FENCED {
                // One fence per request; unbounded nesting would let a
                // hostile frame drive decode recursion arbitrarily deep.
                return Err(codec("nested fenced request"));
            }
            if inner.req_id != frame.req_id {
                return Err(codec("fenced inner req_id mismatch"));
            }
            Request::Fenced {
                epoch,
                master,
                inner: Box::new(decode_request(&inner)?),
            }
        }
        OP_BACKGROUND => {
            let inner = Frame::parse(c.rest())?;
            // Canonical nesting is Fenced { Background { data } }: a
            // fence inside a background stamp (or a double stamp) is a
            // protocol violation, which also bounds decode recursion.
            if inner.opcode == OP_BACKGROUND || inner.opcode == OP_FENCED {
                return Err(codec("invalid nesting inside background request"));
            }
            if inner.req_id != frame.req_id {
                return Err(codec("background inner req_id mismatch"));
            }
            Request::Background {
                inner: Box::new(decode_request(&inner)?),
            }
        }
        op => return Err(codec(format!("unknown request opcode {op:#04x}"))),
    };
    c.finish()?;
    Ok(req)
}

fn encode_err(b: FrameBuilder, e: &StoreError) -> FrameBuilder {
    match e {
        StoreError::NotFound(k) => b.u8(ERR_NOT_FOUND).key(*k),
        StoreError::WorkerDown(w) => b.u8(ERR_WORKER_DOWN).u64(*w as u64),
        StoreError::UnknownFile(id) => b.u8(ERR_UNKNOWN_FILE).u64(*id),
        StoreError::AlreadyExists(id) => b.u8(ERR_ALREADY_EXISTS).u64(*id),
        StoreError::Timeout(w) => b.u8(ERR_TIMEOUT).u64(*w as u64),
        StoreError::Io(w) => b.u8(ERR_IO).u64(*w as u64),
        StoreError::Codec(msg) => b.u8(ERR_CODEC).string(msg),
        StoreError::StaleEpoch(w) => b.u8(ERR_STALE_EPOCH).u64(*w as u64),
        StoreError::Degraded(id) => b.u8(ERR_DEGRADED).u64(*id),
        StoreError::Corrupt(k) => b.u8(ERR_CORRUPT).key(*k),
    }
}

impl Cursor<'_> {
    /// Decodes a wire-encoded [`StoreError`] at the cursor.
    pub(crate) fn store_error(&mut self) -> Result<StoreError, StoreError> {
        decode_err(self)
    }
}

/// Encodes a [`StoreError`]-bearing reply frame under `opcode`; shared
/// with the master protocol so both error bodies stay byte-compatible.
pub(crate) fn encode_err_frame(opcode: u8, req_id: u64, e: &StoreError) -> Vec<u8> {
    encode_err(FrameBuilder::new(opcode, req_id), e).finish()
}

fn decode_err(c: &mut Cursor) -> Result<StoreError, StoreError> {
    Ok(match c.u8()? {
        ERR_NOT_FOUND => StoreError::NotFound(c.key()?),
        ERR_WORKER_DOWN => StoreError::WorkerDown(c.u64()? as usize),
        ERR_UNKNOWN_FILE => StoreError::UnknownFile(c.u64()?),
        ERR_ALREADY_EXISTS => StoreError::AlreadyExists(c.u64()?),
        ERR_TIMEOUT => StoreError::Timeout(c.u64()? as usize),
        ERR_IO => StoreError::Io(c.u64()? as usize),
        ERR_CODEC => StoreError::Codec(c.string()?),
        ERR_STALE_EPOCH => StoreError::StaleEpoch(c.u64()? as usize),
        ERR_DEGRADED => StoreError::Degraded(c.u64()?),
        ERR_CORRUPT => StoreError::Corrupt(c.key()?),
        k => return Err(codec(format!("unknown error kind {k}"))),
    })
}

/// Encodes one worker-protocol reply into a wire frame.
pub fn encode_reply(reply: &Reply, req_id: u64) -> Vec<u8> {
    match reply {
        Reply::Done => FrameBuilder::new(OP_R_DONE, req_id).finish(),
        Reply::Data(d) => FrameBuilder::new(OP_R_DATA, req_id).bytes(d).finish(),
        Reply::Flag(f) => FrameBuilder::new(OP_R_FLAG, req_id).u8(*f as u8).finish(),
        Reply::Stats(s) => FrameBuilder::new(OP_R_STATS, req_id)
            .u64(s.bytes_served)
            .u64(s.bytes_stored)
            .u64(s.gets)
            .u64(s.puts)
            .u64(s.resident_parts as u64)
            .u64(s.bytes_background)
            .u64(s.evictions)
            .u64(s.spilled_bytes)
            .u64(s.reloaded_bytes)
            .u64(s.resident_bytes)
            .u64(s.corruptions_detected)
            .u64(s.parity_bytes)
            .u64(s.decode_reconstructions)
            .finish(),
        Reply::Pong { worker, epoch } => FrameBuilder::new(OP_R_PONG, req_id)
            .u64(*worker as u64)
            .u64(*epoch)
            .finish(),
        Reply::Err(e) => encode_err_frame(OP_R_ERR, req_id, e),
    }
}

/// Decodes a worker-protocol reply frame. `Data` payloads are zero-copy
/// views of the frame buffer.
///
/// # Errors
///
/// [`StoreError::Codec`] on unknown opcodes, truncated bodies or
/// trailing garbage.
pub fn decode_reply(frame: &Frame) -> Result<Reply, StoreError> {
    let mut c = frame.body_cursor();
    let reply = match frame.opcode {
        OP_R_DONE => Reply::Done,
        OP_R_DATA => Reply::Data(c.rest()),
        OP_R_FLAG => Reply::Flag(c.u8()? != 0),
        OP_R_STATS => Reply::Stats(WorkerStats {
            bytes_served: c.u64()?,
            bytes_stored: c.u64()?,
            gets: c.u64()?,
            puts: c.u64()?,
            resident_parts: c.u64()? as usize,
            bytes_background: c.u64()?,
            evictions: c.u64()?,
            spilled_bytes: c.u64()?,
            reloaded_bytes: c.u64()?,
            resident_bytes: c.u64()?,
            corruptions_detected: c.u64()?,
            parity_bytes: c.u64()?,
            decode_reconstructions: c.u64()?,
        }),
        OP_R_PONG => Reply::Pong {
            worker: c.u64()? as usize,
            epoch: c.u64()?,
        },
        OP_R_ERR => Reply::Err(decode_err(&mut c)?),
        op => return Err(codec(format!("unknown reply opcode {op:#04x}"))),
    };
    c.finish()?;
    Ok(reply)
}

/// Reads one frame (the bytes after the length prefix) from `r`.
///
/// Returns `Ok(None)` on clean EOF at a frame boundary — the peer closed
/// the connection between messages. EOF mid-frame is an error: the
/// stream died with a message in flight.
///
/// # Errors
///
/// I/O errors from the underlying stream; `InvalidData` when the length
/// prefix is shorter than a header or exceeds [`MAX_FRAME`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Bytes>> {
    let mut len_buf = [0u8; 4];
    // Hand-rolled first read so clean EOF before any byte is Ok(None),
    // not an error.
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame length",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len < HEADER_LEN as u32 || len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("invalid frame length {len}"),
        ));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    Ok(Some(Bytes::from(buf)))
}

/// Writes one encoded frame (as produced by the `encode_*` functions)
/// to `w` and flushes.
///
/// # Errors
///
/// I/O errors from the underlying stream.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    w.write_all(frame)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let wire = encode_request(&req, 77);
        let frame = Frame::parse(Bytes::from(wire[4..].to_vec())).unwrap();
        assert_eq!(frame.req_id, 77);
        assert_eq!(decode_request(&frame).unwrap(), req);
    }

    fn roundtrip_reply(reply: Reply) {
        let wire = encode_reply(&reply, u64::MAX);
        let frame = Frame::parse(Bytes::from(wire[4..].to_vec())).unwrap();
        assert_eq!(frame.req_id, u64::MAX);
        assert_eq!(decode_reply(&frame).unwrap(), reply);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_req(Request::Put {
            key: PartKey::new(9, 3),
            data: Bytes::from(vec![1, 2, 3]),
            sum: 0,
        });
        roundtrip_req(Request::Put {
            key: PartKey::parity(9, 1),
            data: Bytes::from(vec![1, 2, 3]),
            sum: u64::MAX,
        });
        roundtrip_req(Request::Get {
            key: PartKey::new(0, u32::MAX),
        });
        roundtrip_req(Request::GetParity {
            key: PartKey::parity(7, 0),
        });
        roundtrip_req(Request::GetRange {
            key: PartKey::new(5, 1).staged(),
            offset: 1 << 40,
            len: 0,
        });
        roundtrip_req(Request::Rename {
            from: PartKey::new(1, 2).staged(),
            to: PartKey::new(1, 2),
        });
        roundtrip_req(Request::Delete {
            key: PartKey::new(u64::MAX, 0),
        });
        roundtrip_req(Request::Stats);
        roundtrip_req(Request::Ping);
        roundtrip_req(Request::Shutdown);
        roundtrip_req(Request::SetEpoch(0));
        roundtrip_req(Request::SetEpoch(u64::MAX));
        roundtrip_req(Request::SetMasterEpoch(0));
        roundtrip_req(Request::SetMasterEpoch(u64::MAX));
        roundtrip_req(Request::Fenced {
            epoch: 7,
            master: 0,
            inner: Box::new(Request::Get {
                key: PartKey::new(4, 2),
            }),
        });
        roundtrip_req(Request::Fenced {
            epoch: u64::MAX,
            master: u64::MAX,
            inner: Box::new(Request::Put {
                key: PartKey::new(9, 0),
                data: Bytes::from(vec![5, 6, 7]),
                sum: 42,
            }),
        });
        roundtrip_req(Request::Fenced {
            epoch: 0,
            master: 3,
            inner: Box::new(Request::Delete {
                key: PartKey::new(1, 1),
            }),
        });
        roundtrip_req(Request::Background {
            inner: Box::new(Request::Get {
                key: PartKey::new(4, 2),
            }),
        });
        roundtrip_req(Request::Background {
            inner: Box::new(Request::Put {
                key: PartKey::new(9, 0),
                data: Bytes::from(vec![5, 6, 7]),
                sum: 7,
            }),
        });
        // The canonical full nesting: fence outside, class inside.
        roundtrip_req(
            Request::Put {
                key: PartKey::new(9, 0),
                data: Bytes::from(vec![8, 9]),
                sum: 1,
            }
            .background()
            .fenced(3),
        );
    }

    #[test]
    fn invalid_background_nesting_rejected() {
        // Background { Background { .. } } and Background { Fenced { .. } }
        // violate the canonical nesting and must not decode.
        for inner in [
            Request::Background {
                inner: Box::new(Request::Ping),
            },
            Request::Fenced {
                epoch: 2,
                master: 0,
                inner: Box::new(Request::Ping),
            },
        ] {
            let wire = encode_request(
                &Request::Background {
                    inner: Box::new(inner),
                },
                5,
            );
            let frame = Frame::parse(Bytes::from(wire[4..].to_vec())).unwrap();
            assert!(matches!(decode_request(&frame), Err(StoreError::Codec(_))));
        }
    }

    #[test]
    fn nested_fenced_request_rejected() {
        let wire = encode_request(
            &Request::Fenced {
                epoch: 1,
                master: 0,
                inner: Box::new(Request::Fenced {
                    epoch: 2,
                    master: 0,
                    inner: Box::new(Request::Ping),
                }),
            },
            5,
        );
        let frame = Frame::parse(Bytes::from(wire[4..].to_vec())).unwrap();
        assert!(matches!(decode_request(&frame), Err(StoreError::Codec(_))));
    }

    #[test]
    fn reply_roundtrips() {
        roundtrip_reply(Reply::Done);
        roundtrip_reply(Reply::Data(Bytes::from(vec![0u8; 0])));
        roundtrip_reply(Reply::Data(Bytes::from(vec![9u8; 1000])));
        roundtrip_reply(Reply::Flag(true));
        roundtrip_reply(Reply::Flag(false));
        roundtrip_reply(Reply::Pong {
            worker: 31,
            epoch: 0,
        });
        roundtrip_reply(Reply::Pong {
            worker: 0,
            epoch: u64::MAX,
        });
        roundtrip_reply(Reply::Stats(WorkerStats {
            bytes_served: 1,
            bytes_stored: 2,
            gets: 3,
            puts: 4,
            resident_parts: 5,
            bytes_background: 6,
            evictions: 7,
            spilled_bytes: 8,
            reloaded_bytes: 9,
            resident_bytes: 10,
            corruptions_detected: 11,
            parity_bytes: 12,
            decode_reconstructions: 13,
        }));
        roundtrip_reply(Reply::Err(StoreError::NotFound(PartKey::new(3, 1))));
        roundtrip_reply(Reply::Err(StoreError::Corrupt(PartKey::parity(3, 1))));
        roundtrip_reply(Reply::Err(StoreError::WorkerDown(2)));
        roundtrip_reply(Reply::Err(StoreError::UnknownFile(7)));
        roundtrip_reply(Reply::Err(StoreError::AlreadyExists(7)));
        roundtrip_reply(Reply::Err(StoreError::Timeout(0)));
        roundtrip_reply(Reply::Err(StoreError::Io(usize::MAX)));
        roundtrip_reply(Reply::Err(StoreError::Codec("bad".into())));
        roundtrip_reply(Reply::Err(StoreError::StaleEpoch(3)));
        roundtrip_reply(Reply::Err(StoreError::Degraded(u64::MAX)));
    }

    #[test]
    fn put_decode_is_zero_copy() {
        let data = Bytes::from(vec![42u8; 4096]);
        let wire = encode_request(
            &Request::Put {
                key: PartKey::new(1, 0),
                data: data.clone(),
                sum: 99,
            },
            1,
        );
        let buf = Bytes::from(wire[4..].to_vec());
        let frame = Frame::parse(buf.clone()).unwrap();
        let Request::Put { data: got, .. } = decode_request(&frame).unwrap() else {
            panic!("wrong variant");
        };
        // Same backing allocation: the payload view starts inside the
        // frame buffer.
        let buf_range = buf.as_ref().as_ptr() as usize..buf.as_ref().as_ptr() as usize + buf.len();
        assert!(buf_range.contains(&(got.as_ref().as_ptr() as usize)));
        assert_eq!(got, data);
    }

    #[test]
    fn parts_encoders_match_contiguous_encoders_byte_for_byte() {
        let key = PartKey::new(11, 4);
        let data = Bytes::from(vec![0xEE; 9000]);
        let requests = [
            Request::Put {
                key,
                data: data.clone(),
                sum: 0xDEAD_BEEF,
            },
            Request::Get { key },
            Request::GetParity {
                key: PartKey::parity(11, 0),
            },
            Request::Fenced {
                epoch: 42,
                master: 6,
                inner: Box::new(Request::Put {
                    key,
                    data: data.clone(),
                    sum: 0xFEED_FACE,
                }),
            },
            Request::Fenced {
                epoch: 42,
                master: 0,
                inner: Box::new(Request::Delete { key }),
            },
            Request::Shutdown,
        ];
        for req in &requests {
            let parts = encode_request_parts(req, 123);
            assert_eq!(parts.to_contiguous(), encode_request(req, 123), "{req:?}");
        }
        let replies = [
            Reply::Data(data.clone()),
            Reply::Data(Bytes::from(Vec::new())),
            Reply::Done,
            Reply::Err(StoreError::Timeout(3)),
        ];
        for reply in &replies {
            let parts = encode_reply_parts(reply, 9);
            assert_eq!(parts.to_contiguous(), encode_reply(reply, 9), "{reply:?}");
        }
        // Bulk payloads really are zero-copy: same backing allocation.
        let parts = encode_reply_parts(&Reply::Data(data.clone()), 9);
        assert_eq!(
            parts.payload.as_ref().unwrap().as_ref().as_ptr(),
            data.as_ref().as_ptr()
        );
    }

    #[test]
    fn wrong_version_rejected() {
        let mut wire = encode_request(&Request::Ping, 0);
        wire[4] = 9;
        let err = Frame::parse(Bytes::from(wire[4..].to_vec())).unwrap_err();
        assert!(matches!(err, StoreError::Codec(_)));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut wire = encode_request(&Request::Ping, 0);
        wire.push(0xFF);
        let frame = Frame::parse(Bytes::from(wire[4..].to_vec())).unwrap();
        assert!(matches!(
            decode_request(&frame),
            Err(StoreError::Codec(_))
        ));
    }

    #[test]
    fn read_frame_rejects_oversized_length() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        wire.extend_from_slice(&[0u8; 16]);
        let err = read_frame(&mut wire.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn read_frame_clean_eof_is_none() {
        let empty: &[u8] = &[];
        assert!(read_frame(&mut &*empty).unwrap().is_none());
    }

    #[test]
    fn read_frame_mid_frame_eof_is_error() {
        let wire = encode_request(&Request::Get { key: PartKey::new(1, 1) }, 3);
        let cut = &wire[..wire.len() - 2];
        let err = read_frame(&mut &*cut).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}

//! `spcached` — the store's network daemon.
//!
//! ```text
//! spcached worker --id N --bind ADDR [--seed S] [--bandwidth B]
//!                 [--io-shards N] [--memory-budget BYTES]
//!                 [--background-fraction F]
//! spcached master --bind ADDR --workers ADDR1,ADDR2,...
//!                 [--no-supervisor] [--heartbeat-ms MS]
//! ```
//!
//! Both roles print `LISTEN <addr>` on stdout once bound (port 0 picks
//! an ephemeral port), then serve until they receive a shutdown RPC.
//!
//! Workers serve all their connections from readiness event loops —
//! one I/O shard (loop thread) per core by default, each multiplexing
//! N connections; `--io-shards` overrides the shard count.
//!
//! Master mode runs the self-healing supervisor loop (DESIGN.md §4.11)
//! **by default**: it heartbeats the worker fleet, fences crash-restarted
//! workers with fresh epochs and marks lost partitions degraded.
//! `--no-supervisor` disables it entirely; `--heartbeat-ms` tunes the
//! probe cadence (default 100).
//!
//! `--memory-budget BYTES` caps a worker's resident cache: overflow
//! evicts cold partitions to a spill tier and reads of evicted
//! partitions transparently reload (DESIGN.md §4.13).
//! `--background-fraction F` (in `(0, 1]`, default 1.0) carves out the
//! share of the worker's NIC granted to background traffic — recovery
//! sweeps, repartition moves, spill/reload writebacks.

use spcache_net::{MasterServer, WorkerServer};
use spcache_store::fault::FaultLog;
use spcache_store::master::Master;
use spcache_store::supervisor::{Supervisor, SupervisorCore};
use spcache_store::transport::Transport;
use spcache_store::{StoreConfig, SupervisorConfig};
use std::net::SocketAddr;
use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage:\n  spcached worker --id N --bind ADDR [--seed S] [--bandwidth B] \
         [--io-shards N] [--memory-budget BYTES] [--background-fraction F]\n  \
         spcached master --bind ADDR --workers ADDR1,ADDR2,... \
         [--no-supervisor] [--heartbeat-ms MS]"
    );
    exit(2);
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse<T: std::str::FromStr>(what: &str, v: &str) -> T {
    v.parse().unwrap_or_else(|_| {
        eprintln!("spcached: bad value for {what}: {v:?}");
        exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("worker") => run_worker(&args[1..]),
        Some("master") => run_master(&args[1..]),
        _ => usage(),
    }
}

fn run_worker(args: &[String]) {
    let id: usize = parse("--id", &flag_value(args, "--id").unwrap_or_else(|| usage()));
    let bind = flag_value(args, "--bind").unwrap_or_else(|| usage());
    let mut cfg = StoreConfig::unthrottled(id + 1);
    if let Some(seed) = flag_value(args, "--seed") {
        cfg.seed = parse("--seed", &seed);
    }
    if let Some(bw) = flag_value(args, "--bandwidth") {
        cfg.bandwidth = parse("--bandwidth", &bw);
    }
    if let Some(budget) = flag_value(args, "--memory-budget") {
        cfg = cfg.with_memory_budget(Some(parse("--memory-budget", &budget)));
    }
    if let Some(frac) = flag_value(args, "--background-fraction") {
        let frac: f64 = parse("--background-fraction", &frac);
        if !(frac > 0.0 && frac <= 1.0) {
            eprintln!("spcached: --background-fraction must be in (0, 1], got {frac}");
            exit(2);
        }
        cfg = cfg.with_background_fraction(frac);
    }
    let log = Arc::new(FaultLog::new());
    // A standalone worker has no shared under-store to spill into, so a
    // budgeted one backs itself privately (spawn_worker_opts does this).
    let server = match flag_value(args, "--io-shards") {
        Some(n) => WorkerServer::spawn_sharded(id, &bind, &cfg, log, parse("--io-shards", &n)),
        None => WorkerServer::spawn(id, &bind, &cfg, log),
    }
    .unwrap_or_else(|e| {
        eprintln!("spcached: cannot bind {bind}: {e}");
        exit(1);
    });
    println!("LISTEN {}", server.addr());
    server.join();
}

fn run_master(args: &[String]) {
    let bind = flag_value(args, "--bind").unwrap_or_else(|| usage());
    let workers_arg = flag_value(args, "--workers").unwrap_or_else(|| usage());
    let worker_addrs: Vec<SocketAddr> = workers_arg
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| parse("--workers", s))
        .collect();
    if worker_addrs.is_empty() {
        usage();
    }
    let master = Arc::new(Master::new());
    master.ensure_workers(worker_addrs.len());
    let server = MasterServer::spawn(master.clone(), &bind, worker_addrs.clone())
        .unwrap_or_else(|e| {
            eprintln!("spcached: cannot bind {bind}: {e}");
            exit(1);
        });
    // The supervisor is ON by default in master mode; `--no-supervisor`
    // gives the exact pre-supervisor behaviour (manual liveness only).
    let _supervisor = (!args.iter().any(|a| a == "--no-supervisor")).then(|| {
        let mut sup = SupervisorConfig::enabled();
        if let Some(ms) = flag_value(args, "--heartbeat-ms") {
            sup = sup.with_interval(Duration::from_millis(parse("--heartbeat-ms", &ms)));
        }
        let transport: Arc<dyn Transport> =
            Arc::new(spcache_net::TcpTransport::connect(worker_addrs));
        Supervisor::spawn(SupervisorCore::new(
            master,
            transport,
            None, // no under-store to sweep from; detection + fencing only
            sup,
            spcache_store::RetryPolicy::default(),
        ))
    });
    println!("LISTEN {}", server.addr());
    server.join();
}

//! `spcached` — the store's network daemon.
//!
//! ```text
//! spcached worker --id N --bind ADDR [--seed S] [--bandwidth B]
//!                 [--io-shards N] [--memory-budget BYTES]
//!                 [--background-fraction F] [--verify-reads]
//! spcached master --bind ADDR --workers ADDR1,ADDR2,...
//!                 [--no-supervisor] [--heartbeat-ms MS]
//!                 [--meta-dir DIR] [--force-active]
//!                 [--standby --peer ADDR [--poll-ms MS]
//!                  [--takeover-after N]]
//! ```
//!
//! Both roles print `LISTEN <addr>` on stdout once bound (port 0 picks
//! an ephemeral port), then serve until they receive a shutdown RPC.
//!
//! `--meta-dir DIR` makes master metadata **durable** (DESIGN.md
//! §4.14): every mutation is journalled to a checksummed op-log under
//! `DIR`, compacted into snapshots, and replayed on restart. A
//! restarted master whose journal records a *different* owner address
//! starts fenced (redirecting to that owner) unless `--force-active`
//! reclaims authority under a bumped master epoch.
//!
//! `--standby` runs the failover twin: it tails the active master's
//! op-log over the wire (`--peer ADDR`), replays it into a shadow
//! master, and after `--takeover-after` consecutive failed polls
//! (default 5, `--poll-ms` apart, default 100) takes over — binding
//! its own meta endpoint, bumping the master epoch, announcing it to
//! the worker fleet, and fencing the old master if it ever answers
//! again. It prints `STANDBY <peer>` when tailing begins and
//! `TAKEOVER <epoch>` + `LISTEN <addr>` once promoted.
//!
//! Workers serve all their connections from readiness event loops —
//! one I/O shard (loop thread) per core by default, each multiplexing
//! N connections; `--io-shards` overrides the shard count.
//!
//! Master mode runs the self-healing supervisor loop (DESIGN.md §4.11)
//! **by default**: it heartbeats the worker fleet, fences crash-restarted
//! workers with fresh epochs and marks lost partitions degraded.
//! `--no-supervisor` disables it entirely; `--heartbeat-ms` tunes the
//! probe cadence (default 100).
//!
//! `--memory-budget BYTES` caps a worker's resident cache: overflow
//! evicts cold partitions to a spill tier and reads of evicted
//! partitions transparently reload (DESIGN.md §4.13).
//! `--background-fraction F` (in `(0, 1]`, default 1.0) carves out the
//! share of the worker's NIC granted to background traffic — recovery
//! sweeps, repartition moves, spill/reload writebacks.
//!
//! `--verify-reads` makes the worker recompute each partition's CRC-64
//! checksum before serving it (DESIGN.md §4.15); a mismatch erases the
//! local copies and answers a typed `Corrupt` erasure instead of wrong
//! bytes. Spill reloads are *always* verified, flag or no flag. Every
//! detected corruption is logged as `CORRUPT <file> <partition>` on
//! stderr.

use spcache_net::{MasterClient, MasterServer, WorkerServer};
use spcache_store::backing::UnderStore;
use spcache_store::fault::FaultLog;
use spcache_store::master::Master;
use spcache_store::metalog::decode_records;
use spcache_store::supervisor::{Supervisor, SupervisorCore};
use spcache_store::transport::Transport;
use spcache_store::{Request, StoreConfig, SupervisorConfig};
use std::net::SocketAddr;
use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage:\n  spcached worker --id N --bind ADDR [--seed S] [--bandwidth B] \
         [--io-shards N] [--memory-budget BYTES] [--background-fraction F] \
         [--verify-reads]\n  \
         spcached master --bind ADDR --workers ADDR1,ADDR2,... \
         [--no-supervisor] [--heartbeat-ms MS] [--meta-dir DIR] [--force-active] \
         [--standby --peer ADDR [--poll-ms MS] [--takeover-after N]]"
    );
    exit(2);
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse<T: std::str::FromStr>(what: &str, v: &str) -> T {
    v.parse().unwrap_or_else(|_| {
        eprintln!("spcached: bad value for {what}: {v:?}");
        exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("worker") => run_worker(&args[1..]),
        Some("master") => run_master(&args[1..]),
        _ => usage(),
    }
}

fn run_worker(args: &[String]) {
    let id: usize = parse("--id", &flag_value(args, "--id").unwrap_or_else(|| usage()));
    let bind = flag_value(args, "--bind").unwrap_or_else(|| usage());
    let mut cfg = StoreConfig::unthrottled(id + 1);
    if let Some(seed) = flag_value(args, "--seed") {
        cfg.seed = parse("--seed", &seed);
    }
    if let Some(bw) = flag_value(args, "--bandwidth") {
        cfg.bandwidth = parse("--bandwidth", &bw);
    }
    if let Some(budget) = flag_value(args, "--memory-budget") {
        cfg = cfg.with_memory_budget(Some(parse("--memory-budget", &budget)));
    }
    if let Some(frac) = flag_value(args, "--background-fraction") {
        let frac: f64 = parse("--background-fraction", &frac);
        if !(frac > 0.0 && frac <= 1.0) {
            eprintln!("spcached: --background-fraction must be in (0, 1], got {frac}");
            exit(2);
        }
        cfg = cfg.with_background_fraction(frac);
    }
    if args.iter().any(|a| a == "--verify-reads") {
        cfg = cfg.with_verify_reads(true);
    }
    // The daemon always reports corruption events: a bitflip in a cache
    // node is an operator-visible incident, not a silent retry.
    cfg = cfg.with_corruption_log(true);
    let log = Arc::new(FaultLog::new());
    // A standalone worker has no shared under-store to spill into, so a
    // budgeted one backs itself privately (spawn_worker_opts does this).
    let server = match flag_value(args, "--io-shards") {
        Some(n) => WorkerServer::spawn_sharded(id, &bind, &cfg, log, parse("--io-shards", &n)),
        None => WorkerServer::spawn(id, &bind, &cfg, log),
    }
    .unwrap_or_else(|e| {
        eprintln!("spcached: cannot bind {bind}: {e}");
        exit(1);
    });
    println!("LISTEN {}", server.addr());
    server.join();
}

fn run_master(args: &[String]) {
    let bind = flag_value(args, "--bind").unwrap_or_else(|| usage());
    let workers_arg = flag_value(args, "--workers").unwrap_or_else(|| usage());
    let worker_addrs: Vec<SocketAddr> = workers_arg
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| parse("--workers", s))
        .collect();
    if worker_addrs.is_empty() {
        usage();
    }
    let meta_dir = flag_value(args, "--meta-dir");
    if args.iter().any(|a| a == "--standby") {
        run_standby(args, &bind, &worker_addrs, meta_dir.as_deref());
        return;
    }

    // Durable mode replays the journal before serving; volatile mode is
    // the pre-§4.14 master, byte-for-byte.
    let master = match &meta_dir {
        Some(dir) => Arc::new(Master::recover(Arc::new(
            UnderStore::new().with_meta_dir(dir),
        ))),
        None => Arc::new(Master::new()),
    };
    master.ensure_workers(worker_addrs.len());
    let server = MasterServer::spawn(master.clone(), &bind, worker_addrs.clone())
        .unwrap_or_else(|e| {
            eprintln!("spcached: cannot bind {bind}: {e}");
            exit(1);
        });
    let my_addr = server.addr().to_string();
    // Activation rules (§4.14). A journal whose newest master-epoch
    // record names a different owner means someone took over while we
    // were down: start fenced and redirect to them — a kill -9'd master
    // that restarts can never split the brain. `--force-active`
    // reclaims authority under a bumped epoch instead (operator
    // override for "the successor is the one that died").
    if meta_dir.is_some() {
        let recorded = master.owner_addr();
        if recorded.is_empty() {
            master.claim_master_epoch(master.master_epoch(), &my_addr);
        } else if recorded != my_addr {
            if args.iter().any(|a| a == "--force-active") {
                master.claim_master_epoch(master.master_epoch() + 1, &my_addr);
            } else {
                eprintln!("spcached: journal owned by {recorded}; starting fenced");
                master.self_fence(Some(recorded));
            }
        }
    }
    // The supervisor is ON by default in master mode; `--no-supervisor`
    // gives the exact pre-supervisor behaviour (manual liveness only).
    // A fenced master's supervisor ticks are no-ops, so spawning it on
    // a fenced rejoin is harmless.
    let _supervisor = (!args.iter().any(|a| a == "--no-supervisor")).then(|| {
        let mut sup = SupervisorConfig::enabled();
        if let Some(ms) = flag_value(args, "--heartbeat-ms") {
            sup = sup.with_interval(Duration::from_millis(parse("--heartbeat-ms", &ms)));
        }
        let transport: Arc<dyn Transport> =
            Arc::new(spcache_net::TcpTransport::connect(worker_addrs));
        Supervisor::spawn(SupervisorCore::new(
            master,
            transport,
            None, // no under-store to sweep from; detection + fencing only
            sup,
            spcache_store::RetryPolicy::default(),
        ))
    });
    println!("LISTEN {}", server.addr());
    server.join();
}

/// The standby's life: tail the active master's op-log into a shadow
/// [`Master`], and when the active stops answering, take over (§4.14).
fn run_standby(args: &[String], bind: &str, worker_addrs: &[SocketAddr], meta_dir: Option<&str>) {
    let peer: SocketAddr = parse(
        "--peer",
        &flag_value(args, "--peer").unwrap_or_else(|| usage()),
    );
    let poll = Duration::from_millis(
        flag_value(args, "--poll-ms").map_or(100, |v| parse("--poll-ms", &v)),
    );
    let takeover_after: u32 =
        flag_value(args, "--takeover-after").map_or(5, |v| parse("--takeover-after", &v));

    let peer_client = MasterClient::connect(peer).with_deadline(poll.max(Duration::from_millis(20)));
    let shadow = Arc::new(Master::new());
    let mut applied: u64 = 1; // first LSN not yet replayed
    let mut misses: u32 = 0;
    println!("STANDBY {peer}");
    loop {
        std::thread::sleep(poll);
        // Status first (cheap, served even by a fenced peer), then pull
        // the delta. One failed poll is a blip; `takeover_after` in a
        // row is a dead master.
        match peer_client.status() {
            Ok(_) => {
                misses = 0;
                if let Ok((next, bytes)) = peer_client.log_tail(applied) {
                    for (lsn, op) in decode_records(&bytes) {
                        if lsn >= applied {
                            shadow.apply_op(&op);
                        }
                    }
                    applied = applied.max(next);
                }
            }
            Err(_) => {
                misses += 1;
                if misses >= takeover_after {
                    break;
                }
            }
        }
    }

    // Takeover. With a shared meta-dir the journal on disk is the
    // authority (it has everything, including ops our last poll
    // missed); without one the wire-replayed shadow is the best state
    // in existence.
    let master = match meta_dir {
        Some(dir) => Arc::new(Master::recover(Arc::new(
            UnderStore::new().with_meta_dir(dir),
        ))),
        None => {
            // Give the shadow a journal of its own so the new reign is
            // durable in memory (and replicable to the next standby).
            shadow.enable_journal(Arc::new(spcache_store::MetaLog::open(Arc::new(
                UnderStore::new(),
            ))));
            shadow
        }
    };
    master.ensure_workers(worker_addrs.len());
    let server = MasterServer::spawn(master.clone(), bind, worker_addrs.to_vec())
        .unwrap_or_else(|e| {
            eprintln!("spcached: cannot bind {bind}: {e}");
            exit(1);
        });
    let my_addr = server.addr().to_string();
    let epoch = master.claim_master_epoch(master.master_epoch() + 1, &my_addr);
    // The old master's in-flight repairs died with it; release their
    // slots so the files can be healed again.
    master.abandon_repairs();
    master.activate();
    // Fence the fleet: workers raise their master-epoch watermark and
    // bounce anything the deposed master still sends. Best-effort — a
    // worker that misses the announcement learns the epoch from our
    // supervisor's stamped traffic instead.
    let transport: Arc<dyn Transport> =
        Arc::new(spcache_net::TcpTransport::connect(worker_addrs.to_vec()));
    for w in 0..worker_addrs.len() {
        let _ = transport.call(w, Request::SetMasterEpoch(epoch), Duration::from_millis(200));
    }
    // Tell the old master it is deposed, if it ever answers again.
    let _ = peer_client.takeover(epoch, &my_addr);
    let mut sup = SupervisorConfig::enabled();
    if let Some(ms) = flag_value(args, "--heartbeat-ms") {
        sup = sup.with_interval(Duration::from_millis(parse("--heartbeat-ms", &ms)));
    }
    let _supervisor = (!args.iter().any(|a| a == "--no-supervisor")).then(|| {
        Supervisor::spawn(SupervisorCore::new(
            master.clone(),
            transport.clone(),
            None,
            sup,
            spcache_store::RetryPolicy::default(),
        ))
    });
    println!("TAKEOVER {epoch}");
    println!("LISTEN {}", server.addr());
    server.join();
}

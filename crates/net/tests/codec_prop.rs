//! Property tests of the wire codec: every message round-trips through
//! its frame byte-for-byte, and *no* corruption of those bytes — flips,
//! cuts, length lies — can make the decoder panic or over-read.

use bytes::Bytes;
use proptest::prelude::*;
use spcache_net::frame::{
    decode_reply, decode_request, encode_reply, encode_request, read_frame, Frame, HEADER_LEN,
};
use spcache_net::poll::{FrameReader, PumpStatus};
use spcache_net::master_net::{
    decode_meta_reply, decode_meta_request, encode_meta_reply, encode_meta_request, MetaReply,
    MetaRequest,
};
use spcache_store::rpc::{PartKey, Reply, Request, StoreError, WorkerStats};
use spcache_store::FileIntegrity;

/// Strips the 4-byte length prefix off an `encode_*` result, yielding
/// the frame buffer `read_frame` would hand to `Frame::parse`.
fn strip_prefix(wire: Vec<u8>) -> Bytes {
    Bytes::from(wire[4..].to_vec())
}

/// Decodes one encoded frame back into a `Request`.
fn req_roundtrip(req: &Request, req_id: u64) -> (u64, Request) {
    let frame = Frame::parse(strip_prefix(encode_request(req, req_id))).expect("parse");
    let decoded = decode_request(&frame).expect("decode");
    (frame.req_id, decoded)
}

fn reply_roundtrip(reply: &Reply, req_id: u64) -> (u64, Reply) {
    let frame = Frame::parse(strip_prefix(encode_reply(reply, req_id))).expect("parse");
    let decoded = decode_reply(&frame).expect("decode");
    (frame.req_id, decoded)
}

/// Builds a key exercising the edges the codec must preserve: part
/// indices up to `u32::MAX` and the staged bit.
fn key_from(file: u64, part: u32, staged: bool) -> PartKey {
    let k = PartKey::new(file, part);
    if staged {
        k.staged()
    } else {
        k
    }
}

proptest! {
    #[test]
    fn put_roundtrips_ragged_sizes(
        file in 0u64..u64::MAX,
        part in 0u32..=u32::MAX,
        staged: bool,
        req_id in 0u64..u64::MAX,
        data in proptest::collection::vec(0u8..=255, 0..4_096),
        sum in 0u64..u64::MAX,
    ) {
        let key = key_from(file, part, staged);
        let req = Request::Put { key, data: Bytes::from(data.clone()), sum };
        let (rid, decoded) = req_roundtrip(&req, req_id);
        prop_assert_eq!(rid, req_id);
        match decoded {
            Request::Put { key: k, data: d, sum: s } => {
                prop_assert_eq!(k, key);
                prop_assert_eq!(&d[..], &data[..]);
                prop_assert_eq!(s, sum);
            }
            other => prop_assert!(false, "wrong variant: {:?}", other),
        }
    }

    #[test]
    fn control_requests_roundtrip(
        file in 0u64..u64::MAX,
        part in 0u32..=u32::MAX,
        staged: bool,
        offset in 0u64..u64::MAX,
        len in 0u64..u64::MAX,
        req_id in 0u64..u64::MAX,
    ) {
        let key = key_from(file, part, staged);
        let to = key_from(file.wrapping_add(1), part ^ 1, !staged);
        for req in [
            Request::Get { key },
            Request::GetRange { key, offset, len },
            Request::Rename { from: key, to },
            Request::Delete { key },
            Request::Stats,
            Request::Ping,
            Request::Shutdown,
            Request::SetEpoch(offset),
            Request::SetMasterEpoch(len),
            Request::Fenced {
                epoch: len,
                master: 0,
                inner: Box::new(Request::Get { key }),
            },
            Request::Fenced {
                epoch: len,
                master: offset,
                inner: Box::new(Request::Get { key }),
            },
            Request::Background {
                inner: Box::new(Request::Get { key }),
            },
            Request::Fenced {
                epoch: len,
                master: offset,
                inner: Box::new(Request::Background {
                    inner: Box::new(Request::Delete { key }),
                }),
            },
        ] {
            let (rid, decoded) = req_roundtrip(&req, req_id);
            prop_assert_eq!(rid, req_id);
            prop_assert_eq!(decoded, req);
        }
    }

    #[test]
    fn replies_roundtrip(
        file in 0u64..u64::MAX,
        part in 0u32..=u32::MAX,
        w in 0usize..1_000_000,
        flag: bool,
        req_id in 0u64..u64::MAX,
        data in proptest::collection::vec(0u8..=255, 0..2_048),
        served in 0u64..u64::MAX,
        bytes_out in 0u64..u64::MAX,
    ) {
        let key = key_from(file, part, true);
        for reply in [
            Reply::Done,
            Reply::Data(Bytes::from(data.clone())),
            Reply::Flag(flag),
            Reply::Stats(WorkerStats {
                bytes_served: served,
                bytes_stored: bytes_out,
                gets: served / 2,
                puts: served / 3,
                resident_parts: w,
                bytes_background: bytes_out / 2,
                evictions: served / 5,
                spilled_bytes: bytes_out / 3,
                reloaded_bytes: bytes_out / 4,
                resident_bytes: bytes_out / 5,
                corruptions_detected: served / 7,
                parity_bytes: bytes_out / 6,
                decode_reconstructions: served / 9,
            }),
            Reply::Pong { worker: w, epoch: served },
            Reply::Err(StoreError::NotFound(key)),
            Reply::Err(StoreError::Corrupt(key)),
            Reply::Err(StoreError::WorkerDown(w)),
            Reply::Err(StoreError::UnknownFile(file)),
            Reply::Err(StoreError::AlreadyExists(file)),
            Reply::Err(StoreError::Timeout(w)),
            Reply::Err(StoreError::Io(w)),
            Reply::Err(StoreError::Codec(format!("bad byte {part}"))),
            Reply::Err(StoreError::StaleEpoch(w)),
            Reply::Err(StoreError::Degraded(file)),
        ] {
            let (rid, decoded) = reply_roundtrip(&reply, req_id);
            prop_assert_eq!(rid, req_id);
            prop_assert_eq!(decoded, reply);
        }
    }

    #[test]
    fn meta_messages_roundtrip(
        file in 0u64..u64::MAX,
        size in 0u64..u64::MAX,
        w in 0usize..1_000_000,
        n in 0u64..10_000,
        flag: bool,
        req_id in 0u64..u64::MAX,
        servers in proptest::collection::vec(0usize..64, 0..12),
        files in proptest::collection::vec(0u64..u64::MAX, 0..12),
        bandwidth in 0f64..1e12,
        lambda in 0f64..1e9,
        seed in 0u64..u64::MAX,
    ) {
        for req in [
            MetaRequest::Register { id: file, size, servers: servers.clone() },
            MetaRequest::Unregister { id: file },
            MetaRequest::Locate { id: file },
            MetaRequest::Peek { id: file },
            MetaRequest::ApplyPlacement { id: file, servers: servers.clone() },
            MetaRequest::MarkAlive { w: w as u64 },
            MetaRequest::MarkDead { w: w as u64 },
            MetaRequest::Suspect { w: w as u64 },
            MetaRequest::IsAlive { w: w as u64 },
            MetaRequest::LiveWorkers { n },
            MetaRequest::Degraded,
            MetaRequest::Rebalance { bandwidth, lambda, seed },
            MetaRequest::WorkerEpochs { n },
            MetaRequest::RegisterWorker { w: w as u64 },
            MetaRequest::BeginRepair { id: file },
            MetaRequest::EndRepair { id: file },
            MetaRequest::Status,
            MetaRequest::LogTail { from: size },
            MetaRequest::Takeover { epoch: size, addr: format!("127.0.0.1:{}", n % 65_536) },
            MetaRequest::RegisterBatch {
                entries: files.iter().map(|&f| (f, size, servers.clone())).collect(),
            },
            MetaRequest::SetIntegrity {
                id: file,
                integrity: FileIntegrity {
                    sums: files.clone(),
                    parity: servers.iter().map(|&sv| (sv, seed ^ sv as u64)).collect(),
                },
            },
            MetaRequest::Integrity { id: file },
            MetaRequest::Shutdown,
        ] {
            let frame =
                Frame::parse(strip_prefix(encode_meta_request(&req, req_id))).expect("parse");
            prop_assert_eq!(frame.req_id, req_id);
            prop_assert_eq!(decode_meta_request(&frame).expect("decode"), req);
        }
        for reply in [
            MetaReply::Done,
            MetaReply::Info { size, servers: servers.clone() },
            MetaReply::Maybe(None),
            MetaReply::Maybe(Some((size, servers.clone()))),
            MetaReply::Count(n as u32),
            MetaReply::Flag(flag),
            MetaReply::Workers(servers.clone()),
            MetaReply::Files(files.clone()),
            MetaReply::Rebalanced { moved: n, skipped: files.clone() },
            MetaReply::Epochs(files.clone()),
            MetaReply::Epoch(size),
            MetaReply::Redirect { to: format!("10.0.0.{}:{}", n % 256, w % 65_536) },
            MetaReply::Redirect { to: String::new() },
            MetaReply::Status { epoch: size, active: flag, files: n, next_lsn: seed },
            MetaReply::Log { next_lsn: size, bytes: files.iter().flat_map(|f| f.to_le_bytes()).collect() },
            MetaReply::IntegrityRow(None),
            MetaReply::IntegrityRow(Some(FileIntegrity {
                sums: files.clone(),
                parity: servers.iter().map(|&sv| (sv, seed ^ sv as u64)).collect(),
            })),
            MetaReply::Err(StoreError::UnknownFile(file)),
        ] {
            let frame =
                Frame::parse(strip_prefix(encode_meta_reply(&reply, req_id))).expect("parse");
            prop_assert_eq!(frame.req_id, req_id);
            prop_assert_eq!(decode_meta_reply(&frame).expect("decode"), reply);
        }
    }

    /// Any single-byte corruption of a valid frame must decode cleanly,
    /// error out, or fail to parse — never panic, never read outside the
    /// buffer (the `Bytes` shim bounds-checks every slice).
    #[test]
    fn flipped_bytes_never_panic(
        file in 0u64..u64::MAX,
        part in 0u32..=u32::MAX,
        req_id in 0u64..u64::MAX,
        data in proptest::collection::vec(0u8..=255, 0..512),
        pos_seed in 0usize..usize::MAX,
        flip in 1u8..=255,
    ) {
        let wire =
            encode_request(&Request::Put { key: PartKey::new(file, part), data: Bytes::from(data), sum: 7 }, req_id);
        let mut bytes = wire[4..].to_vec();
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= flip;
        if let Ok(frame) = Frame::parse(Bytes::from(bytes)) {
            let _ = decode_request(&frame); // must not panic
            let _ = decode_reply(&frame);
            let _ = decode_meta_request(&frame);
            let _ = decode_meta_reply(&frame);
        }
    }

    /// Every §4.14 failover-protocol frame — master-epoch stamps on the
    /// worker wire, log-tail/takeover/redirect/batch on the meta wire —
    /// survives arbitrary single-byte corruption *and* truncation at
    /// any offset without panicking or over-reading. (The happy-path
    /// roundtrips live in `control_requests_roundtrip` and
    /// `meta_messages_roundtrip`; this is the adversarial half.)
    #[test]
    fn failover_frames_survive_corruption_and_truncation(
        epoch in 0u64..u64::MAX,
        master in 0u64..u64::MAX,
        req_id in 0u64..u64::MAX,
        entries in proptest::collection::vec(
            (0u64..u64::MAX, 0u64..1u64 << 40, proptest::collection::vec(0usize..64, 0..6)),
            0..6,
        ),
        raw in proptest::collection::vec(0u8..=255, 0..256),
        pos_seed in 0usize..usize::MAX,
        cut_seed in 0usize..usize::MAX,
        flip in 1u8..=255,
    ) {
        let wires = [
            encode_request(&Request::SetMasterEpoch(master), req_id),
            encode_request(&Request::Fenced {
                epoch,
                master,
                inner: Box::new(Request::Get { key: PartKey::new(epoch, 7) }),
            }, req_id),
            encode_meta_request(&MetaRequest::Status, req_id),
            encode_meta_request(&MetaRequest::LogTail { from: epoch }, req_id),
            encode_meta_request(&MetaRequest::Takeover {
                epoch,
                addr: format!("127.0.0.1:{}", master % 65_536),
            }, req_id),
            encode_meta_request(&MetaRequest::RegisterBatch { entries: entries.clone() }, req_id),
            encode_meta_reply(&MetaReply::Redirect {
                to: format!("10.1.2.3:{}", epoch % 65_536),
            }, req_id),
            encode_meta_reply(&MetaReply::Status {
                epoch, active: flip & 1 == 1, files: master, next_lsn: epoch ^ master,
            }, req_id),
            encode_meta_reply(&MetaReply::Log { next_lsn: epoch, bytes: raw.clone() }, req_id),
        ];
        for wire in wires {
            // Single-byte flip: decode may fail, must not panic.
            let mut bytes = wire[4..].to_vec();
            let pos = pos_seed % bytes.len();
            bytes[pos] ^= flip;
            if let Ok(frame) = Frame::parse(Bytes::from(bytes)) {
                let _ = decode_request(&frame);
                let _ = decode_meta_request(&frame);
                let _ = decode_meta_reply(&frame);
            }
            // Truncation mid-frame: the length prefix catches it.
            let cut = 1 + cut_seed % (wire.len() - 1);
            let mut stream = std::io::Cursor::new(wire[..cut].to_vec());
            prop_assert!(read_frame(&mut stream).is_err(), "cut at {cut} accepted");
        }
    }

    /// A connection cut anywhere inside a frame must surface as an I/O
    /// error from `read_frame` — the length prefix makes truncation
    /// detectable *before* the decoder ever sees short bytes. (Payloads
    /// are the frame remainder, so this is the only truncation guard.)
    #[test]
    fn truncated_streams_are_io_errors(
        file in 0u64..u64::MAX,
        part in 0u32..=u32::MAX,
        req_id in 0u64..u64::MAX,
        data in proptest::collection::vec(0u8..=255, 1..512),
        cut_seed in 0usize..usize::MAX,
    ) {
        let wire =
            encode_request(&Request::Put { key: PartKey::new(file, part), data: Bytes::from(data), sum: 7 }, req_id);
        // Cut strictly inside the message (cut = 0 is a clean close,
        // covered by the unit tests as `Ok(None)`).
        let cut = 1 + cut_seed % (wire.len() - 1);
        let mut stream = std::io::Cursor::new(wire[..cut].to_vec());
        let got = read_frame(&mut stream);
        prop_assert!(got.is_err(), "cut at {} of {} accepted: {:?}", cut, wire.len(), got);
    }

    /// Truncation *below the header* is also rejected at the parse
    /// layer, for receivers handed a raw short buffer.
    #[test]
    fn short_buffers_fail_parse(
        req_id in 0u64..u64::MAX,
        cut in 0usize..HEADER_LEN,
    ) {
        let wire = encode_request(&Request::Ping, req_id);
        let short = wire[4..4 + cut].to_vec();
        match Frame::parse(Bytes::from(short)) {
            Err(StoreError::Codec(_)) => {}
            other => prop_assert!(false, "short header accepted: {:?}", other),
        }
    }

    /// `read_frame` against a stream whose *length prefix lies* (larger
    /// than the payload, or absurdly large) returns an error — it never
    /// blocks forever on this finite input and never allocates the lie.
    #[test]
    fn lying_length_prefix_is_io_error(
        declared in 10u32..u32::MAX,
        actual in 0usize..64,
    ) {
        let mut stream = Vec::new();
        stream.extend_from_slice(&declared.to_le_bytes());
        stream.extend_from_slice(&vec![0u8; actual]);
        let mut r = std::io::Cursor::new(stream);
        // Either InvalidData (over MAX_FRAME) or UnexpectedEof (honest
        // lengths with missing bytes).
        prop_assert!(read_frame(&mut r).is_err());
    }
}

// ---------------------------------------------------------------------
// Batched frames through the event loop's `FrameReader`.
// ---------------------------------------------------------------------

/// A reader that hands back a byte stream in arbitrary chunk sizes —
/// the adversarial schedule of `read(2)` returns a non-blocking socket
/// can produce — optionally interleaving `WouldBlock` between chunks
/// the way a drained socket would.
struct ChunkedReader {
    data: Vec<u8>,
    pos: usize,
    cuts: Vec<usize>,
    ci: usize,
    block_between: bool,
    pending_block: bool,
}

impl ChunkedReader {
    fn new(data: Vec<u8>, cuts: Vec<usize>, block_between: bool) -> Self {
        ChunkedReader { data, pos: 0, cuts, ci: 0, block_between, pending_block: false }
    }
}

impl std::io::Read for ChunkedReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pending_block {
            self.pending_block = false;
            return Err(std::io::ErrorKind::WouldBlock.into());
        }
        if self.pos >= self.data.len() {
            return Ok(0);
        }
        let chunk = self.cuts.get(self.ci).copied().unwrap_or(usize::MAX).max(1);
        self.ci += 1;
        let n = chunk.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        if self.block_between {
            self.pending_block = true;
        }
        Ok(n)
    }
}

/// Builds a batched wire stream of `Put` frames plus the frame-boundary
/// offsets (cumulative encoded lengths) and the expected decodes.
fn batched_stream(msgs: &[(u64, Vec<u8>)]) -> (Vec<u8>, Vec<usize>, Vec<(u64, Request)>) {
    let mut stream = Vec::new();
    let mut boundaries = vec![0];
    let mut expect = Vec::new();
    for (req_id, data) in msgs {
        let req = Request::Put {
            key: PartKey::new(req_id ^ 0xABCD, (*req_id % 7_919) as u32),
            data: Bytes::from(data.clone()),
            sum: *req_id ^ 0x5A5A,
        };
        stream.extend_from_slice(&encode_request(&req, *req_id));
        boundaries.push(stream.len());
        expect.push((*req_id, req));
    }
    (stream, boundaries, expect)
}

/// Drives `FrameReader::pump` to completion over a chunked reader,
/// failing the case if it spins without consuming.
fn pump_all(
    r: &mut ChunkedReader,
    frames: &mut Vec<Bytes>,
) -> Result<std::io::Result<()>, TestCaseError> {
    let mut fr = FrameReader::new();
    for _ in 0..(2 * r.data.len() + 64) {
        match fr.pump(r, frames) {
            Ok(PumpStatus::Closed) => return Ok(Ok(())),
            Ok(PumpStatus::Open) => {}
            Err(e) => return Ok(Err(e)),
        }
    }
    Err(TestCaseError::from("pump never reached EOF"))
}

proptest! {
    /// A pipelined batch of frames split at *any* syscall boundaries —
    /// including one-byte reads and interleaved `WouldBlock` — re-parses
    /// to exactly the original frame sequence: nothing lost, nothing
    /// duplicated, no byte attributed to the wrong frame, and the
    /// reader consumes the stream exactly once (no over-read).
    #[test]
    fn batched_frames_reparse_across_any_split_points(
        msgs in proptest::collection::vec(
            (0u64..u64::MAX, proptest::collection::vec(0u8..=255, 0..2_048)),
            1..10,
        ),
        cuts in proptest::collection::vec(1usize..97, 0..64),
        block: bool,
    ) {
        let (stream, _, expect) = batched_stream(&msgs);
        let total = stream.len();
        let mut r = ChunkedReader::new(stream, cuts, block);
        let mut frames = Vec::new();
        pump_all(&mut r, &mut frames)?.expect("clean batch errored");
        prop_assert_eq!(r.pos, total, "reader stopped early or over-read");
        prop_assert_eq!(frames.len(), expect.len(), "frame count diverged");
        for (bytes, (req_id, req)) in frames.iter().zip(&expect) {
            let frame = Frame::parse(bytes.clone()).expect("parse pumped frame");
            prop_assert_eq!(frame.req_id, *req_id);
            prop_assert_eq!(&decode_request(&frame).expect("decode pumped frame"), req);
        }
    }

    /// The same batch torn at a random byte: everything before the tear
    /// re-parses as a strict prefix of the original sequence, and the
    /// tear itself surfaces as a clean close (frame boundary) or an
    /// `UnexpectedEof` (mid-frame) — never a panic, never a fabricated
    /// frame from the torn tail.
    #[test]
    fn torn_batched_streams_yield_a_clean_prefix(
        msgs in proptest::collection::vec(
            (0u64..u64::MAX, proptest::collection::vec(0u8..=255, 0..512)),
            1..8,
        ),
        cuts in proptest::collection::vec(1usize..53, 0..48),
        cut_seed in 0usize..usize::MAX,
        block: bool,
    ) {
        let (stream, boundaries, expect) = batched_stream(&msgs);
        let cut = 1 + cut_seed % (stream.len() - 1);
        let on_boundary = boundaries.contains(&cut);
        let mut r = ChunkedReader::new(stream[..cut].to_vec(), cuts, block);
        let mut frames = Vec::new();
        let outcome = pump_all(&mut r, &mut frames)?;
        if on_boundary {
            prop_assert!(outcome.is_ok(), "boundary cut errored: {:?}", outcome);
        } else {
            let err = outcome.expect_err("mid-frame tear decoded cleanly");
            prop_assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
        }
        // Exactly the frames wholly before the tear, byte-for-byte.
        let complete = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
        prop_assert_eq!(frames.len(), complete, "torn tail fabricated or ate a frame");
        for (bytes, (req_id, req)) in frames.iter().zip(&expect) {
            let frame = Frame::parse(bytes.clone()).expect("parse pumped frame");
            prop_assert_eq!(frame.req_id, *req_id);
            prop_assert_eq!(&decode_request(&frame).expect("decode pumped frame"), req);
        }
    }
}

/// Deterministic edge cases worth pinning outside the generators.
#[test]
fn codec_edges() {
    // Size-0 payload.
    let (_, decoded) = req_roundtrip(
        &Request::Put {
            key: PartKey::new(0, 0),
            data: Bytes::from(Vec::new()),
            sum: 0,
        },
        0,
    );
    assert!(matches!(decoded, Request::Put { data, .. } if data.is_empty()));

    // Max u32 part index survives, staged and plain.
    let k = PartKey::new(u64::MAX, u32::MAX);
    let (_, decoded) = req_roundtrip(&Request::Get { key: k.staged() }, u64::MAX);
    assert_eq!(decoded, Request::Get { key: k.staged() });

    // The empty buffer and a bare header are rejected, not panics.
    assert!(Frame::parse(Bytes::from(Vec::new())).is_err());
    let bare = encode_request(&Request::Ping, 7);
    assert_eq!(bare.len(), HEADER_LEN + 4); // length prefix + header, no body
    assert!(Frame::parse(Bytes::from(bare[4..4 + HEADER_LEN - 1].to_vec())).is_err());
}

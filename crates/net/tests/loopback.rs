//! End-to-end tests of the loopback-TCP cluster: byte-exact parity with
//! the in-process transport, repartition over the wire, wire-level fault
//! injection, and graceful drain-then-exit shutdown.

use spcache_net::TcpCluster;
use spcache_store::fault::FaultAction;
use spcache_store::rpc::{PartKey, Reply, Request, StoreError};
use spcache_store::transport::Transport;
use spcache_store::{FaultPlan, RetryPolicy, StoreCluster, StoreConfig};
use std::time::{Duration, Instant};

const N_WORKERS: usize = 4;

/// Deterministic payload, distinct per file.
fn payload(id: u64, len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 131 + id as usize * 17 + 3) % 256) as u8).collect()
}

fn retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 4,
        base_backoff: Duration::from_millis(2),
        deadline: Duration::from_secs(2),
    }
}

/// The acceptance bar: the same workload against the in-process channel
/// transport and against real loopback sockets returns identical bytes.
#[test]
fn tcp_reads_match_in_process_reads_byte_for_byte() {
    let tcp = TcpCluster::spawn(StoreConfig::unthrottled(N_WORKERS));
    let chan = StoreCluster::spawn(StoreConfig::unthrottled(N_WORKERS));
    let tcp_client = tcp.client();
    let chan_client = chan.client();

    for id in 0..12u64 {
        // Ragged sizes straddle the partition boundary math.
        let data = payload(id, 3_000 + (id as usize * 997) % 9_000);
        let servers = vec![id as usize % N_WORKERS, (id as usize + 1) % N_WORKERS];
        tcp_client.write(id, &data, &servers).unwrap();
        chan_client.write(id, &data, &servers).unwrap();
    }
    for id in 0..12u64 {
        let over_tcp = tcp_client.read(id).unwrap();
        let in_process = chan_client.read(id).unwrap();
        assert_eq!(over_tcp, in_process, "file {id} differs across transports");
        assert_eq!(over_tcp, payload(id, 3_000 + (id as usize * 997) % 9_000));
    }
    tcp.shutdown();
}

/// A full repartition round-trip driven through the master's wire
/// protocol: one `Rebalance` RPC plans with Algorithm 1+2 and executes
/// over the master's own TCP transport; reads stay byte-exact.
#[test]
fn rebalance_rpc_moves_files_and_preserves_bytes() {
    let tcp = TcpCluster::spawn(StoreConfig::unthrottled(N_WORKERS));
    let client = tcp.client();

    // Large files, all crowded onto worker 0 — exactly what selective
    // partition exists to fix.
    for id in 0..6u64 {
        client.write(id, &payload(id, 40_000), &[0]).unwrap();
    }
    // Skew the access counts so the tuner sees load.
    for _ in 0..5 {
        for id in 0..6u64 {
            client.read(id).unwrap();
        }
    }

    let mc = tcp.master_client();
    let (moved, skipped) = mc.rebalance(1e9, 100.0, 42).unwrap();
    assert!(skipped.is_empty(), "no worker failed, nothing may be skipped");
    assert!(moved > 0, "crowded placement must trigger movement");

    // Placement metadata changed under at least one moved file...
    let spread: usize = tcp
        .master()
        .placements()
        .iter()
        .map(|(_, servers)| servers.len())
        .max()
        .unwrap();
    assert!(spread > 1, "rebalance should partition at least one file");
    // ...and every byte survived the move.
    for id in 0..6u64 {
        assert_eq!(client.read(id).unwrap(), payload(id, 40_000), "file {id}");
    }
    tcp.shutdown();
}

/// Wire faults fire at the TCP layer and the retrying client absorbs
/// them: a dropped connection, a delayed frame and a truncated frame
/// each surface as retryable transport errors, never wrong bytes.
#[test]
fn wire_faults_are_absorbed_by_retries() {
    let delay = Duration::from_millis(120);
    let faults = FaultPlan::none()
        .drop_connection(1, 2)
        .truncate_frame(2, 2)
        .delay_frame(3, 2, delay);
    let cfg = StoreConfig::unthrottled(N_WORKERS)
        .with_faults(faults)
        .with_retry(retry());
    let tcp = TcpCluster::spawn(cfg);
    let client = tcp.client();

    for id in 0..4u64 {
        // One partition per worker: file id lives on worker id.
        client.write(id, &payload(id, 2_000), &[id as usize]).unwrap();
    }
    // Each worker has served 1 put (op 0); reads are ops 1, 2, ... The
    // faults all trigger at op 2, i.e. the second read below.
    let t0 = Instant::now();
    for round in 0..3 {
        for id in 0..4u64 {
            assert_eq!(
                client.read(id).unwrap(),
                payload(id, 2_000),
                "round {round} file {id}"
            );
        }
    }
    assert!(t0.elapsed() >= delay, "the delayed frame must actually stall");

    let log = tcp.fault_log().snapshot();
    let fired: Vec<(usize, FaultAction)> =
        log.iter().map(|r| (r.worker, r.action.clone())).collect();
    assert!(fired.contains(&(1, FaultAction::DropConnection)));
    assert!(fired.contains(&(2, FaultAction::TruncateFrame)));
    assert!(fired.contains(&(3, FaultAction::DelayFrame(delay))));
    tcp.shutdown();
}

/// Graceful shutdown over the wire: requests already accepted are
/// drained (their effects are durable and their replies delivered)
/// before the ack; requests after the ack fail cleanly.
#[test]
fn shutdown_drains_queued_requests() {
    let tcp = TcpCluster::spawn(StoreConfig::unthrottled(1));
    let transport = tcp.transport().clone();

    // Queue a burst of puts and a shutdown *behind* them, all without
    // awaiting — the server must serve every put before acking.
    let staged: Vec<_> = (0..32u32)
        .map(|i| {
            let key = PartKey::new(7, i).staged();
            let data = payload(u64::from(i), 1_500);
            let rx = transport
                .submit(0, Request::Put { key, data: data.clone().into(), sum: 0 })
                .unwrap();
            (key, data, rx)
        })
        .collect();
    let shutdown_rx = transport.submit(0, Request::Shutdown).unwrap();

    for (i, (_, _, rx)) in staged.iter().enumerate() {
        let reply = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(reply, Reply::Done, "queued put {i} must land before the ack");
    }
    assert_eq!(
        shutdown_rx.recv_timeout(Duration::from_secs(5)).unwrap(),
        Reply::Done
    );

    // The worker is gone: a new request must fail with a transport
    // error, not hang.
    let err = transport
        .call(0, Request::Ping, Duration::from_secs(1))
        .map(|r| r.pong())
        .and_then(|r| r);
    match err {
        Err(StoreError::Io(0) | StoreError::WorkerDown(0) | StoreError::Timeout(0)) => {}
        other => panic!("post-shutdown request should fail, got {other:?}"),
    }
    tcp.shutdown();
}

/// `Stats` over the wire reflect the served workload.
#[test]
fn stats_travel_the_wire() {
    let tcp = TcpCluster::spawn(StoreConfig::unthrottled(2));
    let client = tcp.client();
    client.write(1, &payload(1, 5_000), &[0, 1]).unwrap();
    client.read(1).unwrap();
    let stats = tcp.worker_stats().unwrap();
    let puts: u64 = stats.iter().map(|s| s.puts).sum();
    let gets: u64 = stats.iter().map(|s| s.gets).sum();
    assert_eq!(puts, 2);
    assert_eq!(gets, 2);
    assert_eq!(stats.iter().map(|s| s.resident_parts).sum::<usize>(), 2);
    tcp.shutdown();
}

//! Corruption-to-erasure recovery end to end over real sockets
//! (DESIGN.md §4.15), SIGKILL-free: the cluster stays up the whole
//! time. Bytes are flipped in a live worker's spill area — the tier
//! where bit rot actually lives — and every read must still come back
//! byte-exact: the always-on reload verification turns the flip into a
//! typed `Corrupt` erasure, and recovery runs through Cauchy-RS parity
//! (no under-store) or the under-store heal path (no parity), all over
//! loopback TCP.

use std::sync::Arc;
use std::time::{Duration, Instant};

use spcache_net::TcpCluster;
use spcache_store::backing::{checkpoint, UnderStore};
use spcache_store::rpc::PartKey;
use spcache_store::{RetryPolicy, StoreConfig};

const FILE_LEN: usize = 30_000;

fn payload(len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 37 + 11) % 256) as u8).collect()
}

fn retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 4,
        base_backoff: Duration::from_millis(2),
        deadline: Duration::from_secs(2),
    }
}

/// A one-byte budget spills every partition straight through to the
/// under-store tier, so each read reloads (and therefore re-verifies)
/// its bytes — the deployment shape where spill-area rot surfaces.
fn spilling_config() -> StoreConfig {
    StoreConfig::unthrottled(4)
        .with_memory_budget(Some(1))
        .with_verify_reads(true)
        .with_retry(retry())
}

/// A budget holding ~1.5 partitions per worker: partitions stay
/// resident until a colder neighbour pushes them out, so eviction (and
/// the spill copies rot lands in) follows real LRU pressure instead of
/// spilling everything straight through.
fn evicting_config() -> StoreConfig {
    StoreConfig::unthrottled(4)
        .with_memory_budget(Some(FILE_LEN / 2))
        .with_verify_reads(true)
        .with_retry(retry())
}

/// Flips one bit of a spilled partition in place — rot on the stable
/// tier, landed from outside the worker process while it serves.
fn flip_spill_byte(under: &UnderStore, key: PartKey, byte: usize) {
    let data = under.spill_load(key).expect("partition must be spilled");
    let mut v = data.to_vec();
    let i = byte % v.len();
    v[i] ^= 0x40;
    under.spill_put(key, v.into());
}

fn corruptions_detected(cluster: &TcpCluster) -> u64 {
    cluster
        .worker_stats()
        .unwrap()
        .iter()
        .map(|s| s.corruptions_detected)
        .sum()
}

#[test]
fn spill_rot_heals_from_the_under_store_over_sockets() {
    let under = Arc::new(UnderStore::new());
    let cluster = TcpCluster::spawn_with_under_store(evicting_config(), Some(under.clone()));
    let client = cluster.client();
    let data = payload(FILE_LEN);
    client.write(1, &data, &[0, 1, 2]).unwrap();
    // A colder file landing on worker 0 evicts `(1, 0)` — no checkpoint
    // of file 1 exists yet, so the eviction writes it to the spill area.
    let cold = payload(FILE_LEN / 3);
    client.write(2, &cold, &[0]).unwrap();
    assert!(
        under.spill_contains(PartKey::new(1, 0)),
        "eviction must have spilled the partition"
    );
    checkpoint(&client, &under, 1).unwrap();
    assert_eq!(corruptions_detected(&cluster), 0);

    flip_spill_byte(&under, PartKey::new(1, 0), 7);
    // Reading the cold file pushes `(1, 0)` out of residency again
    // (clean, so the flipped spill copy survives as the only copy) …
    assert_eq!(client.read_quiet(2).unwrap(), cold, "cold read");
    // … and the next read of file 1 reloads it: the always-on reload
    // verification turns the rot into an erasure and the read heals
    // from the whole-file checkpoint — byte-exact, no restart.
    assert_eq!(client.read_quiet(1).unwrap(), data, "post-flip read");
    assert_eq!(corruptions_detected(&cluster), 1);
    assert_eq!(client.read_quiet(1).unwrap(), data, "post-heal read");
    cluster.shutdown();
}

#[test]
fn spill_rot_rebuilds_from_parity_over_sockets() {
    // The under-store here is only the shared spill tier — no
    // checkpoint is ever written into it, so the heal path has nothing
    // to heal from and the only recovery is the client-side Cauchy-RS
    // rebuild from the surviving k-of-(k+1) shards: a byte-exact read
    // proves the parity tier alone healed the rot.
    let under = Arc::new(UnderStore::new());
    let cluster =
        TcpCluster::spawn_with_under_store(spilling_config().with_parity(1), Some(under.clone()));
    let client = cluster.client();
    let data = payload(FILE_LEN);
    client.write(1, &data, &[0, 1, 2]).unwrap();
    assert_eq!(client.read_quiet(1).unwrap(), data, "pre-flip read");

    flip_spill_byte(&under, PartKey::new(1, 1), 3);
    assert_eq!(client.read_quiet(1).unwrap(), data, "post-flip read");
    assert_eq!(corruptions_detected(&cluster), 1);

    // The fire-and-forget read repair re-lands the rebuilt partition
    // (counted by the worker as a decode reconstruction), after which
    // reads stop paying the decode.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let landed: u64 = cluster
            .worker_stats()
            .unwrap()
            .iter()
            .map(|s| s.decode_reconstructions)
            .sum();
        if landed >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "read repair never re-landed");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(client.read_quiet(1).unwrap(), data, "post-repair read");
    cluster.shutdown();
}

//! Connection storm: 1 000 concurrent clients hammer the event-loop
//! data plane over loopback with mixed puts and gets, each client
//! waiting under its own randomly-drawn deadline. The event loop
//! multiplexes every client onto the shared per-worker connections, so
//! thousands of requests pipeline through a handful of sockets at once.
//!
//! Asserts, per client and under the CI chaos seed sweep
//! (`SPCACHE_CHAOS_SEED`):
//!
//! * **No lost replies** — every submitted request resolves: a data
//!   reply, or a clean timeout of the client's own (possibly very
//!   short) wait. Nothing hangs, nothing errors.
//! * **No cross-wired replies** — each client writes a distinct,
//!   versioned payload under its own key; every successful get returns
//!   exactly the bytes that client last put (FIFO per connection makes
//!   put→get ordering binding even when the put's reply timed out).
//! * **Clean shutdown drain** — after the storm the cluster shuts down
//!   gracefully: workers ack the shutdown RPC and every event-loop
//!   thread joins.

use rand::SeedableRng;
use spcache_net::TcpCluster;
use spcache_sim::rng::Xoshiro256StarStar;
use spcache_store::rpc::{PartKey, Reply, Request};
use spcache_store::transport::Transport;
use spcache_store::StoreConfig;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const N_WORKERS: usize = 4;
const N_CLIENTS: usize = 1_000;
/// Put+get rounds per client.
const ROUNDS: u64 = 3;
const VAL_LEN: usize = 512;

fn chaos_seed() -> u64 {
    std::env::var("SPCACHE_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Distinct bytes per (client, version) — a cross-wired or stale reply
/// can never collide with the expected pattern.
fn value(client: usize, version: u64) -> Vec<u8> {
    (0..VAL_LEN)
        .map(|i| ((i as u64).wrapping_mul(167) ^ (client as u64 * 31 + version * 7919)) as u8)
        .collect()
}

#[test]
fn thousand_client_storm_loses_and_crosses_no_replies() {
    let cluster = TcpCluster::spawn(StoreConfig::unthrottled(N_WORKERS));
    let transport = Arc::clone(cluster.transport());
    let timeouts = Arc::new(AtomicU64::new(0));
    let served = Arc::new(AtomicU64::new(0));

    let handles: Vec<_> = (0..N_CLIENTS)
        .map(|c| {
            let transport = Arc::clone(&transport);
            let timeouts = Arc::clone(&timeouts);
            let served = Arc::clone(&served);
            std::thread::Builder::new()
                .stack_size(128 * 1024)
                .name(format!("storm-{c}"))
                .spawn(move || {
                    let mut rng = Xoshiro256StarStar::seed_from_u64(
                        chaos_seed().wrapping_mul(0x9e37_79b9).wrapping_add(c as u64),
                    );
                    // Each client draws its own deadline: some wait
                    // generously, some barely at all. u64 from the seeded
                    // stream keeps the draw in the CI sweep's control.
                    let ms = 40 + (rand::Rng::next_u64(&mut rng) % 400);
                    let deadline = Duration::from_millis(ms);
                    let worker = c % N_WORKERS;
                    let key = PartKey::new(c as u64, 0);

                    for version in 0..ROUNDS {
                        let put = transport
                            .submit(
                                worker,
                                Request::Put {
                                    key,
                                    data: value(c, version).into(),
                                    sum: 0,
                                },
                            )
                            .expect("put submission failed");
                        let get = transport
                            .submit(worker, Request::Get { key })
                            .expect("get submission failed");

                        // The put may outlive this client's patience; the
                        // write itself still lands before the get (FIFO on
                        // the shared connection).
                        match put.recv_timeout(deadline) {
                            Ok(Reply::Done) => {
                                served.fetch_add(1, Ordering::Relaxed);
                            }
                            Ok(other) => panic!("client {c}: put answered {other:?}"),
                            Err(_) => {
                                timeouts.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        match get.recv_timeout(deadline) {
                            Ok(Reply::Data(bytes)) => {
                                served.fetch_add(1, Ordering::Relaxed);
                                assert_eq!(
                                    bytes.as_ref(),
                                    value(c, version).as_slice(),
                                    "client {c}: get v{version} returned foreign bytes \
                                     — replies cross-wired"
                                );
                            }
                            Ok(other) => panic!("client {c}: get answered {other:?}"),
                            Err(_) => {
                                timeouts.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                })
                .expect("spawn storm client")
        })
        .collect();

    for h in handles {
        h.join().expect("storm client panicked");
    }

    // Accounting: every request resolved one way or the other.
    let total = (N_CLIENTS as u64) * ROUNDS * 2;
    assert_eq!(
        served.load(Ordering::Relaxed) + timeouts.load(Ordering::Relaxed),
        total,
        "some requests neither answered nor timed out"
    );

    // Post-storm sweep with a patient deadline: every client's final
    // version is resident and byte-exact — impatient clients may have
    // stopped listening, but no write was lost.
    for c in 0..N_CLIENTS {
        let reply = transport
            .call(
                c % N_WORKERS,
                Request::Get {
                    key: PartKey::new(c as u64, 0),
                },
                Duration::from_secs(10),
            )
            .unwrap_or_else(|e| panic!("client {c}: post-storm get failed: {e:?}"));
        assert_eq!(
            reply.bytes().expect("post-storm get").as_ref(),
            value(c, ROUNDS - 1).as_slice(),
            "client {c}: final version lost or cross-wired"
        );
    }

    // Clean drain: the shutdown RPC must be acked by every worker and
    // all event-loop threads must join.
    cluster.shutdown();
}

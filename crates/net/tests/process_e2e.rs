//! Smoke test of the real `spcached` binaries: a master and four
//! workers as separate OS processes on loopback, driven by a wire
//! client — write, read, repartition, byte-exact, graceful shutdown.

use spcache_net::{MasterClient, TcpTransport};
use spcache_store::client::Client;
use spcache_store::master::MetaService;
use spcache_store::rpc::{PartKey, Reply, Request, StoreError};
use spcache_store::transport::Transport;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

const N_WORKERS: usize = 4;
const N_FILES: u64 = 6;
const FILE_LEN: usize = 40_000;

/// A child `spcached` plus the address it printed. Killed on drop so a
/// panicking test never leaks daemons (a leaked child also inherits the
/// harness's stdout pipe and wedges `cargo test`'s output capture).
struct Daemon {
    child: Child,
    addr: SocketAddr,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_daemon(args: &[&str]) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_spcached"))
        .args(args)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn spcached");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read LISTEN line");
    let addr = line
        .trim()
        .strip_prefix("LISTEN ")
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .parse()
        .expect("parse listen addr");
    Daemon { child, addr }
}

/// Waits for a daemon to exit on its own, failing the test if
/// `deadline` passes — the drop guard then reaps it.
fn await_exit(daemon: &mut Daemon, what: &str, deadline: Duration) {
    let t0 = Instant::now();
    loop {
        match daemon.child.try_wait().expect("try_wait") {
            Some(status) => {
                assert!(status.success(), "{what} exited with {status}");
                return;
            }
            None => {
                assert!(
                    t0.elapsed() <= deadline,
                    "{what} did not exit within {deadline:?} after shutdown"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

/// Spawns a daemon that may transiently fail to bind (a just-killed
/// predecessor's port): retries until the `LISTEN` banner appears or
/// `deadline` passes.
fn respawn_daemon(args: &[&str], deadline: Duration) -> Daemon {
    let t0 = Instant::now();
    loop {
        let mut child = Command::new(env!("CARGO_BIN_EXE_spcached"))
            .args(args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn spcached");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut line = String::new();
        let _ = BufReader::new(stdout).read_line(&mut line);
        if let Some(addr) = line.trim().strip_prefix("LISTEN ") {
            return Daemon {
                child,
                addr: addr.parse().expect("parse listen addr"),
            };
        }
        let _ = child.kill();
        let _ = child.wait();
        assert!(
            t0.elapsed() <= deadline,
            "daemon {args:?} failed to rebind within {deadline:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Polls `cond` until it holds, failing the test after `deadline`.
fn await_until(what: &str, deadline: Duration, mut cond: impl FnMut() -> bool) {
    let t0 = Instant::now();
    while !cond() {
        assert!(t0.elapsed() <= deadline, "{what} did not happen within {deadline:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn payload(id: u64, len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 131 + id as usize * 17 + 3) % 256) as u8).collect()
}

#[test]
fn real_processes_serve_a_cluster() {
    let mut workers: Vec<Daemon> = (0..N_WORKERS)
        .map(|id| {
            spawn_daemon(&[
                "worker",
                "--id",
                &id.to_string(),
                "--bind",
                "127.0.0.1:0",
                "--seed",
                "7",
            ])
        })
        .collect();
    let worker_addrs: Vec<SocketAddr> = workers.iter().map(|d| d.addr).collect();
    let workers_flag = worker_addrs
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(",");
    let mut master = spawn_daemon(&["master", "--bind", "127.0.0.1:0", "--workers", &workers_flag]);

    let transport = Arc::new(TcpTransport::connect(worker_addrs));
    let meta = Arc::new(MasterClient::connect(master.addr));
    let client = Client::new(meta.clone(), transport.clone());

    // Large files, all crowded onto worker 0; repeated reads build the
    // access counts the repartition tuner keys on.
    for id in 0..N_FILES {
        client.write(id, &payload(id, FILE_LEN), &[0]).unwrap();
    }
    for sweep in 0..5 {
        for id in 0..N_FILES {
            assert_eq!(
                client.read(id).unwrap(),
                payload(id, FILE_LEN),
                "sweep {sweep} file {id} corrupted over the wire"
            );
        }
    }

    // One RPC repartitions the crowded cluster; the master process runs
    // Algorithm 1+2 against the worker processes itself.
    let (moved, skipped) = meta.rebalance(1e9, 100.0, 42).unwrap();
    assert!(moved > 0, "crowded placement must move files");
    assert!(skipped.is_empty(), "healthy cluster, nothing skipped");
    for id in 0..N_FILES {
        assert_eq!(
            client.read(id).unwrap(),
            payload(id, FILE_LEN),
            "file {id} corrupted by repartition"
        );
    }

    // Graceful teardown, workers first, then the master.
    for w in 0..N_WORKERS {
        transport
            .call(w, Request::Shutdown, Duration::from_secs(10))
            .unwrap()
            .unit()
            .unwrap();
    }
    meta.shutdown_server().unwrap();
    for (w, d) in workers.iter_mut().enumerate() {
        await_exit(d, &format!("worker {w}"), Duration::from_secs(10));
    }
    await_exit(&mut master, "master", Duration::from_secs(10));
}

/// The supervisor's kill-9 story at the OS-process level: SIGKILL a
/// worker daemon mid-flight, watch the master's heartbeat loop declare
/// it dead and bump its fencing epoch, restart it on the same port, and
/// watch it get re-adopted with a *fresh* epoch. Requests fenced with
/// any pre-crash epoch must bounce forever; the re-registered successor
/// serves normally.
#[test]
fn kill_nine_and_restart_reregisters_with_a_fresh_epoch() {
    const VICTIM: usize = 1;
    let mut workers: Vec<Daemon> = (0..2)
        .map(|id| spawn_daemon(&["worker", "--id", &id.to_string(), "--bind", "127.0.0.1:0"]))
        .collect();
    let worker_addrs: Vec<SocketAddr> = workers.iter().map(|d| d.addr).collect();
    let workers_flag = worker_addrs
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(",");
    let mut master = spawn_daemon(&[
        "master",
        "--bind",
        "127.0.0.1:0",
        "--workers",
        &workers_flag,
        "--heartbeat-ms",
        "20",
    ]);

    let transport = Arc::new(TcpTransport::connect(worker_addrs.clone()));
    let meta = Arc::new(MasterClient::connect(master.addr));
    let client = Client::new(meta.clone(), transport.clone());

    // The heartbeat loop adopts the fleet: everyone reaches epoch 1.
    await_until("fleet registration", Duration::from_secs(10), || {
        meta.worker_epochs(2) == vec![1, 1]
    });
    client.write(1, &payload(1, FILE_LEN), &[0, VICTIM]).unwrap();
    assert_eq!(client.read(1).unwrap(), payload(1, FILE_LEN));

    // SIGKILL the victim: no goodbye, no flush — the failure detector
    // must notice on its own, kill it on the master and fence its epoch.
    workers[VICTIM].child.kill().expect("SIGKILL worker");
    let victim_addr = workers[VICTIM].addr.to_string();
    await_until("death detection", Duration::from_secs(10), || {
        !meta.is_alive(VICTIM) && meta.worker_epochs(2)[VICTIM] >= 2
    });
    let dead_epoch = meta.worker_epochs(2)[VICTIM];

    // Restart on the same port (the successor of a kill-9'd daemon
    // inherits its address). The supervisor re-adopts it with a fresh
    // epoch strictly above every pre-crash grant.
    workers[VICTIM] = respawn_daemon(
        &["worker", "--id", &VICTIM.to_string(), "--bind", &victim_addr],
        Duration::from_secs(10),
    );
    await_until("re-registration", Duration::from_secs(10), || {
        meta.is_alive(VICTIM) && meta.worker_epochs(2)[VICTIM] > dead_epoch
    });
    let fresh_epoch = meta.worker_epochs(2)[VICTIM];
    // Wait for the fencing grant to be *installed* on the worker, not
    // just recorded on the master.
    await_until("epoch install", Duration::from_secs(10), || {
        transport
            .call(VICTIM, Request::Ping, Duration::from_secs(2))
            .and_then(Reply::pong_epoch)
            .map(|(_, e)| e == fresh_epoch)
            .unwrap_or(false)
    });

    // Every pre-crash epoch is fenced out forever: a zombie client (or a
    // zombie worker replaying its old grant) can neither read nor write.
    let key = PartKey::new(9, 0);
    for stale in 1..fresh_epoch {
        for req in [
            Request::Get { key },
            Request::Put { key, data: payload(9, 64).into(), sum: 0 },
        ] {
            match transport.call(VICTIM, req.fenced(stale), Duration::from_secs(2)).unwrap() {
                Reply::Err(StoreError::StaleEpoch(w)) => assert_eq!(w, VICTIM),
                other => panic!("stale epoch {stale} not fenced: {other:?}"),
            }
        }
    }
    // The current grant is accepted — the successor serves.
    transport
        .call(
            VICTIM,
            Request::Put { key, data: payload(9, 64).into(), sum: 0 }.fenced(fresh_epoch),
            Duration::from_secs(2),
        )
        .unwrap()
        .unit()
        .unwrap();
    match transport.call(VICTIM, Request::Get { key }.fenced(fresh_epoch), Duration::from_secs(2)) {
        Ok(Reply::Data(d)) => assert_eq!(&d[..], &payload(9, 64)[..]),
        other => panic!("re-registered worker refused a fenced read: {other:?}"),
    }

    // The cluster converged: fresh writes through the ordinary client
    // path land on the successor and read back byte-exact.
    client.write(2, &payload(2, FILE_LEN), &[VICTIM, 0]).unwrap();
    assert_eq!(client.read(2).unwrap(), payload(2, FILE_LEN));

    for w in 0..2 {
        transport
            .call(w, Request::Shutdown, Duration::from_secs(10))
            .unwrap()
            .unit()
            .unwrap();
    }
    meta.shutdown_server().unwrap();
    for (w, d) in workers.iter_mut().enumerate() {
        await_exit(d, &format!("worker {w}"), Duration::from_secs(10));
    }
    await_exit(&mut master, "master", Duration::from_secs(10));
}

//! Smoke test of the real `spcached` binaries: a master and four
//! workers as separate OS processes on loopback, driven by a wire
//! client — write, read, repartition, byte-exact, graceful shutdown.

use spcache_net::{MasterClient, TcpTransport};
use spcache_store::client::Client;
use spcache_store::rpc::Request;
use spcache_store::transport::Transport;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

const N_WORKERS: usize = 4;
const N_FILES: u64 = 6;
const FILE_LEN: usize = 40_000;

/// A child `spcached` plus the address it printed. Killed on drop so a
/// panicking test never leaks daemons (a leaked child also inherits the
/// harness's stdout pipe and wedges `cargo test`'s output capture).
struct Daemon {
    child: Child,
    addr: SocketAddr,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_daemon(args: &[&str]) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_spcached"))
        .args(args)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn spcached");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read LISTEN line");
    let addr = line
        .trim()
        .strip_prefix("LISTEN ")
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .parse()
        .expect("parse listen addr");
    Daemon { child, addr }
}

/// Waits for a daemon to exit on its own, failing the test if
/// `deadline` passes — the drop guard then reaps it.
fn await_exit(daemon: &mut Daemon, what: &str, deadline: Duration) {
    let t0 = Instant::now();
    loop {
        match daemon.child.try_wait().expect("try_wait") {
            Some(status) => {
                assert!(status.success(), "{what} exited with {status}");
                return;
            }
            None => {
                assert!(
                    t0.elapsed() <= deadline,
                    "{what} did not exit within {deadline:?} after shutdown"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

fn payload(id: u64, len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 131 + id as usize * 17 + 3) % 256) as u8).collect()
}

#[test]
fn real_processes_serve_a_cluster() {
    let mut workers: Vec<Daemon> = (0..N_WORKERS)
        .map(|id| {
            spawn_daemon(&[
                "worker",
                "--id",
                &id.to_string(),
                "--bind",
                "127.0.0.1:0",
                "--seed",
                "7",
            ])
        })
        .collect();
    let worker_addrs: Vec<SocketAddr> = workers.iter().map(|d| d.addr).collect();
    let workers_flag = worker_addrs
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(",");
    let mut master = spawn_daemon(&["master", "--bind", "127.0.0.1:0", "--workers", &workers_flag]);

    let transport = Arc::new(TcpTransport::connect(worker_addrs));
    let meta = Arc::new(MasterClient::connect(master.addr));
    let client = Client::new(meta.clone(), transport.clone());

    // Large files, all crowded onto worker 0; repeated reads build the
    // access counts the repartition tuner keys on.
    for id in 0..N_FILES {
        client.write(id, &payload(id, FILE_LEN), &[0]).unwrap();
    }
    for sweep in 0..5 {
        for id in 0..N_FILES {
            assert_eq!(
                client.read(id).unwrap(),
                payload(id, FILE_LEN),
                "sweep {sweep} file {id} corrupted over the wire"
            );
        }
    }

    // One RPC repartitions the crowded cluster; the master process runs
    // Algorithm 1+2 against the worker processes itself.
    let (moved, skipped) = meta.rebalance(1e9, 100.0, 42).unwrap();
    assert!(moved > 0, "crowded placement must move files");
    assert!(skipped.is_empty(), "healthy cluster, nothing skipped");
    for id in 0..N_FILES {
        assert_eq!(
            client.read(id).unwrap(),
            payload(id, FILE_LEN),
            "file {id} corrupted by repartition"
        );
    }

    // Graceful teardown, workers first, then the master.
    for w in 0..N_WORKERS {
        transport
            .call(w, Request::Shutdown, Duration::from_secs(10))
            .unwrap()
            .unit()
            .unwrap();
    }
    meta.shutdown_server().unwrap();
    for (w, d) in workers.iter_mut().enumerate() {
        await_exit(d, &format!("worker {w}"), Duration::from_secs(10));
    }
    await_exit(&mut master, "master", Duration::from_secs(10));
}

//! Failover e2e against the real `spcached` binaries: an active master
//! journalling to a shared `--meta-dir`, a `--standby` twin tailing its
//! op-log over the wire, and a `SIGKILL` mid-service. The standby must
//! detect the death, recover the full metadata from the journal, take
//! over under a bumped master epoch, and serve every pre-kill file
//! byte-identically. A restart of the dead master on its old port must
//! come up fenced and redirect clients to the successor.

use spcache_net::{MasterClient, TcpTransport};
use spcache_store::client::Client;
use spcache_store::master::MetaService;
use spcache_store::rpc::Request;
use spcache_store::transport::Transport;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, ChildStdout, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

const N_WORKERS: usize = 3;
const N_FILES: u64 = 5;
const FILE_LEN: usize = 30_000;

/// A child `spcached` plus its stdout reader (standbys print more lines
/// after the first). Killed on drop so a panicking test never leaks
/// daemons.
struct Daemon {
    child: Child,
    addr: Option<SocketAddr>,
    lines: BufReader<ChildStdout>,
}

impl Daemon {
    fn spawn(args: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_spcached"))
            .args(args)
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn spcached");
        let lines = BufReader::new(child.stdout.take().expect("stdout piped"));
        Daemon { child, addr: None, lines }
    }

    /// Reads the next stdout line and asserts its `PREFIX ` tag,
    /// returning the rest.
    fn expect_line(&mut self, prefix: &str) -> String {
        let mut line = String::new();
        self.lines.read_line(&mut line).expect("read banner line");
        line.trim()
            .strip_prefix(prefix)
            .unwrap_or_else(|| panic!("expected {prefix:?} banner, got {line:?}"))
            .trim()
            .to_string()
    }

    /// Reads the `LISTEN <addr>` banner and records the address.
    fn listen(&mut self) -> SocketAddr {
        let addr = self.expect_line("LISTEN").parse().expect("parse listen addr");
        self.addr = Some(addr);
        addr
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns a daemon that may transiently fail to bind (a just-killed
/// predecessor's port): retries until the `LISTEN` banner appears.
fn respawn_daemon(args: &[&str], deadline: Duration) -> Daemon {
    let t0 = Instant::now();
    loop {
        let mut child = Command::new(env!("CARGO_BIN_EXE_spcached"))
            .args(args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn spcached");
        let mut lines = BufReader::new(child.stdout.take().expect("stdout piped"));
        let mut line = String::new();
        let _ = lines.read_line(&mut line);
        if let Some(addr) = line.trim().strip_prefix("LISTEN ") {
            return Daemon {
                child,
                addr: Some(addr.parse().expect("parse listen addr")),
                lines,
            };
        }
        let _ = child.kill();
        let _ = child.wait();
        assert!(
            t0.elapsed() <= deadline,
            "daemon {args:?} failed to rebind within {deadline:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Polls `cond` until it holds, failing the test after `deadline`.
fn await_until(what: &str, deadline: Duration, mut cond: impl FnMut() -> bool) {
    let t0 = Instant::now();
    while !cond() {
        assert!(t0.elapsed() <= deadline, "{what} did not happen within {deadline:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn payload(id: u64, len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 139 + id as usize * 23 + 7) % 256) as u8).collect()
}

fn placement(id: u64) -> Vec<usize> {
    vec![id as usize % N_WORKERS, (id as usize + 1) % N_WORKERS]
}

/// A scratch meta-dir unique to this test process, wiped on entry.
fn scratch_meta_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spcache-failover-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create meta dir");
    dir
}

#[test]
fn standby_takes_over_a_sigkilled_master() {
    let meta_dir = scratch_meta_dir();
    let meta_dir_flag = meta_dir.to_str().expect("utf8 temp path");

    let mut workers: Vec<Daemon> = (0..N_WORKERS)
        .map(|id| {
            let mut d =
                Daemon::spawn(&["worker", "--id", &id.to_string(), "--bind", "127.0.0.1:0"]);
            d.listen();
            d
        })
        .collect();
    let worker_addrs: Vec<SocketAddr> = workers.iter().map(|d| d.addr.unwrap()).collect();
    let workers_flag = worker_addrs
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(",");

    // Master A: durable, fast heartbeats so adoption and death
    // detection are prompt.
    let mut master_a = Daemon::spawn(&[
        "master",
        "--bind",
        "127.0.0.1:0",
        "--workers",
        &workers_flag,
        "--meta-dir",
        meta_dir_flag,
        "--heartbeat-ms",
        "20",
    ]);
    let addr_a = master_a.listen();

    // Standby B: tails A's op-log, takes over after 3 missed 40 ms polls.
    let mut standby = Daemon::spawn(&[
        "master",
        "--bind",
        "127.0.0.1:0",
        "--workers",
        &workers_flag,
        "--meta-dir",
        meta_dir_flag,
        "--standby",
        "--peer",
        &addr_a.to_string(),
        "--poll-ms",
        "40",
        "--takeover-after",
        "3",
    ]);
    assert_eq!(standby.expect_line("STANDBY"), addr_a.to_string());

    let transport = Arc::new(TcpTransport::connect(worker_addrs.clone()));
    let meta_a = Arc::new(MasterClient::connect(addr_a));
    let client_a = Client::new(meta_a.clone(), transport.clone());

    await_until("fleet registration", Duration::from_secs(10), || {
        meta_a.worker_epochs(N_WORKERS) == vec![1; N_WORKERS]
    });
    let (epoch, active, _, _) = meta_a.status().expect("status of active master");
    assert_eq!((epoch, active), (1, true));

    for id in 0..N_FILES {
        client_a.write(id, &payload(id, FILE_LEN), &placement(id)).unwrap();
    }
    for id in 0..N_FILES {
        assert_eq!(client_a.read(id).unwrap(), payload(id, FILE_LEN));
    }

    // SIGKILL the active master mid-service: no flush, no goodbye. The
    // journal on disk and the standby's tail are all that survive.
    master_a.child.kill().expect("SIGKILL master A");
    let epoch_b: u64 = standby.expect_line("TAKEOVER").parse().expect("takeover epoch");
    assert_eq!(epoch_b, 2, "takeover must bump the master epoch");
    let addr_b = standby.listen();
    assert_ne!(addr_b, addr_a);

    // The successor serves the full pre-kill metadata and every byte.
    let meta_b = Arc::new(MasterClient::connect(addr_b));
    let (epoch, active, files, _) = meta_b.status().expect("status of successor");
    assert_eq!((epoch, active, files), (2, true, N_FILES));
    let client_b = Client::new(meta_b.clone(), transport.clone());
    for id in 0..N_FILES {
        assert_eq!(
            client_b.read(id).unwrap(),
            payload(id, FILE_LEN),
            "file {id} not byte-identical across the failover"
        );
    }
    // And it accepts new writes — the reign is real, not read-only.
    client_b.write(N_FILES, &payload(N_FILES, FILE_LEN), &placement(N_FILES)).unwrap();
    assert_eq!(client_b.read(N_FILES).unwrap(), payload(N_FILES, FILE_LEN));

    // The dead master restarts on its old port with the same journal:
    // the newest master-epoch record names B, so it boots fenced...
    let mut master_a2 = respawn_daemon(
        &[
            "master",
            "--bind",
            &addr_a.to_string(),
            "--workers",
            &workers_flag,
            "--meta-dir",
            meta_dir_flag,
        ],
        Duration::from_secs(10),
    );
    let meta_a2 = MasterClient::connect(addr_a);
    let (epoch, active, _, _) = meta_a2.status().expect("status bypasses the fence");
    assert_eq!((epoch, active), (2, false), "restarted master must boot fenced");
    // ...and a client still pointed at the old address is transparently
    // redirected to the successor.
    let via_old = MasterClient::connect(addr_a);
    let (_, servers) = via_old.locate(0).expect("redirect must land on the successor");
    assert_eq!(servers, placement(0));

    // Graceful teardown: workers, successor, fenced rejoiner.
    for w in 0..N_WORKERS {
        transport
            .call(w, Request::Shutdown, Duration::from_secs(10))
            .unwrap()
            .unit()
            .unwrap();
    }
    meta_b.shutdown_server().unwrap();
    meta_a2.shutdown_server().unwrap();
    let deadline = Duration::from_secs(10);
    for d in workers.iter_mut().chain([&mut standby, &mut master_a2]) {
        let t0 = Instant::now();
        loop {
            match d.child.try_wait().expect("try_wait") {
                Some(_) => break,
                None => {
                    assert!(t0.elapsed() <= deadline, "daemon did not exit after shutdown");
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }
    let _ = std::fs::remove_dir_all(&meta_dir);
}

//! Integration tests combining the §8 extensions: online adjustment,
//! checkpointing/recovery and the regular repartition path interacting on
//! one cluster.

use rand::SeedableRng;
use spcache_core::online::plan_adjust;
use spcache_core::tuner::TunerConfig;
use spcache_sim::Xoshiro256StarStar;
use spcache_store::backing::{checkpoint, read_or_recover, UnderStore};
use spcache_store::online::execute_adjust;
use spcache_store::repartitioner::run_parallel;
use spcache_store::rpc::StoreError;
use spcache_store::transport::Transport;
use spcache_store::{StoreCluster, StoreConfig};
use spcache_workload::dist::uniform_usize;

fn payload(id: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((i as u64 * 53 + id * 13 + 3) % 256) as u8)
        .collect()
}

#[test]
fn online_adjust_then_periodic_repartition() {
    // An online burst reaction must not confuse the later periodic
    // Algorithm-2 pass.
    let n_workers = 8;
    let cluster = StoreCluster::spawn(StoreConfig::unthrottled(n_workers));
    let client = cluster.client();
    let len = 24_000;
    for id in 0..16u64 {
        client
            .write(id, &payload(id, len), &[(id as usize) % n_workers])
            .unwrap();
    }

    // Burst on file 3 → online split to 5.
    let (_, servers) = cluster.master().peek(3).unwrap();
    let plan = plan_adjust(len as u64, &servers, 5, &vec![0.0; n_workers]);
    execute_adjust(3, &plan, cluster.master().as_ref(), cluster.transport().as_ref()).unwrap();
    assert_eq!(cluster.master().peek(3).unwrap().1.len(), 5);

    // Accesses skew toward other files; periodic repartition runs.
    for id in 0..16u64 {
        let reps = if id == 0 { 100 } else { 2 };
        for _ in 0..reps {
            client.read(id).unwrap();
        }
    }
    let (ids, rp, _) =
        cluster
            .master()
            .plan_rebalance(n_workers, 1e9, 8.0, &TunerConfig::default(), 3);
    run_parallel(&rp, &ids, cluster.master().as_ref(), cluster.transport().as_ref()).unwrap();

    // Everything still byte-exact, including the online-adjusted file.
    for id in 0..16u64 {
        assert_eq!(client.read_quiet(id).unwrap(), payload(id, len), "file {id}");
    }
}

#[test]
fn checkpoint_survives_online_adjustment() {
    let cluster = StoreCluster::spawn(StoreConfig::unthrottled(6));
    let client = cluster.client();
    let len = 18_000;
    client.write(1, &payload(1, len), &[0, 1]).unwrap();
    let under = UnderStore::new();
    checkpoint(&client, &under, 1).unwrap();

    // Adjust 2 → 5, then lose a partition of the NEW layout.
    let plan = plan_adjust(len as u64, &[0, 1], 5, &[0.0; 6]);
    execute_adjust(1, &plan, cluster.master().as_ref(), cluster.transport().as_ref()).unwrap();
    let reply = cluster
        .transport()
        .call(
            plan.new_servers()[3],
            spcache_store::Request::Delete {
                key: spcache_store::PartKey::new(1, 3),
            },
            std::time::Duration::from_secs(5),
        )
        .unwrap();
    assert_eq!(reply, spcache_store::Reply::Flag(true));

    // Recovery still serves the original bytes.
    let got = read_or_recover(&client, cluster.master().as_ref(), &under, 1, &[2, 4]).unwrap();
    assert_eq!(got, payload(1, len));
}

#[test]
fn recovery_then_online_adjust() {
    let mut cluster = StoreCluster::spawn(StoreConfig::unthrottled(6));
    let client = cluster.client();
    let len = 12_000;
    client.write(1, &payload(1, len), &[0, 1, 2]).unwrap();
    let under = UnderStore::new();
    checkpoint(&client, &under, 1).unwrap();

    cluster.kill_worker(1);
    assert!(matches!(client.read(1), Err(StoreError::WorkerDown(1))));
    read_or_recover(&client, cluster.master().as_ref(), &under, 1, &[0, 3]).unwrap();

    // The recovered file can be adjusted online like any other.
    let (_, servers) = cluster.master().peek(1).unwrap();
    assert_eq!(servers, vec![0, 3]);
    let plan = plan_adjust(len as u64, &servers, 4, &[0.0, 9.0, 0.0, 0.0, 0.0, 0.0]);
    // The dead worker 1 must not be chosen — it has load 9.0 in the hint,
    // but more importantly the planner only picks from loads we pass;
    // give it infinite load to exclude it outright.
    let mut loads = vec![0.0; 6];
    loads[1] = f64::INFINITY;
    let plan = if plan.new_servers().contains(&1) {
        plan_adjust(len as u64, &servers, 4, &loads)
    } else {
        plan
    };
    execute_adjust(1, &plan, cluster.master().as_ref(), cluster.transport().as_ref()).unwrap();
    assert_eq!(client.read_quiet(1).unwrap(), payload(1, len));
}

#[test]
fn randomized_lifecycle_fuzz() {
    // A deterministic fuzz: interleave writes, reads, online adjustments
    // and repartitions; every read must always be byte-exact.
    let n_workers = 6;
    let cluster = StoreCluster::spawn(StoreConfig::unthrottled(n_workers));
    let client = cluster.client();
    let len = 6_000;
    let mut rng = Xoshiro256StarStar::seed_from_u64(99);
    let n_files = 12u64;
    for id in 0..n_files {
        client
            .write(id, &payload(id, len), &[(id as usize) % n_workers])
            .unwrap();
    }

    for step in 0..60 {
        match uniform_usize(&mut rng, 4) {
            0 => {
                // Random read.
                let id = uniform_usize(&mut rng, n_files as usize) as u64;
                assert_eq!(client.read(id).unwrap(), payload(id, len), "step {step}");
            }
            1 => {
                // Online adjust a random file to a random k.
                let id = uniform_usize(&mut rng, n_files as usize) as u64;
                let (_, servers) = cluster.master().peek(id).unwrap();
                let k = 1 + uniform_usize(&mut rng, n_workers);
                let plan = plan_adjust(len as u64, &servers, k, &vec![0.0; n_workers]);
                execute_adjust(id, &plan, cluster.master().as_ref(), cluster.transport().as_ref())
                    .unwrap();
            }
            2 => {
                // Burst of reads to skew popularity.
                let id = uniform_usize(&mut rng, n_files as usize) as u64;
                for _ in 0..20 {
                    client.read(id).unwrap();
                }
            }
            _ => {
                // Periodic repartition.
                let (ids, plan, _) = cluster.master().plan_rebalance(
                    n_workers,
                    1e9,
                    8.0,
                    &TunerConfig::default(),
                    step as u64,
                );
                run_parallel(&plan, &ids, cluster.master().as_ref(), cluster.transport().as_ref())
                    .unwrap();
            }
        }
    }
    for id in 0..n_files {
        assert_eq!(client.read_quiet(id).unwrap(), payload(id, len), "final {id}");
    }
    // Bookkeeping: resident partitions equal the metadata's Σ k_i.
    let expected: usize = (0..n_files)
        .map(|id| cluster.master().peek(id).unwrap().1.len())
        .sum();
    let resident: usize = cluster
        .worker_stats()
        .unwrap()
        .iter()
        .map(|s| s.resident_parts)
        .sum();
    assert_eq!(resident, expected);
}

//! Property tests of the master op-log (§4.14): replay is a pure,
//! **idempotent** function of the record sequence. Every op journalled
//! by a live master carries absolute resulting values (versions,
//! epochs, suspicion counts), so a standby that replays a prefix it
//! already applied — the normal case after a reconnect, where the
//! log-tail poll re-sends records around its watermark — converges to
//! exactly the same state as a single clean replay.

use proptest::prelude::*;

use std::sync::Arc;

use spcache_store::backing::UnderStore;
use spcache_store::{Master, MetaLog, MetaOp};

const N_WORKERS: usize = 4;
const N_FILES: u64 = 12;

/// One step of the generated master workload. Values are small indices
/// mapped into valid ids/workers so scripts collide (re-register,
/// re-place, double-repair) often — the interesting cases.
#[derive(Debug, Clone)]
enum Cmd {
    Register(u8, u16, u8),
    Unregister(u8),
    Place(u8, u8),
    RegisterWorker(u8),
    MarkAlive(u8),
    MarkDead(u8),
    Suspect(u8),
    BeginRepair(u8),
    EndRepair(u8),
    Threshold(u8),
    Claim(u8),
}

/// Raw generator tuple: `(selector, operand, size)`, decoded into a
/// [`Cmd`] (the proptest shim has no `prop_oneof`, so selection is by
/// modulus — every variant still gets uniform weight).
type RawCmd = (u8, u8, u16);

fn cmd() -> impl Strategy<Value = Cmd> {
    (any::<u8>(), any::<u8>(), any::<u16>()).prop_map(|(sel, x, s): RawCmd| match sel % 11 {
        0 => Cmd::Register(x, s, 1 + (s % 3) as u8),
        1 => Cmd::Unregister(x),
        2 => Cmd::Place(x, (s % 251) as u8),
        3 => Cmd::RegisterWorker(x),
        4 => Cmd::MarkAlive(x),
        5 => Cmd::MarkDead(x),
        6 => Cmd::Suspect(x),
        7 => Cmd::BeginRepair(x),
        8 => Cmd::EndRepair(x),
        9 => Cmd::Threshold(1 + x % 6),
        _ => Cmd::Claim(x),
    })
}

/// Drives a journalled master through `cmds` and returns it plus the
/// op-log it produced (in LSN order).
fn drive(cmds: &[Cmd]) -> (Master, Vec<(u64, MetaOp)>) {
    let master = Master::new();
    master.ensure_workers(N_WORKERS);
    let log = Arc::new(MetaLog::open(Arc::new(UnderStore::new())));
    master.enable_journal(Arc::clone(&log));
    for c in cmds {
        match c {
            Cmd::Register(i, s, k) => {
                let id = u64::from(*i) % N_FILES;
                let k = usize::from(*k);
                let servers: Vec<usize> = (0..k).map(|j| (id as usize + j) % N_WORKERS).collect();
                let _ = master.register(id, usize::from(*s) + 1, servers);
            }
            Cmd::Unregister(i) => {
                let _ = master.unregister(u64::from(*i) % N_FILES);
            }
            Cmd::Place(i, r) => {
                let id = u64::from(*i) % N_FILES;
                let s = usize::from(*r) % N_WORKERS;
                let _ = master.apply_placement(id, vec![s]);
            }
            Cmd::RegisterWorker(w) => {
                let _ = master.register_worker(usize::from(*w) % N_WORKERS);
            }
            Cmd::MarkAlive(w) => master.mark_alive(usize::from(*w) % N_WORKERS),
            Cmd::MarkDead(w) => master.mark_dead(usize::from(*w) % N_WORKERS),
            Cmd::Suspect(w) => {
                let _ = master.suspect(usize::from(*w) % N_WORKERS);
            }
            Cmd::BeginRepair(i) => {
                let _ = master.begin_repair(u64::from(*i) % N_FILES);
            }
            Cmd::EndRepair(i) => master.end_repair(u64::from(*i) % N_FILES),
            Cmd::Threshold(t) => master.set_suspicion_threshold(u32::from(*t)),
            Cmd::Claim(e) => {
                let epoch = u64::from(*e) % 8;
                let _ = master.claim_master_epoch(epoch, &format!("10.0.0.1:{epoch}"));
            }
        }
    }
    let ops = log.replay();
    (master, ops)
}

/// Replays `ops` into a fresh master, applying each record `times`
/// times in sequence order.
fn replayed(ops: &[(u64, MetaOp)], times: usize) -> Master {
    let m = Master::new();
    for (_, op) in ops {
        for _ in 0..times {
            m.apply_op(op);
        }
    }
    m
}

proptest! {
    /// Any prefix of a real op-log, replayed twice — as a whole pass or
    /// record-by-record stutter — images identically to a single clean
    /// replay. And the full log replayed once images identically to the
    /// master that wrote it.
    #[test]
    fn any_prefix_of_the_log_replays_idempotently(
        cmds in proptest::collection::vec(cmd(), 1..60),
        cut_seed in 0usize..usize::MAX,
    ) {
        let (original, ops) = drive(&cmds);
        // A script of pure no-ops (e.g. re-marking an alive worker
        // alive) journals nothing; there is nothing to replay.
        prop_assume!(!ops.is_empty());

        // Full replay reproduces the writer.
        let twin = replayed(&ops, 1);
        prop_assert_eq!(twin.image(), original.image(), "one full replay diverged");

        let n = 1 + cut_seed % ops.len();
        let prefix = &ops[..n];
        let once = replayed(prefix, 1);

        // Record-level stutter: every record applied twice in place.
        let stuttered = replayed(prefix, 2);
        prop_assert_eq!(stuttered.image(), once.image(), "stuttered replay diverged");

        // Pass-level repeat: the whole prefix applied, then applied again
        // (a standby whose poll watermark rewound to zero).
        let repeated = replayed(prefix, 1);
        for (_, op) in prefix {
            repeated.apply_op(op);
        }
        prop_assert_eq!(repeated.image(), once.image(), "double-pass replay diverged");
    }

    /// LSNs are dense and strictly increasing — the contract the
    /// standby's `lsn >= from` watermark filter depends on.
    #[test]
    fn log_lsns_are_dense_and_ordered(
        cmds in proptest::collection::vec(cmd(), 1..40),
    ) {
        let (_, ops) = drive(&cmds);
        for (i, (lsn, _)) in ops.iter().enumerate() {
            prop_assert_eq!(*lsn, 1 + i as u64, "lsn gap or reorder at record {}", i);
        }
    }
}

//! Property-based tests of the in-process store.

use bytes::Bytes;
use proptest::prelude::*;

use std::sync::Arc;
use std::time::Duration;

use spcache_core::online::plan_adjust;
use spcache_store::backing::{checkpoint, recovery_targets, UnderStore};
use spcache_store::fault::FaultRecord;
use spcache_store::online::execute_adjust;
use spcache_store::rpc::StoreError;
use spcache_store::{FaultPlan, RetryPolicy, StoreCluster, StoreConfig};

/// One operation outcome, comparable across runs. Reads carry their
/// *full byte content* so determinism is checked byte-for-byte, not just
/// by length — the select-driven join consumes replies out of order, and
/// this is the proof the reassembly is order-independent.
type Outcome = Result<Vec<u8>, StoreError>;

/// Everything observable from one faulted run: injected-event log,
/// per-operation outcomes, final placements.
type RunTrace = (Vec<FaultRecord>, Vec<Outcome>, Vec<(u64, Vec<usize>)>);

/// Runs a fixed workload under `plan` and returns everything observable:
/// the injected-event log, per-operation outcomes and final placements.
fn run_faulted(plan: &FaultPlan, n_workers: usize, n_files: u64) -> RunTrace {
    let cfg = StoreConfig::unthrottled(n_workers)
        .with_faults(plan.clone())
        .with_retry(RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            deadline: Duration::from_secs(2),
        });
    let cluster = StoreCluster::spawn(cfg);
    let under = Arc::new(UnderStore::new());
    let client = cluster.client().with_under_store(Arc::clone(&under));
    let mut outcomes = Vec::new();

    // Setup is itself exposed to the plan (triggers may fire during the
    // writes), so record its outcomes instead of unwrapping.
    for id in 0..n_files {
        let data: Vec<u8> = (0..1_024).map(|i| ((i + id as usize) % 256) as u8).collect();
        let servers = vec![id as usize % n_workers, (id as usize + 1) % n_workers];
        let wrote = client.write(id, &data, &servers);
        outcomes.push(wrote.map(|()| Vec::new()));
        if outcomes.last().unwrap().is_ok() {
            outcomes.push(checkpoint(&client, &under, id).map(|()| Vec::new()));
        }
    }
    // Three sweeps over every file: faults fire underneath, retries and
    // under-store recovery heal what they can.
    for _ in 0..3 {
        for id in 0..n_files {
            outcomes.push(client.read_quiet(id));
        }
    }
    (cluster.fault_log().snapshot(), outcomes, cluster.master().placements())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Write/read round-trips are byte-exact for arbitrary payloads and
    /// partition counts.
    #[test]
    fn write_read_roundtrip(
        data in proptest::collection::vec(any::<u8>(), 0..8_192),
        k in 1usize..6,
    ) {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(6));
        let client = cluster.client();
        let servers: Vec<usize> = (0..k).collect();
        client.write(1, &data, &servers).unwrap();
        prop_assert_eq!(client.read(1).unwrap(), data);
    }

    /// Any sequence of online adjustments preserves the bytes and the
    /// resident-partition bookkeeping.
    #[test]
    fn online_adjust_sequences_preserve_bytes(
        data in proptest::collection::vec(any::<u8>(), 1..4_096),
        ks in proptest::collection::vec(1usize..8, 1..5),
    ) {
        let n_workers = 8;
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(n_workers));
        let client = cluster.client();
        client.write(1, &data, &[0]).unwrap();
        for &k in &ks {
            let (_, servers) = cluster.master().peek(1).unwrap();
            let plan = plan_adjust(data.len() as u64, &servers, k, &vec![0.0; n_workers]);
            execute_adjust(1, &plan, cluster.master().as_ref(), cluster.transport().as_ref()).unwrap();
            prop_assert_eq!(&client.read_quiet(1).unwrap(), &data);
            prop_assert_eq!(cluster.master().peek(1).unwrap().1.len(), k);
        }
        let resident: usize = cluster
            .worker_stats()
            .unwrap()
            .iter()
            .map(|s| s.resident_parts)
            .sum();
        prop_assert_eq!(resident, *ks.last().unwrap());
    }

    /// Deletes always clear exactly the file's partitions.
    #[test]
    fn delete_clears_everything(
        data in proptest::collection::vec(any::<u8>(), 1..2_048),
        k in 1usize..5,
    ) {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(5));
        let client = cluster.client();
        let servers: Vec<usize> = (0..k).collect();
        client.write(1, &data, &servers).unwrap();
        prop_assert_eq!(client.delete(1).unwrap(), k);
        let resident: usize = cluster
            .worker_stats()
            .unwrap()
            .iter()
            .map(|s| s.resident_parts)
            .sum();
        prop_assert_eq!(resident, 0);
    }

    /// The chaos harness is deterministic: the same `(seed, shape)`
    /// yields the same plan, and running the same plan twice yields the
    /// identical injected-event log, operation outcomes and final
    /// placements — the contract that makes chaos failures replayable.
    #[test]
    fn same_seed_and_plan_reproduce_identical_runs(
        seed in 0u64..10_000,
        n_events in 1usize..5,
    ) {
        let n_workers = 4;
        let files: Vec<u64> = (0..6).collect();
        let plan = FaultPlan::random(seed, n_workers, n_events, 40, &files);
        prop_assert_eq!(&plan, &FaultPlan::random(seed, n_workers, n_events, 40, &files));

        let (log_a, out_a, place_a) = run_faulted(&plan, n_workers, 6);
        let (log_b, out_b, place_b) = run_faulted(&plan, n_workers, 6);
        prop_assert_eq!(log_a, log_b, "event logs diverged for seed {}", seed);
        prop_assert_eq!(out_a, out_b, "outcomes diverged for seed {}", seed);
        prop_assert_eq!(place_a, place_b, "placements diverged for seed {}", seed);
    }

    /// Recovery placement never doubles up: the targets chosen for a
    /// healed file are distinct live servers, so no two partitions of
    /// one file land on the same worker.
    #[test]
    fn recovery_targets_are_distinct_live_servers(
        raw_live in proptest::collection::vec(0usize..16, 1..10),
        k in 1usize..12,
        id in any::<u64>(),
    ) {
        let mut live = raw_live;
        live.sort_unstable();
        live.dedup();
        let targets = recovery_targets(&live, k, id);
        prop_assert_eq!(targets.len(), k.clamp(1, live.len()));
        let mut seen = std::collections::HashSet::new();
        for &t in &targets {
            prop_assert!(live.contains(&t), "target {} is not a live worker", t);
            prop_assert!(seen.insert(t), "target {} chosen twice for one file", t);
        }
    }

    /// Scatter-gather reads are byte-exact for arbitrary (ragged) sizes
    /// and partition counts — `size % k != 0`, `size < k`, `size == 0`
    /// all included — whichever way the file is consumed (scattered
    /// views or the gathered contiguous buffer).
    #[test]
    fn scattered_reads_are_byte_exact_for_ragged_shapes(
        data in proptest::collection::vec(any::<u8>(), 0..10_000),
        k in 1usize..9,
    ) {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(4));
        let client = cluster.client();
        let servers: Vec<usize> = (0..k).map(|j| j % 4).collect();
        client.write(1, &data, &servers).unwrap();
        let file = client.read_scattered(1).unwrap();
        prop_assert_eq!(file.size(), data.len());
        prop_assert_eq!(file.parts().len(), k);
        prop_assert_eq!(file.to_vec(), data.clone());
        prop_assert_eq!(client.read_quiet(1).unwrap(), data);
    }

    /// A memory budget is a hard invariant, not a hint: after every
    /// single operation (writes that overflow, reads that reload,
    /// deletes), no worker's resident bytes exceed its budget — and
    /// every read of an evicted partition comes back byte-identical.
    #[test]
    fn budget_bounds_resident_bytes_after_every_op(
        sizes in proptest::collection::vec(512usize..4_096, 4..10),
        budget in 2_048usize..6_144,
    ) {
        let n_workers = 3;
        let cluster = StoreCluster::spawn(
            StoreConfig::unthrottled(n_workers).with_memory_budget(Some(budget)),
        );
        let client = cluster.client();
        let check = || -> Result<(), TestCaseError> {
            for (w, s) in cluster.worker_stats().unwrap().iter().enumerate() {
                prop_assert!(
                    s.resident_bytes <= budget as u64,
                    "worker {} holds {} resident bytes over the {} budget",
                    w, s.resident_bytes, budget
                );
            }
            Ok(())
        };
        let mut datasets = Vec::new();
        for (i, &len) in sizes.iter().enumerate() {
            let id = i as u64;
            let data: Vec<u8> = (0..len).map(|j| ((j * 7 + i * 13 + 3) % 256) as u8).collect();
            client.write(id, &data, &[i % n_workers, (i + 1) % n_workers]).unwrap();
            datasets.push(data);
            check()?;
        }
        // Two full sweeps: evicted partitions reload transparently and
        // byte-identically, without ever breaching the budget.
        for _ in 0..2 {
            for (i, data) in datasets.iter().enumerate() {
                prop_assert_eq!(&client.read_quiet(i as u64).unwrap(), data);
                check()?;
            }
        }
        // Deletes release their residency.
        for i in 0..datasets.len() {
            client.delete(i as u64).unwrap();
            check()?;
        }
        let resident: u64 = cluster
            .worker_stats()
            .unwrap()
            .iter()
            .map(|s| s.resident_bytes)
            .sum();
        prop_assert_eq!(resident, 0, "deletes must drain residency entirely");
    }

    /// Evict → read → reload is byte-identical under churn for arbitrary
    /// payloads, and the workload genuinely exercises the spill tier
    /// (evictions and reloaded bytes are both non-zero when the dataset
    /// overflows the fleet's total budget).
    #[test]
    fn evicted_partitions_reload_byte_identical(
        seed_byte in any::<u8>(),
        n_files in 6u64..14,
    ) {
        let n_workers = 2;
        let file_len = 4_096usize;
        let budget = file_len; // each worker holds ~2 partitions
        let cluster = StoreCluster::spawn(
            StoreConfig::unthrottled(n_workers).with_memory_budget(Some(budget)),
        );
        let client = cluster.client();
        let mut datasets = Vec::new();
        for id in 0..n_files {
            let data: Vec<u8> = (0..file_len)
                .map(|j| ((j as u64 * 31 + id * 101 + seed_byte as u64) % 256) as u8)
                .collect();
            client.write(id, &data, &[id as usize % n_workers, (id as usize + 1) % n_workers]).unwrap();
            datasets.push(data);
        }
        // Interleaved sweeps front-to-back and back-to-front so both LRU
        // ends churn.
        for _ in 0..2 {
            for id in 0..n_files {
                prop_assert_eq!(&client.read_quiet(id).unwrap(), &datasets[id as usize]);
            }
            for id in (0..n_files).rev() {
                prop_assert_eq!(&client.read_quiet(id).unwrap(), &datasets[id as usize]);
            }
        }
        let stats = cluster.worker_stats().unwrap();
        let evictions: u64 = stats.iter().map(|s| s.evictions).sum();
        let reloaded: u64 = stats.iter().map(|s| s.reloaded_bytes).sum();
        prop_assert!(evictions > 0, "dataset overflows the budget yet nothing evicted");
        prop_assert!(reloaded > 0, "reads of evicted partitions must reload bytes");
    }

    /// The zero-copy write path never copies: every partition view a
    /// subsequent scattered read returns points *into the caller's
    /// original allocation* (checked by pointer range) — one shared
    /// buffer from writer to workers to reader.
    #[test]
    fn zero_copy_write_shares_the_callers_allocation(
        len in 1usize..8_192,
        k in 1usize..6,
    ) {
        let data: Vec<u8> = (0..len).map(|i| ((i * 13 + 5) % 256) as u8).collect();
        let backing = Bytes::from(data.clone());
        let base = backing.as_ptr() as usize;
        let limit = base + backing.len();
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(3));
        let client = cluster.client();
        let servers: Vec<usize> = (0..k).map(|j| j % 3).collect();
        client.write_bytes(7, backing.clone(), &servers).unwrap();
        let file = client.read_scattered(7).unwrap();
        for part in file.parts() {
            if !part.is_empty() {
                let p = part.as_ptr() as usize;
                prop_assert!(
                    p >= base && p + part.len() <= limit,
                    "partition bytes were copied somewhere on the write/read path"
                );
            }
        }
        prop_assert_eq!(file.to_vec(), data);
    }
}

/// The ISSUE's named edge shapes, pinned deterministically (proptest
/// above covers the space randomly; these never rotate away).
#[test]
fn scatter_gather_edge_shapes() {
    for &(len, k) in &[
        (0usize, 1usize), // empty file, one partition
        (0, 5),           // empty file, many partitions
        (3, 8),           // size < k: trailing empty partitions
        (17, 4),          // size % k != 0: short tail
        (1, 1),           // minimal
        (64, 8),          // exact tiling
    ] {
        let data: Vec<u8> = (0..len).map(|i| ((i * 31 + 7) % 256) as u8).collect();
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(4));
        let client = cluster.client();
        let servers: Vec<usize> = (0..k).map(|j| j % 4).collect();
        client.write(1, &data, &servers).unwrap();
        let file = client.read_scattered(1).unwrap();
        assert_eq!(file.size(), len, "size mismatch at len={len} k={k}");
        assert_eq!(file.to_vec(), data, "bytes mismatch at len={len} k={k}");
        assert_eq!(client.read_quiet(1).unwrap(), data, "gather mismatch at len={len} k={k}");
    }
}

//! Property-based tests of the in-process store.

use proptest::prelude::*;

use spcache_core::online::plan_adjust;
use spcache_store::online::execute_adjust;
use spcache_store::{StoreCluster, StoreConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Write/read round-trips are byte-exact for arbitrary payloads and
    /// partition counts.
    #[test]
    fn write_read_roundtrip(
        data in proptest::collection::vec(any::<u8>(), 0..8_192),
        k in 1usize..6,
    ) {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(6));
        let client = cluster.client();
        let servers: Vec<usize> = (0..k).collect();
        client.write(1, &data, &servers).unwrap();
        prop_assert_eq!(client.read(1).unwrap(), data);
    }

    /// Any sequence of online adjustments preserves the bytes and the
    /// resident-partition bookkeeping.
    #[test]
    fn online_adjust_sequences_preserve_bytes(
        data in proptest::collection::vec(any::<u8>(), 1..4_096),
        ks in proptest::collection::vec(1usize..8, 1..5),
    ) {
        let n_workers = 8;
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(n_workers));
        let client = cluster.client();
        client.write(1, &data, &[0]).unwrap();
        for &k in &ks {
            let (_, servers) = cluster.master().peek(1).unwrap();
            let plan = plan_adjust(data.len() as u64, &servers, k, &vec![0.0; n_workers]);
            execute_adjust(1, &plan, cluster.master(), &cluster.worker_senders()).unwrap();
            prop_assert_eq!(&client.read_quiet(1).unwrap(), &data);
            prop_assert_eq!(cluster.master().peek(1).unwrap().1.len(), k);
        }
        let resident: usize = cluster
            .worker_stats()
            .unwrap()
            .iter()
            .map(|s| s.resident_parts)
            .sum();
        prop_assert_eq!(resident, *ks.last().unwrap());
    }

    /// Deletes always clear exactly the file's partitions.
    #[test]
    fn delete_clears_everything(
        data in proptest::collection::vec(any::<u8>(), 1..2_048),
        k in 1usize..5,
    ) {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(5));
        let client = cluster.client();
        let servers: Vec<usize> = (0..k).collect();
        client.write(1, &data, &servers).unwrap();
        prop_assert_eq!(client.delete(1).unwrap(), k);
        let resident: usize = cluster
            .worker_stats()
            .unwrap()
            .iter()
            .map(|s| s.resident_parts)
            .sum();
        prop_assert_eq!(resident, 0);
    }
}

//! Store configuration.

use spcache_workload::StragglerModel;

/// Static configuration of an in-process store cluster.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Number of worker (cache-server) threads.
    pub n_workers: usize,
    /// Emulated NIC bandwidth per worker, bytes/s (`f64::INFINITY` for
    /// full speed — the default for unit tests).
    pub bandwidth: f64,
    /// Straggler injection applied per partition transfer.
    pub stragglers: StragglerModel,
    /// RNG seed for straggler draws.
    pub seed: u64,
}

impl StoreConfig {
    /// Full-speed cluster with `n_workers` workers (unit-test default).
    pub fn unthrottled(n_workers: usize) -> Self {
        StoreConfig {
            n_workers,
            bandwidth: f64::INFINITY,
            stragglers: StragglerModel::none(),
            seed: 1,
        }
    }

    /// Throttled cluster: `bandwidth` bytes/s per worker (experiments).
    pub fn throttled(n_workers: usize, bandwidth: f64) -> Self {
        StoreConfig {
            n_workers,
            bandwidth,
            stragglers: StragglerModel::none(),
            seed: 1,
        }
    }

    /// Sets the straggler model (builder style).
    pub fn with_stragglers(mut self, s: StragglerModel) -> Self {
        self.stragglers = s;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let c = StoreConfig::unthrottled(4);
        assert_eq!(c.n_workers, 4);
        assert!(c.bandwidth.is_infinite());
        let t = StoreConfig::throttled(8, 50e6).with_seed(9);
        assert_eq!(t.n_workers, 8);
        assert_eq!(t.bandwidth, 50e6);
        assert_eq!(t.seed, 9);
    }
}

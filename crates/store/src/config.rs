//! Store configuration.

use std::time::Duration;

use spcache_workload::StragglerModel;

use crate::fault::FaultPlan;

/// Client-side retry behaviour for reads (the robust read path).
///
/// Each attempt re-locates the file through the master, so a retry after
/// an under-store recovery observes the healed placement. Backoff is
/// exponential: attempt `i` (1-based) sleeps `base_backoff * 2^(i-1)`
/// before retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total read attempts (1 = no retries).
    pub max_attempts: u32,
    /// First backoff; doubles per attempt.
    pub base_backoff: Duration,
    /// Deadline for one whole **read attempt** (or one write fan-out) —
    /// *not* per partition. All `k` partition fetches of a fork-join read
    /// run under this single window: the select-driven join consumes
    /// replies as they land, so a `k = 8` read with one straggler fails
    /// (or hedges) after ~one deadline, never eight. A worker whose reply
    /// is still outstanding when the window closes counts as timed out
    /// (it may be hung, not dead — the master tracks the distinction via
    /// suspicion counts).
    pub deadline: Duration,
}

impl RetryPolicy {
    /// A single attempt with a generous deadline — the seed behaviour.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            deadline: Duration::from_secs(30),
        }
    }

    /// Sets the per-partition deadline (builder style).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }
}

impl Default for RetryPolicy {
    /// Four attempts, 5 ms initial backoff, 2 s partition deadline.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(5),
            deadline: Duration::from_secs(2),
        }
    }
}

/// Hedged-request mode: EC-Cache's late binding adapted to a
/// redundancy-free cache. There is no replica to duplicate the fetch to,
/// so after `straggler_threshold` of silence the client reads the
/// partition's byte range from the under-store checkpoint instead and
/// uses whichever copy it has first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HedgePolicy {
    /// Whether hedging is active (needs an attached under-store).
    pub enabled: bool,
    /// Silence after which the hedge fires.
    pub straggler_threshold: Duration,
}

impl HedgePolicy {
    /// Hedging off (the default).
    pub fn disabled() -> Self {
        HedgePolicy {
            enabled: false,
            straggler_threshold: Duration::from_millis(50),
        }
    }

    /// Hedging after `threshold` of per-partition silence.
    pub fn after(threshold: Duration) -> Self {
        HedgePolicy {
            enabled: true,
            straggler_threshold: threshold,
        }
    }
}

impl Default for HedgePolicy {
    fn default() -> Self {
        HedgePolicy::disabled()
    }
}

/// What a supervised client does with an operation on a file whose
/// recovery is currently in flight elsewhere (sweep or another client's
/// lazy repair).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedPolicy {
    /// Keep the operation in the retry loop (bounded by the client's
    /// [`RetryPolicy`]): back off and re-locate until the repair lands
    /// or the retry budget runs out. The default.
    Queue,
    /// Fail the operation immediately with
    /// [`crate::rpc::StoreError::Degraded`] so callers can shed load
    /// instead of stampeding the under-store.
    FastFail,
    /// Queue like [`DegradedPolicy::Queue`], but only for the given
    /// TTL measured from the operation's start: once a read has waited
    /// this long on someone else's repair it fast-fails with
    /// [`crate::rpc::StoreError::Degraded`]. Bounds worst-case read
    /// latency under repair storms without shedding the short waits
    /// that queueing exists to absorb.
    QueueTtl(Duration),
}

/// Configuration of the master-side supervisor: the autonomous
/// heartbeat → suspicion → death → recovery-sweep loop (DESIGN.md
/// §4.11). Disabled by default — with `enabled == false` nothing is
/// spawned and the store behaves exactly as it did without a
/// supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Whether a supervisor runs at all.
    pub enabled: bool,
    /// Period between heartbeat rounds. `Duration::ZERO` spawns the
    /// supervisor without a background thread: ticks only happen when
    /// driven explicitly (deterministic tests).
    pub heartbeat_interval: Duration,
    /// How long one `Ping` may take before it counts as a miss.
    pub probe_timeout: Duration,
    /// Consecutive misses after which a suspect worker is declared
    /// dead (the master's suspicion ladder threshold).
    pub suspicion_threshold: u32,
    /// Admission policy for operations on files whose repair is in
    /// flight.
    pub degraded: DegradedPolicy,
}

impl SupervisorConfig {
    /// Supervisor off — zero behavior change.
    pub fn disabled() -> Self {
        SupervisorConfig {
            enabled: false,
            heartbeat_interval: Duration::from_millis(100),
            probe_timeout: Duration::from_millis(50),
            suspicion_threshold: 3,
            degraded: DegradedPolicy::Queue,
        }
    }

    /// Supervisor on with the default cadence (100 ms heartbeats, 50 ms
    /// probe timeout, 3-miss suspicion ladder, queueing admission).
    pub fn enabled() -> Self {
        SupervisorConfig {
            enabled: true,
            ..SupervisorConfig::disabled()
        }
    }

    /// Sets the heartbeat period (builder style). `Duration::ZERO`
    /// means manual ticks only.
    #[must_use]
    pub fn with_interval(mut self, interval: Duration) -> Self {
        self.heartbeat_interval = interval;
        self
    }

    /// Sets the per-probe timeout (builder style).
    #[must_use]
    pub fn with_probe_timeout(mut self, timeout: Duration) -> Self {
        self.probe_timeout = timeout;
        self
    }

    /// Sets the suspicion threshold (builder style).
    #[must_use]
    pub fn with_threshold(mut self, threshold: u32) -> Self {
        self.suspicion_threshold = threshold.max(1);
        self
    }

    /// Sets the degraded-mode admission policy (builder style).
    #[must_use]
    pub fn with_degraded(mut self, policy: DegradedPolicy) -> Self {
        self.degraded = policy;
        self
    }

    /// Shorthand for [`DegradedPolicy::QueueTtl`] (builder style):
    /// queue on degraded files, but fast-fail any operation that has
    /// already waited `ttl` on someone else's repair.
    #[must_use]
    pub fn with_degraded_ttl(mut self, ttl: Duration) -> Self {
        self.degraded = DegradedPolicy::QueueTtl(ttl);
        self
    }
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig::disabled()
    }
}

/// Static configuration of an in-process store cluster.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Number of worker (cache-server) threads.
    pub n_workers: usize,
    /// Emulated NIC bandwidth per worker, bytes/s (`f64::INFINITY` for
    /// full speed — the default for unit tests).
    pub bandwidth: f64,
    /// Straggler injection applied per partition transfer.
    pub stragglers: StragglerModel,
    /// RNG seed for straggler draws.
    pub seed: u64,
    /// Scripted faults injected into the workers (empty by default).
    pub faults: FaultPlan,
    /// Read retry policy handed to clients created via
    /// [`crate::cluster::StoreCluster::client`].
    pub retry: RetryPolicy,
    /// Hedged-read policy handed to clients.
    pub hedge: HedgePolicy,
    /// Master-side supervisor (heartbeats, epoch fencing, recovery
    /// sweeps). Off by default.
    pub supervisor: SupervisorConfig,
    /// Deadline for one repartition-executor exchange (pull / staged
    /// push / commit step) — `repartitioner`'s former hardcoded 5 s,
    /// now tunable so chaos tests and the recovery sweep can tighten
    /// it.
    pub executor_deadline: Duration,
    /// Per-worker memory budget in bytes (`None` = unbounded, the seed
    /// behaviour). With a budget, each worker runs a partition-granular
    /// LRU: overflow spills cold partitions to the under-store tier and
    /// reads of evicted partitions transparently reload (DESIGN.md
    /// §4.13).
    pub memory_budget: Option<usize>,
    /// Fraction of each worker's NIC granted to background traffic
    /// (recovery sweeps, repartition moves, spill/reload), in `(0, 1]`.
    /// `1.0` (the default) disables the second bucket — background
    /// shares the full rate like any other traffic.
    pub background_fraction: f64,
    /// Checksum verification on the read path (DESIGN.md §4.15): workers
    /// verify resident partitions on the first read after every byte
    /// movement (landing, reload, rename), and clients verify received
    /// partitions against the master's integrity metadata. Off by
    /// default — spill *reloads* are always verified regardless (a
    /// reload crosses the slow tier, where bit rot lives).
    pub verify_reads: bool,
    /// Number of Cauchy-RS parity partitions written per file (`r` in a
    /// `k + r` layout). `0` (the default) writes none; corruption then
    /// heals via the under-store instead of a client-side decode.
    pub parity: usize,
    /// Whether workers print a `CORRUPT <file> <partition>` line on each
    /// checksum failure (the `spcached` deployment behaviour; off in
    /// tests to keep output deterministic).
    pub log_corruptions: bool,
}

impl StoreConfig {
    /// Full-speed cluster with `n_workers` workers (unit-test default).
    pub fn unthrottled(n_workers: usize) -> Self {
        StoreConfig {
            n_workers,
            bandwidth: f64::INFINITY,
            stragglers: StragglerModel::none(),
            seed: 1,
            faults: FaultPlan::none(),
            retry: RetryPolicy::none(),
            hedge: HedgePolicy::disabled(),
            supervisor: SupervisorConfig::disabled(),
            executor_deadline: Duration::from_secs(5),
            memory_budget: None,
            background_fraction: 1.0,
            verify_reads: false,
            parity: 0,
            log_corruptions: false,
        }
    }

    /// Throttled cluster: `bandwidth` bytes/s per worker (experiments).
    pub fn throttled(n_workers: usize, bandwidth: f64) -> Self {
        StoreConfig {
            bandwidth,
            ..StoreConfig::unthrottled(n_workers)
        }
    }

    /// Sets the straggler model (builder style).
    pub fn with_stragglers(mut self, s: StragglerModel) -> Self {
        self.stragglers = s;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the fault-injection plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the client retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the client hedge policy.
    pub fn with_hedge(mut self, hedge: HedgePolicy) -> Self {
        self.hedge = hedge;
        self
    }

    /// Sets the supervisor configuration.
    pub fn with_supervisor(mut self, supervisor: SupervisorConfig) -> Self {
        self.supervisor = supervisor;
        self
    }

    /// Sets the repartition-executor deadline.
    pub fn with_executor_deadline(mut self, deadline: Duration) -> Self {
        self.executor_deadline = deadline.max(Duration::from_millis(1));
        self
    }

    /// Sets the per-worker memory budget in bytes (`None` = unbounded).
    pub fn with_memory_budget(mut self, budget: Option<usize>) -> Self {
        self.memory_budget = budget;
        self
    }

    /// Enables read-path checksum verification (builder style).
    pub fn with_verify_reads(mut self, verify: bool) -> Self {
        self.verify_reads = verify;
        self
    }

    /// Sets the number of Cauchy-RS parity partitions per file
    /// (builder style).
    pub fn with_parity(mut self, r: usize) -> Self {
        self.parity = r;
        self
    }

    /// Enables `CORRUPT` log lines on checksum failures (builder style).
    pub fn with_corruption_log(mut self, log: bool) -> Self {
        self.log_corruptions = log;
        self
    }

    /// Sets the background NIC fraction (builder style).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < fraction <= 1.0`.
    pub fn with_background_fraction(mut self, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "background fraction must be in (0, 1], got {fraction}"
        );
        self.background_fraction = fraction;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let c = StoreConfig::unthrottled(4);
        assert_eq!(c.n_workers, 4);
        assert!(c.bandwidth.is_infinite());
        assert!(c.faults.is_empty());
        let t = StoreConfig::throttled(8, 50e6).with_seed(9);
        assert_eq!(t.n_workers, 8);
        assert_eq!(t.bandwidth, 50e6);
        assert_eq!(t.seed, 9);
    }

    #[test]
    fn fault_and_policy_builders() {
        let c = StoreConfig::unthrottled(2)
            .with_faults(FaultPlan::none().crash(0, 3))
            .with_retry(RetryPolicy::default())
            .with_hedge(HedgePolicy::after(Duration::from_millis(10)));
        assert_eq!(c.faults.events().len(), 1);
        assert_eq!(c.retry.max_attempts, 4);
        assert!(c.hedge.enabled);
    }

    #[test]
    fn supervisor_defaults_are_off_and_builders_apply() {
        let c = StoreConfig::unthrottled(4);
        assert!(!c.supervisor.enabled, "supervisor must default off");
        assert_eq!(c.executor_deadline, Duration::from_secs(5));
        let c = c
            .with_supervisor(
                SupervisorConfig::enabled()
                    .with_interval(Duration::from_millis(20))
                    .with_probe_timeout(Duration::from_millis(10))
                    .with_threshold(2)
                    .with_degraded(DegradedPolicy::FastFail),
            )
            .with_executor_deadline(Duration::from_millis(500));
        assert!(c.supervisor.enabled);
        assert_eq!(c.supervisor.heartbeat_interval, Duration::from_millis(20));
        assert_eq!(c.supervisor.suspicion_threshold, 2);
        assert_eq!(c.supervisor.degraded, DegradedPolicy::FastFail);
        assert_eq!(c.executor_deadline, Duration::from_millis(500));
    }

    #[test]
    fn budget_defaults_off_and_builders_apply() {
        let c = StoreConfig::unthrottled(2);
        assert_eq!(c.memory_budget, None, "budget must default unbounded");
        assert_eq!(c.background_fraction, 1.0);
        let c = c
            .with_memory_budget(Some(1 << 20))
            .with_background_fraction(0.25);
        assert_eq!(c.memory_budget, Some(1 << 20));
        assert_eq!(c.background_fraction, 0.25);
    }

    #[test]
    fn integrity_defaults_off_and_builders_apply() {
        let c = StoreConfig::unthrottled(2);
        assert!(!c.verify_reads, "verification must default off");
        assert_eq!(c.parity, 0, "parity must default off");
        assert!(!c.log_corruptions);
        let c = c.with_verify_reads(true).with_parity(2).with_corruption_log(true);
        assert!(c.verify_reads);
        assert_eq!(c.parity, 2);
        assert!(c.log_corruptions);
    }

    #[test]
    #[should_panic(expected = "background fraction")]
    fn out_of_range_background_fraction_rejected() {
        let _ = StoreConfig::unthrottled(1).with_background_fraction(0.0);
    }

    #[test]
    fn degraded_ttl_builder_applies() {
        let c = SupervisorConfig::enabled().with_degraded_ttl(Duration::from_millis(75));
        assert_eq!(
            c.degraded,
            DegradedPolicy::QueueTtl(Duration::from_millis(75))
        );
        // The TTL policy still compares distinct from the plain modes.
        assert_ne!(c.degraded, DegradedPolicy::Queue);
        assert_ne!(c.degraded, DegradedPolicy::FastFail);
    }

    #[test]
    fn retry_policy_none_is_single_attempt() {
        let r = RetryPolicy::none();
        assert_eq!(r.max_attempts, 1);
        assert_eq!(r.base_backoff, Duration::ZERO);
        let r = r.with_deadline(Duration::from_millis(100));
        assert_eq!(r.deadline, Duration::from_millis(100));
    }
}

//! Fault tolerance via a backing under-store (the paper's §8 discussion).
//!
//! SP-Cache is redundancy-free, so a *failed* cache server loses
//! partitions — by design. The paper's answer (§8) is Alluxio's layered
//! storage: the cache periodically **checkpoints** files to a stable
//! under-store (S3/HDFS, which replicate internally), and lost data is
//! **recovered** from there on demand. This module provides that layer
//! for the in-process store:
//!
//! * [`UnderStore`] — a thread-safe stand-in for the stable storage tier,
//!   with a configurable per-byte read delay (disks are ~an order of
//!   magnitude slower than the cache tier),
//! * [`checkpoint`] — persist a cached file,
//! * [`recover_file`] — re-split a checkpointed file onto live workers
//!   and fix the metadata,
//! * [`read_or_recover`] — the client-facing read path: serve from cache,
//!   and on lost partitions transparently recover and retry.

use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::time::Duration;

use bytes::Bytes;
use parking_lot::RwLock;

use crate::client::Client;
use crate::master::MetaService;
use crate::rpc::StoreError;

/// A stable storage tier holding whole-file copies, plus a **spill
/// area** of individual partitions written back by memory-budgeted
/// workers (see [`crate::worker::WorkerOptions::memory_budget`]): an
/// evicted partition whose file has no whole-file checkpoint here is
/// spilled so eviction never loses the only copy.
///
/// It also carries a small **metadata region** — named durable blobs
/// used by the master's write-ahead op-log and snapshots
/// ([`crate::metalog`]). The region lives in memory by default (shared
/// `Arc` failover within one process) and mirrors to a directory when
/// built [`UnderStore::with_meta_dir`], which is what lets a standby
/// *process* replay a kill-9'd master's log.
#[derive(Debug, Default)]
pub struct UnderStore {
    files: RwLock<HashMap<u64, Bytes>>,
    spill: RwLock<HashMap<crate::rpc::PartKey, Bytes>>,
    /// Named metadata blobs (op-log segments + snapshots), sorted by
    /// name so lexicographic listing doubles as LSN ordering.
    meta: RwLock<BTreeMap<String, Vec<u8>>>,
    /// Disk mirror of the meta region, when configured.
    meta_dir: Option<PathBuf>,
    /// Seconds of read delay per byte (0 for tests; ~1/60e6 for a
    /// disk-like 60 MB/s tier).
    read_delay_per_byte: f64,
}

impl UnderStore {
    /// An under-store with no read delay.
    pub fn new() -> Self {
        UnderStore::default()
    }

    /// An under-store reading at `bytes_per_sec`.
    ///
    /// # Panics
    ///
    /// Panics on non-positive bandwidth.
    pub fn with_bandwidth(bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0, "bandwidth must be positive");
        UnderStore {
            read_delay_per_byte: 1.0 / bytes_per_sec,
            ..UnderStore::default()
        }
    }

    /// Mirrors the metadata region to `dir` (created if missing),
    /// loading any blobs already there — a restarted or standby master
    /// process opening the same directory sees its predecessor's op-log
    /// and snapshots.
    ///
    /// # Panics
    ///
    /// Panics if the directory cannot be created or read.
    #[must_use]
    pub fn with_meta_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).expect("create meta dir");
        let mut meta = BTreeMap::new();
        for entry in std::fs::read_dir(&dir).expect("read meta dir") {
            let entry = entry.expect("read meta dir entry");
            if !entry.file_type().map(|t| t.is_file()).unwrap_or(false) {
                continue;
            }
            let Some(name) = entry.file_name().to_str().map(String::from) else {
                continue;
            };
            // Skip tmp files from an interrupted atomic replace.
            if name.ends_with(".tmp") {
                let _ = std::fs::remove_file(entry.path());
                continue;
            }
            let bytes = std::fs::read(entry.path()).expect("read meta blob");
            meta.insert(name, bytes);
        }
        self.meta = RwLock::new(meta);
        self.meta_dir = Some(dir);
        self
    }

    /// Reloads the metadata region from the mirror directory, discarding
    /// the in-memory view. No-op without a meta dir. A standby taking
    /// over calls this for an authoritative final replay — whatever the
    /// dead master flushed is what counts.
    pub fn meta_reload(&self) {
        let Some(dir) = &self.meta_dir else { return };
        let mut fresh = BTreeMap::new();
        if let Ok(entries) = std::fs::read_dir(dir) {
            for entry in entries.flatten() {
                if !entry.file_type().map(|t| t.is_file()).unwrap_or(false) {
                    continue;
                }
                let Some(name) = entry.file_name().to_str().map(String::from) else {
                    continue;
                };
                if name.ends_with(".tmp") {
                    continue;
                }
                if let Ok(bytes) = std::fs::read(entry.path()) {
                    fresh.insert(name, bytes);
                }
            }
        }
        *self.meta.write() = fresh;
    }

    /// Writes (or atomically replaces) a named metadata blob. On disk
    /// this is a tmp-file + rename, so a crash mid-write never leaves a
    /// torn snapshot under the real name.
    pub fn meta_put(&self, name: &str, bytes: &[u8]) {
        let mut meta = self.meta.write();
        if let Some(dir) = &self.meta_dir {
            let tmp = dir.join(format!("{name}.tmp"));
            if std::fs::write(&tmp, bytes).is_ok() {
                let _ = std::fs::rename(&tmp, dir.join(name));
            }
        }
        meta.insert(name.to_string(), bytes.to_vec());
    }

    /// Appends bytes to a named metadata blob (creating it if absent) —
    /// the O(delta) path op-log records take, one disk append per
    /// record instead of a full rewrite.
    pub fn meta_append(&self, name: &str, bytes: &[u8]) {
        let mut meta = self.meta.write();
        if let Some(dir) = &self.meta_dir {
            use std::io::Write;
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(dir.join(name))
            {
                let _ = f.write_all(bytes);
            }
        }
        meta.entry(name.to_string()).or_default().extend_from_slice(bytes);
    }

    /// Reads a named metadata blob.
    pub fn meta_get(&self, name: &str) -> Option<Vec<u8>> {
        self.meta.read().get(name).cloned()
    }

    /// Names of metadata blobs starting with `prefix`, in lexicographic
    /// (= LSN) order.
    pub fn meta_list(&self, prefix: &str) -> Vec<String> {
        self.meta
            .read()
            .keys()
            .filter(|n| n.starts_with(prefix))
            .cloned()
            .collect()
    }

    /// Deletes a named metadata blob (compaction of superseded segments
    /// and snapshots). Returns whether it was present.
    pub fn meta_remove(&self, name: &str) -> bool {
        let mut meta = self.meta.write();
        if let Some(dir) = &self.meta_dir {
            let _ = std::fs::remove_file(dir.join(name));
        }
        meta.remove(name).is_some()
    }

    /// Persists (or overwrites) a file copy.
    pub fn persist(&self, id: u64, data: Bytes) {
        self.files.write().insert(id, data);
    }

    /// Loads a file copy, paying the configured read delay.
    pub fn load(&self, id: u64) -> Option<Bytes> {
        let data = self.files.read().get(&id).cloned()?;
        if self.read_delay_per_byte > 0.0 {
            std::thread::sleep(Duration::from_secs_f64(
                data.len() as f64 * self.read_delay_per_byte,
            ));
        }
        Some(data)
    }

    /// Loads only the byte range `[offset, offset + len)` of a file copy
    /// as a zero-copy view, paying a read delay proportional to the bytes
    /// *actually read* — a ranged GET against S3/HDFS, not a whole-file
    /// download. The range is clamped to the file's length. Hedged
    /// partition fetches use this so serving one straggling partition
    /// never costs a full-file transfer.
    pub fn load_range(&self, id: u64, offset: u64, len: u64) -> Option<Bytes> {
        let data = self.files.read().get(&id).cloned()?;
        let start = (offset as usize).min(data.len());
        let end = (offset as usize).saturating_add(len as usize).min(data.len());
        let slice = data.slice(start..end);
        if self.read_delay_per_byte > 0.0 {
            std::thread::sleep(Duration::from_secs_f64(
                slice.len() as f64 * self.read_delay_per_byte,
            ));
        }
        Some(slice)
    }

    /// Whether a checkpoint exists.
    pub fn contains(&self, id: u64) -> bool {
        self.files.read().contains_key(&id)
    }

    /// Number of checkpointed files.
    pub fn len(&self) -> usize {
        self.files.read().len()
    }

    /// Whether the under-store is empty.
    pub fn is_empty(&self) -> bool {
        self.files.read().is_empty()
    }

    /// Writes an evicted partition into the spill area (overwriting any
    /// previous spill of the same key). Writes pay no modelled delay —
    /// the *worker* paces the writeback through its background NIC
    /// share before calling this.
    pub fn spill_put(&self, key: crate::rpc::PartKey, data: Bytes) {
        self.spill.write().insert(key, data);
    }

    /// Loads a spilled partition, paying the configured read delay —
    /// reloads come off the slow tier.
    pub fn spill_load(&self, key: crate::rpc::PartKey) -> Option<Bytes> {
        let data = self.spill.read().get(&key).cloned()?;
        if self.read_delay_per_byte > 0.0 {
            std::thread::sleep(Duration::from_secs_f64(
                data.len() as f64 * self.read_delay_per_byte,
            ));
        }
        Some(data)
    }

    /// Whether a partition sits in the spill area.
    pub fn spill_contains(&self, key: crate::rpc::PartKey) -> bool {
        self.spill.read().contains_key(&key)
    }

    /// Renames a spilled partition (commit of a staged key that was
    /// evicted before its commit arrived). Returns whether `from` was
    /// present.
    pub fn spill_rename(&self, from: crate::rpc::PartKey, to: crate::rpc::PartKey) -> bool {
        let mut spill = self.spill.write();
        match spill.remove(&from) {
            Some(data) => {
                spill.insert(to, data);
                true
            }
            None => false,
        }
    }

    /// Drops a spilled partition. Returns whether it was present.
    pub fn spill_remove(&self, key: crate::rpc::PartKey) -> bool {
        self.spill.write().remove(&key).is_some()
    }

    /// `(partitions, bytes)` currently held in the spill area.
    pub fn spilled(&self) -> (usize, u64) {
        let spill = self.spill.read();
        let bytes = spill.values().map(|b| b.len() as u64).sum();
        (spill.len(), bytes)
    }
}

/// Checkpoints one cached file into the under-store (Alluxio's periodic
/// persistence). Reads through the cache without bumping popularity.
///
/// # Errors
///
/// Propagates read failures — a file with already-lost partitions cannot
/// be checkpointed.
pub fn checkpoint(client: &Client, under: &UnderStore, id: u64) -> Result<(), StoreError> {
    let bytes = client.read_quiet(id)?;
    under.persist(id, Bytes::from(bytes));
    Ok(())
}

/// Picks `k` distinct recovery targets from the (sorted, ascending)
/// `live` worker list, rotated by the file id so concurrent recoveries
/// spread across the fleet instead of piling onto the lowest-indexed
/// live servers. `k` is clamped to `live.len()`, so two partitions of
/// one file never land on the same server.
pub fn recovery_targets(live: &[usize], k: usize, id: u64) -> Vec<usize> {
    assert!(!live.is_empty(), "no live workers to recover onto");
    let k = k.clamp(1, live.len());
    let offset = (id % live.len() as u64) as usize;
    (0..k).map(|i| live[(offset + i) % live.len()]).collect()
}

/// Recovers a lost file from the under-store: re-splits it into
/// `new_servers.len()` partitions on the given (live) servers, swaps the
/// metadata, then garbage-collects partitions of the old layout.
///
/// The swap is failure-safe: new partitions are fully pushed **before**
/// the metadata changes, so an error part-way (e.g. a recovery target
/// dying too) leaves the old placement — degraded but registered —
/// intact for another attempt.
///
/// Every heal first acquires the file's repair slot in the master's
/// registry ([`MetaService::begin_repair`]) and releases it on exit —
/// the single dedup point shared by the supervisor's sweep, the
/// client's lazy retry heal, and [`heal_degraded`]. A file is never
/// healed twice concurrently.
///
/// # Errors
///
/// [`StoreError::Degraded`] when another repair of this file is already
/// in flight (not retryable — wait it out or shed the op);
/// [`StoreError::UnknownFile`] if no checkpoint exists; worker errors
/// if a target is down too.
pub fn recover_file(
    client: &Client,
    master: &dyn MetaService,
    under: &UnderStore,
    id: u64,
    new_servers: &[usize],
) -> Result<(), StoreError> {
    assert!(!new_servers.is_empty(), "need at least one target server");
    if !master.begin_repair(id) {
        return Err(StoreError::Degraded(id));
    }
    let result = (|| {
        let data = under.load(id).ok_or(StoreError::UnknownFile(id))?;
        let (_, old_servers) = master.peek(id)?;
        let sums = client.push_partitions(id, &data, new_servers)?;
        master.apply_placement(id, new_servers.to_vec())?;
        // The placement swap invalidated the old integrity row; record
        // a fresh data-only one so verified reads keep working. The heal
        // does not re-encode parity (the checkpoint remains the second
        // copy until the next full write); best-effort, like the GC.
        let _ = master.set_integrity(id, crate::metalog::FileIntegrity::data_only(sums));
        // GC partitions of the old layout that the new one did not
        // overwrite (same index on the same server). Dead holders are
        // skipped silently — their copies died with them.
        for (j, &server) in old_servers.iter().enumerate() {
            let kept = new_servers.get(j).is_some_and(|&s| s == server);
            if !kept {
                client.discard_partition(server, crate::rpc::PartKey::new(id, j as u32));
            }
        }
        Ok(())
    })();
    master.end_repair(id);
    result
}

/// Scans the master for degraded files (a partition on a dead worker)
/// and recovers each from the under-store onto live servers. Files
/// without a checkpoint are left degraded and reported back; files
/// whose repair slot is held elsewhere (an in-flight sweep or lazy
/// heal) are skipped silently — they are someone else's heal, not a
/// failure.
///
/// Returns `(healed, unrecoverable)` file id lists.
pub fn heal_degraded(
    client: &Client,
    master: &dyn MetaService,
    under: &UnderStore,
    n_workers: usize,
) -> (Vec<u64>, Vec<u64>) {
    let live = master.live_workers(n_workers);
    let mut healed = Vec::new();
    let mut unrecoverable = Vec::new();
    for id in master.degraded_files() {
        if live.is_empty() || !under.contains(id) {
            unrecoverable.push(id);
            continue;
        }
        let k = master.peek(id).map(|(_, s)| s.len()).unwrap_or(1);
        let targets = recovery_targets(&live, k, id);
        match recover_file(client, master, under, id, &targets) {
            Ok(()) => healed.push(id),
            Err(StoreError::Degraded(_)) => {}
            Err(_) => unrecoverable.push(id),
        }
    }
    (healed, unrecoverable)
}

/// The fault-tolerant read path: try the cache; if a partition or worker
/// is gone, recover from the under-store onto `fallback_servers` and
/// serve the recovered bytes. When another repair of the file is
/// already in flight, waits (bounded) for it to land and re-reads
/// instead of healing twice.
///
/// # Errors
///
/// Fails only when the file is neither cached nor checkpointed, or when
/// an in-flight repair does not land within the bounded wait
/// ([`StoreError::Degraded`]).
pub fn read_or_recover(
    client: &Client,
    master: &dyn MetaService,
    under: &UnderStore,
    id: u64,
    fallback_servers: &[usize],
) -> Result<Vec<u8>, StoreError> {
    match client.read(id) {
        Ok(bytes) => Ok(bytes),
        Err(StoreError::NotFound(_)) | Err(StoreError::WorkerDown(_)) => {
            match recover_file(client, master, under, id, fallback_servers) {
                Ok(()) => {}
                Err(StoreError::Degraded(_)) => {
                    // Someone else is healing this file; poll for their
                    // repair to land instead of duplicating it.
                    for _ in 0..50 {
                        std::thread::sleep(Duration::from_millis(10));
                        if let Ok(bytes) = client.read(id) {
                            return Ok(bytes);
                        }
                    }
                    return Err(StoreError::Degraded(id));
                }
                Err(e) => return Err(e),
            }
            client.read(id)
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::StoreCluster;
    use crate::config::StoreConfig;
    use crate::rpc::{PartKey, Reply, Request};
    use crate::transport::Transport;
    use std::time::Duration;

    fn payload(len: usize) -> Vec<u8> {
        (0..len).map(|i| ((i * 97 + 5) % 256) as u8).collect()
    }

    /// Drops one partition directly at a worker (simulating data loss
    /// without killing the thread).
    fn lose_partition(cluster: &StoreCluster, server: usize, key: PartKey) {
        let reply = cluster
            .transport()
            .call(server, Request::Delete { key }, Duration::from_secs(5))
            .unwrap();
        assert_eq!(reply, Reply::Flag(true), "partition was not resident");
    }

    #[test]
    fn checkpoint_and_contains() {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(3));
        let client = cluster.client();
        let data = payload(4_000);
        client.write(1, &data, &[0, 1]).unwrap();
        let under = UnderStore::new();
        checkpoint(&client, &under, 1).unwrap();
        assert!(under.contains(1));
        assert_eq!(under.load(1).unwrap(), Bytes::from(data));
    }

    #[test]
    fn lost_partition_breaks_plain_reads() {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(3));
        let client = cluster.client();
        client.write(1, &payload(4_000), &[0, 1]).unwrap();
        lose_partition(&cluster, 1, PartKey::new(1, 1));
        assert!(matches!(
            client.read(1),
            Err(StoreError::NotFound(_))
        ));
    }

    #[test]
    fn read_or_recover_restores_lost_partition() {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(4));
        let client = cluster.client();
        let data = payload(9_001);
        client.write(1, &data, &[0, 1, 2]).unwrap();
        let under = UnderStore::new();
        checkpoint(&client, &under, 1).unwrap();

        lose_partition(&cluster, 2, PartKey::new(1, 2));
        let got = read_or_recover(&client, cluster.master().as_ref(), &under, 1, &[0, 3]).unwrap();
        assert_eq!(got, data);
        // Subsequent plain reads work again from the new layout.
        assert_eq!(client.read(1).unwrap(), data);
        assert_eq!(cluster.master().peek(1).unwrap().1, vec![0, 3]);
    }

    #[test]
    fn recovery_without_checkpoint_fails_cleanly() {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(2));
        let client = cluster.client();
        client.write(1, &payload(100), &[0]).unwrap();
        lose_partition(&cluster, 0, PartKey::new(1, 0));
        let under = UnderStore::new();
        assert_eq!(
            read_or_recover(&client, cluster.master().as_ref(), &under, 1, &[1]).unwrap_err(),
            StoreError::UnknownFile(1)
        );
    }

    #[test]
    fn dead_worker_recovery() {
        let mut cluster = StoreCluster::spawn(StoreConfig::unthrottled(4));
        let client = cluster.client();
        let data = payload(6_000);
        client.write(1, &data, &[0, 1]).unwrap();
        let under = UnderStore::new();
        checkpoint(&client, &under, 1).unwrap();

        cluster.kill_worker(1);
        assert!(matches!(client.read(1), Err(StoreError::WorkerDown(1))));
        let got = read_or_recover(&client, cluster.master().as_ref(), &under, 1, &[0, 2, 3]).unwrap();
        assert_eq!(got, data);
    }

    #[test]
    fn recovery_honors_understore_bandwidth() {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(2));
        let client = cluster.client();
        let data = payload(1_000_000);
        client.write(1, &data, &[0]).unwrap();
        // Disk-like 10 MB/s under-store: loading 1 MB takes ~100 ms.
        let under = UnderStore::with_bandwidth(10e6);
        checkpoint(&client, &under, 1).unwrap();
        let t0 = std::time::Instant::now();
        assert!(under.load(1).is_some());
        assert!(
            t0.elapsed().as_secs_f64() >= 0.08,
            "under-store read should be slow"
        );
    }

    #[test]
    fn recovery_targets_are_distinct_and_rotated() {
        let live = vec![0, 2, 3, 5];
        for id in 0..20u64 {
            for k in 1..=6 {
                let t = recovery_targets(&live, k, id);
                assert_eq!(t.len(), k.min(live.len()));
                let mut uniq = t.clone();
                uniq.sort_unstable();
                uniq.dedup();
                assert_eq!(uniq.len(), t.len(), "duplicate target for id {id} k {k}");
                assert!(t.iter().all(|s| live.contains(s)));
            }
        }
        // Rotation spreads the first target across the fleet.
        assert_ne!(recovery_targets(&live, 1, 0), recovery_targets(&live, 1, 1));
    }

    #[test]
    fn failed_recovery_leaves_metadata_intact() {
        let mut cluster = StoreCluster::spawn(StoreConfig::unthrottled(3));
        let client = cluster.client();
        let data = payload(2_000);
        client.write(1, &data, &[0, 1]).unwrap();
        let under = UnderStore::new();
        checkpoint(&client, &under, 1).unwrap();
        cluster.kill_worker(2);
        // Recovery targeting the dead worker fails...
        assert!(recover_file(&client, cluster.master().as_ref(), &under, 1, &[2]).is_err());
        // ...but the file stays registered with its old placement.
        assert_eq!(cluster.master().peek(1).unwrap().1, vec![0, 1]);
        assert_eq!(client.read_quiet(1).unwrap(), data);
    }

    #[test]
    fn heal_degraded_recovers_checkpointed_files_onto_live_workers() {
        let mut cluster = StoreCluster::spawn(StoreConfig::unthrottled(4));
        let client = cluster.client();
        let data1 = payload(5_000);
        let data2 = payload(1_234);
        client.write(1, &data1, &[0, 1]).unwrap();
        client.write(2, &data2, &[1]).unwrap();
        client.write(3, &payload(100), &[1]).unwrap(); // never checkpointed
        let under = UnderStore::new();
        checkpoint(&client, &under, 1).unwrap();
        checkpoint(&client, &under, 2).unwrap();

        cluster.kill_worker(1);
        let (healed, unrecoverable) =
            heal_degraded(&client, cluster.master().as_ref(), &under, 4);
        assert_eq!(healed, vec![1, 2]);
        assert_eq!(unrecoverable, vec![3]);
        assert_eq!(client.read_quiet(1).unwrap(), data1);
        assert_eq!(client.read_quiet(2).unwrap(), data2);
        // Healed placements avoid the dead worker.
        for id in [1u64, 2] {
            let (_, servers) = cluster.master().peek(id).unwrap();
            assert!(servers.iter().all(|&s| s != 1), "file {id} on dead worker");
        }
    }

    #[test]
    fn checkpoint_does_not_count_as_access() {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(2));
        let client = cluster.client();
        client.write(1, &payload(100), &[0]).unwrap();
        let under = UnderStore::new();
        checkpoint(&client, &under, 1).unwrap();
        assert_eq!(cluster.master().accesses(1), 0);
    }
}

//! The master-side supervisor: an autonomous self-healing loop
//! (DESIGN.md §4.11).
//!
//! PRs 1–3 built every mechanism this module needs — liveness counters,
//! under-store recovery, staged repartition — but left them *manual*: a
//! test had to call `probe_liveness`, and a dead worker degraded every
//! file it held until each was individually read. The supervisor closes
//! the loop:
//!
//! * **Heartbeat failure detector** — [`SupervisorCore::probe`] pings
//!   every worker each tick. A timeout climbs the master's suspicion
//!   ladder (alive → suspect → dead after
//!   [`crate::config::SupervisorConfig::suspicion_threshold`] misses); a
//!   closed channel is definitive death.
//! * **Epoch-fenced rejoin** — a worker answering with an epoch the
//!   master does not expect (0 = unregistered, or a pre-crash grant) is
//!   *adopted*: the master issues a fresh fencing epoch
//!   ([`crate::master::Master::register_worker`]) and installs it with
//!   `Request::SetEpoch`. Until adoption lands, fenced clients bounce
//!   off the zombie with [`crate::rpc::StoreError::StaleEpoch`].
//! * **Proactive recovery sweep** — [`SupervisorCore::sweep`] enumerates
//!   every file with a partition on a dead worker and re-materializes it
//!   from the under-store onto the least-loaded live workers,
//!   deduplicating against in-flight lazy repairs through the master's
//!   repair registry (a file is never healed twice concurrently).
//! * **Deterministic driving** — with
//!   [`crate::config::SupervisorConfig::heartbeat_interval`] set to
//!   zero, no background thread runs and ticks happen only when a test
//!   calls [`Supervisor::tick`], so the same seed yields the same sweep
//!   plan; every sweep is recorded in a [`SweepLog`] whose snapshots
//!   compare byte-equal across transports.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::RecvTimeoutError;
use parking_lot::Mutex;

use crate::backing::{recover_file, UnderStore};
use crate::client::Client;
use crate::config::{RetryPolicy, SupervisorConfig};
use crate::master::Master;
use crate::rpc::{Reply, Request, StoreError};
use crate::transport::Transport;

/// What one recovery sweep did: the dead fleet it observed and the fate
/// of every degraded file it visited.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SweepRecord {
    /// Workers believed dead when the sweep ran, ascending.
    pub dead: Vec<usize>,
    /// Files re-materialized from the under-store this sweep.
    pub healed: Vec<u64>,
    /// Files whose repair slot was already held (a lazy repair or an
    /// earlier sweep is healing them) — skipped, never healed twice.
    pub skipped: Vec<u64>,
    /// Files that could not be healed (no checkpoint, or the heal
    /// itself failed); they stay degraded for the next sweep.
    pub unrecoverable: Vec<u64>,
}

/// The ordered record of every sweep a supervisor ran. The supervisor
/// is single-threaded, so append order *is* sweep order; snapshots of
/// two identically-seeded runs compare byte-equal.
#[derive(Debug, Default)]
pub struct SweepLog {
    records: Mutex<Vec<SweepRecord>>,
}

impl SweepLog {
    /// An empty log.
    pub fn new() -> Self {
        SweepLog::default()
    }

    /// Appends one sweep's record.
    pub fn record(&self, rec: SweepRecord) {
        self.records.lock().push(rec);
    }

    /// Number of sweeps recorded.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// Whether no sweep has run.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All records, in sweep order.
    pub fn snapshot(&self) -> Vec<SweepRecord> {
        self.records.lock().clone()
    }
}

/// The supervisor's logic, free of any thread: one [`SupervisorCore::tick`]
/// probes the fleet and sweeps degraded files. [`Supervisor`] wraps it
/// in an optional background thread.
#[derive(Debug)]
pub struct SupervisorCore {
    master: Arc<Master>,
    transport: Arc<dyn Transport>,
    client: Client,
    under: Option<Arc<UnderStore>>,
    cfg: SupervisorConfig,
    sweep_log: Arc<SweepLog>,
}

impl SupervisorCore {
    /// Builds the supervisor logic over a master and a worker transport.
    /// `under` enables the recovery sweep (without it the supervisor
    /// only detects failures and fences epochs); `retry` shapes the
    /// deadlines of the sweep's own data traffic. Installs
    /// `cfg.suspicion_threshold` on the master.
    pub fn new(
        master: Arc<Master>,
        transport: Arc<dyn Transport>,
        under: Option<Arc<UnderStore>>,
        cfg: SupervisorConfig,
        retry: RetryPolicy,
    ) -> Self {
        master.set_suspicion_threshold(cfg.suspicion_threshold);
        // Everything the supervisor pushes is maintenance traffic:
        // stamp it background so recovery sweeps are paced through the
        // workers' background NIC share (§4.4) instead of competing
        // with foreground reads at full rate.
        let client = Client::new(master.clone(), transport.clone())
            .with_retry(retry)
            .with_background(true)
            .with_master_stamp(true);
        SupervisorCore {
            master,
            transport,
            client,
            under,
            cfg,
            sweep_log: Arc::new(SweepLog::new()),
        }
    }

    /// The supervisor's configuration.
    pub fn cfg(&self) -> &SupervisorConfig {
        &self.cfg
    }

    /// The sweep record log.
    pub fn sweep_log(&self) -> &Arc<SweepLog> {
        &self.sweep_log
    }

    /// One full supervisor round: probe every worker, then sweep
    /// degraded files, then compact the metadata journal when a
    /// snapshot is due. Returns the sweep's record when one ran.
    ///
    /// A fenced master (deposed by a standby takeover — see
    /// [`Master::self_fence`]) does nothing: mutating the fleet from a
    /// stale master would fight the successor's supervisor.
    pub fn tick(&self) -> Option<SweepRecord> {
        if self.master.is_fenced() {
            return None;
        }
        self.probe();
        // An adopt inside probe may have discovered the deposition (a
        // worker bounced our master-epoch announcement); re-check
        // before mutating placements.
        if self.master.is_fenced() {
            return None;
        }
        let rec = self.sweep();
        self.master.maybe_compact();
        rec
    }

    /// One heartbeat round. For every worker: a `Ping` answered with the
    /// expected epoch is a sign of life; an unexpected epoch (0 =
    /// unregistered, or any stale grant) triggers adoption; a timeout
    /// climbs the suspicion ladder; a closed route is death.
    pub fn probe(&self) {
        let n = self.transport.n_workers();
        let expected = self.master.worker_epochs(n);
        for w in 0..n {
            match self.transport.submit(w, Request::Ping) {
                Err(StoreError::WorkerDown(_)) => self.master.mark_dead(w),
                Err(_) => {
                    self.master.suspect(w);
                }
                Ok(rx) => match rx.recv_timeout(self.cfg.probe_timeout) {
                    Ok(reply) => match reply.pong_epoch() {
                        Ok((_, have)) => {
                            let want = expected.get(w).copied().unwrap_or(0);
                            if have == want && want != 0 {
                                self.master.mark_alive(w);
                            } else {
                                self.adopt(w);
                            }
                        }
                        Err(_) => {
                            self.master.suspect(w);
                        }
                    },
                    Err(RecvTimeoutError::Disconnected) => self.master.mark_dead(w),
                    Err(RecvTimeoutError::Timeout) => {
                        self.master.suspect(w);
                    }
                },
            }
        }
    }

    /// Grants worker `w` a fresh fencing epoch and installs it. If the
    /// install fails the worker keeps bouncing fenced traffic and the
    /// next tick re-registers it with an even fresher epoch — the
    /// fencing invariant (no pre-death epoch is ever accepted again)
    /// holds either way.
    ///
    /// Before granting anything the supervisor announces its **master
    /// epoch** (§4.14). A worker that has already heard from a newer
    /// master bounces the announcement with [`StoreError::StaleEpoch`],
    /// which tells this master it was deposed: it fences itself forever
    /// and adopts nothing — the successor's supervisor owns the fleet.
    fn adopt(&self, w: usize) {
        let announce = Request::SetMasterEpoch(self.master.master_epoch());
        match self.transport.call(w, announce, self.cfg.probe_timeout) {
            Ok(Reply::Err(StoreError::StaleEpoch(_))) | Err(StoreError::StaleEpoch(_)) => {
                self.master.self_fence(None);
                return;
            }
            _ => {}
        }
        let epoch = self.master.register_worker(w);
        let _ = self
            .transport
            .call(w, Request::SetEpoch(epoch), self.cfg.probe_timeout);
    }

    /// One recovery sweep: re-materialize every degraded file from the
    /// under-store onto the least-loaded live workers. Files whose
    /// repair slot is held elsewhere are skipped (the dedup contract —
    /// see [`crate::master::Master::begin_repair`]), as are files whose
    /// placement version moved between enumeration and heal — a lazy
    /// repair, repartition commit or eviction-reload already re-placed
    /// them, and healing from the stale snapshot would re-materialize
    /// partitions the newer placement evicted. Returns `None` when
    /// there is no under-store or nothing is degraded.
    pub fn sweep(&self) -> Option<SweepRecord> {
        self.sweep_from(self.snapshot_degraded())
    }

    /// Enumerates the degraded files as `(id, placement version)`
    /// pairs — the snapshot a sweep dedupes against. Public so tests
    /// can interleave a competing heal between snapshot and sweep.
    pub fn snapshot_degraded(&self) -> Vec<(u64, u64)> {
        self.master
            .degraded_files()
            .into_iter()
            .map(|id| (id, self.master.placement_version(id).unwrap_or(0)))
            .collect()
    }

    /// Runs the heal phase of a sweep against a previously captured
    /// degraded snapshot (see [`SupervisorCore::sweep`]).
    pub fn sweep_from(&self, degraded: Vec<(u64, u64)>) -> Option<SweepRecord> {
        let under = self.under.as_ref()?;
        if degraded.is_empty() {
            return None;
        }
        let n = self.transport.n_workers();
        let live = self.master.live_workers(n);
        let mut rec = SweepRecord {
            dead: (0..n).filter(|&w| !self.master.is_alive(w)).collect(),
            ..SweepRecord::default()
        };
        // Partition count per live worker: the sweep places each heal on
        // the least-loaded targets, updating counts as it assigns so
        // concurrent heals in one sweep spread instead of piling up.
        let mut load: BTreeMap<usize, usize> = live.iter().map(|&w| (w, 0)).collect();
        for (_, servers) in self.master.placements() {
            for s in servers {
                if let Some(l) = load.get_mut(&s) {
                    *l += 1;
                }
            }
        }
        for (id, version) in degraded {
            if live.is_empty() || !under.contains(id) {
                rec.unrecoverable.push(id);
                continue;
            }
            // Version check just before the heal: if the placement
            // moved since enumeration, someone else already
            // re-materialized (or re-homed) the file — do not heal it
            // again from the stale snapshot.
            if self.master.placement_version(id) != Some(version) {
                rec.skipped.push(id);
                continue;
            }
            let k = self.master.peek(id).map(|(_, s)| s.len()).unwrap_or(1);
            let targets = pick_least_loaded(&live, &mut load, k);
            match recover_file(&self.client, &*self.master, under, id, &targets) {
                Ok(()) => rec.healed.push(id),
                Err(StoreError::Degraded(_)) => rec.skipped.push(id),
                Err(_) => rec.unrecoverable.push(id),
            }
        }
        self.sweep_log.record(rec.clone());
        Some(rec)
    }
}

/// Picks `k` distinct least-loaded live workers (ties broken by index),
/// charging each pick back into `load`. Deterministic: the same health
/// state and placement map always yield the same targets.
fn pick_least_loaded(live: &[usize], load: &mut BTreeMap<usize, usize>, k: usize) -> Vec<usize> {
    let k = k.clamp(1, live.len());
    let mut picked = Vec::with_capacity(k);
    for _ in 0..k {
        let w = live
            .iter()
            .copied()
            .filter(|w| !picked.contains(w))
            .min_by_key(|&w| (load.get(&w).copied().unwrap_or(0), w))
            .expect("live fleet exhausted despite clamp");
        picked.push(w);
        *load.entry(w).or_insert(0) += 1;
    }
    picked
}

/// A running supervisor: owns a [`SupervisorCore`] and, when the
/// heartbeat interval is non-zero, the background thread driving it.
/// With a zero interval nothing runs on its own — tests call
/// [`Supervisor::tick`] to advance the loop deterministically.
///
/// Dropping the supervisor stops the thread.
#[derive(Debug)]
pub struct Supervisor {
    core: Arc<SupervisorCore>,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl Supervisor {
    /// Starts the supervisor. Spawns the heartbeat thread only when
    /// `core.cfg().heartbeat_interval > 0`.
    pub fn spawn(core: SupervisorCore) -> Self {
        let core = Arc::new(core);
        let stop = Arc::new(AtomicBool::new(false));
        let interval = core.cfg().heartbeat_interval;
        let join = if interval > Duration::ZERO {
            let core = Arc::clone(&core);
            let stop = Arc::clone(&stop);
            Some(
                std::thread::Builder::new()
                    .name("spcache-supervisor".into())
                    .spawn(move || {
                        while !stop.load(Ordering::Relaxed) {
                            core.tick();
                            std::thread::sleep(interval);
                        }
                    })
                    .expect("failed to spawn supervisor thread"),
            )
        } else {
            None
        };
        Supervisor { core, stop, join }
    }

    /// The supervisor's logic (probe/sweep entry points, sweep log).
    pub fn core(&self) -> &Arc<SupervisorCore> {
        &self.core
    }

    /// The sweep record log.
    pub fn sweep_log(&self) -> &Arc<SweepLog> {
        self.core.sweep_log()
    }

    /// Drives one round manually (the deterministic-test path; also
    /// safe alongside a running heartbeat thread).
    pub fn tick(&self) -> Option<SweepRecord> {
        self.core.tick()
    }

    /// Stops and joins the heartbeat thread (idempotent).
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backing::checkpoint;
    use crate::cluster::StoreCluster;
    use crate::config::StoreConfig;
    use crate::fault::FaultPlan;
    use crate::transport::Transport;

    fn payload(len: usize) -> Vec<u8> {
        (0..len).map(|i| ((i * 53 + 11) % 256) as u8).collect()
    }

    fn manual_core(cluster: &StoreCluster, under: Option<Arc<UnderStore>>) -> SupervisorCore {
        let transport: Arc<dyn Transport> = cluster.transport().clone();
        SupervisorCore::new(
            cluster.master().clone(),
            transport,
            under,
            SupervisorConfig::enabled()
                .with_interval(Duration::ZERO)
                .with_probe_timeout(Duration::from_millis(30)),
            RetryPolicy::default(),
        )
    }

    #[test]
    fn first_tick_registers_the_fleet_and_death_triggers_a_sweep() {
        let mut cluster =
            StoreCluster::spawn(StoreConfig::unthrottled(3).with_retry(RetryPolicy::default()));
        let under = Arc::new(UnderStore::new());
        let client = cluster.client().with_under_store(under.clone());
        let data = payload(5_000);
        client.write(1, &data, &[0, 1]).unwrap();
        checkpoint(&client, &under, 1).unwrap();

        let core = manual_core(&cluster, Some(under));
        // Tick 1: every worker is adopted at epoch 1; nothing to sweep.
        assert!(core.tick().is_none());
        assert_eq!(cluster.master().worker_epochs(3), vec![1, 1, 1]);

        cluster.kill_worker(1);
        let rec = core.tick().expect("death must trigger a sweep");
        assert_eq!(rec.dead, vec![1]);
        assert_eq!(rec.healed, vec![1]);
        assert!(rec.skipped.is_empty() && rec.unrecoverable.is_empty());
        // The file is whole again, placed off the dead worker, healed
        // exactly once.
        assert_eq!(client.read_quiet(1).unwrap(), data);
        let (_, servers) = cluster.master().peek(1).unwrap();
        assert!(servers.iter().all(|&s| s != 1));
        assert_eq!(cluster.master().repair_history(), vec![1]);
        // A further tick finds nothing degraded.
        assert!(core.tick().is_none());
        assert_eq!(core.sweep_log().len(), 1);
    }

    #[test]
    fn dropped_heartbeats_climb_the_ladder_and_readoption_fences() {
        let plan = FaultPlan::none()
            .drop_heartbeat(1, 0)
            .drop_heartbeat(1, 1)
            .drop_heartbeat(1, 2);
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(2).with_faults(plan));
        let core = manual_core(&cluster, None);
        // Ticks 1–2: worker 1's pings are swallowed — suspicion, not
        // death (worker 0 registers at epoch 1 on the first tick).
        core.tick();
        assert_eq!(cluster.master().worker_epochs(2), vec![1, 0]);
        assert!(cluster.master().is_alive(1));
        core.tick();
        assert!(cluster.master().is_alive(1));
        // Tick 3: the third consecutive miss kills it and bumps the
        // fencing epoch.
        core.tick();
        assert!(!cluster.master().is_alive(1));
        assert_eq!(cluster.master().worker_epochs(2), vec![1, 1]);
        // Tick 4: the script is exhausted, the ping answers with epoch 0
        // — an unexpected epoch — so the worker is re-adopted with a
        // fresh grant and revived.
        core.tick();
        assert!(cluster.master().is_alive(1));
        assert_eq!(cluster.master().worker_epochs(2), vec![1, 2]);
        let reply = cluster
            .transport()
            .call(1, Request::Ping, Duration::from_millis(200))
            .unwrap();
        assert_eq!(reply.pong_epoch().unwrap(), (1, 2));
    }

    #[test]
    fn sweep_skips_files_whose_repair_is_already_in_flight() {
        let mut cluster =
            StoreCluster::spawn(StoreConfig::unthrottled(3).with_retry(RetryPolicy::default()));
        let under = Arc::new(UnderStore::new());
        let client = cluster.client().with_under_store(under.clone());
        client.write(1, &payload(2_000), &[0, 1]).unwrap();
        client.write(2, &payload(900), &[1]).unwrap();
        checkpoint(&client, &under, 1).unwrap();
        checkpoint(&client, &under, 2).unwrap();
        let core = manual_core(&cluster, Some(under));
        core.tick();
        cluster.kill_worker(1);
        // A lazy repair holds file 1's slot: the sweep must not heal it.
        assert!(cluster.master().begin_repair(1));
        let rec = core.tick().expect("sweep ran");
        assert_eq!(rec.skipped, vec![1]);
        assert_eq!(rec.healed, vec![2]);
        cluster.master().end_repair(1);
        // Next sweep picks up the released file.
        let rec = core.tick().expect("file 1 still degraded");
        assert_eq!(rec.healed, vec![1]);
        // Exactly one actual heal per file, plus the manual acquisition.
        assert_eq!(cluster.master().repair_history(), vec![1, 2, 1]);
    }

    #[test]
    fn sweep_skips_files_replaced_mid_sweep() {
        // The evicted-then-reloaded race: a sweep snapshots its
        // degraded list, but before it reaches file 1 a lazy repair
        // re-places the file (bumping its placement version). The
        // sweep must dedupe on (id, version) and skip, not
        // re-materialize partitions from its stale snapshot.
        let mut cluster =
            StoreCluster::spawn(StoreConfig::unthrottled(3).with_retry(RetryPolicy::default()));
        let under = Arc::new(UnderStore::new());
        let client = cluster.client().with_under_store(under.clone());
        let data = payload(3_000);
        client.write(1, &data, &[0, 1]).unwrap();
        checkpoint(&client, &under, 1).unwrap();
        let core = manual_core(&cluster, Some(under));
        core.tick();
        cluster.kill_worker(1);
        core.probe();

        // Snapshot the degraded list, then let a lazy heal win the race.
        let snap = core.snapshot_degraded();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].0, 1);
        assert_eq!(client.read(1).unwrap(), data);
        assert!(cluster.master().placement_version(1).unwrap() > snap[0].1);

        // The stale-snapshot sweep must skip, and must not acquire a
        // second repair slot for the file.
        let heals_before = cluster.master().repair_history().len();
        let rec = core.sweep_from(snap).expect("sweep ran");
        assert_eq!(rec.skipped, vec![1]);
        assert!(rec.healed.is_empty());
        assert_eq!(cluster.master().repair_history().len(), heals_before);
        assert_eq!(client.read_quiet(1).unwrap(), data);
    }

    #[test]
    fn supervisor_heals_are_background_traffic() {
        let mut cluster =
            StoreCluster::spawn(StoreConfig::unthrottled(3).with_retry(RetryPolicy::default()));
        let under = Arc::new(UnderStore::new());
        let client = cluster.client().with_under_store(under.clone());
        client.write(1, &payload(4_000), &[0, 1]).unwrap();
        checkpoint(&client, &under, 1).unwrap();
        let core = manual_core(&cluster, Some(under));
        core.tick();
        cluster.kill_worker(1);
        let rec = core.tick().expect("sweep ran");
        assert_eq!(rec.healed, vec![1]);
        // Every byte the sweep pushed landed as background traffic.
        let healed_bg: u64 = cluster
            .worker_stats()
            .unwrap()
            .iter()
            .map(|s| s.bytes_background)
            .sum();
        assert!(healed_bg > 0, "sweep pushes must be background-stamped");
    }

    #[test]
    fn least_loaded_picks_are_deterministic_and_distinct() {
        let live = vec![0, 2, 5];
        let mut load: BTreeMap<usize, usize> = [(0, 3), (2, 1), (5, 1)].into_iter().collect();
        let t = pick_least_loaded(&live, &mut load, 2);
        assert_eq!(t, vec![2, 5], "ties break by index");
        // Charges feed back: the next pick sees the updated load.
        let t = pick_least_loaded(&live, &mut load, 3);
        assert_eq!(t, vec![2, 5, 0]);
        // k is clamped to the live fleet.
        let t = pick_least_loaded(&live, &mut load, 9);
        assert_eq!(t.len(), 3);
    }
}

//! The worker (cache server) thread.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender};
use rand::SeedableRng;
use spcache_sim::Xoshiro256StarStar;
use spcache_workload::StragglerModel;

use crate::fault::{FaultAction, FaultLog, WorkerScript};
use crate::rpc::{PartKey, StoreError, WorkerRequest, WorkerStats};
use crate::throttle::TokenBucket;

/// A handle to a running worker thread: its request channel and join
/// handle.
#[derive(Debug)]
pub struct WorkerHandle {
    /// Worker index within the cluster.
    pub id: usize,
    sender: Sender<WorkerRequest>,
    join: Option<JoinHandle<()>>,
}

impl WorkerHandle {
    /// The worker's request channel.
    pub fn sender(&self) -> &Sender<WorkerRequest> {
        &self.sender
    }

    /// Synchronously fetches this worker's service counters.
    pub fn stats(&self) -> Result<WorkerStats, StoreError> {
        let (tx, rx) = bounded(1);
        self.sender
            .send(WorkerRequest::Stats { reply: tx })
            .map_err(|_| StoreError::WorkerDown(self.id))?;
        rx.recv().map_err(|_| StoreError::WorkerDown(self.id))
    }

    /// Requests shutdown and joins the thread.
    pub fn shutdown(&mut self) {
        let _ = self.sender.send(WorkerRequest::Shutdown);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Spawns a worker thread with the given NIC bandwidth and straggler
/// model; returns its handle.
pub fn spawn_worker(
    id: usize,
    bandwidth: f64,
    stragglers: StragglerModel,
    seed: u64,
) -> WorkerHandle {
    spawn_worker_with_faults(
        id,
        bandwidth,
        stragglers,
        seed,
        WorkerScript::empty(),
        Arc::new(FaultLog::new()),
    )
}

/// Spawns a worker that consults `script` before serving each data-path
/// request, recording fired faults into the shared `log`
/// (see [`crate::fault`]).
pub fn spawn_worker_with_faults(
    id: usize,
    bandwidth: f64,
    stragglers: StragglerModel,
    seed: u64,
    script: WorkerScript,
    log: Arc<FaultLog>,
) -> WorkerHandle {
    let (tx, rx) = crossbeam::channel::unbounded();
    let join = std::thread::Builder::new()
        .name(format!("spcache-worker-{id}"))
        .spawn(move || worker_loop(id, rx, bandwidth, stragglers, seed, script, log))
        .expect("failed to spawn worker thread");
    WorkerHandle {
        id,
        sender: tx,
        join: Some(join),
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    id: usize,
    rx: Receiver<WorkerRequest>,
    bandwidth: f64,
    stragglers: StragglerModel,
    seed: u64,
    mut script: WorkerScript,
    log: Arc<FaultLog>,
) {
    let mut store: HashMap<PartKey, Bytes> = HashMap::new();
    let mut nic = TokenBucket::new(bandwidth);
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let mut stats = WorkerStats::default();
    // Data-path op counter: faults trigger on this index. Control
    // requests (Stats, Ping, Shutdown) do not advance it, so monitoring
    // traffic never shifts a scripted fault.
    let mut op: u64 = 0;

    while let Ok(req) = rx.recv() {
        // Control-plane requests bypass fault injection entirely.
        let req = match req {
            WorkerRequest::Stats { reply } => {
                stats.resident_parts = store.len();
                let _ = reply.send(stats);
                continue;
            }
            WorkerRequest::Ping { reply } => {
                let _ = reply.send(id);
                continue;
            }
            WorkerRequest::Shutdown => break,
            data_path => data_path,
        };

        // Consult the fault script for this op. Drops and hangs apply
        // before serving; LoseReply suppresses the reply; Crash kills
        // the worker with the request unanswered (the dropped reply
        // sender disconnects the waiting client).
        let mut lose_reply = false;
        let mut crash = false;
        for action in script.fire(op) {
            log.record(id, op, action.clone());
            match action {
                FaultAction::Crash => crash = true,
                FaultAction::Hang(pause) => std::thread::sleep(pause),
                FaultAction::DropPartition(key) => {
                    store.remove(&key);
                }
                FaultAction::LoseReply => lose_reply = true,
            }
        }
        if crash {
            break;
        }
        op += 1;
        let req = if lose_reply { disarm_reply(req) } else { req };

        match req {
            WorkerRequest::Put { key, data, reply } => {
                nic.consume(data.len());
                stats.bytes_stored += data.len() as u64;
                stats.puts += 1;
                store.insert(key, data);
                stats.resident_parts = store.len();
                let _ = reply.send(Ok(()));
            }
            WorkerRequest::Get { key, reply } => {
                stats.gets += 1;
                match store.get(&key) {
                    Some(data) => {
                        // Emulate the transfer, with optional straggling
                        // (the paper injects stragglers by sleeping the
                        // server thread, §4.2).
                        let factor = stragglers.draw_factor(&mut rng);
                        nic.consume(data.len());
                        if factor > 1.0 && bandwidth.is_finite() {
                            let extra = data.len() as f64 / bandwidth * (factor - 1.0);
                            std::thread::sleep(Duration::from_secs_f64(extra));
                        }
                        stats.bytes_served += data.len() as u64;
                        let _ = reply.send(Ok(data.clone()));
                    }
                    None => {
                        let _ = reply.send(Err(StoreError::NotFound(key)));
                    }
                }
            }
            WorkerRequest::GetRange {
                key,
                offset,
                len,
                reply,
            } => {
                stats.gets += 1;
                match store.get(&key) {
                    Some(data) => {
                        let start = (offset as usize).min(data.len());
                        let end = (start + len as usize).min(data.len());
                        let slice = data.slice(start..end);
                        let factor = stragglers.draw_factor(&mut rng);
                        nic.consume(slice.len());
                        if factor > 1.0 && bandwidth.is_finite() {
                            let extra =
                                slice.len() as f64 / bandwidth * (factor - 1.0);
                            std::thread::sleep(Duration::from_secs_f64(extra));
                        }
                        stats.bytes_served += slice.len() as u64;
                        let _ = reply.send(Ok(slice));
                    }
                    None => {
                        let _ = reply.send(Err(StoreError::NotFound(key)));
                    }
                }
            }
            WorkerRequest::Rename { from, to, reply } => {
                let moved = match store.remove(&from) {
                    Some(data) => {
                        store.insert(to, data);
                        true
                    }
                    None => false,
                };
                stats.resident_parts = store.len();
                let _ = reply.send(moved);
            }
            WorkerRequest::Delete { key, reply } => {
                let removed = store.remove(&key).is_some();
                stats.resident_parts = store.len();
                let _ = reply.send(removed);
            }
            // Control requests (Stats, Ping, Shutdown) were handled
            // before fault injection.
            _ => {}
        }
    }
}

/// Replaces a request's reply sender with one whose receiver is already
/// dropped: the request is served normally but the reply vanishes (the
/// `LoseReply` fault). The waiting client observes a disconnect.
fn disarm_reply(req: WorkerRequest) -> WorkerRequest {
    fn dead<T>() -> Sender<T> {
        let (tx, _rx) = bounded(1);
        tx
    }
    match req {
        WorkerRequest::Put { key, data, .. } => WorkerRequest::Put {
            key,
            data,
            reply: dead(),
        },
        WorkerRequest::Get { key, .. } => WorkerRequest::Get { key, reply: dead() },
        WorkerRequest::GetRange {
            key, offset, len, ..
        } => WorkerRequest::GetRange {
            key,
            offset,
            len,
            reply: dead(),
        },
        WorkerRequest::Rename { from, to, .. } => WorkerRequest::Rename {
            from,
            to,
            reply: dead(),
        },
        WorkerRequest::Delete { key, .. } => WorkerRequest::Delete { key, reply: dead() },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(h: &WorkerHandle, key: PartKey, data: &[u8]) {
        let (tx, rx) = bounded(1);
        h.sender()
            .send(WorkerRequest::Put {
                key,
                data: Bytes::copy_from_slice(data),
                reply: tx,
            })
            .unwrap();
        rx.recv().unwrap().unwrap();
    }

    fn get(h: &WorkerHandle, key: PartKey) -> Result<Bytes, StoreError> {
        let (tx, rx) = bounded(1);
        h.sender()
            .send(WorkerRequest::Get { key, reply: tx })
            .unwrap();
        rx.recv().unwrap()
    }

    #[test]
    fn put_get_roundtrip() {
        let h = spawn_worker(0, f64::INFINITY, StragglerModel::none(), 1);
        put(&h, PartKey::new(1, 0), b"hello");
        assert_eq!(get(&h, PartKey::new(1, 0)).unwrap().as_ref(), b"hello");
    }

    #[test]
    fn get_missing_returns_not_found() {
        let h = spawn_worker(0, f64::INFINITY, StragglerModel::none(), 1);
        assert_eq!(
            get(&h, PartKey::new(9, 9)),
            Err(StoreError::NotFound(PartKey::new(9, 9)))
        );
    }

    #[test]
    fn delete_removes() {
        let h = spawn_worker(0, f64::INFINITY, StragglerModel::none(), 1);
        put(&h, PartKey::new(1, 0), b"x");
        let (tx, rx) = bounded(1);
        h.sender()
            .send(WorkerRequest::Delete {
                key: PartKey::new(1, 0),
                reply: tx,
            })
            .unwrap();
        assert!(rx.recv().unwrap());
        assert!(get(&h, PartKey::new(1, 0)).is_err());
    }

    #[test]
    fn stats_track_traffic() {
        let h = spawn_worker(0, f64::INFINITY, StragglerModel::none(), 1);
        put(&h, PartKey::new(1, 0), &[0u8; 100]);
        put(&h, PartKey::new(1, 1), &[0u8; 50]);
        let _ = get(&h, PartKey::new(1, 0));
        let s = h.stats().unwrap();
        assert_eq!(s.bytes_stored, 150);
        assert_eq!(s.bytes_served, 100);
        assert_eq!(s.puts, 2);
        assert_eq!(s.gets, 1);
        assert_eq!(s.resident_parts, 2);
    }

    #[test]
    fn throttled_worker_takes_time() {
        let h = spawn_worker(0, 10e6, StragglerModel::none(), 1);
        put(&h, PartKey::new(1, 0), &[0u8; 1_000_000]);
        let t0 = std::time::Instant::now();
        let _ = get(&h, PartKey::new(1, 0)).unwrap();
        let dt = t0.elapsed().as_secs_f64();
        assert!(dt >= 0.08, "1 MB at 10 MB/s should take ~0.1s, took {dt}");
    }

    #[test]
    fn shutdown_joins_cleanly() {
        let mut h = spawn_worker(0, f64::INFINITY, StragglerModel::none(), 1);
        put(&h, PartKey::new(1, 0), b"x");
        h.shutdown();
        // Channel closed now.
        let (tx, rx) = bounded(1);
        let send = h.sender().send(WorkerRequest::Get {
            key: PartKey::new(1, 0),
            reply: tx,
        });
        assert!(send.is_err() || rx.recv().is_err());
    }
}

//! The worker (cache server) thread.
//!
//! A worker owns its partition map and serves pure-data [`Request`]s
//! arriving as [`Envelope`]s, computing one [`Reply`] per request and
//! sending it through the envelope's one-shot channel. The same serve
//! loop backs both transports: the in-process [`crate::transport::ChannelTransport`]
//! feeds it directly, and `spcache-net`'s TCP server forwards decoded
//! frames into it one at a time.
//!
//! Workers are **memory-budgeted** (DESIGN.md §4.13): with
//! [`WorkerOptions::memory_budget`] set, a partition-granular LRU
//! ([`spcache_core::LruCache`]) bounds resident bytes. On overflow the
//! coldest partitions are evicted — written back to the under-store's
//! spill area when that is the only copy, or dropped for free when the
//! under-store already holds the file's whole-file checkpoint. Reads of
//! spilled partitions transparently reload them (paying the slow-tier
//! delay); reads of dropped partitions answer `NotFound` and heal
//! through the client's recovery path. Eviction is a performance
//! event, never a correctness event.
//!
//! All maintenance byte streams — spill writebacks, refills, and any
//! request stamped [`Request::Background`] (recovery pushes,
//! repartition traffic) — are paced through the background share of
//! the worker's two-class NIC ([`NicScheduler`]), so a sweep cannot
//! starve foreground traffic.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender};
use rand::SeedableRng;
use spcache_core::LruCache;
use spcache_sim::Xoshiro256StarStar;
use spcache_workload::StragglerModel;

use crate::backing::UnderStore;
use crate::fault::{CorruptSite, FaultAction, FaultLog, WorkerScript};
use crate::rpc::{Envelope, PartKey, Reply, Request, StoreError, WorkerStats, STAGE_BIT};
use crate::throttle::{NicScheduler, TrafficClass};

/// A handle to a running worker thread: its request channel and join
/// handle.
#[derive(Debug)]
pub struct WorkerHandle {
    /// Worker index within the cluster.
    pub id: usize,
    sender: Sender<Envelope>,
    join: Option<JoinHandle<()>>,
}

impl WorkerHandle {
    /// The worker's request channel.
    pub fn sender(&self) -> &Sender<Envelope> {
        &self.sender
    }

    /// Synchronously fetches this worker's service counters.
    pub fn stats(&self) -> Result<WorkerStats, StoreError> {
        let (tx, rx) = bounded(1);
        self.sender
            .send(Envelope {
                req: Request::Stats,
                reply: tx,
            })
            .map_err(|_| StoreError::WorkerDown(self.id))?;
        rx.recv()
            .map_err(|_| StoreError::WorkerDown(self.id))?
            .stats()
    }

    /// Requests shutdown and joins the thread. The worker drains its
    /// queue up to the shutdown request (FIFO), acknowledges, and exits.
    pub fn shutdown(&mut self) {
        let (tx, rx) = bounded(1);
        if self
            .sender
            .send(Envelope {
                req: Request::Shutdown,
                reply: tx,
            })
            .is_ok()
        {
            let _ = rx.recv();
        }
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Everything a worker thread is configured with: identity, NIC model,
/// fault scripts, and the memory-budget machinery. Build with
/// [`WorkerOptions::new`] plus the builders; [`spawn_worker_opts`]
/// consumes it.
#[derive(Debug)]
pub struct WorkerOptions {
    /// Worker index within the cluster.
    pub id: usize,
    /// NIC bandwidth in bytes/s (`f64::INFINITY` = unthrottled).
    pub bandwidth: f64,
    /// Fraction of the NIC available to background traffic, in
    /// `(0, 1]` (see [`NicScheduler`]). 1.0 = no background pacing.
    pub background_fraction: f64,
    /// Straggler model applied to reads.
    pub stragglers: StragglerModel,
    /// RNG seed for straggler draws.
    pub seed: u64,
    /// Data-path fault script (fires on the op counter).
    pub script: WorkerScript,
    /// Heartbeat fault script (fires on the ping counter).
    pub heartbeat_script: WorkerScript,
    /// Shared fault log.
    pub log: Arc<FaultLog>,
    /// Resident-byte budget; `None` = unbounded, no eviction ever.
    pub memory_budget: Option<usize>,
    /// Spill tier for evicted partitions (normally the cluster's shared
    /// under-store). When a budget is set and no spill is provided,
    /// [`spawn_worker_opts`] creates a private one, so eviction can
    /// never lose the only copy of a partition.
    pub spill: Option<Arc<UnderStore>>,
    /// Upper bound on any single emulated transfer's wait. A transfer
    /// whose projected completion exceeds it is refused with
    /// [`StoreError::Timeout`] instead of sleeping through it — this is
    /// what keeps a throttled push from outliving the executor
    /// deadline. `None` = uncapped.
    pub max_transfer_wait: Option<Duration>,
    /// Verify resident partitions against their stored checksum on the
    /// read path (DESIGN.md §4.15). Verification is per **byte
    /// movement**, not per request: the first `Get`/`GetRange` after a
    /// partition lands, moves or rots pays the checksum pass; later
    /// reads of the untouched bytes skip it. Spill reloads are verified
    /// regardless of this flag.
    pub verify_reads: bool,
    /// Print a `CORRUPT <file> <partition>` line on each checksum
    /// failure — the `spcached` deployment behaviour.
    pub log_corruptions: bool,
}

impl WorkerOptions {
    /// Options with no faults, no budget and no transfer cap.
    pub fn new(id: usize, bandwidth: f64, stragglers: StragglerModel, seed: u64) -> Self {
        WorkerOptions {
            id,
            bandwidth,
            background_fraction: 1.0,
            stragglers,
            seed,
            script: WorkerScript::empty(),
            heartbeat_script: WorkerScript::empty(),
            log: Arc::new(FaultLog::new()),
            memory_budget: None,
            spill: None,
            max_transfer_wait: None,
            verify_reads: false,
            log_corruptions: false,
        }
    }

    /// Installs both fault scripts and the shared log.
    pub fn with_scripts(
        mut self,
        script: WorkerScript,
        heartbeat_script: WorkerScript,
        log: Arc<FaultLog>,
    ) -> Self {
        self.script = script;
        self.heartbeat_script = heartbeat_script;
        self.log = log;
        self
    }

    /// Sets the resident-byte budget.
    pub fn with_memory_budget(mut self, budget: Option<usize>) -> Self {
        self.memory_budget = budget;
        self
    }

    /// Sets the background NIC fraction.
    pub fn with_background_fraction(mut self, fraction: f64) -> Self {
        self.background_fraction = fraction;
        self
    }

    /// Sets the spill tier.
    pub fn with_spill(mut self, spill: Arc<UnderStore>) -> Self {
        self.spill = Some(spill);
        self
    }

    /// Caps every emulated transfer's wait.
    pub fn with_max_transfer_wait(mut self, cap: Option<Duration>) -> Self {
        self.max_transfer_wait = cap;
        self
    }

    /// Enables checksum verification on the read path.
    pub fn with_verify_reads(mut self, verify: bool) -> Self {
        self.verify_reads = verify;
        self
    }

    /// Enables `CORRUPT` log lines on checksum failures.
    pub fn with_corruption_log(mut self, log: bool) -> Self {
        self.log_corruptions = log;
        self
    }
}

/// Spawns a worker thread with the given NIC bandwidth and straggler
/// model; returns its handle.
pub fn spawn_worker(
    id: usize,
    bandwidth: f64,
    stragglers: StragglerModel,
    seed: u64,
) -> WorkerHandle {
    spawn_worker_opts(WorkerOptions::new(id, bandwidth, stragglers, seed))
}

/// Spawns a worker that consults `script` before serving each data-path
/// request, recording fired faults into the shared `log`
/// (see [`crate::fault`]).
pub fn spawn_worker_with_faults(
    id: usize,
    bandwidth: f64,
    stragglers: StragglerModel,
    seed: u64,
    script: WorkerScript,
    log: Arc<FaultLog>,
) -> WorkerHandle {
    spawn_worker_opts(
        WorkerOptions::new(id, bandwidth, stragglers, seed).with_scripts(
            script,
            WorkerScript::empty(),
            log,
        ),
    )
}

/// Spawns a worker with both fault scripts: `script` fires on the
/// data-path op counter, `heartbeat_script` on the ping counter (see
/// [`crate::fault::FaultPlan::heartbeat_script_for`]). The two counters
/// are independent, so supervisor cadence never shifts a scripted data
/// fault and vice versa.
#[allow(clippy::too_many_arguments)]
pub fn spawn_worker_with_scripts(
    id: usize,
    bandwidth: f64,
    stragglers: StragglerModel,
    seed: u64,
    script: WorkerScript,
    heartbeat_script: WorkerScript,
    log: Arc<FaultLog>,
) -> WorkerHandle {
    spawn_worker_opts(
        WorkerOptions::new(id, bandwidth, stragglers, seed).with_scripts(
            script,
            heartbeat_script,
            log,
        ),
    )
}

/// Spawns a fully-configured worker thread (the general form every
/// other `spawn_worker*` delegates to).
pub fn spawn_worker_opts(mut opts: WorkerOptions) -> WorkerHandle {
    // A budget without a spill tier could turn eviction into data loss;
    // back it with a private under-store so it never does.
    if opts.memory_budget.is_some() && opts.spill.is_none() {
        opts.spill = Some(Arc::new(UnderStore::new()));
    }
    let id = opts.id;
    let (tx, rx) = crossbeam::channel::unbounded();
    let join = std::thread::Builder::new()
        .name(format!("spcache-worker-{id}"))
        .spawn(move || worker_loop(opts, rx))
        .expect("failed to spawn worker thread");
    WorkerHandle {
        id,
        sender: tx,
        join: Some(join),
    }
}

fn worker_loop(opts: WorkerOptions, rx: Receiver<Envelope>) {
    let WorkerOptions {
        id,
        bandwidth,
        background_fraction,
        stragglers,
        seed,
        mut script,
        mut heartbeat_script,
        log,
        memory_budget,
        spill,
        max_transfer_wait,
        verify_reads,
        log_corruptions,
    } = opts;
    let mut ctx = ServeCtx {
        id,
        store: HashMap::new(),
        // A zero budget still needs a valid LRU: clamp to one byte so
        // every partition is "oversized" and spills straight through.
        lru: LruCache::new(memory_budget.map_or(f64::INFINITY, |b| (b as f64).max(1.0))),
        nic: NicScheduler::new(bandwidth, background_fraction),
        stats: WorkerStats::default(),
        stragglers,
        rng: Xoshiro256StarStar::seed_from_u64(seed),
        bandwidth,
        spill,
        max_transfer_wait,
        evicted: Vec::new(),
        clean: HashSet::new(),
        verify_reads,
        log_corruptions,
        sums: HashMap::new(),
        corrupted: HashSet::new(),
        verified: HashSet::new(),
        wire_corrupt: Vec::new(),
    };
    // Data-path op counter: faults trigger on this index. Control
    // requests (Stats, Ping, SetEpoch, Shutdown) do not advance it, so
    // monitoring traffic never shifts a scripted fault.
    let mut op: u64 = 0;
    // Heartbeat (ping) counter — the separate trigger stream for
    // DropHeartbeat faults.
    let mut pings: u64 = 0;
    // The epoch granted by the master at registration. 0 = unregistered:
    // a fresh or crash-restarted worker bounces every fenced request
    // until the supervisor adopts it with `SetEpoch`.
    let mut epoch: u64 = 0;
    // The highest master epoch this worker has witnessed (via
    // SetMasterEpoch announcements or Fenced master stamps). 0 = none.
    // Fenced traffic stamped below the watermark bounces StaleEpoch —
    // a deposed master can never write through this worker again.
    let mut master_known: u64 = 0;
    // Reply senders of swallowed heartbeats, kept alive so the probing
    // supervisor observes a *timeout* (→ suspicion ladder), not a
    // disconnect (→ immediate death).
    let mut swallowed_pings: Vec<crossbeam::channel::Sender<Reply>> = Vec::new();

    while let Ok(Envelope { req, reply }) = rx.recv() {
        // Control-plane requests bypass fault injection entirely —
        // except Ping, which consults the dedicated heartbeat script.
        match req {
            Request::Stats => {
                ctx.stats.resident_parts = ctx.store.len();
                ctx.stats.resident_bytes = ctx.lru.used_bytes() as u64;
                ctx.stats.bytes_background = ctx.nic.class_bytes().1;
                let _ = reply.send(Reply::Stats(ctx.stats));
                continue;
            }
            Request::Ping => {
                let this_ping = pings;
                pings += 1;
                let mut dropped = false;
                for action in heartbeat_script.fire(this_ping) {
                    log.record(id, this_ping, action.clone());
                    if matches!(action, FaultAction::DropHeartbeat) {
                        dropped = true;
                    }
                }
                if dropped {
                    swallowed_pings.push(reply);
                } else {
                    let _ = reply.send(Reply::Pong { worker: id, epoch });
                }
                continue;
            }
            Request::SetEpoch(e) => {
                epoch = e;
                let _ = reply.send(Reply::Done);
                continue;
            }
            Request::SetMasterEpoch(m) => {
                // A lower announcement is a deposed master knocking:
                // bounce it so it self-fences. Equal re-announcements
                // (the active master re-adopting a worker) are fine.
                let out = if m != 0 && m < master_known {
                    Reply::Err(StoreError::StaleEpoch(id))
                } else {
                    master_known = master_known.max(m);
                    Reply::Done
                };
                let _ = reply.send(out);
                continue;
            }
            Request::Shutdown => {
                // Graceful drain: everything queued before this envelope
                // has already been served (FIFO). Acknowledge, then exit.
                let _ = reply.send(Reply::Done);
                break;
            }
            _ => {}
        }

        // Consult the fault script for this op. Drops and hangs apply
        // before serving; LoseReply suppresses the reply; Crash kills
        // the worker with the request unanswered (the dropped reply
        // sender disconnects the waiting client). Wire faults have no
        // frames to act on in-process, so they degrade to the nearest
        // channel-visible effect — but the *original* action is logged,
        // keeping seeded fault logs identical across transports.
        let mut lose_reply = false;
        let mut crash = false;
        let mut bounce_stale = false;
        let mut delay = Duration::ZERO;
        for action in script.fire(op) {
            log.record(id, op, action.clone());
            match action {
                FaultAction::Crash => crash = true,
                FaultAction::Hang(pause) => std::thread::sleep(pause),
                FaultAction::DropPartition(key) => {
                    ctx.store.remove(&key);
                    ctx.lru.remove(&key);
                }
                FaultAction::LoseReply => lose_reply = true,
                // A dropped connection or torn frame never delivers the
                // reply: in-process that is exactly a lost reply.
                FaultAction::DropConnection | FaultAction::TruncateFrame => lose_reply = true,
                FaultAction::DelayFrame(pause) => delay += pause,
                // Fast restart with a cold cache: everything cached is
                // gone and the registration epoch resets; the thread
                // keeps serving as the "restarted process". Spilled
                // partitions live on the stable tier and survive.
                FaultAction::CrashRestart => {
                    ctx.store.clear();
                    ctx.lru.clear();
                    ctx.clean.clear();
                    // The in-memory checksum map dies with the process;
                    // surviving spilled partitions reload unverified (the
                    // client still checks them against the master's rows).
                    ctx.sums.clear();
                    ctx.corrupted.clear();
                    ctx.verified.clear();
                    ctx.wire_corrupt.clear();
                    ctx.stats.resident_parts = 0;
                    ctx.stats.resident_bytes = 0;
                    epoch = 0;
                    master_known = 0;
                }
                FaultAction::StaleEpochDelivery => bounce_stale = true,
                // Flip one byte of the partition at the scripted site.
                // The worker mutates its *own copies* on both transports,
                // which is what keeps seeded fault logs identical across
                // channel and TCP runs.
                FaultAction::CorruptPartition { key, site, byte } => {
                    ctx.corrupt(key, site, byte)
                }
                // Heartbeat faults never appear in op-indexed scripts
                // (FaultPlan::script_for filters them out).
                FaultAction::DropHeartbeat => {}
            }
        }
        if crash {
            break;
        }
        op += 1;

        // Epoch fencing runs *after* fault injection and the op-counter
        // bump, so a bounced request advances the counter identically on
        // both transports and scripted faults stay aligned. The master
        // stamp is checked alongside the worker epoch: below-watermark
        // stamps bounce, higher stamps raise the watermark (a worker
        // can learn of a takeover from the traffic itself).
        let fenced_mismatch = match &req {
            Request::Fenced { epoch: stamped, master, .. } => {
                let stale_master = *master != 0 && *master < master_known;
                master_known = master_known.max(*master);
                // A zero worker stamp means "master stamp only" — the
                // sender is not epoch-fenced (a bare zero could never
                // reach the wire before master stamps existed, so this
                // is backward compatible).
                let stale_worker = *stamped != 0 && *stamped != epoch;
                stale_worker || stale_master
            }
            _ => false,
        };
        let out = if bounce_stale || fenced_mismatch {
            Reply::Err(StoreError::StaleEpoch(id))
        } else {
            // Unwrap the canonical Fenced { Background { data } }
            // nesting: the fence was checked above, the class picks the
            // NIC bucket the transfer pays.
            let req = match req {
                Request::Fenced { inner, .. } => *inner,
                r => r,
            };
            let (req, class) = match req {
                Request::Background { inner } => (*inner, TrafficClass::Background),
                r => (r, TrafficClass::Foreground),
            };
            ctx.serve(req, class)
        };
        if delay > Duration::ZERO {
            std::thread::sleep(delay);
        }
        if !lose_reply {
            let _ = reply.send(out);
        }
        // else: the envelope's sender drops unsent — the waiting client
        // observes a disconnect, like a reply lost on the wire.
    }
}

/// The worker's serving state: partition map, budget LRU, two-class
/// NIC, spill tier and counters.
struct ServeCtx {
    id: usize,
    store: HashMap<PartKey, Bytes>,
    lru: LruCache<PartKey>,
    nic: NicScheduler,
    stats: WorkerStats,
    stragglers: StragglerModel,
    rng: Xoshiro256StarStar,
    bandwidth: f64,
    spill: Option<Arc<UnderStore>>,
    max_transfer_wait: Option<Duration>,
    /// Scratch for LRU eviction drains (reused, allocation-free in
    /// steady state).
    evicted: Vec<(PartKey, f64)>,
    /// Resident partitions whose spill copy is still byte-identical
    /// (reloaded and not since overwritten). Evicting a clean partition
    /// is a free drop — the spill tier already holds the only copy it
    /// would write back. Invariant: `clean` ⊆ resident keys with a live,
    /// identical spill entry; every path that mutates either side
    /// (`Put`, `Rename`, `Delete`, crash-restart) clears the flag.
    clean: HashSet<PartKey>,
    /// Re-verify resident bytes on every read (spill reloads are always
    /// verified regardless — see [`ServeCtx::reload`]).
    verify_reads: bool,
    /// Print `CORRUPT <file> <partition>` on each detection.
    log_corruptions: bool,
    /// Checksum per partition, as stamped by the writer's `Put`.
    /// Partitions written with the [`spcache_integrity::UNVERIFIED`]
    /// sentinel have no entry and always pass verification.
    sums: HashMap<PartKey, u64>,
    /// Keys erased after a failed verification. A fresh `Put` landing on
    /// one of these is a reconstruction re-landing (read-repair
    /// push-back) and counts into `decode_reconstructions`.
    corrupted: HashSet<PartKey>,
    /// Resident partitions whose bytes passed verification and have not
    /// moved since. Verification is **per byte movement**, not per
    /// `Get`: the first read after a `Put`, reload or rename pays the
    /// checksum pass, and later reads of the untouched bytes are free —
    /// this is what keeps `verify_reads` within the §4.15 overhead
    /// budget. Every path that replaces or rots the bytes (`Put`,
    /// `Rename`, `Delete`, scripted flips, crash-restart) drops the
    /// mark.
    verified: HashSet<PartKey>,
    /// Pending wire-site flips: the next read reply carrying the key
    /// serves a flipped *copy* — the stored bytes stay pristine, exactly
    /// like a frame corrupted in flight.
    wire_corrupt: Vec<(PartKey, u64)>,
}

impl ServeCtx {
    /// Serves one data-path request under the given traffic class.
    fn serve(&mut self, req: Request, class: TrafficClass) -> Reply {
        match req {
            Request::Put { key, data, sum } => {
                if let Err(refused) = self.transfer(data.len(), class) {
                    return refused;
                }
                self.stats.bytes_stored += data.len() as u64;
                self.stats.puts += 1;
                if key.is_parity() {
                    self.stats.parity_bytes += data.len() as u64;
                }
                if self.corrupted.remove(&key) {
                    // A fresh Put landing on a corruption-erased key is
                    // a reconstruction re-landing (read-repair).
                    self.stats.decode_reconstructions += 1;
                }
                if sum == spcache_integrity::UNVERIFIED {
                    self.sums.remove(&key);
                } else {
                    self.sums.insert(key, sum);
                }
                // Fresh bytes are unproven: the next read verifies them.
                self.verified.remove(&key);
                self.admit(key, data);
                self.stats.resident_parts = self.store.len();
                Reply::Done
            }
            Request::Get { key } | Request::GetParity { key } => {
                self.stats.gets += 1;
                let data = match self.resident(key) {
                    Ok(d) => d,
                    Err(e) => return Reply::Err(e),
                };
                if let Err(refused) = self.paced_read(data.len(), class) {
                    return refused;
                }
                self.stats.bytes_served += data.len() as u64;
                Reply::Data(self.outgoing(key, data))
            }
            Request::GetRange { key, offset, len } => {
                self.stats.gets += 1;
                let data = match self.resident(key) {
                    Ok(d) => d,
                    Err(e) => return Reply::Err(e),
                };
                let start = (offset as usize).min(data.len());
                let end = (start + len as usize).min(data.len());
                let slice = data.slice(start..end);
                if let Err(refused) = self.paced_read(slice.len(), class) {
                    return refused;
                }
                self.stats.bytes_served += slice.len() as u64;
                Reply::Data(self.outgoing(key, slice))
            }
            Request::Rename { from, to } => {
                let moved = match self.store.remove(&from) {
                    Some(data) => {
                        let bytes = self.lru.remove(&from).unwrap_or(data.len() as f64);
                        self.lru.insert(to, bytes);
                        // Any stale spilled copy of either name must not
                        // shadow the renamed bytes: `to`'s old spill
                        // entry is dead, and a clean `from` leaves its
                        // (now misnamed) spill copy behind.
                        if let Some(s) = &self.spill {
                            s.spill_remove(to);
                            if self.clean.remove(&from) {
                                s.spill_remove(from);
                            }
                        }
                        self.clean.remove(&to);
                        self.store.insert(to, data);
                        true
                    }
                    // The source may have been evicted before its
                    // commit arrived: rename within the spill tier.
                    None => {
                        self.clean.remove(&to);
                        self.spill
                            .as_ref()
                            .is_some_and(|s| s.spill_rename(from, to))
                    }
                };
                if moved {
                    // The checksum (and any pending erasure mark) follow
                    // the bytes; whatever `to` carried before is stale.
                    match self.sums.remove(&from) {
                        Some(sum) => {
                            self.sums.insert(to, sum);
                        }
                        None => {
                            self.sums.remove(&to);
                        }
                    }
                    if self.corrupted.remove(&from) {
                        self.corrupted.insert(to);
                    } else {
                        self.corrupted.remove(&to);
                    }
                    if self.verified.remove(&from) {
                        self.verified.insert(to);
                    } else {
                        self.verified.remove(&to);
                    }
                }
                self.stats.resident_parts = self.store.len();
                Reply::Flag(moved)
            }
            Request::Delete { key } => {
                let mut removed = self.store.remove(&key).is_some();
                self.lru.remove(&key);
                self.clean.remove(&key);
                self.sums.remove(&key);
                self.corrupted.remove(&key);
                self.verified.remove(&key);
                if let Some(s) = &self.spill {
                    removed |= s.spill_remove(key);
                }
                self.stats.resident_parts = self.store.len();
                Reply::Flag(removed)
            }
            // Control requests were handled before fault injection, and
            // Fenced/Background wrappers are unwrapped before serve().
            Request::Stats
            | Request::Ping
            | Request::SetEpoch(_)
            | Request::SetMasterEpoch(_)
            | Request::Shutdown
            | Request::Fenced { .. }
            | Request::Background { .. } => {
                unreachable!("control requests are served before the data path")
            }
        }
    }

    /// The partition's bytes if resident — reloading it from the spill
    /// tier first when it was evicted there. A checksum mismatch
    /// surfaces as [`StoreError::Corrupt`] with every local copy
    /// dropped: corruption becomes an *erasure* the client recovers
    /// from (parity decode or under-store heal), never wrong bytes.
    ///
    /// Verification is memoised per byte movement (see
    /// [`ServeCtx::verified`]): only the first read after the bytes
    /// landed, moved or rotted pays the checksum pass.
    fn resident(&mut self, key: PartKey) -> Result<Bytes, StoreError> {
        if let Some(data) = self.store.get(&key) {
            let data = data.clone();
            self.lru.touch(&key);
            if self.verify_reads && !self.verified.contains(&key) {
                if !spcache_integrity::verify(&data, self.sum_of(key)) {
                    return Err(self.erase_corrupt(key));
                }
                self.verified.insert(key);
            }
            return Ok(data);
        }
        self.reload(key)
    }

    /// The remembered checksum for `key` (`UNVERIFIED` when the writer
    /// did not stamp one — then verification always passes).
    fn sum_of(&self, key: PartKey) -> u64 {
        self.sums
            .get(&key)
            .copied()
            .unwrap_or(spcache_integrity::UNVERIFIED)
    }

    /// The error for a partition with no local copy left. A key erased
    /// by a failed verification stays a typed [`StoreError::Corrupt`]
    /// erasure until a fresh `Put` re-lands it — readers racing the
    /// read-repair push-back must keep seeing the erasure (and keep
    /// recovering via parity), not a `NotFound` that looks like a
    /// deleted file.
    fn missing(&self, key: PartKey) -> StoreError {
        if self.corrupted.contains(&key) {
            StoreError::Corrupt(key)
        } else {
            StoreError::NotFound(key)
        }
    }

    /// Drops every local copy of a corrupt partition, counts the
    /// detection and returns the typed erasure error.
    fn erase_corrupt(&mut self, key: PartKey) -> StoreError {
        self.store.remove(&key);
        self.lru.remove(&key);
        self.clean.remove(&key);
        if let Some(s) = &self.spill {
            s.spill_remove(key);
        }
        self.stats.resident_parts = self.store.len();
        self.stats.corruptions_detected += 1;
        self.corrupted.insert(key);
        self.verified.remove(&key);
        if self.log_corruptions {
            println!("CORRUPT {} {}", key.file, key.part);
        }
        StoreError::Corrupt(key)
    }

    /// Applies a pending wire-site flip to the outgoing reply, if one is
    /// scripted for this key. Always flips a *copy*: the stored `Bytes`
    /// may share the writer's (or a test's ground-truth) allocation.
    fn outgoing(&mut self, key: PartKey, data: Bytes) -> Bytes {
        if let Some(pos) = self.wire_corrupt.iter().position(|(k, _)| *k == key) {
            let (_, byte) = self.wire_corrupt.swap_remove(pos);
            return flipped(&data, byte);
        }
        data
    }

    /// Lands one scripted [`FaultAction::CorruptPartition`].
    fn corrupt(&mut self, key: PartKey, site: CorruptSite, byte: u64) {
        match site {
            CorruptSite::Wire => self.wire_corrupt.push((key, byte)),
            CorruptSite::Spill => {
                // Flip the spill-area copy in place; the resident copy
                // (if any) stays honest, so the flip only surfaces once
                // the partition must be reloaded. Falls back to the
                // resident site when the partition never spilled.
                if let Some(s) = self.spill.clone() {
                    if let Some(data) = s.spill_load(key) {
                        s.spill_put(key, flipped(&data, byte));
                        return;
                    }
                }
                self.corrupt_resident(key, byte);
            }
            CorruptSite::Resident => self.corrupt_resident(key, byte),
        }
    }

    fn corrupt_resident(&mut self, key: PartKey, byte: u64) {
        if let Some(data) = self.store.get(&key) {
            let bad = flipped(data, byte);
            self.store.insert(key, bad);
            // A clean spill copy no longer matches the resident bytes:
            // drop the flag so eviction writes the corruption back
            // instead of free-dropping it out of existence.
            self.clean.remove(&key);
            // The flip replaced the resident `Bytes`, so the memoised
            // verification no longer covers what's stored — the next
            // read re-verifies and detects.
            self.verified.remove(&key);
        }
    }

    /// Makes `key` resident under the budget, evicting as needed:
    /// evicted cold partitions spill to the under-store unless it
    /// already holds the file's whole-file checkpoint (then the drop is
    /// free — a later read heals from the checkpoint). A partition
    /// larger than the whole budget spills straight through.
    fn admit(&mut self, key: PartKey, data: Bytes) {
        // Fresh bytes supersede any spilled copy: purge it so a later
        // eviction can't resurrect the stale version.
        if let Some(s) = &self.spill {
            s.spill_remove(key);
        }
        self.clean.remove(&key);
        self.admit_inner(key, data);
    }

    fn admit_inner(&mut self, key: PartKey, data: Bytes) {
        let fits = self
            .lru
            .insert_evicting(key, data.len() as f64, &mut self.evicted);
        if fits {
            self.store.insert(key, data);
        } else {
            self.store.remove(&key);
            self.writeback(key, data);
        }
        let drained = std::mem::take(&mut self.evicted);
        for &(k, _) in &drained {
            if let Some(bytes) = self.store.remove(&k) {
                self.writeback(k, bytes);
            }
        }
        self.evicted = drained;
        self.evicted.clear();
    }

    /// Handles one evicted partition: drop free when the spill tier
    /// already holds the bytes — either the file's whole-file
    /// checkpoint or a still-identical spill copy left by a clean
    /// reload — otherwise write it back to the spill area, paced as
    /// background traffic (uncapped — the only copy must land).
    fn writeback(&mut self, key: PartKey, data: Bytes) {
        self.stats.evictions += 1;
        let Some(spill) = self.spill.clone() else {
            self.clean.remove(&key);
            return;
        };
        // A clean partition's spill copy is byte-identical by
        // invariant: evicting it moves nothing.
        if self.clean.remove(&key) {
            return;
        }
        // Staged partitions belong to an uncommitted layout the
        // checkpoint knows nothing about: always spill those.
        if key.part & STAGE_BIT == 0 && spill.contains(key.file) {
            return;
        }
        self.nic.consume(data.len(), TrafficClass::Background);
        self.stats.spilled_bytes += data.len() as u64;
        spill.spill_put(key, data);
    }

    /// Reloads an evicted partition from the spill tier (paying the
    /// slow-tier read delay and the background NIC share), re-admits it
    /// and returns its bytes. The spill copy stays where it is and the
    /// partition is marked clean: until something overwrites it, its
    /// next eviction is a free drop instead of a redundant writeback.
    ///
    /// Reloaded bytes are **always** verified when the checksum is
    /// known, independent of `verify_reads`: the spill tier sits outside
    /// this process and its bytes must never be re-admitted on trust —
    /// a corrupt spill file is erased and healed, not served.
    fn reload(&mut self, key: PartKey) -> Result<Bytes, StoreError> {
        let Some(spill) = self.spill.clone() else {
            return Err(self.missing(key));
        };
        let Some(data) = spill.spill_load(key) else {
            return Err(self.missing(key));
        };
        if !spcache_integrity::verify(&data, self.sum_of(key)) {
            return Err(self.erase_corrupt(key));
        }
        self.nic.consume(data.len(), TrafficClass::Background);
        self.stats.reloaded_bytes += data.len() as u64;
        self.clean.insert(key);
        // The reload *is* this movement's verification pass.
        self.verified.insert(key);
        self.admit_inner(key, data.clone());
        Ok(data)
    }

    /// Pays the NIC for a transfer, refusing with
    /// [`StoreError::Timeout`] when a configured cap says the wait
    /// would overrun the executor deadline.
    fn transfer(&mut self, bytes: usize, class: TrafficClass) -> Result<(), Reply> {
        match self.max_transfer_wait {
            Some(cap) => {
                if self.nic.consume_within(bytes, class, Instant::now() + cap) {
                    Ok(())
                } else {
                    Err(Reply::Err(StoreError::Timeout(self.id)))
                }
            }
            None => {
                self.nic.consume(bytes, class);
                Ok(())
            }
        }
    }

    /// A read-side transfer with optional straggling (the paper injects
    /// stragglers by sleeping the server thread, §4.2).
    fn paced_read(&mut self, bytes: usize, class: TrafficClass) -> Result<(), Reply> {
        let factor = self.stragglers.draw_factor(&mut self.rng);
        self.transfer(bytes, class)?;
        if factor > 1.0 && self.bandwidth.is_finite() {
            let extra = bytes as f64 / self.bandwidth * (factor - 1.0);
            std::thread::sleep(Duration::from_secs_f64(extra));
        }
        Ok(())
    }
}

/// A copy of `data` with the byte at `index % len` inverted. The copy is
/// mandatory: stored `Bytes` may alias the writer's allocation, and a
/// seeded fault must never mutate the test's ground truth in place.
fn flipped(data: &Bytes, index: u64) -> Bytes {
    let mut v = data.to_vec();
    if !v.is_empty() {
        let i = (index % v.len() as u64) as usize;
        v[i] ^= 0xFF;
    }
    Bytes::from(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(h: &WorkerHandle, req: Request) -> Reply {
        let (tx, rx) = bounded(1);
        h.sender().send(Envelope { req, reply: tx }).unwrap();
        rx.recv().unwrap()
    }

    fn put(h: &WorkerHandle, key: PartKey, data: &[u8]) {
        call(
            h,
            Request::Put {
                key,
                data: Bytes::copy_from_slice(data),
                sum: 0,
            },
        )
        .unit()
        .unwrap();
    }

    /// A `put` stamped with the real checksum, as the client writes.
    fn put_summed(h: &WorkerHandle, key: PartKey, data: &[u8]) {
        call(
            h,
            Request::Put {
                key,
                data: Bytes::copy_from_slice(data),
                sum: spcache_integrity::sum(data),
            },
        )
        .unit()
        .unwrap();
    }

    fn get(h: &WorkerHandle, key: PartKey) -> Result<Bytes, StoreError> {
        call(h, Request::Get { key }).bytes()
    }

    #[test]
    fn put_get_roundtrip() {
        let h = spawn_worker(0, f64::INFINITY, StragglerModel::none(), 1);
        put(&h, PartKey::new(1, 0), b"hello");
        assert_eq!(get(&h, PartKey::new(1, 0)).unwrap().as_ref(), b"hello");
    }

    #[test]
    fn get_missing_returns_not_found() {
        let h = spawn_worker(0, f64::INFINITY, StragglerModel::none(), 1);
        assert_eq!(
            get(&h, PartKey::new(9, 9)),
            Err(StoreError::NotFound(PartKey::new(9, 9)))
        );
    }

    #[test]
    fn delete_removes() {
        let h = spawn_worker(0, f64::INFINITY, StragglerModel::none(), 1);
        put(&h, PartKey::new(1, 0), b"x");
        assert!(call(&h, Request::Delete { key: PartKey::new(1, 0) })
            .flag()
            .unwrap());
        assert!(get(&h, PartKey::new(1, 0)).is_err());
    }

    #[test]
    fn stats_track_traffic() {
        let h = spawn_worker(0, f64::INFINITY, StragglerModel::none(), 1);
        put(&h, PartKey::new(1, 0), &[0u8; 100]);
        put(&h, PartKey::new(1, 1), &[0u8; 50]);
        let _ = get(&h, PartKey::new(1, 0));
        let s = h.stats().unwrap();
        assert_eq!(s.bytes_stored, 150);
        assert_eq!(s.bytes_served, 100);
        assert_eq!(s.puts, 2);
        assert_eq!(s.gets, 1);
        assert_eq!(s.resident_parts, 2);
        assert_eq!(s.resident_bytes, 150);
        assert_eq!(s.evictions, 0);
        assert_eq!(s.bytes_background, 0);
    }

    #[test]
    fn throttled_worker_takes_time() {
        let h = spawn_worker(0, 10e6, StragglerModel::none(), 1);
        put(&h, PartKey::new(1, 0), &[0u8; 1_000_000]);
        let t0 = std::time::Instant::now();
        let _ = get(&h, PartKey::new(1, 0)).unwrap();
        let dt = t0.elapsed().as_secs_f64();
        assert!(dt >= 0.08, "1 MB at 10 MB/s should take ~0.1s, took {dt}");
    }

    #[test]
    fn shutdown_is_acknowledged_and_joins_cleanly() {
        let mut h = spawn_worker(0, f64::INFINITY, StragglerModel::none(), 1);
        put(&h, PartKey::new(1, 0), b"x");
        let (tx, rx) = bounded(1);
        h.sender()
            .send(Envelope {
                req: Request::Shutdown,
                reply: tx,
            })
            .unwrap();
        assert_eq!(rx.recv().unwrap(), Reply::Done, "shutdown is acked");
        h.shutdown(); // idempotent: channel already closed
        let (tx, rx) = bounded(1);
        let send = h.sender().send(Envelope {
            req: Request::Get {
                key: PartKey::new(1, 0),
            },
            reply: tx,
        });
        assert!(send.is_err() || rx.recv().is_err());
    }

    #[test]
    fn second_queued_shutdown_disconnects_instead_of_hanging() {
        // The double-shutdown race: a server front end forwards a
        // Shutdown and, once acked, calls `WorkerHandle::shutdown`,
        // which queues a *second* Shutdown envelope. The worker loop
        // breaks on the first without serving the second — the queued
        // envelope (and the reply sender inside it) must be destroyed
        // with the worker's receiver so the second waiter observes a
        // disconnect, never an indefinite block.
        let h = spawn_worker(0, f64::INFINITY, StragglerModel::none(), 1);
        let (tx1, rx1) = bounded(1);
        let (tx2, rx2) = bounded(1);
        h.sender()
            .send(Envelope { req: Request::Shutdown, reply: tx1 })
            .unwrap();
        // The worker may already have served the first Shutdown and
        // dropped its receiver — then this send fails outright, which is
        // the same observable: the second waiter is told "disconnected"
        // instead of blocking forever.
        let second = h.sender().send(Envelope { req: Request::Shutdown, reply: tx2 });
        assert_eq!(rx1.recv_timeout(Duration::from_secs(5)).unwrap(), Reply::Done);
        if second.is_ok() {
            assert!(
                matches!(
                    rx2.recv_timeout(Duration::from_secs(5)),
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected)
                ),
                "unserved shutdown must disconnect, not hang"
            );
        }
    }

    #[test]
    fn shutdown_drains_queued_requests_first() {
        // Requests enqueued before the shutdown envelope are all served
        // (FIFO drain) — nothing in flight is lost.
        let h = spawn_worker(0, f64::INFINITY, StragglerModel::none(), 1);
        let mut gets = Vec::new();
        put(&h, PartKey::new(1, 0), b"drain");
        for _ in 0..16 {
            let (tx, rx) = bounded(1);
            h.sender()
                .send(Envelope {
                    req: Request::Get {
                        key: PartKey::new(1, 0),
                    },
                    reply: tx,
                })
                .unwrap();
            gets.push(rx);
        }
        let (tx, rx) = bounded(1);
        h.sender()
            .send(Envelope {
                req: Request::Shutdown,
                reply: tx,
            })
            .unwrap();
        for g in gets {
            assert_eq!(g.recv().unwrap().bytes().unwrap().as_ref(), b"drain");
        }
        assert_eq!(rx.recv().unwrap(), Reply::Done);
    }

    #[test]
    fn wire_faults_degrade_to_lost_or_delayed_replies_in_process() {
        use crate::fault::FaultPlan;
        let plan = FaultPlan::none()
            .drop_connection(0, 1)
            .delay_frame(0, 2, Duration::from_millis(60));
        let log = Arc::new(FaultLog::new());
        let h = spawn_worker_with_faults(
            0,
            f64::INFINITY,
            StragglerModel::none(),
            1,
            plan.script_for(0),
            Arc::clone(&log),
        );
        put(&h, PartKey::new(1, 0), b"w"); // op 0
        // Op 1: DropConnection ≈ lost reply → receiver disconnects.
        let (tx, rx) = bounded(1);
        h.sender()
            .send(Envelope {
                req: Request::Get {
                    key: PartKey::new(1, 0),
                },
                reply: tx,
            })
            .unwrap();
        assert!(rx.recv().is_err(), "reply should be lost");
        // Op 2: DelayFrame stalls the reply ~60 ms but it does arrive.
        let t0 = std::time::Instant::now();
        assert_eq!(get(&h, PartKey::new(1, 0)).unwrap().as_ref(), b"w");
        assert!(t0.elapsed() >= Duration::from_millis(50));
        // The log carries the original wire actions.
        let snap = log.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].action, FaultAction::DropConnection);
        assert_eq!(snap[1].action, FaultAction::DelayFrame(Duration::from_millis(60)));
    }

    #[test]
    fn epoch_fencing_bounces_mismatched_stamps() {
        let h = spawn_worker(3, f64::INFINITY, StragglerModel::none(), 1);
        // Unregistered worker reports epoch 0 and serves unfenced traffic.
        assert_eq!(call(&h, Request::Ping).pong_epoch().unwrap(), (3, 0));
        put(&h, PartKey::new(1, 0), b"pre");
        // Fenced request against epoch-0 worker bounces.
        let fenced = Request::Get {
            key: PartKey::new(1, 0),
        }
        .fenced(5);
        assert_eq!(
            call(&h, fenced).bytes(),
            Err(StoreError::StaleEpoch(3))
        );
        // Adopt the worker at epoch 5: the same fenced request now serves.
        assert_eq!(call(&h, Request::SetEpoch(5)), Reply::Done);
        assert_eq!(call(&h, Request::Ping).pong_epoch().unwrap(), (3, 5));
        let fenced = Request::Get {
            key: PartKey::new(1, 0),
        }
        .fenced(5);
        assert_eq!(call(&h, fenced).bytes().unwrap().as_ref(), b"pre");
        // A stale stamp (pre-death epoch) is rejected after re-adoption.
        assert_eq!(call(&h, Request::SetEpoch(6)), Reply::Done);
        let stale = Request::Get {
            key: PartKey::new(1, 0),
        }
        .fenced(5);
        assert_eq!(call(&h, stale).bytes(), Err(StoreError::StaleEpoch(3)));
    }

    #[test]
    fn master_epoch_watermark_fences_deposed_masters() {
        let h = spawn_worker(2, f64::INFINITY, StragglerModel::none(), 1);
        assert_eq!(call(&h, Request::SetEpoch(1)), Reply::Done);
        put(&h, PartKey::new(1, 0), b"v");
        let get = || Request::Get { key: PartKey::new(1, 0) };
        // Master 1 announces itself; its stamped traffic serves.
        assert_eq!(call(&h, Request::SetMasterEpoch(1)), Reply::Done);
        assert_eq!(
            call(&h, get().fenced_master(1, 1)).bytes().unwrap().as_ref(),
            b"v"
        );
        // Unstamped (master 0) traffic from plain clients still serves.
        assert_eq!(call(&h, get().fenced(1)).bytes().unwrap().as_ref(), b"v");
        // A takeover announcement raises the watermark...
        assert_eq!(call(&h, Request::SetMasterEpoch(3)), Reply::Done);
        // ...the deposed master's stamps bounce forever...
        assert_eq!(
            call(&h, get().fenced_master(1, 1)).bytes(),
            Err(StoreError::StaleEpoch(2))
        );
        // ...and so does its re-announcement (this is what makes a
        // stale master's re-adopt attempt self-fence).
        assert_eq!(
            call(&h, Request::SetMasterEpoch(1)),
            Reply::Err(StoreError::StaleEpoch(2))
        );
        // The new master's stamps serve; a yet-higher stamp raises the
        // watermark from the traffic itself.
        assert_eq!(
            call(&h, get().fenced_master(1, 3)).bytes().unwrap().as_ref(),
            b"v"
        );
        assert_eq!(
            call(&h, get().fenced_master(1, 4)).bytes().unwrap().as_ref(),
            b"v"
        );
        assert_eq!(
            call(&h, get().fenced_master(1, 3)).bytes(),
            Err(StoreError::StaleEpoch(2))
        );
    }

    #[test]
    fn crash_restart_clears_cache_and_resets_epoch() {
        use crate::fault::FaultPlan;
        let plan = FaultPlan::none().crash_restart(0, 2);
        let log = Arc::new(FaultLog::new());
        let h = spawn_worker_with_faults(
            0,
            f64::INFINITY,
            StragglerModel::none(),
            1,
            plan.script_for(0),
            Arc::clone(&log),
        );
        assert_eq!(call(&h, Request::SetEpoch(4)), Reply::Done);
        put(&h, PartKey::new(1, 0), b"gone"); // op 0
        put(&h, PartKey::new(1, 1), b"gone"); // op 1
        // Op 2 fires CrashRestart before serving: cache wiped, epoch 0,
        // and the request that triggered it is served on the cold cache.
        assert_eq!(
            get(&h, PartKey::new(1, 0)),
            Err(StoreError::NotFound(PartKey::new(1, 0)))
        );
        assert_eq!(call(&h, Request::Ping).pong_epoch().unwrap(), (0, 0));
        // Fenced traffic bounces until a new SetEpoch adopts it.
        let fenced = Request::Get {
            key: PartKey::new(1, 1),
        }
        .fenced(4);
        assert_eq!(call(&h, fenced).bytes(), Err(StoreError::StaleEpoch(0)));
        let snap = log.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].action, FaultAction::CrashRestart);
        assert_eq!(snap[0].op, 2);
    }

    #[test]
    fn dropped_heartbeat_times_out_without_disconnecting() {
        use crate::fault::FaultPlan;
        let plan = FaultPlan::none().drop_heartbeat(0, 1).stale_epoch(0, 0);
        let log = Arc::new(FaultLog::new());
        let h = spawn_worker_with_scripts(
            0,
            f64::INFINITY,
            StragglerModel::none(),
            1,
            plan.data_script_for(0),
            plan.heartbeat_script_for(0),
            Arc::clone(&log),
        );
        // Ping 0 answers normally.
        assert_eq!(call(&h, Request::Ping).pong_epoch().unwrap(), (0, 0));
        // Ping 1 is swallowed: the probe *times out* (sender stays alive
        // → no disconnect), modelling a lost heartbeat, not a death.
        let (tx, rx) = bounded(1);
        h.sender()
            .send(Envelope {
                req: Request::Ping,
                reply: tx,
            })
            .unwrap();
        assert!(
            rx.recv_timeout(Duration::from_millis(40)).is_err(),
            "swallowed ping must not be answered"
        );
        // Ping 2 answers again — the worker is alive throughout.
        assert_eq!(call(&h, Request::Ping).pong_epoch().unwrap(), (0, 0));
        // Data op 0 bounces with StaleEpochDelivery; the ping counter
        // and op counter are independent streams.
        assert_eq!(
            get(&h, PartKey::new(9, 9)),
            Err(StoreError::StaleEpoch(0))
        );
        let snap = log.snapshot();
        assert_eq!(snap.len(), 2);
        assert!(snap
            .iter()
            .any(|r| r.action == FaultAction::DropHeartbeat && r.op == 1));
        assert!(snap
            .iter()
            .any(|r| r.action == FaultAction::StaleEpochDelivery && r.op == 0));
    }

    fn budgeted(budget: usize) -> WorkerHandle {
        spawn_worker_opts(
            WorkerOptions::new(0, f64::INFINITY, StragglerModel::none(), 1)
                .with_memory_budget(Some(budget)),
        )
    }

    #[test]
    fn budget_evicts_cold_partitions_and_reads_reload_them() {
        let h = budgeted(100);
        put(&h, PartKey::new(1, 0), &[1u8; 50]);
        put(&h, PartKey::new(1, 1), &[2u8; 50]);
        // Third partition overflows the budget: the coldest (1,0) spills.
        put(&h, PartKey::new(1, 2), &[3u8; 50]);
        let s = h.stats().unwrap();
        assert_eq!(s.resident_parts, 2);
        assert!(s.resident_bytes <= 100, "over budget: {}", s.resident_bytes);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.spilled_bytes, 50);
        // Eviction is a performance event, not a correctness event: the
        // evicted partition reads back byte-identical via reload...
        assert_eq!(get(&h, PartKey::new(1, 0)).unwrap().as_ref(), &[1u8; 50]);
        let s = h.stats().unwrap();
        assert_eq!(s.reloaded_bytes, 50);
        // ...and the reload cascaded an eviction to stay under budget.
        assert!(s.resident_bytes <= 100);
        assert_eq!(s.evictions, 2);
    }

    #[test]
    fn evicting_a_clean_reloaded_partition_writes_nothing_back() {
        let h = budgeted(100);
        put(&h, PartKey::new(1, 0), &[1u8; 50]);
        put(&h, PartKey::new(1, 1), &[2u8; 50]);
        put(&h, PartKey::new(1, 2), &[3u8; 50]); // evicts (1,0) → spill
        assert_eq!(get(&h, PartKey::new(1, 0)).unwrap().as_ref(), &[1u8; 50]);
        let spilled_after_reload = h.stats().unwrap().spilled_bytes;
        // (1,0) is back, clean, and its spill copy still valid. Fill the
        // budget until (1,0) falls out again: no second writeback — the
        // bytes are already in the spill tier.
        put(&h, PartKey::new(1, 3), &[4u8; 50]);
        put(&h, PartKey::new(1, 4), &[5u8; 50]);
        let s = h.stats().unwrap();
        assert_eq!(
            s.spilled_bytes,
            spilled_after_reload + 50,
            "only the never-spilled victim pays a writeback; the clean \
             reload drops free"
        );
        // And the free-dropped partition still reads back byte-exact.
        assert_eq!(get(&h, PartKey::new(1, 0)).unwrap().as_ref(), &[1u8; 50]);
        // A fresh Put invalidates the clean flag: its next eviction
        // must write back again.
        put(&h, PartKey::new(1, 0), &[9u8; 50]);
        let base = h.stats().unwrap().spilled_bytes;
        put(&h, PartKey::new(1, 5), &[6u8; 50]);
        put(&h, PartKey::new(1, 6), &[7u8; 50]);
        let s = h.stats().unwrap();
        assert!(
            s.spilled_bytes > base,
            "overwritten partition lost its clean flag and must spill"
        );
        assert_eq!(get(&h, PartKey::new(1, 0)).unwrap().as_ref(), &[9u8; 50]);
    }

    #[test]
    fn eviction_is_a_free_drop_under_a_whole_file_checkpoint() {
        let under = Arc::new(UnderStore::new());
        under.persist(1, Bytes::copy_from_slice(&[9u8; 100]));
        let h = spawn_worker_opts(
            WorkerOptions::new(0, f64::INFINITY, StragglerModel::none(), 1)
                .with_memory_budget(Some(100))
                .with_spill(Arc::clone(&under)),
        );
        put(&h, PartKey::new(1, 0), &[1u8; 60]);
        put(&h, PartKey::new(1, 1), &[2u8; 60]);
        let s = h.stats().unwrap();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.spilled_bytes, 0, "checkpointed file spills nothing");
        assert_eq!(under.spilled(), (0, 0));
        // The dropped partition is gone from this worker — the client's
        // heal path recovers it from the checkpoint.
        assert_eq!(
            get(&h, PartKey::new(1, 0)),
            Err(StoreError::NotFound(PartKey::new(1, 0)))
        );
    }

    #[test]
    fn oversized_partition_spills_straight_through_and_still_reads() {
        let h = budgeted(10);
        put(&h, PartKey::new(1, 0), &[7u8; 100]);
        let s = h.stats().unwrap();
        assert_eq!(s.resident_parts, 0);
        assert_eq!(s.spilled_bytes, 100);
        assert_eq!(get(&h, PartKey::new(1, 0)).unwrap().as_ref(), &[7u8; 100]);
    }

    #[test]
    fn rename_and_delete_follow_spilled_partitions() {
        let h = budgeted(100);
        let staged = PartKey::new(1, 0).staged();
        put(&h, staged, &[1u8; 60]);
        // Evict the staged partition before its commit arrives.
        put(&h, PartKey::new(2, 0), &[2u8; 60]);
        assert_eq!(h.stats().unwrap().evictions, 1);
        // Commit still lands: the rename chases the spill tier.
        assert!(call(
            &h,
            Request::Rename {
                from: staged,
                to: PartKey::new(1, 0)
            }
        )
        .flag()
        .unwrap());
        assert_eq!(get(&h, PartKey::new(1, 0)).unwrap().as_ref(), &[1u8; 60]);
        // Delete reaches spilled copies too.
        put(&h, PartKey::new(3, 0), &[3u8; 90]); // evict (1,0) again
        assert!(call(&h, Request::Delete { key: PartKey::new(1, 0) })
            .flag()
            .unwrap());
        assert!(get(&h, PartKey::new(1, 0)).is_err());
    }

    #[test]
    fn background_requests_pay_the_background_bucket() {
        let h = spawn_worker_opts(
            WorkerOptions::new(0, 10e6, StragglerModel::none(), 1)
                .with_background_fraction(0.25),
        );
        call(
            &h,
            Request::Put {
                key: PartKey::new(1, 0),
                data: Bytes::from(vec![0u8; 1_000_000]),
                sum: 0,
            }
            .background(),
        )
        .unit()
        .unwrap();
        // 1 MB of background at 25% of 10 MB/s ≈ 400 ms.
        let t0 = std::time::Instant::now();
        let got = call(&h, Request::Get { key: PartKey::new(1, 0) }.background())
            .bytes()
            .unwrap();
        assert_eq!(got.len(), 1_000_000);
        assert!(t0.elapsed().as_secs_f64() >= 0.35);
        let s = h.stats().unwrap();
        assert_eq!(s.bytes_background, 2_000_000);
    }

    #[test]
    fn transfer_cap_refuses_instead_of_outliving_the_deadline() {
        let h = spawn_worker_opts(
            WorkerOptions::new(4, 1e6, StragglerModel::none(), 1)
                .with_max_transfer_wait(Some(Duration::from_millis(50))),
        );
        // A 1 MB put at 1 MB/s projects a ~1 s wait: refused promptly.
        let t0 = std::time::Instant::now();
        let reply = call(
            &h,
            Request::Put {
                key: PartKey::new(1, 0),
                data: Bytes::from(vec![0u8; 1_000_000]),
                sum: 0,
            },
        );
        assert_eq!(reply, Reply::Err(StoreError::Timeout(4)));
        assert!(
            t0.elapsed() < Duration::from_millis(200),
            "refusal must not sleep out the transfer"
        );
        // The refused bytes were never stored or charged: small
        // transfers still flow.
        put(&h, PartKey::new(1, 1), &[0u8; 10_000]);
        assert_eq!(get(&h, PartKey::new(1, 1)).unwrap().len(), 10_000);
    }

    #[test]
    fn verified_get_converts_a_bitflip_into_an_erasure() {
        use crate::fault::{CorruptSite, FaultPlan};
        let key = PartKey::new(7, 0);
        let plan = FaultPlan::none().corrupt(0, 1, key, CorruptSite::Resident, 3);
        let log = Arc::new(FaultLog::new());
        let h = spawn_worker_opts(
            WorkerOptions::new(0, f64::INFINITY, StragglerModel::none(), 1)
                .with_scripts(plan.script_for(0), WorkerScript::empty(), Arc::clone(&log))
                .with_verify_reads(true),
        );
        let truth = [5u8; 256];
        put_summed(&h, key, &truth); // op 0
        // Op 1 flips a resident byte before serving: the read must come
        // back as a typed erasure, never as wrong bytes.
        assert_eq!(get(&h, key), Err(StoreError::Corrupt(key)));
        // Every local copy was dropped with the detection, and the key
        // keeps reading as a typed erasure (not NotFound) until fresh
        // bytes re-land — readers racing the repair still see Corrupt.
        assert_eq!(get(&h, key), Err(StoreError::Corrupt(key)));
        let s = h.stats().unwrap();
        assert_eq!(s.corruptions_detected, 1);
        assert_eq!(s.decode_reconstructions, 0);
        // A reconstruction re-landing on the erased key counts, and the
        // key serves clean again.
        put_summed(&h, key, &truth);
        assert_eq!(get(&h, key).unwrap().as_ref(), &truth[..]);
        let s = h.stats().unwrap();
        assert_eq!(s.decode_reconstructions, 1);
        assert_eq!(s.corruptions_detected, 1);
    }

    #[test]
    fn spill_reload_verifies_even_without_verify_reads() {
        use crate::fault::{CorruptSite, FaultPlan};
        // The reload path must never trust under-store bytes
        // unconditionally — verification there is NOT gated on the
        // verify_reads knob.
        let key = PartKey::new(1, 0);
        let plan = FaultPlan::none().corrupt(0, 3, key, CorruptSite::Spill, 10);
        let log = Arc::new(FaultLog::new());
        let h = spawn_worker_opts(
            WorkerOptions::new(0, f64::INFINITY, StragglerModel::none(), 1)
                .with_scripts(plan.script_for(0), WorkerScript::empty(), Arc::clone(&log))
                .with_memory_budget(Some(100)),
        );
        put_summed(&h, key, &[1u8; 50]); // op 0
        put_summed(&h, PartKey::new(1, 1), &[2u8; 50]); // op 1
        put_summed(&h, PartKey::new(1, 2), &[3u8; 50]); // op 2: evicts key
        assert_eq!(h.stats().unwrap().evictions, 1);
        // Op 3 rots the spilled copy, then the read reloads it: the
        // mismatch erases the partition instead of re-admitting it.
        assert_eq!(get(&h, key), Err(StoreError::Corrupt(key)));
        let s = h.stats().unwrap();
        assert_eq!(s.corruptions_detected, 1);
        // The erasure mark outlives the dropped copies.
        assert_eq!(get(&h, key), Err(StoreError::Corrupt(key)));
    }

    #[test]
    fn wire_corruption_flips_the_reply_copy_not_the_store() {
        use crate::fault::{CorruptSite, FaultPlan};
        let key = PartKey::new(2, 0);
        let plan = FaultPlan::none().corrupt(0, 1, key, CorruptSite::Wire, 4);
        let log = Arc::new(FaultLog::new());
        let h = spawn_worker_opts(
            WorkerOptions::new(0, f64::INFINITY, StragglerModel::none(), 1)
                .with_scripts(plan.script_for(0), WorkerScript::empty(), Arc::clone(&log))
                .with_verify_reads(true),
        );
        let truth = [9u8; 64];
        put_summed(&h, key, &truth); // op 0
        // Op 1: the worker's own verification passes (the store is
        // clean), but the reply leaves with byte 4 inverted — only the
        // client-side checksum can catch this flavour.
        let got = get(&h, key).unwrap();
        let mut expect = truth;
        expect[4] ^= 0xFF;
        assert_eq!(got.as_ref(), &expect[..]);
        // The stored bytes were never touched: the next read is clean
        // and nothing was counted as a local detection.
        assert_eq!(get(&h, key).unwrap().as_ref(), &truth[..]);
        assert_eq!(h.stats().unwrap().corruptions_detected, 0);
    }

    #[test]
    fn parity_puts_count_parity_bytes_and_serve_via_get_parity() {
        let h = spawn_worker(0, f64::INFINITY, StragglerModel::none(), 1);
        let pkey = PartKey::parity(3, 0);
        put_summed(&h, pkey, &[8u8; 200]);
        put_summed(&h, PartKey::new(3, 0), &[1u8; 100]);
        let s = h.stats().unwrap();
        assert_eq!(s.parity_bytes, 200, "only the parity put counts");
        assert_eq!(s.bytes_stored, 300);
        let got = call(&h, Request::GetParity { key: pkey }).bytes().unwrap();
        assert_eq!(got.as_ref(), &[8u8; 200]);
    }

    #[test]
    fn unverified_puts_clear_a_stale_checksum() {
        use crate::fault::{CorruptSite, FaultPlan};
        // A maintenance rewrite (sum: 0) over a partition that carried a
        // checksum must drop the old sum — otherwise the fresh bytes
        // would fail verification against the stale one.
        let key = PartKey::new(4, 0);
        let plan = FaultPlan::none().corrupt(0, 2, key, CorruptSite::Resident, 0);
        let log = Arc::new(FaultLog::new());
        let h = spawn_worker_opts(
            WorkerOptions::new(0, f64::INFINITY, StragglerModel::none(), 1)
                .with_scripts(plan.script_for(0), WorkerScript::empty(), Arc::clone(&log))
                .with_verify_reads(true),
        );
        put_summed(&h, key, b"checksummed"); // op 0
        put(&h, key, b"maintenance rewrite"); // op 1: sum 0 clears it
        // Op 2 corrupts the resident copy, but with no checksum on file
        // the worker cannot tell — unverified partitions pass through.
        let got = get(&h, key).unwrap();
        assert_ne!(got.as_ref(), b"maintenance rewrite");
        assert_eq!(h.stats().unwrap().corruptions_detected, 0);
    }
}

//! The worker (cache server) thread.
//!
//! A worker owns its partition map and serves pure-data [`Request`]s
//! arriving as [`Envelope`]s, computing one [`Reply`] per request and
//! sending it through the envelope's one-shot channel. The same serve
//! loop backs both transports: the in-process [`crate::transport::ChannelTransport`]
//! feeds it directly, and `spcache-net`'s TCP server forwards decoded
//! frames into it one at a time.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender};
use rand::SeedableRng;
use spcache_sim::Xoshiro256StarStar;
use spcache_workload::StragglerModel;

use crate::fault::{FaultAction, FaultLog, WorkerScript};
use crate::rpc::{Envelope, PartKey, Reply, Request, StoreError, WorkerStats};
use crate::throttle::TokenBucket;

/// A handle to a running worker thread: its request channel and join
/// handle.
#[derive(Debug)]
pub struct WorkerHandle {
    /// Worker index within the cluster.
    pub id: usize,
    sender: Sender<Envelope>,
    join: Option<JoinHandle<()>>,
}

impl WorkerHandle {
    /// The worker's request channel.
    pub fn sender(&self) -> &Sender<Envelope> {
        &self.sender
    }

    /// Synchronously fetches this worker's service counters.
    pub fn stats(&self) -> Result<WorkerStats, StoreError> {
        let (tx, rx) = bounded(1);
        self.sender
            .send(Envelope {
                req: Request::Stats,
                reply: tx,
            })
            .map_err(|_| StoreError::WorkerDown(self.id))?;
        rx.recv()
            .map_err(|_| StoreError::WorkerDown(self.id))?
            .stats()
    }

    /// Requests shutdown and joins the thread. The worker drains its
    /// queue up to the shutdown request (FIFO), acknowledges, and exits.
    pub fn shutdown(&mut self) {
        let (tx, rx) = bounded(1);
        if self
            .sender
            .send(Envelope {
                req: Request::Shutdown,
                reply: tx,
            })
            .is_ok()
        {
            let _ = rx.recv();
        }
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Spawns a worker thread with the given NIC bandwidth and straggler
/// model; returns its handle.
pub fn spawn_worker(
    id: usize,
    bandwidth: f64,
    stragglers: StragglerModel,
    seed: u64,
) -> WorkerHandle {
    spawn_worker_with_faults(
        id,
        bandwidth,
        stragglers,
        seed,
        WorkerScript::empty(),
        Arc::new(FaultLog::new()),
    )
}

/// Spawns a worker that consults `script` before serving each data-path
/// request, recording fired faults into the shared `log`
/// (see [`crate::fault`]).
pub fn spawn_worker_with_faults(
    id: usize,
    bandwidth: f64,
    stragglers: StragglerModel,
    seed: u64,
    script: WorkerScript,
    log: Arc<FaultLog>,
) -> WorkerHandle {
    spawn_worker_with_scripts(
        id,
        bandwidth,
        stragglers,
        seed,
        script,
        WorkerScript::empty(),
        log,
    )
}

/// Spawns a worker with both fault scripts: `script` fires on the
/// data-path op counter, `heartbeat_script` on the ping counter (see
/// [`crate::fault::FaultPlan::heartbeat_script_for`]). The two counters
/// are independent, so supervisor cadence never shifts a scripted data
/// fault and vice versa.
#[allow(clippy::too_many_arguments)]
pub fn spawn_worker_with_scripts(
    id: usize,
    bandwidth: f64,
    stragglers: StragglerModel,
    seed: u64,
    script: WorkerScript,
    heartbeat_script: WorkerScript,
    log: Arc<FaultLog>,
) -> WorkerHandle {
    let (tx, rx) = crossbeam::channel::unbounded();
    let join = std::thread::Builder::new()
        .name(format!("spcache-worker-{id}"))
        .spawn(move || {
            worker_loop(id, rx, bandwidth, stragglers, seed, script, heartbeat_script, log)
        })
        .expect("failed to spawn worker thread");
    WorkerHandle {
        id,
        sender: tx,
        join: Some(join),
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    id: usize,
    rx: Receiver<Envelope>,
    bandwidth: f64,
    stragglers: StragglerModel,
    seed: u64,
    mut script: WorkerScript,
    mut heartbeat_script: WorkerScript,
    log: Arc<FaultLog>,
) {
    let mut store: HashMap<PartKey, Bytes> = HashMap::new();
    let mut nic = TokenBucket::new(bandwidth);
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let mut stats = WorkerStats::default();
    // Data-path op counter: faults trigger on this index. Control
    // requests (Stats, Ping, SetEpoch, Shutdown) do not advance it, so
    // monitoring traffic never shifts a scripted fault.
    let mut op: u64 = 0;
    // Heartbeat (ping) counter — the separate trigger stream for
    // DropHeartbeat faults.
    let mut pings: u64 = 0;
    // The epoch granted by the master at registration. 0 = unregistered:
    // a fresh or crash-restarted worker bounces every fenced request
    // until the supervisor adopts it with `SetEpoch`.
    let mut epoch: u64 = 0;
    // Reply senders of swallowed heartbeats, kept alive so the probing
    // supervisor observes a *timeout* (→ suspicion ladder), not a
    // disconnect (→ immediate death).
    let mut swallowed_pings: Vec<crossbeam::channel::Sender<Reply>> = Vec::new();

    while let Ok(Envelope { req, reply }) = rx.recv() {
        // Control-plane requests bypass fault injection entirely —
        // except Ping, which consults the dedicated heartbeat script.
        match req {
            Request::Stats => {
                stats.resident_parts = store.len();
                let _ = reply.send(Reply::Stats(stats));
                continue;
            }
            Request::Ping => {
                let this_ping = pings;
                pings += 1;
                let mut dropped = false;
                for action in heartbeat_script.fire(this_ping) {
                    log.record(id, this_ping, action.clone());
                    if matches!(action, FaultAction::DropHeartbeat) {
                        dropped = true;
                    }
                }
                if dropped {
                    swallowed_pings.push(reply);
                } else {
                    let _ = reply.send(Reply::Pong { worker: id, epoch });
                }
                continue;
            }
            Request::SetEpoch(e) => {
                epoch = e;
                let _ = reply.send(Reply::Done);
                continue;
            }
            Request::Shutdown => {
                // Graceful drain: everything queued before this envelope
                // has already been served (FIFO). Acknowledge, then exit.
                let _ = reply.send(Reply::Done);
                break;
            }
            _ => {}
        }

        // Consult the fault script for this op. Drops and hangs apply
        // before serving; LoseReply suppresses the reply; Crash kills
        // the worker with the request unanswered (the dropped reply
        // sender disconnects the waiting client). Wire faults have no
        // frames to act on in-process, so they degrade to the nearest
        // channel-visible effect — but the *original* action is logged,
        // keeping seeded fault logs identical across transports.
        let mut lose_reply = false;
        let mut crash = false;
        let mut bounce_stale = false;
        let mut delay = Duration::ZERO;
        for action in script.fire(op) {
            log.record(id, op, action.clone());
            match action {
                FaultAction::Crash => crash = true,
                FaultAction::Hang(pause) => std::thread::sleep(pause),
                FaultAction::DropPartition(key) => {
                    store.remove(&key);
                }
                FaultAction::LoseReply => lose_reply = true,
                // A dropped connection or torn frame never delivers the
                // reply: in-process that is exactly a lost reply.
                FaultAction::DropConnection | FaultAction::TruncateFrame => lose_reply = true,
                FaultAction::DelayFrame(pause) => delay += pause,
                // Fast restart with a cold cache: everything cached is
                // gone and the registration epoch resets; the thread
                // keeps serving as the "restarted process".
                FaultAction::CrashRestart => {
                    store.clear();
                    stats.resident_parts = 0;
                    epoch = 0;
                }
                FaultAction::StaleEpochDelivery => bounce_stale = true,
                // Heartbeat faults never appear in op-indexed scripts
                // (FaultPlan::script_for filters them out).
                FaultAction::DropHeartbeat => {}
            }
        }
        if crash {
            break;
        }
        op += 1;

        // Epoch fencing runs *after* fault injection and the op-counter
        // bump, so a bounced request advances the counter identically on
        // both transports and scripted faults stay aligned.
        let fenced_mismatch = matches!(
            &req,
            Request::Fenced { epoch: stamped, .. } if *stamped != epoch
        );
        let out = if bounce_stale || fenced_mismatch {
            Reply::Err(StoreError::StaleEpoch(id))
        } else {
            let req = match req {
                Request::Fenced { inner, .. } => *inner,
                r => r,
            };
            serve(req, &mut store, &mut stats, &mut nic, &stragglers, &mut rng, bandwidth)
        };
        if delay > Duration::ZERO {
            std::thread::sleep(delay);
        }
        if !lose_reply {
            let _ = reply.send(out);
        }
        // else: the envelope's sender drops unsent — the waiting client
        // observes a disconnect, like a reply lost on the wire.
    }
}

/// Serves one data-path request against the worker's partition map.
fn serve(
    req: Request,
    store: &mut HashMap<PartKey, Bytes>,
    stats: &mut WorkerStats,
    nic: &mut TokenBucket,
    stragglers: &StragglerModel,
    rng: &mut Xoshiro256StarStar,
    bandwidth: f64,
) -> Reply {
    match req {
        Request::Put { key, data } => {
            nic.consume(data.len());
            stats.bytes_stored += data.len() as u64;
            stats.puts += 1;
            store.insert(key, data);
            stats.resident_parts = store.len();
            Reply::Done
        }
        Request::Get { key } => {
            stats.gets += 1;
            match store.get(&key) {
                Some(data) => {
                    // Emulate the transfer, with optional straggling
                    // (the paper injects stragglers by sleeping the
                    // server thread, §4.2).
                    let factor = stragglers.draw_factor(rng);
                    nic.consume(data.len());
                    if factor > 1.0 && bandwidth.is_finite() {
                        let extra = data.len() as f64 / bandwidth * (factor - 1.0);
                        std::thread::sleep(Duration::from_secs_f64(extra));
                    }
                    stats.bytes_served += data.len() as u64;
                    Reply::Data(data.clone())
                }
                None => Reply::Err(StoreError::NotFound(key)),
            }
        }
        Request::GetRange { key, offset, len } => {
            stats.gets += 1;
            match store.get(&key) {
                Some(data) => {
                    let start = (offset as usize).min(data.len());
                    let end = (start + len as usize).min(data.len());
                    let slice = data.slice(start..end);
                    let factor = stragglers.draw_factor(rng);
                    nic.consume(slice.len());
                    if factor > 1.0 && bandwidth.is_finite() {
                        let extra = slice.len() as f64 / bandwidth * (factor - 1.0);
                        std::thread::sleep(Duration::from_secs_f64(extra));
                    }
                    stats.bytes_served += slice.len() as u64;
                    Reply::Data(slice)
                }
                None => Reply::Err(StoreError::NotFound(key)),
            }
        }
        Request::Rename { from, to } => {
            let moved = match store.remove(&from) {
                Some(data) => {
                    store.insert(to, data);
                    true
                }
                None => false,
            };
            stats.resident_parts = store.len();
            Reply::Flag(moved)
        }
        Request::Delete { key } => {
            let removed = store.remove(&key).is_some();
            stats.resident_parts = store.len();
            Reply::Flag(removed)
        }
        // Control requests were handled before fault injection, and
        // Fenced wrappers are unwrapped before serve().
        Request::Stats
        | Request::Ping
        | Request::SetEpoch(_)
        | Request::Shutdown
        | Request::Fenced { .. } => {
            unreachable!("control requests are served before the data path")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(h: &WorkerHandle, req: Request) -> Reply {
        let (tx, rx) = bounded(1);
        h.sender().send(Envelope { req, reply: tx }).unwrap();
        rx.recv().unwrap()
    }

    fn put(h: &WorkerHandle, key: PartKey, data: &[u8]) {
        call(
            h,
            Request::Put {
                key,
                data: Bytes::copy_from_slice(data),
            },
        )
        .unit()
        .unwrap();
    }

    fn get(h: &WorkerHandle, key: PartKey) -> Result<Bytes, StoreError> {
        call(h, Request::Get { key }).bytes()
    }

    #[test]
    fn put_get_roundtrip() {
        let h = spawn_worker(0, f64::INFINITY, StragglerModel::none(), 1);
        put(&h, PartKey::new(1, 0), b"hello");
        assert_eq!(get(&h, PartKey::new(1, 0)).unwrap().as_ref(), b"hello");
    }

    #[test]
    fn get_missing_returns_not_found() {
        let h = spawn_worker(0, f64::INFINITY, StragglerModel::none(), 1);
        assert_eq!(
            get(&h, PartKey::new(9, 9)),
            Err(StoreError::NotFound(PartKey::new(9, 9)))
        );
    }

    #[test]
    fn delete_removes() {
        let h = spawn_worker(0, f64::INFINITY, StragglerModel::none(), 1);
        put(&h, PartKey::new(1, 0), b"x");
        assert!(call(&h, Request::Delete { key: PartKey::new(1, 0) })
            .flag()
            .unwrap());
        assert!(get(&h, PartKey::new(1, 0)).is_err());
    }

    #[test]
    fn stats_track_traffic() {
        let h = spawn_worker(0, f64::INFINITY, StragglerModel::none(), 1);
        put(&h, PartKey::new(1, 0), &[0u8; 100]);
        put(&h, PartKey::new(1, 1), &[0u8; 50]);
        let _ = get(&h, PartKey::new(1, 0));
        let s = h.stats().unwrap();
        assert_eq!(s.bytes_stored, 150);
        assert_eq!(s.bytes_served, 100);
        assert_eq!(s.puts, 2);
        assert_eq!(s.gets, 1);
        assert_eq!(s.resident_parts, 2);
    }

    #[test]
    fn throttled_worker_takes_time() {
        let h = spawn_worker(0, 10e6, StragglerModel::none(), 1);
        put(&h, PartKey::new(1, 0), &[0u8; 1_000_000]);
        let t0 = std::time::Instant::now();
        let _ = get(&h, PartKey::new(1, 0)).unwrap();
        let dt = t0.elapsed().as_secs_f64();
        assert!(dt >= 0.08, "1 MB at 10 MB/s should take ~0.1s, took {dt}");
    }

    #[test]
    fn shutdown_is_acknowledged_and_joins_cleanly() {
        let mut h = spawn_worker(0, f64::INFINITY, StragglerModel::none(), 1);
        put(&h, PartKey::new(1, 0), b"x");
        let (tx, rx) = bounded(1);
        h.sender()
            .send(Envelope {
                req: Request::Shutdown,
                reply: tx,
            })
            .unwrap();
        assert_eq!(rx.recv().unwrap(), Reply::Done, "shutdown is acked");
        h.shutdown(); // idempotent: channel already closed
        let (tx, rx) = bounded(1);
        let send = h.sender().send(Envelope {
            req: Request::Get {
                key: PartKey::new(1, 0),
            },
            reply: tx,
        });
        assert!(send.is_err() || rx.recv().is_err());
    }

    #[test]
    fn second_queued_shutdown_disconnects_instead_of_hanging() {
        // The double-shutdown race: a server front end forwards a
        // Shutdown and, once acked, calls `WorkerHandle::shutdown`,
        // which queues a *second* Shutdown envelope. The worker loop
        // breaks on the first without serving the second — the queued
        // envelope (and the reply sender inside it) must be destroyed
        // with the worker's receiver so the second waiter observes a
        // disconnect, never an indefinite block.
        let h = spawn_worker(0, f64::INFINITY, StragglerModel::none(), 1);
        let (tx1, rx1) = bounded(1);
        let (tx2, rx2) = bounded(1);
        h.sender()
            .send(Envelope { req: Request::Shutdown, reply: tx1 })
            .unwrap();
        // The worker may already have served the first Shutdown and
        // dropped its receiver — then this send fails outright, which is
        // the same observable: the second waiter is told "disconnected"
        // instead of blocking forever.
        let second = h.sender().send(Envelope { req: Request::Shutdown, reply: tx2 });
        assert_eq!(rx1.recv_timeout(Duration::from_secs(5)).unwrap(), Reply::Done);
        if second.is_ok() {
            assert!(
                matches!(
                    rx2.recv_timeout(Duration::from_secs(5)),
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected)
                ),
                "unserved shutdown must disconnect, not hang"
            );
        }
    }

    #[test]
    fn shutdown_drains_queued_requests_first() {
        // Requests enqueued before the shutdown envelope are all served
        // (FIFO drain) — nothing in flight is lost.
        let h = spawn_worker(0, f64::INFINITY, StragglerModel::none(), 1);
        let mut gets = Vec::new();
        put(&h, PartKey::new(1, 0), b"drain");
        for _ in 0..16 {
            let (tx, rx) = bounded(1);
            h.sender()
                .send(Envelope {
                    req: Request::Get {
                        key: PartKey::new(1, 0),
                    },
                    reply: tx,
                })
                .unwrap();
            gets.push(rx);
        }
        let (tx, rx) = bounded(1);
        h.sender()
            .send(Envelope {
                req: Request::Shutdown,
                reply: tx,
            })
            .unwrap();
        for g in gets {
            assert_eq!(g.recv().unwrap().bytes().unwrap().as_ref(), b"drain");
        }
        assert_eq!(rx.recv().unwrap(), Reply::Done);
    }

    #[test]
    fn wire_faults_degrade_to_lost_or_delayed_replies_in_process() {
        use crate::fault::FaultPlan;
        let plan = FaultPlan::none()
            .drop_connection(0, 1)
            .delay_frame(0, 2, Duration::from_millis(60));
        let log = Arc::new(FaultLog::new());
        let h = spawn_worker_with_faults(
            0,
            f64::INFINITY,
            StragglerModel::none(),
            1,
            plan.script_for(0),
            Arc::clone(&log),
        );
        put(&h, PartKey::new(1, 0), b"w"); // op 0
        // Op 1: DropConnection ≈ lost reply → receiver disconnects.
        let (tx, rx) = bounded(1);
        h.sender()
            .send(Envelope {
                req: Request::Get {
                    key: PartKey::new(1, 0),
                },
                reply: tx,
            })
            .unwrap();
        assert!(rx.recv().is_err(), "reply should be lost");
        // Op 2: DelayFrame stalls the reply ~60 ms but it does arrive.
        let t0 = std::time::Instant::now();
        assert_eq!(get(&h, PartKey::new(1, 0)).unwrap().as_ref(), b"w");
        assert!(t0.elapsed() >= Duration::from_millis(50));
        // The log carries the original wire actions.
        let snap = log.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].action, FaultAction::DropConnection);
        assert_eq!(snap[1].action, FaultAction::DelayFrame(Duration::from_millis(60)));
    }

    #[test]
    fn epoch_fencing_bounces_mismatched_stamps() {
        let h = spawn_worker(3, f64::INFINITY, StragglerModel::none(), 1);
        // Unregistered worker reports epoch 0 and serves unfenced traffic.
        assert_eq!(call(&h, Request::Ping).pong_epoch().unwrap(), (3, 0));
        put(&h, PartKey::new(1, 0), b"pre");
        // Fenced request against epoch-0 worker bounces.
        let fenced = Request::Get {
            key: PartKey::new(1, 0),
        }
        .fenced(5);
        assert_eq!(
            call(&h, fenced).bytes(),
            Err(StoreError::StaleEpoch(3))
        );
        // Adopt the worker at epoch 5: the same fenced request now serves.
        assert_eq!(call(&h, Request::SetEpoch(5)), Reply::Done);
        assert_eq!(call(&h, Request::Ping).pong_epoch().unwrap(), (3, 5));
        let fenced = Request::Get {
            key: PartKey::new(1, 0),
        }
        .fenced(5);
        assert_eq!(call(&h, fenced).bytes().unwrap().as_ref(), b"pre");
        // A stale stamp (pre-death epoch) is rejected after re-adoption.
        assert_eq!(call(&h, Request::SetEpoch(6)), Reply::Done);
        let stale = Request::Get {
            key: PartKey::new(1, 0),
        }
        .fenced(5);
        assert_eq!(call(&h, stale).bytes(), Err(StoreError::StaleEpoch(3)));
    }

    #[test]
    fn crash_restart_clears_cache_and_resets_epoch() {
        use crate::fault::FaultPlan;
        let plan = FaultPlan::none().crash_restart(0, 2);
        let log = Arc::new(FaultLog::new());
        let h = spawn_worker_with_faults(
            0,
            f64::INFINITY,
            StragglerModel::none(),
            1,
            plan.script_for(0),
            Arc::clone(&log),
        );
        assert_eq!(call(&h, Request::SetEpoch(4)), Reply::Done);
        put(&h, PartKey::new(1, 0), b"gone"); // op 0
        put(&h, PartKey::new(1, 1), b"gone"); // op 1
        // Op 2 fires CrashRestart before serving: cache wiped, epoch 0,
        // and the request that triggered it is served on the cold cache.
        assert_eq!(
            get(&h, PartKey::new(1, 0)),
            Err(StoreError::NotFound(PartKey::new(1, 0)))
        );
        assert_eq!(call(&h, Request::Ping).pong_epoch().unwrap(), (0, 0));
        // Fenced traffic bounces until a new SetEpoch adopts it.
        let fenced = Request::Get {
            key: PartKey::new(1, 1),
        }
        .fenced(4);
        assert_eq!(call(&h, fenced).bytes(), Err(StoreError::StaleEpoch(0)));
        let snap = log.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].action, FaultAction::CrashRestart);
        assert_eq!(snap[0].op, 2);
    }

    #[test]
    fn dropped_heartbeat_times_out_without_disconnecting() {
        use crate::fault::FaultPlan;
        let plan = FaultPlan::none().drop_heartbeat(0, 1).stale_epoch(0, 0);
        let log = Arc::new(FaultLog::new());
        let h = spawn_worker_with_scripts(
            0,
            f64::INFINITY,
            StragglerModel::none(),
            1,
            plan.data_script_for(0),
            plan.heartbeat_script_for(0),
            Arc::clone(&log),
        );
        // Ping 0 answers normally.
        assert_eq!(call(&h, Request::Ping).pong_epoch().unwrap(), (0, 0));
        // Ping 1 is swallowed: the probe *times out* (sender stays alive
        // → no disconnect), modelling a lost heartbeat, not a death.
        let (tx, rx) = bounded(1);
        h.sender()
            .send(Envelope {
                req: Request::Ping,
                reply: tx,
            })
            .unwrap();
        assert!(
            rx.recv_timeout(Duration::from_millis(40)).is_err(),
            "swallowed ping must not be answered"
        );
        // Ping 2 answers again — the worker is alive throughout.
        assert_eq!(call(&h, Request::Ping).pong_epoch().unwrap(), (0, 0));
        // Data op 0 bounces with StaleEpochDelivery; the ping counter
        // and op counter are independent streams.
        assert_eq!(
            get(&h, PartKey::new(9, 9)),
            Err(StoreError::StaleEpoch(0))
        );
        let snap = log.snapshot();
        assert_eq!(snap.len(), 2);
        assert!(snap
            .iter()
            .any(|r| r.action == FaultAction::DropHeartbeat && r.op == 1));
        assert!(snap
            .iter()
            .any(|r| r.action == FaultAction::StaleEpochDelivery && r.op == 0));
    }
}

//! The worker (cache server) thread.
//!
//! A worker owns its partition map and serves pure-data [`Request`]s
//! arriving as [`Envelope`]s, computing one [`Reply`] per request and
//! sending it through the envelope's one-shot channel. The same serve
//! loop backs both transports: the in-process [`crate::transport::ChannelTransport`]
//! feeds it directly, and `spcache-net`'s TCP server forwards decoded
//! frames into it one at a time.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender};
use rand::SeedableRng;
use spcache_sim::Xoshiro256StarStar;
use spcache_workload::StragglerModel;

use crate::fault::{FaultAction, FaultLog, WorkerScript};
use crate::rpc::{Envelope, PartKey, Reply, Request, StoreError, WorkerStats};
use crate::throttle::TokenBucket;

/// A handle to a running worker thread: its request channel and join
/// handle.
#[derive(Debug)]
pub struct WorkerHandle {
    /// Worker index within the cluster.
    pub id: usize,
    sender: Sender<Envelope>,
    join: Option<JoinHandle<()>>,
}

impl WorkerHandle {
    /// The worker's request channel.
    pub fn sender(&self) -> &Sender<Envelope> {
        &self.sender
    }

    /// Synchronously fetches this worker's service counters.
    pub fn stats(&self) -> Result<WorkerStats, StoreError> {
        let (tx, rx) = bounded(1);
        self.sender
            .send(Envelope {
                req: Request::Stats,
                reply: tx,
            })
            .map_err(|_| StoreError::WorkerDown(self.id))?;
        rx.recv()
            .map_err(|_| StoreError::WorkerDown(self.id))?
            .stats()
    }

    /// Requests shutdown and joins the thread. The worker drains its
    /// queue up to the shutdown request (FIFO), acknowledges, and exits.
    pub fn shutdown(&mut self) {
        let (tx, rx) = bounded(1);
        if self
            .sender
            .send(Envelope {
                req: Request::Shutdown,
                reply: tx,
            })
            .is_ok()
        {
            let _ = rx.recv();
        }
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Spawns a worker thread with the given NIC bandwidth and straggler
/// model; returns its handle.
pub fn spawn_worker(
    id: usize,
    bandwidth: f64,
    stragglers: StragglerModel,
    seed: u64,
) -> WorkerHandle {
    spawn_worker_with_faults(
        id,
        bandwidth,
        stragglers,
        seed,
        WorkerScript::empty(),
        Arc::new(FaultLog::new()),
    )
}

/// Spawns a worker that consults `script` before serving each data-path
/// request, recording fired faults into the shared `log`
/// (see [`crate::fault`]).
pub fn spawn_worker_with_faults(
    id: usize,
    bandwidth: f64,
    stragglers: StragglerModel,
    seed: u64,
    script: WorkerScript,
    log: Arc<FaultLog>,
) -> WorkerHandle {
    let (tx, rx) = crossbeam::channel::unbounded();
    let join = std::thread::Builder::new()
        .name(format!("spcache-worker-{id}"))
        .spawn(move || worker_loop(id, rx, bandwidth, stragglers, seed, script, log))
        .expect("failed to spawn worker thread");
    WorkerHandle {
        id,
        sender: tx,
        join: Some(join),
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    id: usize,
    rx: Receiver<Envelope>,
    bandwidth: f64,
    stragglers: StragglerModel,
    seed: u64,
    mut script: WorkerScript,
    log: Arc<FaultLog>,
) {
    let mut store: HashMap<PartKey, Bytes> = HashMap::new();
    let mut nic = TokenBucket::new(bandwidth);
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let mut stats = WorkerStats::default();
    // Data-path op counter: faults trigger on this index. Control
    // requests (Stats, Ping, Shutdown) do not advance it, so monitoring
    // traffic never shifts a scripted fault.
    let mut op: u64 = 0;

    while let Ok(Envelope { req, reply }) = rx.recv() {
        // Control-plane requests bypass fault injection entirely.
        match req {
            Request::Stats => {
                stats.resident_parts = store.len();
                let _ = reply.send(Reply::Stats(stats));
                continue;
            }
            Request::Ping => {
                let _ = reply.send(Reply::Pong(id));
                continue;
            }
            Request::Shutdown => {
                // Graceful drain: everything queued before this envelope
                // has already been served (FIFO). Acknowledge, then exit.
                let _ = reply.send(Reply::Done);
                break;
            }
            _ => {}
        }

        // Consult the fault script for this op. Drops and hangs apply
        // before serving; LoseReply suppresses the reply; Crash kills
        // the worker with the request unanswered (the dropped reply
        // sender disconnects the waiting client). Wire faults have no
        // frames to act on in-process, so they degrade to the nearest
        // channel-visible effect — but the *original* action is logged,
        // keeping seeded fault logs identical across transports.
        let mut lose_reply = false;
        let mut crash = false;
        let mut delay = Duration::ZERO;
        for action in script.fire(op) {
            log.record(id, op, action.clone());
            match action {
                FaultAction::Crash => crash = true,
                FaultAction::Hang(pause) => std::thread::sleep(pause),
                FaultAction::DropPartition(key) => {
                    store.remove(&key);
                }
                FaultAction::LoseReply => lose_reply = true,
                // A dropped connection or torn frame never delivers the
                // reply: in-process that is exactly a lost reply.
                FaultAction::DropConnection | FaultAction::TruncateFrame => lose_reply = true,
                FaultAction::DelayFrame(pause) => delay += pause,
            }
        }
        if crash {
            break;
        }
        op += 1;

        let out = serve(req, &mut store, &mut stats, &mut nic, &stragglers, &mut rng, bandwidth);
        if delay > Duration::ZERO {
            std::thread::sleep(delay);
        }
        if !lose_reply {
            let _ = reply.send(out);
        }
        // else: the envelope's sender drops unsent — the waiting client
        // observes a disconnect, like a reply lost on the wire.
    }
}

/// Serves one data-path request against the worker's partition map.
fn serve(
    req: Request,
    store: &mut HashMap<PartKey, Bytes>,
    stats: &mut WorkerStats,
    nic: &mut TokenBucket,
    stragglers: &StragglerModel,
    rng: &mut Xoshiro256StarStar,
    bandwidth: f64,
) -> Reply {
    match req {
        Request::Put { key, data } => {
            nic.consume(data.len());
            stats.bytes_stored += data.len() as u64;
            stats.puts += 1;
            store.insert(key, data);
            stats.resident_parts = store.len();
            Reply::Done
        }
        Request::Get { key } => {
            stats.gets += 1;
            match store.get(&key) {
                Some(data) => {
                    // Emulate the transfer, with optional straggling
                    // (the paper injects stragglers by sleeping the
                    // server thread, §4.2).
                    let factor = stragglers.draw_factor(rng);
                    nic.consume(data.len());
                    if factor > 1.0 && bandwidth.is_finite() {
                        let extra = data.len() as f64 / bandwidth * (factor - 1.0);
                        std::thread::sleep(Duration::from_secs_f64(extra));
                    }
                    stats.bytes_served += data.len() as u64;
                    Reply::Data(data.clone())
                }
                None => Reply::Err(StoreError::NotFound(key)),
            }
        }
        Request::GetRange { key, offset, len } => {
            stats.gets += 1;
            match store.get(&key) {
                Some(data) => {
                    let start = (offset as usize).min(data.len());
                    let end = (start + len as usize).min(data.len());
                    let slice = data.slice(start..end);
                    let factor = stragglers.draw_factor(rng);
                    nic.consume(slice.len());
                    if factor > 1.0 && bandwidth.is_finite() {
                        let extra = slice.len() as f64 / bandwidth * (factor - 1.0);
                        std::thread::sleep(Duration::from_secs_f64(extra));
                    }
                    stats.bytes_served += slice.len() as u64;
                    Reply::Data(slice)
                }
                None => Reply::Err(StoreError::NotFound(key)),
            }
        }
        Request::Rename { from, to } => {
            let moved = match store.remove(&from) {
                Some(data) => {
                    store.insert(to, data);
                    true
                }
                None => false,
            };
            stats.resident_parts = store.len();
            Reply::Flag(moved)
        }
        Request::Delete { key } => {
            let removed = store.remove(&key).is_some();
            stats.resident_parts = store.len();
            Reply::Flag(removed)
        }
        // Control requests were handled before fault injection.
        Request::Stats | Request::Ping | Request::Shutdown => {
            unreachable!("control requests are served before the data path")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(h: &WorkerHandle, req: Request) -> Reply {
        let (tx, rx) = bounded(1);
        h.sender().send(Envelope { req, reply: tx }).unwrap();
        rx.recv().unwrap()
    }

    fn put(h: &WorkerHandle, key: PartKey, data: &[u8]) {
        call(
            h,
            Request::Put {
                key,
                data: Bytes::copy_from_slice(data),
            },
        )
        .unit()
        .unwrap();
    }

    fn get(h: &WorkerHandle, key: PartKey) -> Result<Bytes, StoreError> {
        call(h, Request::Get { key }).bytes()
    }

    #[test]
    fn put_get_roundtrip() {
        let h = spawn_worker(0, f64::INFINITY, StragglerModel::none(), 1);
        put(&h, PartKey::new(1, 0), b"hello");
        assert_eq!(get(&h, PartKey::new(1, 0)).unwrap().as_ref(), b"hello");
    }

    #[test]
    fn get_missing_returns_not_found() {
        let h = spawn_worker(0, f64::INFINITY, StragglerModel::none(), 1);
        assert_eq!(
            get(&h, PartKey::new(9, 9)),
            Err(StoreError::NotFound(PartKey::new(9, 9)))
        );
    }

    #[test]
    fn delete_removes() {
        let h = spawn_worker(0, f64::INFINITY, StragglerModel::none(), 1);
        put(&h, PartKey::new(1, 0), b"x");
        assert!(call(&h, Request::Delete { key: PartKey::new(1, 0) })
            .flag()
            .unwrap());
        assert!(get(&h, PartKey::new(1, 0)).is_err());
    }

    #[test]
    fn stats_track_traffic() {
        let h = spawn_worker(0, f64::INFINITY, StragglerModel::none(), 1);
        put(&h, PartKey::new(1, 0), &[0u8; 100]);
        put(&h, PartKey::new(1, 1), &[0u8; 50]);
        let _ = get(&h, PartKey::new(1, 0));
        let s = h.stats().unwrap();
        assert_eq!(s.bytes_stored, 150);
        assert_eq!(s.bytes_served, 100);
        assert_eq!(s.puts, 2);
        assert_eq!(s.gets, 1);
        assert_eq!(s.resident_parts, 2);
    }

    #[test]
    fn throttled_worker_takes_time() {
        let h = spawn_worker(0, 10e6, StragglerModel::none(), 1);
        put(&h, PartKey::new(1, 0), &[0u8; 1_000_000]);
        let t0 = std::time::Instant::now();
        let _ = get(&h, PartKey::new(1, 0)).unwrap();
        let dt = t0.elapsed().as_secs_f64();
        assert!(dt >= 0.08, "1 MB at 10 MB/s should take ~0.1s, took {dt}");
    }

    #[test]
    fn shutdown_is_acknowledged_and_joins_cleanly() {
        let mut h = spawn_worker(0, f64::INFINITY, StragglerModel::none(), 1);
        put(&h, PartKey::new(1, 0), b"x");
        let (tx, rx) = bounded(1);
        h.sender()
            .send(Envelope {
                req: Request::Shutdown,
                reply: tx,
            })
            .unwrap();
        assert_eq!(rx.recv().unwrap(), Reply::Done, "shutdown is acked");
        h.shutdown(); // idempotent: channel already closed
        let (tx, rx) = bounded(1);
        let send = h.sender().send(Envelope {
            req: Request::Get {
                key: PartKey::new(1, 0),
            },
            reply: tx,
        });
        assert!(send.is_err() || rx.recv().is_err());
    }

    #[test]
    fn shutdown_drains_queued_requests_first() {
        // Requests enqueued before the shutdown envelope are all served
        // (FIFO drain) — nothing in flight is lost.
        let h = spawn_worker(0, f64::INFINITY, StragglerModel::none(), 1);
        let mut gets = Vec::new();
        put(&h, PartKey::new(1, 0), b"drain");
        for _ in 0..16 {
            let (tx, rx) = bounded(1);
            h.sender()
                .send(Envelope {
                    req: Request::Get {
                        key: PartKey::new(1, 0),
                    },
                    reply: tx,
                })
                .unwrap();
            gets.push(rx);
        }
        let (tx, rx) = bounded(1);
        h.sender()
            .send(Envelope {
                req: Request::Shutdown,
                reply: tx,
            })
            .unwrap();
        for g in gets {
            assert_eq!(g.recv().unwrap().bytes().unwrap().as_ref(), b"drain");
        }
        assert_eq!(rx.recv().unwrap(), Reply::Done);
    }

    #[test]
    fn wire_faults_degrade_to_lost_or_delayed_replies_in_process() {
        use crate::fault::FaultPlan;
        let plan = FaultPlan::none()
            .drop_connection(0, 1)
            .delay_frame(0, 2, Duration::from_millis(60));
        let log = Arc::new(FaultLog::new());
        let h = spawn_worker_with_faults(
            0,
            f64::INFINITY,
            StragglerModel::none(),
            1,
            plan.script_for(0),
            Arc::clone(&log),
        );
        put(&h, PartKey::new(1, 0), b"w"); // op 0
        // Op 1: DropConnection ≈ lost reply → receiver disconnects.
        let (tx, rx) = bounded(1);
        h.sender()
            .send(Envelope {
                req: Request::Get {
                    key: PartKey::new(1, 0),
                },
                reply: tx,
            })
            .unwrap();
        assert!(rx.recv().is_err(), "reply should be lost");
        // Op 2: DelayFrame stalls the reply ~60 ms but it does arrive.
        let t0 = std::time::Instant::now();
        assert_eq!(get(&h, PartKey::new(1, 0)).unwrap().as_ref(), b"w");
        assert!(t0.elapsed() >= Duration::from_millis(50));
        // The log carries the original wire actions.
        let snap = log.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].action, FaultAction::DropConnection);
        assert_eq!(snap[1].action, FaultAction::DelayFrame(Duration::from_millis(60)));
    }
}

//! The transport abstraction between clients/executors and workers.
//!
//! Every data-plane interaction with a worker goes through
//! [`Transport`]: submit a pure-data [`Request`] to worker `w`, get back
//! a one-shot channel the single [`Reply`] will arrive on. The fork-join
//! read path selects over many such channels at once, so the trait
//! deliberately returns the receiver instead of blocking — a transport
//! is a request router, not an RPC stub.
//!
//! Two implementations exist:
//!
//! * [`ChannelTransport`] (here) — the in-process path: each worker is a
//!   thread behind a crossbeam channel. Submission failure means the
//!   worker thread is gone, which in-process is *definitive* death
//!   ([`StoreError::WorkerDown`]).
//! * `spcache_net::TcpTransport` — real sockets with length-prefixed
//!   frames and per-connection request-id multiplexing. Submission
//!   failure there is an I/O error ([`StoreError::Io`]): the remote may
//!   well be alive, so the error is retryable and feeds suspicion rather
//!   than a death certificate.

use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};

use crate::rpc::{Envelope, Reply, Request, StoreError};

/// A route to a fleet of workers.
pub trait Transport: Send + Sync + std::fmt::Debug {
    /// Number of workers addressable through this transport.
    fn n_workers(&self) -> usize;

    /// Submits `req` to worker `worker`, returning the channel its
    /// [`Reply`] will arrive on. The call only queues the request; the
    /// caller decides how long to wait (and whether to select over many
    /// receivers).
    ///
    /// # Errors
    ///
    /// [`StoreError::WorkerDown`] when the in-process channel is closed;
    /// [`StoreError::Io`] when a socket transport cannot reach the
    /// worker.
    fn submit(&self, worker: usize, req: Request) -> Result<Receiver<Reply>, StoreError>;

    /// Submits a batch of requests, returning one reply receiver per
    /// request in order. The default is a fail-fast loop of
    /// [`submit`](Transport::submit); socket transports override it to
    /// hand the whole batch to their event loops in one wakeup so the
    /// frames coalesce into shared `writev` calls.
    ///
    /// # Errors
    ///
    /// The first submission error aborts the batch (requests already
    /// submitted stay in flight; their receivers are dropped).
    fn submit_batch(
        &self,
        reqs: Vec<(usize, Request)>,
    ) -> Result<Vec<Receiver<Reply>>, StoreError> {
        reqs.into_iter()
            .map(|(worker, req)| self.submit(worker, req))
            .collect()
    }

    /// Convenience blocking call: submit and wait up to `timeout`.
    ///
    /// # Errors
    ///
    /// Submission errors; [`StoreError::Timeout`] when no reply lands in
    /// time; [`StoreError::WorkerDown`] when the reply route dies
    /// unanswered (in-process: the worker dropped the reply sender).
    fn call(&self, worker: usize, req: Request, timeout: Duration) -> Result<Reply, StoreError> {
        let rx = self.submit(worker, req)?;
        match rx.recv_timeout(timeout) {
            Ok(reply) => Ok(reply),
            Err(RecvTimeoutError::Disconnected) => Err(StoreError::WorkerDown(worker)),
            Err(RecvTimeoutError::Timeout) => Err(StoreError::Timeout(worker)),
        }
    }
}

/// The in-process transport: one crossbeam channel per worker thread.
///
/// This is the seed system's data path, unchanged in behaviour — only
/// moved behind the [`Transport`] trait so the TCP transport can slot in
/// beside it.
#[derive(Debug, Clone)]
pub struct ChannelTransport {
    senders: Vec<Sender<Envelope>>,
}

impl ChannelTransport {
    /// Wraps the per-worker request channels.
    pub fn new(senders: Vec<Sender<Envelope>>) -> Self {
        assert!(!senders.is_empty(), "need at least one worker");
        ChannelTransport { senders }
    }

    /// The raw channel to one worker (tests that poke workers directly).
    pub fn sender(&self, worker: usize) -> &Sender<Envelope> {
        &self.senders[worker]
    }
}

impl Transport for ChannelTransport {
    fn n_workers(&self) -> usize {
        self.senders.len()
    }

    fn submit(&self, worker: usize, req: Request) -> Result<Receiver<Reply>, StoreError> {
        let (tx, rx) = bounded(1);
        self.senders[worker]
            .send(Envelope { req, reply: tx })
            .map_err(|_| StoreError::WorkerDown(worker))?;
        Ok(rx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_to_closed_channel_is_worker_down() {
        let (tx, rx) = crossbeam::channel::unbounded::<Envelope>();
        drop(rx);
        let t = ChannelTransport::new(vec![tx]);
        assert_eq!(
            t.submit(0, Request::Ping).unwrap_err(),
            StoreError::WorkerDown(0)
        );
    }

    #[test]
    fn call_round_trips_through_a_responder() {
        let (tx, rx) = crossbeam::channel::unbounded::<Envelope>();
        std::thread::spawn(move || {
            while let Ok(env) = rx.recv() {
                let _ = env.reply.send(Reply::Pong { worker: 3, epoch: 0 });
            }
        });
        let t = ChannelTransport::new(vec![tx]);
        let reply = t.call(0, Request::Ping, Duration::from_secs(1)).unwrap();
        assert_eq!(reply.pong().unwrap(), 3);
    }

    #[test]
    fn call_times_out_when_nobody_answers() {
        let (tx, _rx) = crossbeam::channel::unbounded::<Envelope>();
        // Keep _rx alive so the channel stays open but unserved.
        let t = ChannelTransport::new(vec![tx]);
        assert_eq!(
            t.call(0, Request::Ping, Duration::from_millis(20))
                .unwrap_err(),
            StoreError::Timeout(0)
        );
        drop(_rx);
    }
}

//! Cluster assembly: master + worker threads + client factory.

use std::sync::Arc;

use crossbeam::channel::Sender;

use crate::client::Client;
use crate::config::StoreConfig;
use crate::master::Master;
use crate::rpc::{StoreError, WorkerRequest, WorkerStats};
use crate::worker::{spawn_worker, WorkerHandle};

/// A running in-process store cluster.
///
/// Dropping the cluster shuts every worker down.
///
/// # Examples
///
/// ```
/// use spcache_store::{StoreCluster, StoreConfig};
///
/// let cluster = StoreCluster::spawn(StoreConfig::unthrottled(4));
/// let client = cluster.client();
/// client.write(1, b"selective partition", &[0, 2]).unwrap();
/// assert_eq!(client.read(1).unwrap(), b"selective partition");
/// ```
#[derive(Debug)]
pub struct StoreCluster {
    master: Arc<Master>,
    workers: Vec<WorkerHandle>,
}

impl StoreCluster {
    /// Spawns `cfg.n_workers` worker threads and an empty master.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.n_workers == 0`.
    pub fn spawn(cfg: StoreConfig) -> Self {
        assert!(cfg.n_workers > 0, "need at least one worker");
        let workers = (0..cfg.n_workers)
            .map(|id| {
                spawn_worker(
                    id,
                    cfg.bandwidth,
                    cfg.stragglers.clone(),
                    cfg.seed.wrapping_add(id as u64),
                )
            })
            .collect();
        StoreCluster {
            master: Arc::new(Master::new()),
            workers,
        }
    }

    /// Number of workers.
    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    /// The metadata master.
    pub fn master(&self) -> &Arc<Master> {
        &self.master
    }

    /// The raw worker channels (used by the repartitioners).
    pub fn worker_senders(&self) -> Vec<Sender<WorkerRequest>> {
        self.workers.iter().map(|w| w.sender().clone()).collect()
    }

    /// Creates a client.
    pub fn client(&self) -> Client {
        Client::new(self.master.clone(), self.worker_senders())
    }

    /// Collects per-worker service counters.
    pub fn worker_stats(&self) -> Result<Vec<WorkerStats>, StoreError> {
        self.workers.iter().map(WorkerHandle::stats).collect()
    }

    /// Terminates one worker thread — a simulated machine failure. All
    /// its cached partitions are lost; subsequent requests to it report
    /// [`StoreError::WorkerDown`] (recoverable via
    /// [`crate::backing::read_or_recover`] when checkpoints exist).
    pub fn kill_worker(&mut self, id: usize) {
        self.workers[id].shutdown();
    }

    /// Bytes served per worker — the load-distribution measurement used by
    /// the store-level imbalance checks.
    pub fn served_bytes(&self) -> Result<Vec<f64>, StoreError> {
        Ok(self
            .worker_stats()?
            .into_iter()
            .map(|s| s.bytes_served as f64)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_and_query_stats() {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(3));
        assert_eq!(cluster.n_workers(), 3);
        let stats = cluster.worker_stats().unwrap();
        assert_eq!(stats.len(), 3);
        assert!(stats.iter().all(|s| s.gets == 0));
    }

    #[test]
    fn served_bytes_tracks_reads() {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(2));
        let c = cluster.client();
        c.write(1, &[7u8; 1000], &[0, 1]).unwrap();
        let _ = c.read(1).unwrap();
        let served = cluster.served_bytes().unwrap();
        assert_eq!(served, vec![500.0, 500.0]);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = StoreCluster::spawn(StoreConfig::unthrottled(0));
    }
}

//! Cluster assembly: master + worker threads + client factory.

use std::sync::Arc;
use std::time::Duration;

use crate::backing::UnderStore;
use crate::client::Client;
use crate::config::StoreConfig;
use crate::fault::FaultLog;
use crate::master::Master;
use crate::rpc::{Request, StoreError, WorkerStats};
use crate::supervisor::{Supervisor, SupervisorCore};
use crate::transport::{ChannelTransport, Transport};
use crate::worker::{spawn_worker_opts, WorkerHandle, WorkerOptions};

/// A running in-process store cluster.
///
/// Dropping the cluster shuts every worker down.
///
/// # Examples
///
/// ```
/// use spcache_store::{StoreCluster, StoreConfig};
///
/// let cluster = StoreCluster::spawn(StoreConfig::unthrottled(4));
/// let client = cluster.client();
/// client.write(1, b"selective partition", &[0, 2]).unwrap();
/// assert_eq!(client.read(1).unwrap(), b"selective partition");
/// ```
#[derive(Debug)]
pub struct StoreCluster {
    // Declared first so it drops (stopping its heartbeat thread) before
    // the workers shut down — a supervisor outliving its fleet would
    // mis-record every worker as newly dead on the way out.
    supervisor: Option<Supervisor>,
    master: Arc<Master>,
    workers: Vec<WorkerHandle>,
    transport: Arc<ChannelTransport>,
    fault_log: Arc<FaultLog>,
    under: Option<Arc<UnderStore>>,
    cfg: StoreConfig,
}

impl StoreCluster {
    /// Spawns `cfg.n_workers` worker threads and an empty master. Each
    /// worker receives its slice of `cfg.faults`; fired faults land in
    /// the shared [`StoreCluster::fault_log`]. When
    /// `cfg.supervisor.enabled`, a [`Supervisor`] runs over the cluster
    /// (without an under-store it detects failures and fences epochs
    /// but cannot sweep — use [`StoreCluster::spawn_with_under_store`]
    /// for the full self-healing loop).
    ///
    /// # Panics
    ///
    /// Panics if `cfg.n_workers == 0`.
    pub fn spawn(cfg: StoreConfig) -> Self {
        StoreCluster::spawn_with_under_store(cfg, None)
    }

    /// Like [`StoreCluster::spawn`], with a backing under-store that the
    /// supervisor's recovery sweep (and clients created via
    /// [`StoreCluster::client`]) heal from.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.n_workers == 0`.
    pub fn spawn_with_under_store(cfg: StoreConfig, under: Option<Arc<UnderStore>>) -> Self {
        assert!(cfg.n_workers > 0, "need at least one worker");
        let fault_log = Arc::new(FaultLog::new());
        let workers: Vec<WorkerHandle> = (0..cfg.n_workers)
            .map(|id| {
                let mut opts = WorkerOptions::new(
                    id,
                    cfg.bandwidth,
                    cfg.stragglers.clone(),
                    cfg.seed.wrapping_add(id as u64),
                )
                .with_scripts(
                    cfg.faults.script_for(id),
                    cfg.faults.heartbeat_script_for(id),
                    Arc::clone(&fault_log),
                )
                .with_memory_budget(cfg.memory_budget)
                .with_background_fraction(cfg.background_fraction)
                .with_max_transfer_wait(Some(cfg.executor_deadline))
                .with_verify_reads(cfg.verify_reads)
                .with_corruption_log(cfg.log_corruptions);
                // Budgeted workers spill evicted partitions into the
                // cluster's under-store tier, so whole-file checkpoints
                // there turn evictions into free drops; without one,
                // spawn_worker_opts backs each worker privately.
                if let Some(u) = &under {
                    opts = opts.with_spill(Arc::clone(u));
                }
                spawn_worker_opts(opts)
            })
            .collect();
        let transport = Arc::new(ChannelTransport::new(
            workers.iter().map(|w| w.sender().clone()).collect(),
        ));
        let master = Arc::new(Master::new());
        master.ensure_workers(cfg.n_workers);
        let supervisor = cfg.supervisor.enabled.then(|| {
            let t: Arc<dyn Transport> = transport.clone();
            Supervisor::spawn(SupervisorCore::new(
                master.clone(),
                t,
                under.clone(),
                cfg.supervisor,
                cfg.retry,
            ))
        });
        StoreCluster {
            supervisor,
            master,
            workers,
            transport,
            fault_log,
            under,
            cfg,
        }
    }

    /// Number of workers.
    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    /// The metadata master.
    pub fn master(&self) -> &Arc<Master> {
        &self.master
    }

    /// The record of injected faults that have fired so far.
    pub fn fault_log(&self) -> &Arc<FaultLog> {
        &self.fault_log
    }

    /// The in-process channel transport over this cluster's workers
    /// (used by the repartitioners and by tests that poke workers
    /// directly).
    pub fn transport(&self) -> &Arc<ChannelTransport> {
        &self.transport
    }

    /// The supervisor, when `cfg.supervisor.enabled` spawned one.
    pub fn supervisor(&self) -> Option<&Supervisor> {
        self.supervisor.as_ref()
    }

    /// The attached under-store, when the cluster was spawned with one.
    pub fn under_store(&self) -> Option<&Arc<UnderStore>> {
        self.under.as_ref()
    }

    /// Creates a client carrying the cluster's retry and hedge policies.
    /// Under a supervisor the client is additionally **fenced** (stamps
    /// registration epochs onto data requests) and applies the
    /// configured degraded-mode admission policy; the cluster's
    /// under-store, if any, is attached for read-path healing.
    pub fn client(&self) -> Client {
        let mut c = Client::new(self.master.clone(), self.transport.clone())
            .with_retry(self.cfg.retry)
            .with_hedge(self.cfg.hedge)
            .with_fencing(self.cfg.supervisor.enabled)
            .with_degraded_policy(self.cfg.supervisor.degraded)
            .with_verify(self.cfg.verify_reads)
            .with_parity(self.cfg.parity);
        if let Some(under) = &self.under {
            c = c.with_under_store(under.clone());
        }
        c
    }

    /// Collects per-worker service counters. Dead workers report
    /// defaults (a killed machine has no counters to offer).
    pub fn worker_stats(&self) -> Result<Vec<WorkerStats>, StoreError> {
        Ok(self
            .workers
            .iter()
            .map(|w| w.stats().unwrap_or_default())
            .collect())
    }

    /// Pings every worker with `timeout`, updating the master's health
    /// table from the outcome; returns the live worker ids. This is the
    /// heartbeat sweep a real SP-Master would run periodically.
    pub fn probe_liveness(&self, timeout: Duration) -> Vec<usize> {
        let mut live = Vec::new();
        let probes: Vec<_> = self
            .workers
            .iter()
            .map(|w| (w.id, self.transport.submit(w.id, Request::Ping)))
            .collect();
        for (id, probe) in probes {
            let alive = probe
                .is_ok_and(|rx| {
                    matches!(rx.recv_timeout(timeout), Ok(crate::rpc::Reply::Pong { .. }))
                });
            if alive {
                self.master.mark_alive(id);
                live.push(id);
            } else {
                self.master.mark_dead(id);
            }
        }
        live
    }

    /// Terminates one worker thread — a simulated machine failure. All
    /// its cached partitions are lost; subsequent requests to it report
    /// [`StoreError::WorkerDown`] (recoverable via
    /// [`crate::backing::read_or_recover`] when checkpoints exist). The
    /// master learns of the death immediately.
    pub fn kill_worker(&mut self, id: usize) {
        self.workers[id].shutdown();
        self.master.mark_dead(id);
    }

    /// Bytes served per worker — the load-distribution measurement used by
    /// the store-level imbalance checks.
    pub fn served_bytes(&self) -> Result<Vec<f64>, StoreError> {
        Ok(self
            .worker_stats()?
            .into_iter()
            .map(|s| s.bytes_served as f64)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;

    #[test]
    fn spawn_and_query_stats() {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(3));
        assert_eq!(cluster.n_workers(), 3);
        let stats = cluster.worker_stats().unwrap();
        assert_eq!(stats.len(), 3);
        assert!(stats.iter().all(|s| s.gets == 0));
    }

    #[test]
    fn served_bytes_tracks_reads() {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(2));
        let c = cluster.client();
        c.write(1, &[7u8; 1000], &[0, 1]).unwrap();
        let _ = c.read(1).unwrap();
        let served = cluster.served_bytes().unwrap();
        assert_eq!(served, vec![500.0, 500.0]);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = StoreCluster::spawn(StoreConfig::unthrottled(0));
    }

    #[test]
    fn probe_liveness_tracks_kill() {
        let mut cluster = StoreCluster::spawn(StoreConfig::unthrottled(3));
        assert_eq!(
            cluster.probe_liveness(Duration::from_millis(200)),
            vec![0, 1, 2]
        );
        cluster.kill_worker(1);
        assert_eq!(
            cluster.probe_liveness(Duration::from_millis(200)),
            vec![0, 2]
        );
        assert!(!cluster.master().is_alive(1));
        assert!(cluster.master().is_alive(0));
        assert!(cluster.master().heartbeats(0) >= 2);
    }

    #[test]
    fn scripted_crash_fires_and_is_logged() {
        let cfg = StoreConfig::unthrottled(2)
            .with_faults(FaultPlan::none().crash(1, 1));
        let cluster = StoreCluster::spawn(cfg);
        let c = cluster.client();
        c.write(1, &[1u8; 100], &[1]).unwrap(); // op 0
        // Op 1 triggers the crash; the read fails.
        assert!(c.read(1).is_err());
        let log = cluster.fault_log().snapshot();
        assert_eq!(log.len(), 1);
        assert_eq!((log[0].worker, log[0].op), (1, 1));
        // Worker 0 unaffected.
        assert_eq!(cluster.probe_liveness(Duration::from_millis(200)), vec![0]);
    }
}

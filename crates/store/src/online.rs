//! Executor for online partition-granularity adjustments
//! ([`spcache_core::online`], the paper's §8 extension).
//!
//! Execution is staged so readers never observe a torn layout:
//!
//! 1. **Build** — every new partition is assembled on its target worker
//!    under a *staged* key (high bit of the partition index set), pulling
//!    only the byte sub-ranges it lacks from their current holders
//!    (`GetRange`), in parallel across target workers.
//! 2. **Commit** — old keys are deleted, staged keys are renamed to their
//!    final indices (an in-worker HashMap move, no bytes), and the master
//!    metadata is swapped.
//!
//! Like the repartitioner, the adjuster speaks only through a
//! [`Transport`], so it works identically over in-process channels and
//! TCP.

use bytes::Bytes;
use crossbeam::channel::RecvTimeoutError;
use spcache_core::online::OnlinePlan;
use std::time::Duration;

use crate::master::MetaService;
use crate::rpc::{PartKey, Reply, Request, StoreError};
use crate::transport::Transport;

/// Upper bound on any single worker wait during an adjustment, so a
/// worker dying mid-build cannot hang the executor.
const ADJUST_DEADLINE: Duration = Duration::from_secs(5);

/// One synchronous worker call with the adjuster's deadline. Unlike the
/// client this does no health bookkeeping: adjustments pre-check
/// liveness and treat any failure as fatal to the (replannable) job.
fn call(transport: &dyn Transport, server: usize, req: Request) -> Result<Reply, StoreError> {
    let rx = transport.submit(server, req)?;
    match rx.recv_timeout(ADJUST_DEADLINE) {
        Ok(Reply::Err(e)) => Err(e),
        Ok(reply) => Ok(reply),
        Err(RecvTimeoutError::Disconnected) => Err(StoreError::WorkerDown(server)),
        Err(RecvTimeoutError::Timeout) => Err(StoreError::Timeout(server)),
    }
}

/// Builds one new partition on its target worker under the staged key.
fn build_partition(
    file: u64,
    part: &spcache_core::online::NewPartition,
    transport: &dyn Transport,
) -> Result<(), StoreError> {
    let mut buf = Vec::with_capacity(part.range.len() as usize);
    for pull in &part.pulls {
        let bytes = call(
            transport,
            pull.from_server,
            Request::GetRange {
                key: PartKey::new(file, pull.from_part),
                offset: pull.offset_in_part,
                len: pull.len,
            },
        )?
        .bytes()?;
        debug_assert_eq!(bytes.len() as u64, pull.len, "short range read");
        buf.extend_from_slice(&bytes);
    }
    // Stamp the staged partition's checksum: the file's master-side
    // integrity row dies with the re-split, so the worker-held sum is
    // what keeps verified reads working after the swap.
    let sum = spcache_integrity::sum(&buf);
    call(
        transport,
        part.server,
        Request::Put {
            key: PartKey::new(file, part.index).staged(),
            data: Bytes::from(buf),
            sum,
        },
    )?
    .unit()
}

/// Executes an online adjustment for `file`: builds staged partitions in
/// parallel (one thread per target worker), then commits.
///
/// # Errors
///
/// Returns the first worker/metadata error. Dead workers among the
/// plan's pull sources or build targets are rejected up front with
/// [`StoreError::WorkerDown`] — the caller should replan against the
/// live fleet. Before the commit phase the original layout is
/// untouched, so a build-phase error leaves the file fully readable.
pub fn execute_adjust(
    file: u64,
    plan: &OnlinePlan,
    master: &dyn MetaService,
    transport: &dyn Transport,
) -> Result<(), StoreError> {
    let (_, old_servers) = master.peek(file)?;
    assert_eq!(
        old_servers.len(),
        plan.old_k,
        "plan was made for a different layout"
    );
    // Refuse plans that touch dead workers: an adjustment (unlike a
    // recovery) has no second copy to rebuild from, so targets and
    // sources must all be live before any byte moves.
    for part in &plan.parts {
        if !master.is_alive(part.server) {
            return Err(StoreError::WorkerDown(part.server));
        }
        for pull in &part.pulls {
            if !master.is_alive(pull.from_server) {
                return Err(StoreError::WorkerDown(pull.from_server));
            }
        }
    }

    // Phase 1: build, parallel across target servers.
    let results: Vec<Result<(), StoreError>> = std::thread::scope(|s| {
        plan.parts
            .iter()
            .map(|part| s.spawn(move || build_partition(file, part, transport)))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("build thread panicked"))
            .collect()
    });
    results.into_iter().collect::<Result<(), _>>()?;

    // Phase 2: commit — drop old keys, unstage new ones, swap metadata.
    for (j, &server) in old_servers.iter().enumerate() {
        if let Ok(rx) = transport.submit(
            server,
            Request::Delete {
                key: PartKey::new(file, j as u32),
            },
        ) {
            let _ = rx.recv_timeout(ADJUST_DEADLINE);
        }
    }
    for part in &plan.parts {
        let key = PartKey::new(file, part.index);
        let renamed = call(
            transport,
            part.server,
            Request::Rename {
                from: key.staged(),
                to: key,
            },
        )?
        .flag()?;
        assert!(renamed, "staged partition vanished before commit");
    }
    master.apply_placement(file, plan.new_servers())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::StoreCluster;
    use crate::config::StoreConfig;
    use spcache_core::online::plan_adjust;

    fn payload(len: usize) -> Vec<u8> {
        (0..len).map(|i| ((i * 37 + 11) % 256) as u8).collect()
    }

    fn loads(n: usize) -> Vec<f64> {
        vec![0.0; n]
    }

    /// Runs one adjustment and checks byte-exactness + placement.
    fn roundtrip(n_workers: usize, initial: &[usize], new_k: usize, len: usize) {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(n_workers));
        let client = cluster.client();
        let data = payload(len);
        client.write(1, &data, initial).unwrap();

        let plan = plan_adjust(len as u64, initial, new_k, &loads(n_workers));
        execute_adjust(
            1,
            &plan,
            cluster.master().as_ref(),
            cluster.transport().as_ref(),
        )
        .unwrap();

        let (_, servers) = cluster.master().peek(1).unwrap();
        assert_eq!(servers.len(), new_k);
        assert_eq!(client.read_quiet(1).unwrap(), data, "bytes corrupted");
        // No staged or stale partitions left.
        let resident: usize = cluster
            .worker_stats()
            .unwrap()
            .iter()
            .map(|s| s.resident_parts)
            .sum();
        assert_eq!(resident, new_k);
    }

    #[test]
    fn split_whole_file_online() {
        roundtrip(6, &[2], 4, 10_001);
    }

    #[test]
    fn combine_back_to_one() {
        roundtrip(6, &[0, 1, 2, 3], 1, 8_000);
    }

    #[test]
    fn resize_up_and_down() {
        roundtrip(8, &[0, 3, 5], 7, 9_999);
        roundtrip(8, &[0, 1, 2, 3, 4, 5, 6], 3, 9_999);
    }

    #[test]
    fn identity_adjustment_is_noop_on_bytes() {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(4));
        let client = cluster.client();
        let data = payload(5_000);
        client.write(1, &data, &[1, 3]).unwrap();
        let plan = plan_adjust(5_000, &[1, 3], 2, &loads(4));
        assert_eq!(plan.network_bytes(), 0);
        execute_adjust(
            1,
            &plan,
            cluster.master().as_ref(),
            cluster.transport().as_ref(),
        )
        .unwrap();
        assert_eq!(client.read_quiet(1).unwrap(), data);
        assert_eq!(cluster.master().peek(1).unwrap().1, vec![1, 3]);
    }

    #[test]
    fn repeated_adjustments_stay_consistent() {
        let n_workers = 8;
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(n_workers));
        let client = cluster.client();
        let len = 12_345;
        let data = payload(len);
        client.write(1, &data, &[0]).unwrap();
        let seq = [3usize, 8, 2, 5, 1, 6];
        for &k in &seq {
            let (_, servers) = cluster.master().peek(1).unwrap();
            let plan = plan_adjust(len as u64, &servers, k, &loads(n_workers));
            execute_adjust(
                1,
                &plan,
                cluster.master().as_ref(),
                cluster.transport().as_ref(),
            )
            .unwrap();
            assert_eq!(client.read_quiet(1).unwrap(), data, "after k={k}");
            assert_eq!(cluster.master().peek(1).unwrap().1.len(), k);
        }
    }

    #[test]
    fn online_moves_fewer_bytes_than_reassembly() {
        // Measure actual served bytes for a 4 → 6 adjustment and compare
        // against the reassembly estimate.
        let n_workers = 8;
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(n_workers));
        let client = cluster.client();
        let len = 100_000;
        client.write(1, &payload(len), &[0, 1, 2, 3]).unwrap();
        let served_before: f64 = cluster.served_bytes().unwrap().iter().sum();
        let plan = plan_adjust(len as u64, &[0, 1, 2, 3], 6, &loads(n_workers));
        execute_adjust(
            1,
            &plan,
            cluster.master().as_ref(),
            cluster.transport().as_ref(),
        )
        .unwrap();
        let served_after: f64 = cluster.served_bytes().unwrap().iter().sum();
        let moved = served_after - served_before;
        assert!(
            moved < plan.reassembly_bytes() as f64,
            "online moved {moved} vs reassembly {}",
            plan.reassembly_bytes()
        );
        // And matches the plan's own accounting (pulls include local ones
        // in served bytes, so allow that slack).
        let max_expected: u64 = plan.parts.iter().map(|p| p.range.len()).sum();
        assert!(moved <= max_expected as f64 + 1.0);
    }
}

//! The SP-Master: file metadata, access counting and rebalance planning.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;
use spcache_core::file::{FileMeta, FileSet};
use spcache_core::partition::PartitionMap;
use spcache_core::repartition::{plan_repartition, RepartitionPlan};
use spcache_core::tuner::{tune_scale_factor_hetero, Tuned, TunerConfig};
use spcache_sim::Xoshiro256StarStar;

use crate::rpc::StoreError;

/// Metadata for one stored file.
#[derive(Debug)]
pub struct FileInfo {
    /// File size in bytes.
    pub size: usize,
    /// Workers holding partition `j` at index `j`.
    pub servers: Vec<usize>,
    /// Access counter, bumped on every read (popularity tracking, §6.1).
    pub accesses: AtomicU64,
}

impl FileInfo {
    /// Partition count `k`.
    pub fn k(&self) -> usize {
        self.servers.len()
    }
}

/// The metadata service.
///
/// Thread-safe: clients call [`Master::locate`] concurrently; the
/// repartition coordinator takes the write lock only while swapping
/// placements.
#[derive(Debug, Default)]
pub struct Master {
    files: RwLock<HashMap<u64, FileInfo>>,
}

impl Master {
    /// An empty master.
    pub fn new() -> Self {
        Master {
            files: RwLock::new(HashMap::new()),
        }
    }

    /// Registers a new file.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::AlreadyExists`] if the id is taken.
    pub fn register(&self, id: u64, size: usize, servers: Vec<usize>) -> Result<(), StoreError> {
        assert!(!servers.is_empty(), "file must have at least one partition");
        let mut files = self.files.write();
        if files.contains_key(&id) {
            return Err(StoreError::AlreadyExists(id));
        }
        files.insert(
            id,
            FileInfo {
                size,
                servers,
                accesses: AtomicU64::new(0),
            },
        );
        Ok(())
    }

    /// Removes a file's metadata; returns its former info if present.
    pub fn unregister(&self, id: u64) -> Option<FileInfo> {
        self.files.write().remove(&id)
    }

    /// Looks up a file's partition servers and size, bumping its access
    /// count (the read path, §6.1).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::UnknownFile`] if not registered.
    pub fn locate(&self, id: u64) -> Result<(usize, Vec<usize>), StoreError> {
        let files = self.files.read();
        let info = files.get(&id).ok_or(StoreError::UnknownFile(id))?;
        info.accesses.fetch_add(1, Ordering::Relaxed);
        Ok((info.size, info.servers.clone()))
    }

    /// Like [`Master::locate`] but without counting an access (metadata
    /// inspection).
    pub fn peek(&self, id: u64) -> Result<(usize, Vec<usize>), StoreError> {
        let files = self.files.read();
        let info = files.get(&id).ok_or(StoreError::UnknownFile(id))?;
        Ok((info.size, info.servers.clone()))
    }

    /// Number of registered files.
    pub fn file_count(&self) -> usize {
        self.files.read().len()
    }

    /// Access count of one file.
    pub fn accesses(&self, id: u64) -> u64 {
        self.files
            .read()
            .get(&id)
            .map_or(0, |i| i.accesses.load(Ordering::Relaxed))
    }

    /// Resets all access counters (start of a new measurement window; the
    /// paper repartitions every 12 h on the previous 24 h of counts).
    pub fn reset_accesses(&self) {
        for info in self.files.read().values() {
            info.accesses.store(0, Ordering::Relaxed);
        }
    }

    /// A snapshot `(ids, FileSet, PartitionMap)` of the current state with
    /// popularity estimated from access counts (uniform when no accesses
    /// were recorded yet). `n_workers` bounds the partition map.
    pub fn snapshot(&self, n_workers: usize) -> (Vec<u64>, FileSet, PartitionMap) {
        let files = self.files.read();
        assert!(!files.is_empty(), "snapshot of an empty master");
        let mut ids: Vec<u64> = files.keys().copied().collect();
        ids.sort_unstable();
        let total_acc: u64 = files
            .values()
            .map(|i| i.accesses.load(Ordering::Relaxed))
            .sum();
        let metas: Vec<FileMeta> = ids
            .iter()
            .map(|id| {
                let info = &files[id];
                let pop = if total_acc == 0 {
                    1.0 / files.len() as f64
                } else {
                    info.accesses.load(Ordering::Relaxed) as f64 / total_acc as f64
                };
                // FileMeta requires a strictly positive popularity-free
                // size; popularity 0 is fine.
                FileMeta::new(info.size.max(1) as f64, pop)
            })
            .collect();
        let placements: Vec<Vec<usize>> = ids.iter().map(|id| files[id].servers.clone()).collect();
        (
            ids,
            FileSet::new(metas),
            PartitionMap::new(placements, n_workers),
        )
    }

    /// Plans a rebalance: runs Algorithm 1 on the observed popularity,
    /// derives new partition counts, and runs Algorithm 2 against the
    /// current placement. Returns `(ids, plan, tuned)`; apply with
    /// [`Master::apply_placement`] after the repartitioners have moved
    /// the bytes.
    pub fn plan_rebalance(
        &self,
        n_workers: usize,
        bandwidth: f64,
        lambda_total: f64,
        cfg: &TunerConfig,
        seed: u64,
    ) -> (Vec<u64>, RepartitionPlan, Tuned) {
        let (ids, fileset, map) = self.snapshot(n_workers);
        let tuned =
            tune_scale_factor_hetero(&fileset, &vec![bandwidth; n_workers], lambda_total, cfg);
        let new_counts: Vec<usize> = fileset
            .partition_counts(tuned.alpha)
            .into_iter()
            .map(|k| k.min(n_workers))
            .collect();
        let mut rng = Xoshiro256StarStar::seed(seed);
        let plan = plan_repartition(&fileset, &map, &new_counts, &mut rng);
        (ids, plan, tuned)
    }

    /// Atomically installs a new placement for `id`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::UnknownFile`] if not registered.
    pub fn apply_placement(&self, id: u64, servers: Vec<usize>) -> Result<(), StoreError> {
        assert!(!servers.is_empty());
        let mut files = self.files.write();
        let info = files.get_mut(&id).ok_or(StoreError::UnknownFile(id))?;
        info.servers = servers;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_locate_roundtrip() {
        let m = Master::new();
        m.register(7, 1000, vec![0, 2]).unwrap();
        let (size, servers) = m.locate(7).unwrap();
        assert_eq!(size, 1000);
        assert_eq!(servers, vec![0, 2]);
        assert_eq!(m.accesses(7), 1);
    }

    #[test]
    fn duplicate_registration_rejected() {
        let m = Master::new();
        m.register(1, 10, vec![0]).unwrap();
        assert_eq!(
            m.register(1, 10, vec![1]),
            Err(StoreError::AlreadyExists(1))
        );
    }

    #[test]
    fn unknown_file_errors() {
        let m = Master::new();
        assert_eq!(m.locate(5).unwrap_err(), StoreError::UnknownFile(5));
        assert_eq!(m.peek(5).unwrap_err(), StoreError::UnknownFile(5));
    }

    #[test]
    fn peek_does_not_count() {
        let m = Master::new();
        m.register(1, 10, vec![0]).unwrap();
        let _ = m.peek(1).unwrap();
        assert_eq!(m.accesses(1), 0);
    }

    #[test]
    fn access_counters_accumulate_and_reset() {
        let m = Master::new();
        m.register(1, 10, vec![0]).unwrap();
        for _ in 0..5 {
            let _ = m.locate(1);
        }
        assert_eq!(m.accesses(1), 5);
        m.reset_accesses();
        assert_eq!(m.accesses(1), 0);
    }

    #[test]
    fn snapshot_estimates_popularity_from_accesses() {
        let m = Master::new();
        m.register(0, 100, vec![0]).unwrap();
        m.register(1, 100, vec![1]).unwrap();
        for _ in 0..9 {
            let _ = m.locate(0);
        }
        let _ = m.locate(1);
        let (ids, fs, map) = m.snapshot(4);
        assert_eq!(ids, vec![0, 1]);
        assert!((fs.get(0).popularity - 0.9).abs() < 1e-12);
        assert!((fs.get(1).popularity - 0.1).abs() < 1e-12);
        assert_eq!(map.k_of(0), 1);
    }

    #[test]
    fn snapshot_uniform_when_no_accesses() {
        let m = Master::new();
        m.register(0, 100, vec![0]).unwrap();
        m.register(1, 100, vec![1]).unwrap();
        let (_, fs, _) = m.snapshot(2);
        assert!((fs.get(0).popularity - 0.5).abs() < 1e-12);
    }

    #[test]
    fn plan_rebalance_splits_hot_file() {
        let m = Master::new();
        for id in 0..20u64 {
            m.register(id, 50_000_000, vec![(id as usize) % 10]).unwrap();
        }
        // File 3 becomes very hot.
        for _ in 0..1000 {
            let _ = m.locate(3);
        }
        for id in 0..20u64 {
            let _ = m.locate(id);
        }
        let (ids, plan, tuned) = m.plan_rebalance(10, 125e6, 8.0, &TunerConfig::default(), 7);
        assert!(tuned.alpha > 0.0);
        let idx3 = ids.iter().position(|&i| i == 3).unwrap();
        assert!(
            plan.new_map.k_of(idx3) > 1,
            "hot file should be split, got k = {}",
            plan.new_map.k_of(idx3)
        );
    }

    #[test]
    fn apply_placement_swaps_servers() {
        let m = Master::new();
        m.register(1, 10, vec![0]).unwrap();
        m.apply_placement(1, vec![1, 2]).unwrap();
        assert_eq!(m.peek(1).unwrap().1, vec![1, 2]);
        assert_eq!(
            m.apply_placement(9, vec![0]),
            Err(StoreError::UnknownFile(9))
        );
    }

    #[test]
    fn concurrent_locates_are_safe() {
        let m = std::sync::Arc::new(Master::new());
        m.register(1, 10, vec![0]).unwrap();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        let _ = m.locate(1).unwrap();
                    }
                });
            }
        });
        assert_eq!(m.accesses(1), 8000);
    }
}

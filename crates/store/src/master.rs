//! The SP-Master: file metadata, access counting and rebalance planning.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use spcache_core::file::{FileMeta, FileSet};
use spcache_core::partition::PartitionMap;
use spcache_core::repartition::{plan_repartition, RepartitionPlan};
use spcache_core::tuner::{tune_scale_factor_hetero, Tuned, TunerConfig};
use spcache_sim::Xoshiro256StarStar;

use crate::metalog::{FileIntegrity, MasterImage, MetaLog, MetaOp};
use crate::rpc::StoreError;

/// Metadata for one stored file.
#[derive(Debug)]
pub struct FileInfo {
    /// File size in bytes.
    pub size: usize,
    /// Workers holding partition `j` at index `j`.
    pub servers: Vec<usize>,
    /// Access counter, bumped on every read (popularity tracking, §6.1).
    pub accesses: AtomicU64,
    /// Placement version: 1 at registration, bumped on every
    /// [`Master::apply_placement`]. Recovery sweeps capture it when
    /// they enumerate degraded files and skip any file whose version
    /// moved by heal time — a concurrent heal, repartition commit or
    /// eviction-reload already re-placed the bytes, and
    /// re-materializing from the stale snapshot would resurrect
    /// partitions the newer placement dropped.
    pub version: AtomicU64,
}

impl FileInfo {
    /// Partition count `k`.
    pub fn k(&self) -> usize {
        self.servers.len()
    }
}

/// Default consecutive-timeout count after which a suspected worker is
/// declared dead; override with [`Master::set_suspicion_threshold`].
const SUSPICION_THRESHOLD: u32 = 3;

/// Liveness bookkeeping for the worker fleet.
#[derive(Debug, Default)]
struct Health {
    /// `alive[w]` — whether worker `w` is believed up. Workers the
    /// master has never heard about are presumed alive.
    alive: Vec<bool>,
    /// Consecutive timeout count per worker; reset on any sign of life.
    suspicion: Vec<u32>,
    /// Heartbeats (successful pings / replies) observed per worker.
    last_seen: Vec<u64>,
    /// Fencing epoch per worker. 0 = never registered. Bumped once on
    /// every alive→dead transition and once more at each registration,
    /// so a worker's pre-crash epoch can never equal any epoch granted
    /// after its death.
    epochs: Vec<u64>,
}

impl Health {
    fn ensure(&mut self, n: usize) {
        if self.alive.len() < n {
            self.alive.resize(n, true);
            self.suspicion.resize(n, 0);
            self.last_seen.resize(n, 0);
            self.epochs.resize(n, 0);
        }
    }
}

/// The metadata service.
///
/// Thread-safe: clients call [`Master::locate`] concurrently; the
/// repartition coordinator takes the write lock only while swapping
/// placements.
///
/// Besides file metadata the master tracks **worker health**: clients
/// and repartitioners report timeouts ([`Master::suspect`]) and closed
/// channels ([`Master::mark_dead`]), and every placement decision
/// ([`Master::plan_rebalance`], recovery target selection) draws only
/// from [`Master::live_workers`].
#[derive(Debug)]
pub struct Master {
    files: RwLock<HashMap<u64, FileInfo>>,
    /// Per-file integrity rows (DESIGN.md §4.15): data-partition
    /// checksums plus parity placement. Cleared whenever the placement
    /// changes shape — a re-split invalidates every sum.
    integrity: RwLock<HashMap<u64, FileIntegrity>>,
    health: RwLock<Health>,
    /// Suspicion-ladder death threshold (see [`Master::suspect`]).
    threshold: AtomicU32,
    /// Files whose under-store repair is currently in flight — the
    /// sweep/lazy-repair dedup registry (DESIGN.md §4.11).
    repairing: Mutex<HashSet<u64>>,
    /// Every file id that ever acquired a repair slot, in acquisition
    /// order; tests derive per-file repair counts from this to assert
    /// zero duplicate heals.
    repair_log: Mutex<Vec<u64>>,
    /// The master epoch (DESIGN.md §4.14): bumped on every takeover,
    /// stamped into `Fenced` envelopes so workers bounce a deposed
    /// master's writes the way they bounce stale workers.
    master_epoch: AtomicU64,
    /// Listen address of the master that owns [`Master::master_epoch`]
    /// ("" when unknown) — a restarted master replaying a journal whose
    /// newest epoch belongs to a *different* address starts fenced.
    owner_addr: Mutex<String>,
    /// Set once a successor deposes this master; a fenced master serves
    /// only redirects.
    fenced: AtomicBool,
    /// The successor's advertised meta address, for redirect replies.
    successor: Mutex<Option<String>>,
    /// The write-ahead op-log, when durability is enabled
    /// ([`Master::enable_journal`]). Mutators append while holding
    /// their state lock, so journal order is mutation order.
    journal: RwLock<Option<Arc<MetaLog>>>,
}

impl Default for Master {
    fn default() -> Self {
        Master {
            files: RwLock::default(),
            integrity: RwLock::default(),
            health: RwLock::default(),
            threshold: AtomicU32::new(SUSPICION_THRESHOLD),
            repairing: Mutex::new(HashSet::new()),
            repair_log: Mutex::new(Vec::new()),
            master_epoch: AtomicU64::new(1),
            owner_addr: Mutex::new(String::new()),
            fenced: AtomicBool::new(false),
            successor: Mutex::new(None),
            journal: RwLock::new(None),
        }
    }
}

impl Master {
    /// An empty master.
    pub fn new() -> Self {
        Master::default()
    }

    /// Appends one op to the journal, when durability is enabled.
    /// Callers hold the state lock the op describes, so journal order
    /// is mutation order (the replay-fidelity invariant).
    fn journal_op(&self, op: &MetaOp) {
        if let Some(log) = self.journal.read().as_ref() {
            log.append(op);
        }
    }

    /// Attaches a write-ahead op-log: every subsequent mutation is
    /// journalled. Call after replaying the log's existing contents
    /// ([`Master::recover`] does both).
    pub fn enable_journal(&self, log: Arc<MetaLog>) {
        *self.journal.write() = Some(log);
    }

    /// Detaches the op-log: subsequent mutations are no longer
    /// journalled. The in-process stand-in for `kill -9` — a deposed
    /// master object kept around as a zombie must not keep appending to
    /// the shared meta tier its successor now owns.
    pub fn detach_journal(&self) {
        *self.journal.write() = None;
    }

    /// The attached op-log, if durability is enabled.
    pub fn journal_handle(&self) -> Option<Arc<MetaLog>> {
        self.journal.read().clone()
    }

    /// `(next_lsn, record bytes)` for every journalled op with
    /// `lsn >= from` — the `LogTail` payload a standby replays. The
    /// newest snapshot record is prepended when `from` predates the
    /// retained tail. `(0, empty)` when no journal is attached.
    pub fn journal_tail(&self, from: u64) -> (u64, Vec<u8>) {
        match self.journal.read().as_ref() {
            Some(log) => log.tail_from(from),
            None => (0, Vec::new()),
        }
    }

    /// The journal's next LSN without materializing a tail (0 when no
    /// journal is attached) — the standby's cheap lag probe.
    pub fn journal_next_lsn(&self) -> u64 {
        self.journal.read().as_ref().map_or(0, |log| log.next_lsn())
    }

    /// Rebuilds a master from the journal held by `tier`'s metadata
    /// region (newest snapshot + tail) and attaches a log so new
    /// mutations keep journalling — the boot path of a durable master
    /// and the takeover path of a standby.
    pub fn recover(tier: Arc<crate::backing::UnderStore>) -> Self {
        let master = Master::new();
        for (_, op) in MetaLog::replay_tier(&tier) {
            master.apply_op(&op);
        }
        master.enable_journal(Arc::new(MetaLog::open(tier)));
        master
    }

    /// The current master epoch (1 for a freshly booted, never-deposed
    /// master).
    pub fn master_epoch(&self) -> u64 {
        self.master_epoch.load(Ordering::SeqCst)
    }

    /// Listen address of the master that owns the current epoch (""
    /// when unknown — e.g. journalling disabled).
    pub fn owner_addr(&self) -> String {
        self.owner_addr.lock().clone()
    }

    /// Claims master epoch `epoch` for `addr`: applied as `max`, and
    /// journalled so a replayed standby (or a restarted master) learns
    /// who last owned the metadata. Returns the resulting epoch.
    pub fn claim_master_epoch(&self, epoch: u64, addr: &str) -> u64 {
        let mut owner = self.owner_addr.lock();
        let cur = self.master_epoch.load(Ordering::SeqCst);
        let new = cur.max(epoch);
        if epoch >= cur {
            self.master_epoch.store(new, Ordering::SeqCst);
            *owner = addr.to_string();
        }
        self.journal_op(&MetaOp::MasterEpoch {
            epoch: new,
            addr: owner.clone(),
        });
        new
    }

    /// Whether this master has been deposed by a successor.
    pub fn is_fenced(&self) -> bool {
        self.fenced.load(Ordering::SeqCst)
    }

    /// Deposes this master: it stops serving mutations and answers
    /// redirects pointing at `successor` (empty = unknown). Idempotent;
    /// fencing is forever — only a fresh process (with a fresh claim)
    /// serves again.
    pub fn self_fence(&self, successor: Option<String>) {
        if let Some(s) = successor {
            *self.successor.lock() = Some(s);
        }
        self.fenced.store(true, Ordering::SeqCst);
    }

    /// The successor's meta address, once known.
    pub fn successor(&self) -> Option<String> {
        self.successor.lock().clone()
    }

    /// Marks this master active (standby promotion). The inverse of
    /// [`Master::self_fence`], legal only on a shadow master that was
    /// never exposed as active.
    pub fn activate(&self) {
        *self.successor.lock() = None;
        self.fenced.store(false, Ordering::SeqCst);
    }

    /// A full-state image: everything a replica needs to serve in this
    /// master's place (placements + versions, health, epochs, repair
    /// slots, master epoch). Volatile observability (access counters,
    /// heartbeat counts, repair history) is excluded by design.
    pub fn image(&self) -> MasterImage {
        let files = self.files.read();
        let integrity = self.integrity.read();
        let h = self.health.read();
        let owner = self.owner_addr.lock();
        let repairing = self.repairing.lock();
        Self::image_from(
            &files,
            &integrity,
            &h,
            &repairing,
            self.threshold.load(Ordering::Relaxed),
        )
        .with_owner(self.master_epoch.load(Ordering::SeqCst), owner.clone())
    }

    fn image_from(
        files: &HashMap<u64, FileInfo>,
        integrity: &HashMap<u64, FileIntegrity>,
        h: &Health,
        repairing: &HashSet<u64>,
        threshold: u32,
    ) -> MasterImage {
        let mut file_rows: Vec<(u64, u64, Vec<usize>, u64)> = files
            .iter()
            .map(|(&id, info)| {
                (
                    id,
                    info.size as u64,
                    info.servers.clone(),
                    info.version.load(Ordering::Relaxed),
                )
            })
            .collect();
        file_rows.sort_unstable_by_key(|&(id, ..)| id);
        let mut rep: Vec<u64> = repairing.iter().copied().collect();
        rep.sort_unstable();
        let (mut alive, mut suspicion, mut epochs) =
            (h.alive.clone(), h.suspicion.clone(), h.epochs.clone());
        // Canonical form: trim trailing presumed-alive defaults, so a
        // replayed twin (which only learns of workers through ops)
        // images identically to a master whose table was pre-sized.
        while let Some(last) = alive.len().checked_sub(1) {
            if alive[last] && suspicion[last] == 0 && epochs[last] == 0 {
                alive.pop();
                suspicion.pop();
                epochs.pop();
            } else {
                break;
            }
        }
        let mut integrity_rows: Vec<(u64, FileIntegrity)> = integrity
            .iter()
            .map(|(&id, row)| (id, row.clone()))
            .collect();
        integrity_rows.sort_unstable_by_key(|&(id, _)| id);
        MasterImage {
            files: file_rows,
            alive,
            suspicion,
            epochs,
            threshold,
            repairing: rep,
            integrity: integrity_rows,
            ..MasterImage::default()
        }
    }

    /// Installs a full-state image (the snapshot replay path).
    fn load_image(&self, img: &MasterImage) {
        let mut files = self.files.write();
        files.clear();
        for (id, size, servers, version) in &img.files {
            files.insert(
                *id,
                FileInfo {
                    size: *size as usize,
                    servers: servers.clone(),
                    accesses: AtomicU64::new(0),
                    version: AtomicU64::new(*version),
                },
            );
        }
        drop(files);
        *self.integrity.write() = img.integrity.iter().cloned().collect();
        let mut h = self.health.write();
        h.alive = img.alive.clone();
        h.suspicion = img.suspicion.clone();
        h.epochs = img.epochs.clone();
        h.last_seen.resize(img.alive.len(), 0);
        drop(h);
        self.threshold.store(img.threshold.max(1), Ordering::Relaxed);
        *self.repairing.lock() = img.repairing.iter().copied().collect();
        let mut owner = self.owner_addr.lock();
        if img.master_epoch >= self.master_epoch.load(Ordering::SeqCst) {
            self.master_epoch.store(img.master_epoch, Ordering::SeqCst);
            *owner = img.master_addr.clone();
        }
    }

    /// Applies one journalled op to local state **without**
    /// re-journalling — the replay path. Ops carry absolute values, so
    /// applying any op twice (or replaying any prefix twice) is
    /// idempotent.
    pub fn apply_op(&self, op: &MetaOp) {
        match op {
            MetaOp::RegisterFile { id, size, servers } => {
                // Overwrite, not error: replay after a snapshot that
                // already contains the file must converge, not fail.
                self.files.write().insert(
                    *id,
                    FileInfo {
                        size: *size as usize,
                        servers: servers.clone(),
                        accesses: AtomicU64::new(0),
                        version: AtomicU64::new(1),
                    },
                );
            }
            MetaOp::UnregisterFile { id } => {
                self.files.write().remove(id);
                self.integrity.write().remove(id);
            }
            MetaOp::ApplyPlacement { id, servers, version } => {
                if let Some(info) = self.files.write().get_mut(id) {
                    info.servers = servers.clone();
                    info.version.store(*version, Ordering::Relaxed);
                }
                // A placement swap re-splits the bytes: every stored
                // checksum (and parity row) is invalidated. Derived from
                // the op itself, so replay converges without an extra
                // journal record.
                self.integrity.write().remove(id);
            }
            MetaOp::RegisterWorker { w, epoch } => {
                let w = *w as usize;
                let mut h = self.health.write();
                h.ensure(w + 1);
                h.epochs[w] = h.epochs[w].max(*epoch);
                h.alive[w] = true;
                h.suspicion[w] = 0;
            }
            MetaOp::MarkAlive { w } => {
                let w = *w as usize;
                let mut h = self.health.write();
                h.ensure(w + 1);
                h.alive[w] = true;
                h.suspicion[w] = 0;
            }
            MetaOp::MarkDead { w, epoch } => {
                let w = *w as usize;
                let mut h = self.health.write();
                h.ensure(w + 1);
                h.alive[w] = false;
                h.epochs[w] = h.epochs[w].max(*epoch);
            }
            MetaOp::Suspect { w, count, alive, epoch } => {
                let w = *w as usize;
                let mut h = self.health.write();
                h.ensure(w + 1);
                h.suspicion[w] = *count;
                h.alive[w] = *alive;
                h.epochs[w] = h.epochs[w].max(*epoch);
            }
            MetaOp::BeginRepair { id } => {
                // The repair *history* stays replay-local: replayed
                // slots are state, not heal attempts.
                self.repairing.lock().insert(*id);
            }
            MetaOp::EndRepair { id } => {
                self.repairing.lock().remove(id);
            }
            MetaOp::SetThreshold { threshold } => {
                self.threshold.store((*threshold).max(1), Ordering::Relaxed);
            }
            MetaOp::MasterEpoch { epoch, addr } => {
                let mut owner = self.owner_addr.lock();
                if *epoch >= self.master_epoch.load(Ordering::SeqCst) {
                    self.master_epoch.store(*epoch, Ordering::SeqCst);
                    *owner = addr.clone();
                }
            }
            MetaOp::SetIntegrity { id, integrity } => {
                if integrity.is_empty() {
                    self.integrity.write().remove(id);
                } else {
                    self.integrity.write().insert(*id, integrity.clone());
                }
            }
            MetaOp::Snapshot(img) => self.load_image(img),
        }
    }

    /// Writes a compacted snapshot if enough records accumulated since
    /// the last one. Blocks mutators for the duration of the image
    /// capture (read locks + the repair-slot mutex), so no op can slip
    /// between the image and the snapshot record's LSN — the
    /// no-lost-op compaction invariant. Call from a maintenance tick
    /// (the supervisor does), never from inside a mutator.
    pub fn maybe_compact(&self) {
        let Some(log) = self.journal.read().clone() else {
            return;
        };
        if !log.snapshot_due() {
            return;
        }
        let files = self.files.read();
        let integrity = self.integrity.read();
        let h = self.health.read();
        let owner = self.owner_addr.lock();
        let repairing = self.repairing.lock();
        let image = Self::image_from(
            &files,
            &integrity,
            &h,
            &repairing,
            self.threshold.load(Ordering::Relaxed),
        )
        .with_owner(self.master_epoch.load(Ordering::SeqCst), owner.clone());
        log.snapshot(&image);
    }

    /// Registers many files under one lock acquisition (the streaming
    /// seed path for million-file corpora).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::AlreadyExists`] on the first duplicate id;
    /// earlier entries in the batch stay registered.
    pub fn register_batch(&self, entries: &[(u64, usize, Vec<usize>)]) -> Result<(), StoreError> {
        let mut files = self.files.write();
        for (id, size, servers) in entries {
            assert!(!servers.is_empty(), "file must have at least one partition");
            if files.contains_key(id) {
                return Err(StoreError::AlreadyExists(*id));
            }
            files.insert(
                *id,
                FileInfo {
                    size: *size,
                    servers: servers.clone(),
                    accesses: AtomicU64::new(0),
                    version: AtomicU64::new(1),
                },
            );
            self.journal_op(&MetaOp::RegisterFile {
                id: *id,
                size: *size as u64,
                servers: servers.clone(),
            });
        }
        Ok(())
    }

    /// Overrides the suspicion-ladder death threshold (default 3
    /// consecutive timeouts). Clamped to at least 1.
    pub fn set_suspicion_threshold(&self, threshold: u32) {
        // The health lock serializes the store+journal pair against a
        // concurrent compaction's image capture.
        let _h = self.health.write();
        self.threshold.store(threshold.max(1), Ordering::Relaxed);
        self.journal_op(&MetaOp::SetThreshold {
            threshold: threshold.max(1),
        });
    }

    /// Pre-sizes the health table for a fleet of `n` workers, all
    /// presumed alive. Called by the cluster at spawn; growing later
    /// (on first mention of a higher worker id) is also fine.
    pub fn ensure_workers(&self, n: usize) {
        self.health.write().ensure(n);
    }

    /// Records a sign of life from worker `w` (heartbeat reply or any
    /// successful response): clears suspicion and revives the worker.
    pub fn mark_alive(&self, w: usize) {
        let mut h = self.health.write();
        h.ensure(w + 1);
        // Journal only actual transitions — mark_alive fires on every
        // successful reply, and a quiet fleet must not grow the log.
        let changed = !h.alive[w] || h.suspicion[w] != 0;
        h.alive[w] = true;
        h.suspicion[w] = 0;
        h.last_seen[w] += 1;
        if changed {
            self.journal_op(&MetaOp::MarkAlive { w: w as u64 });
        }
    }

    /// Declares worker `w` dead (its request channel is closed — the
    /// definitive signal in this in-process cluster). The first
    /// alive→dead transition bumps the worker's fencing epoch, so any
    /// epoch the worker was granted before its death is now stale.
    pub fn mark_dead(&self, w: usize) {
        let mut h = self.health.write();
        h.ensure(w + 1);
        if h.alive[w] {
            h.epochs[w] += 1;
            h.alive[w] = false;
            self.journal_op(&MetaOp::MarkDead {
                w: w as u64,
                epoch: h.epochs[w],
            });
        }
        h.alive[w] = false;
    }

    /// Records a timeout against worker `w` (it may be hung rather than
    /// dead). After the configured threshold of consecutive timeouts
    /// (default 3, see [`Master::set_suspicion_threshold`]) the worker
    /// is declared dead. Returns the updated suspicion count.
    pub fn suspect(&self, w: usize) -> u32 {
        let threshold = self.threshold.load(Ordering::Relaxed);
        let mut h = self.health.write();
        h.ensure(w + 1);
        h.suspicion[w] += 1;
        if h.suspicion[w] >= threshold {
            if h.alive[w] {
                h.epochs[w] += 1;
            }
            h.alive[w] = false;
        }
        self.journal_op(&MetaOp::Suspect {
            w: w as u64,
            count: h.suspicion[w],
            alive: h.alive[w],
            epoch: h.epochs[w],
        });
        h.suspicion[w]
    }

    /// Grants worker `w` a fresh fencing epoch and revives it — the
    /// rejoin path for a crash-restarted (or newly adopted) worker.
    /// Returns the granted epoch; the caller must install it on the
    /// worker (`Request::SetEpoch`) before routing fenced traffic to
    /// it.
    pub fn register_worker(&self, w: usize) -> u64 {
        let mut h = self.health.write();
        h.ensure(w + 1);
        h.epochs[w] += 1;
        h.alive[w] = true;
        h.suspicion[w] = 0;
        self.journal_op(&MetaOp::RegisterWorker {
            w: w as u64,
            epoch: h.epochs[w],
        });
        h.epochs[w]
    }

    /// The fencing epoch table for workers `0..n` (0 = never
    /// registered).
    pub fn worker_epochs(&self, n: usize) -> Vec<u64> {
        let h = self.health.read();
        (0..n).map(|w| h.epochs.get(w).copied().unwrap_or(0)).collect()
    }

    /// Tries to acquire the repair slot for file `id`. Returns `false`
    /// if a repair is already in flight — the caller must NOT heal the
    /// file (the sweep/lazy-repair dedup contract). On `true` the
    /// caller owns the slot and must release it with
    /// [`Master::end_repair`] when the repair completes or aborts.
    pub fn begin_repair(&self, id: u64) -> bool {
        let mut repairing = self.repairing.lock();
        let acquired = repairing.insert(id);
        if acquired {
            self.repair_log.lock().push(id);
            self.journal_op(&MetaOp::BeginRepair { id });
        }
        acquired
    }

    /// Releases the repair slot for file `id`.
    pub fn end_repair(&self, id: u64) {
        let mut repairing = self.repairing.lock();
        if repairing.remove(&id) {
            self.journal_op(&MetaOp::EndRepair { id });
        }
    }

    /// Releases every in-flight repair slot, journalling an `EndRepair`
    /// for each; returns the released ids, ascending. Takeover hygiene:
    /// the healers holding these slots died with the old master, and a
    /// slot nobody holds would starve the file's repair forever (every
    /// future `begin_repair` would be refused).
    pub fn abandon_repairs(&self) -> Vec<u64> {
        let mut repairing = self.repairing.lock();
        let mut ids: Vec<u64> = repairing.iter().copied().collect();
        ids.sort_unstable();
        for id in &ids {
            self.journal_op(&MetaOp::EndRepair { id: *id });
        }
        repairing.clear();
        ids
    }

    /// Whether a repair of `id` is currently in flight.
    pub fn repairing(&self, id: u64) -> bool {
        self.repairing.lock().contains(&id)
    }

    /// Every repair-slot acquisition so far, in order. Each entry is
    /// one actual heal attempt; a file appearing twice means it was
    /// healed twice (sequentially — concurrent duplicates are
    /// impossible by construction).
    pub fn repair_history(&self) -> Vec<u64> {
        self.repair_log.lock().clone()
    }

    /// Whether worker `w` is believed alive (unknown workers are).
    pub fn is_alive(&self, w: usize) -> bool {
        self.health.read().alive.get(w).copied().unwrap_or(true)
    }

    /// Heartbeats observed from worker `w`.
    pub fn heartbeats(&self, w: usize) -> u64 {
        self.health.read().last_seen.get(w).copied().unwrap_or(0)
    }

    /// The live subset of workers `0..n`, ascending.
    pub fn live_workers(&self, n: usize) -> Vec<usize> {
        let h = self.health.read();
        (0..n)
            .filter(|&w| h.alive.get(w).copied().unwrap_or(true))
            .collect()
    }

    /// Ids of files with at least one partition on a dead worker — the
    /// candidates for under-store recovery.
    pub fn degraded_files(&self) -> Vec<u64> {
        let files = self.files.read();
        let h = self.health.read();
        let mut ids: Vec<u64> = files
            .iter()
            .filter(|(_, info)| {
                info.servers
                    .iter()
                    .any(|&s| !h.alive.get(s).copied().unwrap_or(true))
            })
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Registers a new file.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::AlreadyExists`] if the id is taken.
    pub fn register(&self, id: u64, size: usize, servers: Vec<usize>) -> Result<(), StoreError> {
        assert!(!servers.is_empty(), "file must have at least one partition");
        let mut files = self.files.write();
        if files.contains_key(&id) {
            return Err(StoreError::AlreadyExists(id));
        }
        self.journal_op(&MetaOp::RegisterFile {
            id,
            size: size as u64,
            servers: servers.clone(),
        });
        files.insert(
            id,
            FileInfo {
                size,
                servers,
                accesses: AtomicU64::new(0),
                version: AtomicU64::new(1),
            },
        );
        Ok(())
    }

    /// Removes a file's metadata; returns its former info if present.
    pub fn unregister(&self, id: u64) -> Option<FileInfo> {
        let mut files = self.files.write();
        let removed = files.remove(&id);
        if removed.is_some() {
            self.integrity.write().remove(&id);
            self.journal_op(&MetaOp::UnregisterFile { id });
        }
        removed
    }

    /// Installs (or, with an empty row, clears) file `id`'s integrity
    /// row: the per-partition checksums a verifying reader checks
    /// received bytes against, plus where the parity partitions live.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::UnknownFile`] if the file is not
    /// registered — a row must never outlive (or predate) its file.
    pub fn set_integrity(&self, id: u64, integrity: FileIntegrity) -> Result<(), StoreError> {
        // The files read lock orders this against a concurrent
        // unregister; the integrity write lock serializes the
        // store+journal pair.
        let files = self.files.read();
        if !files.contains_key(&id) {
            return Err(StoreError::UnknownFile(id));
        }
        let mut rows = self.integrity.write();
        self.journal_op(&MetaOp::SetIntegrity {
            id,
            integrity: integrity.clone(),
        });
        if integrity.is_empty() {
            rows.remove(&id);
        } else {
            rows.insert(id, integrity);
        }
        Ok(())
    }

    /// File `id`'s integrity row, if one was set (and not invalidated by
    /// a placement change since).
    pub fn integrity(&self, id: u64) -> Option<FileIntegrity> {
        self.integrity.read().get(&id).cloned()
    }

    /// Looks up a file's partition servers and size, bumping its access
    /// count (the read path, §6.1).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::UnknownFile`] if not registered.
    pub fn locate(&self, id: u64) -> Result<(usize, Vec<usize>), StoreError> {
        let files = self.files.read();
        let info = files.get(&id).ok_or(StoreError::UnknownFile(id))?;
        info.accesses.fetch_add(1, Ordering::Relaxed);
        Ok((info.size, info.servers.clone()))
    }

    /// Like [`Master::locate`] but without counting an access (metadata
    /// inspection).
    pub fn peek(&self, id: u64) -> Result<(usize, Vec<usize>), StoreError> {
        let files = self.files.read();
        let info = files.get(&id).ok_or(StoreError::UnknownFile(id))?;
        Ok((info.size, info.servers.clone()))
    }

    /// Number of registered files.
    pub fn file_count(&self) -> usize {
        self.files.read().len()
    }

    /// Access count of one file.
    pub fn accesses(&self, id: u64) -> u64 {
        self.files
            .read()
            .get(&id)
            .map_or(0, |i| i.accesses.load(Ordering::Relaxed))
    }

    /// Resets all access counters (start of a new measurement window; the
    /// paper repartitions every 12 h on the previous 24 h of counts).
    pub fn reset_accesses(&self) {
        for info in self.files.read().values() {
            info.accesses.store(0, Ordering::Relaxed);
        }
    }

    /// A snapshot `(ids, FileSet, PartitionMap)` of the current state with
    /// popularity estimated from access counts (uniform when no accesses
    /// were recorded yet). `n_workers` bounds the partition map.
    pub fn snapshot(&self, n_workers: usize) -> (Vec<u64>, FileSet, PartitionMap) {
        let files = self.files.read();
        assert!(!files.is_empty(), "snapshot of an empty master");
        let mut ids: Vec<u64> = files.keys().copied().collect();
        ids.sort_unstable();
        let total_acc: u64 = files
            .values()
            .map(|i| i.accesses.load(Ordering::Relaxed))
            .sum();
        let metas: Vec<FileMeta> = ids
            .iter()
            .map(|id| {
                let info = &files[id];
                let pop = if total_acc == 0 {
                    1.0 / files.len() as f64
                } else {
                    info.accesses.load(Ordering::Relaxed) as f64 / total_acc as f64
                };
                // FileMeta requires a strictly positive popularity-free
                // size; popularity 0 is fine.
                FileMeta::new(info.size.max(1) as f64, pop)
            })
            .collect();
        let placements: Vec<Vec<usize>> = ids.iter().map(|id| files[id].servers.clone()).collect();
        (
            ids,
            FileSet::new(metas),
            PartitionMap::new(placements, n_workers),
        )
    }

    /// Plans a rebalance: runs Algorithm 1 on the observed popularity,
    /// derives new partition counts, and runs Algorithm 2 against the
    /// current placement. Returns `(ids, plan, tuned)`; apply with
    /// [`Master::apply_placement`] after the repartitioners have moved
    /// the bytes.
    pub fn plan_rebalance(
        &self,
        n_workers: usize,
        bandwidth: f64,
        lambda_total: f64,
        cfg: &TunerConfig,
        seed: u64,
    ) -> (Vec<u64>, RepartitionPlan, Tuned) {
        let (ids, fileset, map) = self.snapshot(n_workers);
        let live = self.live_workers(n_workers);
        assert!(!live.is_empty(), "no live workers to plan against");
        let tuned =
            tune_scale_factor_hetero(&fileset, &vec![bandwidth; n_workers], lambda_total, cfg);
        // A file cannot be split across more servers than are alive.
        let new_counts: Vec<usize> = fileset
            .partition_counts(tuned.alpha)
            .into_iter()
            .map(|k| k.min(live.len()))
            .collect();
        let mut rng = Xoshiro256StarStar::seed(seed);
        let mut plan = plan_repartition(&fileset, &map, &new_counts, &mut rng);
        if live.len() < n_workers {
            remap_dead_targets(&mut plan, &live);
        }
        (ids, plan, tuned)
    }

    /// Returns every registered file id with its current servers
    /// (sorted by id) — the health scan used by recovery.
    pub fn placements(&self) -> Vec<(u64, Vec<usize>)> {
        let files = self.files.read();
        let mut out: Vec<(u64, Vec<usize>)> = files
            .iter()
            .map(|(&id, info)| (id, info.servers.clone()))
            .collect();
        out.sort_unstable_by_key(|&(id, _)| id);
        out
    }

    /// Atomically installs a new placement for `id`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::UnknownFile`] if not registered.
    pub fn apply_placement(&self, id: u64, servers: Vec<usize>) -> Result<(), StoreError> {
        assert!(!servers.is_empty());
        let mut files = self.files.write();
        let info = files.get_mut(&id).ok_or(StoreError::UnknownFile(id))?;
        info.servers = servers;
        let version = info.version.fetch_add(1, Ordering::Relaxed) + 1;
        // The new placement re-splits the bytes: every stored checksum
        // is stale. Writers that know the fresh sums (recovery) re-set
        // the row afterwards.
        self.integrity.write().remove(&id);
        self.journal_op(&MetaOp::ApplyPlacement {
            id,
            servers: info.servers.clone(),
            version,
        });
        Ok(())
    }

    /// The placement version of file `id` (1 at registration, +1 per
    /// [`Master::apply_placement`]); `None` if unregistered. Sweeps
    /// compare this against the version they captured at enumeration
    /// to detect placements that moved under them.
    pub fn placement_version(&self, id: u64) -> Option<u64> {
        self.files
            .read()
            .get(&id)
            .map(|info| info.version.load(Ordering::Relaxed))
    }
}

/// The metadata-plane surface a client needs from its master: file
/// registration and lookup, placement swaps, and worker-health
/// reporting.
///
/// Two implementations exist: [`Master`] itself (the in-process
/// metadata service, also what a master *server* wraps) and
/// `spcache_net::MasterClient` (the same calls framed onto a TCP
/// connection). The client and the under-store recovery path are
/// written against this trait, so they work identically in both
/// deployments.
pub trait MetaService: Send + Sync + std::fmt::Debug {
    /// Registers a new file (see [`Master::register`]).
    ///
    /// # Errors
    ///
    /// [`StoreError::AlreadyExists`] if the id is taken; transport
    /// errors over the wire.
    fn register(&self, id: u64, size: usize, servers: Vec<usize>) -> Result<(), StoreError>;

    /// Removes a file's metadata, returning its former `(size, servers)`
    /// if it was registered.
    fn unregister_file(&self, id: u64) -> Option<(usize, Vec<usize>)>;

    /// Looks up `(size, servers)`, counting an access.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownFile`]; transport errors over the wire.
    fn locate(&self, id: u64) -> Result<(usize, Vec<usize>), StoreError>;

    /// Looks up `(size, servers)` without counting an access.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownFile`]; transport errors over the wire.
    fn peek(&self, id: u64) -> Result<(usize, Vec<usize>), StoreError>;

    /// Atomically installs a new placement for `id`.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownFile`]; transport errors over the wire.
    fn apply_placement(&self, id: u64, servers: Vec<usize>) -> Result<(), StoreError>;

    /// Reports a sign of life from worker `w`.
    fn mark_alive(&self, w: usize);

    /// Declares worker `w` dead.
    fn mark_dead(&self, w: usize);

    /// Reports a timeout against worker `w`; returns the suspicion
    /// count (0 when the report could not be delivered).
    fn suspect(&self, w: usize) -> u32;

    /// Whether worker `w` is believed alive.
    fn is_alive(&self, w: usize) -> bool;

    /// The live subset of workers `0..n`, ascending.
    fn live_workers(&self, n: usize) -> Vec<usize>;

    /// Files with at least one partition on a dead worker.
    fn degraded_files(&self) -> Vec<u64>;

    /// The fencing epoch table for workers `0..n` (0 = unregistered;
    /// an empty vector over the wire means "unknown — do not fence").
    fn worker_epochs(&self, n: usize) -> Vec<u64>;

    /// Grants worker `w` a fresh fencing epoch and revives it (the
    /// rejoin path). Returns the granted epoch, or 0 when the grant
    /// could not be delivered over the wire.
    fn register_worker(&self, w: usize) -> u64;

    /// Tries to acquire the repair slot for file `id` (sweep/lazy
    /// dedup). `false` = a repair is already in flight, do not heal.
    /// Implementations that cannot reach the master answer `true`
    /// (availability over strict dedup).
    fn begin_repair(&self, id: u64) -> bool;

    /// Releases the repair slot for file `id`.
    fn end_repair(&self, id: u64);

    /// The master epoch this service acts under. 0 means "unstamped" —
    /// workers skip the master-staleness check, the pre-§4.14 wire
    /// behaviour. Only services that act *for* a master (the
    /// supervisor's) override this.
    fn master_epoch(&self) -> u64 {
        0
    }

    /// Registers a batch of `(id, size, servers)` files in one call —
    /// the streaming seed path. Default: loop over
    /// [`MetaService::register`] (wire implementations batch it into
    /// one frame).
    ///
    /// # Errors
    ///
    /// [`StoreError::AlreadyExists`] on a duplicate id; transport
    /// errors over the wire.
    fn register_batch(&self, entries: &[(u64, usize, Vec<usize>)]) -> Result<(), StoreError> {
        for (id, size, servers) in entries {
            self.register(*id, *size, servers.clone())?;
        }
        Ok(())
    }

    /// Installs file `id`'s integrity row (checksums + parity
    /// placement). Default: accepted and dropped — services without the
    /// integrity tier behave like the pre-integrity store.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownFile`]; transport errors over the wire.
    fn set_integrity(&self, _id: u64, _integrity: FileIntegrity) -> Result<(), StoreError> {
        Ok(())
    }

    /// File `id`'s integrity row, `None` when absent/invalidated — and,
    /// availability-biased, when the service cannot answer (readers
    /// degrade to unverified rather than fail).
    fn integrity(&self, _id: u64) -> Option<FileIntegrity> {
        None
    }
}

impl MetaService for Master {
    fn register(&self, id: u64, size: usize, servers: Vec<usize>) -> Result<(), StoreError> {
        Master::register(self, id, size, servers)
    }

    fn unregister_file(&self, id: u64) -> Option<(usize, Vec<usize>)> {
        Master::unregister(self, id).map(|info| (info.size, info.servers))
    }

    fn locate(&self, id: u64) -> Result<(usize, Vec<usize>), StoreError> {
        Master::locate(self, id)
    }

    fn peek(&self, id: u64) -> Result<(usize, Vec<usize>), StoreError> {
        Master::peek(self, id)
    }

    fn apply_placement(&self, id: u64, servers: Vec<usize>) -> Result<(), StoreError> {
        Master::apply_placement(self, id, servers)
    }

    fn mark_alive(&self, w: usize) {
        Master::mark_alive(self, w)
    }

    fn mark_dead(&self, w: usize) {
        Master::mark_dead(self, w)
    }

    fn suspect(&self, w: usize) -> u32 {
        Master::suspect(self, w)
    }

    fn is_alive(&self, w: usize) -> bool {
        Master::is_alive(self, w)
    }

    fn live_workers(&self, n: usize) -> Vec<usize> {
        Master::live_workers(self, n)
    }

    fn degraded_files(&self) -> Vec<u64> {
        Master::degraded_files(self)
    }

    fn worker_epochs(&self, n: usize) -> Vec<u64> {
        Master::worker_epochs(self, n)
    }

    fn register_worker(&self, w: usize) -> u64 {
        Master::register_worker(self, w)
    }

    fn begin_repair(&self, id: u64) -> bool {
        Master::begin_repair(self, id)
    }

    fn end_repair(&self, id: u64) {
        Master::end_repair(self, id)
    }

    fn master_epoch(&self) -> u64 {
        Master::master_epoch(self)
    }

    fn register_batch(&self, entries: &[(u64, usize, Vec<usize>)]) -> Result<(), StoreError> {
        Master::register_batch(self, entries)
    }

    fn set_integrity(&self, id: u64, integrity: FileIntegrity) -> Result<(), StoreError> {
        Master::set_integrity(self, id, integrity)
    }

    fn integrity(&self, id: u64) -> Option<FileIntegrity> {
        Master::integrity(self, id)
    }
}

/// Rewrites a repartition plan so no job targets a dead worker: every
/// dead target is replaced by the lowest-indexed live worker not already
/// serving another partition of the same file, preserving the
/// distinct-server invariant. Deterministic (no RNG), so replanning
/// after the same failure yields the same placement.
///
/// # Panics
///
/// Panics if a job needs more targets than there are live workers —
/// callers must clamp partition counts to the live fleet first (as
/// [`Master::plan_rebalance`] does).
pub fn remap_dead_targets(plan: &mut RepartitionPlan, live: &[usize]) {
    let is_live = |w: usize| live.binary_search(&w).is_ok();
    for job in &mut plan.jobs {
        assert!(
            job.new_servers.len() <= live.len(),
            "job wants {} targets but only {} workers are alive",
            job.new_servers.len(),
            live.len()
        );
        for i in 0..job.new_servers.len() {
            if is_live(job.new_servers[i]) {
                continue;
            }
            let replacement = live
                .iter()
                .copied()
                .find(|w| !job.new_servers.contains(w))
                .expect("live fleet exhausted despite clamp");
            job.new_servers[i] = replacement;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_locate_roundtrip() {
        let m = Master::new();
        m.register(7, 1000, vec![0, 2]).unwrap();
        let (size, servers) = m.locate(7).unwrap();
        assert_eq!(size, 1000);
        assert_eq!(servers, vec![0, 2]);
        assert_eq!(m.accesses(7), 1);
    }

    #[test]
    fn duplicate_registration_rejected() {
        let m = Master::new();
        m.register(1, 10, vec![0]).unwrap();
        assert_eq!(
            m.register(1, 10, vec![1]),
            Err(StoreError::AlreadyExists(1))
        );
    }

    #[test]
    fn unknown_file_errors() {
        let m = Master::new();
        assert_eq!(m.locate(5).unwrap_err(), StoreError::UnknownFile(5));
        assert_eq!(m.peek(5).unwrap_err(), StoreError::UnknownFile(5));
    }

    #[test]
    fn peek_does_not_count() {
        let m = Master::new();
        m.register(1, 10, vec![0]).unwrap();
        let _ = m.peek(1).unwrap();
        assert_eq!(m.accesses(1), 0);
    }

    #[test]
    fn integrity_rows_follow_the_file_lifecycle() {
        let m = Master::new();
        assert_eq!(
            m.set_integrity(5, FileIntegrity::data_only(vec![1])),
            Err(StoreError::UnknownFile(5)),
            "a row must not predate its file"
        );
        m.register(5, 100, vec![0, 1]).unwrap();
        assert_eq!(m.integrity(5), None);
        let row = FileIntegrity {
            sums: vec![11, 22],
            parity: vec![(2, 33)],
        };
        m.set_integrity(5, row.clone()).unwrap();
        assert_eq!(m.integrity(5), Some(row));
        // A placement swap re-splits the bytes: the row is invalidated.
        m.apply_placement(5, vec![1, 2, 0]).unwrap();
        assert_eq!(m.integrity(5), None, "apply_placement must clear the row");
        // Re-set (the recovery path does this), then clear explicitly.
        m.set_integrity(5, FileIntegrity::data_only(vec![7, 8, 9]))
            .unwrap();
        m.set_integrity(5, FileIntegrity::default()).unwrap();
        assert_eq!(m.integrity(5), None);
        // Unregister drops any row.
        m.set_integrity(5, FileIntegrity::data_only(vec![1, 2, 3]))
            .unwrap();
        m.unregister(5);
        m.register(5, 100, vec![0, 1]).unwrap();
        assert_eq!(m.integrity(5), None, "rows must not survive the file");
    }

    #[test]
    fn integrity_rows_survive_journal_replay_and_snapshot() {
        use crate::backing::UnderStore;
        let tier = Arc::new(UnderStore::new());
        let m = Master::new();
        m.enable_journal(Arc::new(MetaLog::open(Arc::clone(&tier))));
        m.register(1, 64, vec![0, 1]).unwrap();
        m.register(2, 64, vec![1, 0]).unwrap();
        let row = FileIntegrity {
            sums: vec![5, 6],
            parity: vec![(2, 7)],
        };
        m.set_integrity(1, row.clone()).unwrap();
        m.set_integrity(2, FileIntegrity::data_only(vec![8, 9]))
            .unwrap();
        m.apply_placement(2, vec![0, 1]).unwrap(); // invalidates 2's row
        let twin = Master::recover(Arc::clone(&tier));
        assert_eq!(twin.integrity(1), Some(row.clone()));
        assert_eq!(twin.integrity(2), None);
        // And through a snapshot image round-trip.
        let img = m.image();
        let fresh = Master::new();
        fresh.apply_op(&MetaOp::Snapshot(img));
        assert_eq!(fresh.integrity(1), Some(row));
        assert_eq!(fresh.integrity(2), None);
    }

    #[test]
    fn access_counters_accumulate_and_reset() {
        let m = Master::new();
        m.register(1, 10, vec![0]).unwrap();
        for _ in 0..5 {
            let _ = m.locate(1);
        }
        assert_eq!(m.accesses(1), 5);
        m.reset_accesses();
        assert_eq!(m.accesses(1), 0);
    }

    #[test]
    fn snapshot_estimates_popularity_from_accesses() {
        let m = Master::new();
        m.register(0, 100, vec![0]).unwrap();
        m.register(1, 100, vec![1]).unwrap();
        for _ in 0..9 {
            let _ = m.locate(0);
        }
        let _ = m.locate(1);
        let (ids, fs, map) = m.snapshot(4);
        assert_eq!(ids, vec![0, 1]);
        assert!((fs.get(0).popularity - 0.9).abs() < 1e-12);
        assert!((fs.get(1).popularity - 0.1).abs() < 1e-12);
        assert_eq!(map.k_of(0), 1);
    }

    #[test]
    fn snapshot_uniform_when_no_accesses() {
        let m = Master::new();
        m.register(0, 100, vec![0]).unwrap();
        m.register(1, 100, vec![1]).unwrap();
        let (_, fs, _) = m.snapshot(2);
        assert!((fs.get(0).popularity - 0.5).abs() < 1e-12);
    }

    #[test]
    fn plan_rebalance_splits_hot_file() {
        let m = Master::new();
        for id in 0..20u64 {
            m.register(id, 50_000_000, vec![(id as usize) % 10]).unwrap();
        }
        // File 3 becomes very hot.
        for _ in 0..1000 {
            let _ = m.locate(3);
        }
        for id in 0..20u64 {
            let _ = m.locate(id);
        }
        let (ids, plan, tuned) = m.plan_rebalance(10, 125e6, 8.0, &TunerConfig::default(), 7);
        assert!(tuned.alpha > 0.0);
        let idx3 = ids.iter().position(|&i| i == 3).unwrap();
        assert!(
            plan.new_map.k_of(idx3) > 1,
            "hot file should be split, got k = {}",
            plan.new_map.k_of(idx3)
        );
    }

    #[test]
    fn apply_placement_swaps_servers() {
        let m = Master::new();
        m.register(1, 10, vec![0]).unwrap();
        m.apply_placement(1, vec![1, 2]).unwrap();
        assert_eq!(m.peek(1).unwrap().1, vec![1, 2]);
        assert_eq!(
            m.apply_placement(9, vec![0]),
            Err(StoreError::UnknownFile(9))
        );
    }

    #[test]
    fn health_suspicion_threshold_kills_and_mark_alive_revives() {
        let m = Master::new();
        m.ensure_workers(3);
        assert!(m.is_alive(1));
        assert_eq!(m.suspect(1), 1);
        assert_eq!(m.suspect(1), 2);
        assert!(m.is_alive(1), "two timeouts are not death");
        assert_eq!(m.suspect(1), 3);
        assert!(!m.is_alive(1), "third consecutive timeout is");
        m.mark_alive(1);
        assert!(m.is_alive(1));
        assert_eq!(m.suspect(1), 1, "suspicion was reset");
        assert_eq!(m.live_workers(3), vec![0, 1, 2]);
        m.mark_dead(0);
        assert_eq!(m.live_workers(3), vec![1, 2]);
        assert!(m.is_alive(7), "unknown workers are presumed alive");
    }

    #[test]
    fn epochs_fence_death_and_registration() {
        let m = Master::new();
        m.ensure_workers(3);
        assert_eq!(m.worker_epochs(3), vec![0, 0, 0]);
        // Registration grants the first epoch.
        assert_eq!(m.register_worker(0), 1);
        assert_eq!(m.register_worker(1), 1);
        // Death bumps the epoch exactly once, even under repeated
        // mark_dead calls from many error paths.
        m.mark_dead(1);
        m.mark_dead(1);
        m.mark_dead(1);
        assert_eq!(m.worker_epochs(3), vec![1, 2, 0]);
        // The rejoin grants a fresh epoch strictly above every epoch
        // the crashed incarnation could hold, and revives the worker.
        assert!(!m.is_alive(1));
        assert_eq!(m.register_worker(1), 3);
        assert!(m.is_alive(1));
        // Suspicion-ladder death also fences.
        m.set_suspicion_threshold(2);
        m.suspect(0);
        m.suspect(0);
        assert!(!m.is_alive(0));
        assert_eq!(m.worker_epochs(3), vec![2, 3, 0]);
    }

    #[test]
    fn configurable_suspicion_threshold() {
        let m = Master::new();
        m.ensure_workers(2);
        m.set_suspicion_threshold(1);
        m.suspect(0);
        assert!(!m.is_alive(0), "threshold 1 kills on the first miss");
        assert!(m.is_alive(1));
    }

    #[test]
    fn repair_registry_dedups_concurrent_heals() {
        let m = Master::new();
        assert!(m.begin_repair(7), "first acquisition wins");
        assert!(!m.begin_repair(7), "in-flight repair blocks a second");
        assert!(m.repairing(7));
        assert!(m.begin_repair(8), "other files are independent");
        m.end_repair(7);
        assert!(!m.repairing(7));
        assert!(m.begin_repair(7), "released slot can be re-acquired");
        // Only actual acquisitions are logged — the blocked attempt is
        // not a heal.
        assert_eq!(m.repair_history(), vec![7, 8, 7]);
    }

    #[test]
    fn degraded_files_flags_files_on_dead_workers() {
        let m = Master::new();
        m.ensure_workers(4);
        m.register(1, 10, vec![0, 1]).unwrap();
        m.register(2, 10, vec![2]).unwrap();
        m.register(3, 10, vec![3, 1]).unwrap();
        assert!(m.degraded_files().is_empty());
        m.mark_dead(1);
        assert_eq!(m.degraded_files(), vec![1, 3]);
    }

    #[test]
    fn plan_rebalance_avoids_dead_targets() {
        let m = Master::new();
        m.ensure_workers(10);
        for id in 0..20u64 {
            m.register(id, 50_000_000, vec![(id as usize) % 10]).unwrap();
        }
        for _ in 0..1000 {
            let _ = m.locate(3);
        }
        for id in 0..20u64 {
            let _ = m.locate(id);
        }
        m.mark_dead(4);
        m.mark_dead(7);
        let (_, plan, _) = m.plan_rebalance(10, 125e6, 8.0, &TunerConfig::default(), 7);
        for job in &plan.jobs {
            assert!(
                job.new_servers.iter().all(|&s| s != 4 && s != 7),
                "job targets a dead worker: {:?}",
                job.new_servers
            );
            let mut uniq = job.new_servers.clone();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len(), job.new_servers.len(), "duplicate targets");
        }
    }

    #[test]
    fn placement_version_counts_every_swap() {
        let m = Master::new();
        assert_eq!(m.placement_version(1), None);
        m.register(1, 10, vec![0]).unwrap();
        assert_eq!(m.placement_version(1), Some(1));
        m.apply_placement(1, vec![1]).unwrap();
        m.apply_placement(1, vec![2, 0]).unwrap();
        assert_eq!(m.placement_version(1), Some(3));
        // Reads and peeks do not move the placement version.
        let _ = m.locate(1).unwrap();
        let _ = m.peek(1).unwrap();
        assert_eq!(m.placement_version(1), Some(3));
    }

    #[test]
    fn placements_lists_all_files() {
        let m = Master::new();
        m.register(2, 10, vec![1]).unwrap();
        m.register(1, 20, vec![0, 2]).unwrap();
        assert_eq!(
            m.placements(),
            vec![(1, vec![0, 2]), (2, vec![1])]
        );
    }

    #[test]
    fn journalled_master_recovers_from_the_log() {
        use crate::backing::UnderStore;
        let tier = std::sync::Arc::new(UnderStore::new());
        let m = Master::recover(std::sync::Arc::clone(&tier));
        m.ensure_workers(4);
        assert_eq!(m.register_worker(0), 1);
        m.register(1, 100, vec![0, 1]).unwrap();
        m.register(2, 50, vec![2]).unwrap();
        m.apply_placement(1, vec![2, 3]).unwrap();
        m.mark_dead(2);
        m.set_suspicion_threshold(5);
        assert!(m.begin_repair(2));
        assert_eq!(m.claim_master_epoch(3, "127.0.0.1:9999"), 3);
        // A twin rebuilt purely from the journal matches exactly.
        let twin = Master::recover(tier);
        assert_eq!(twin.image(), m.image());
        assert_eq!(twin.peek(1).unwrap().1, vec![2, 3]);
        assert_eq!(twin.placement_version(1), Some(2));
        assert!(twin.repairing(2));
        assert!(!twin.is_alive(2));
        assert_eq!(twin.master_epoch(), 3);
        assert_eq!(twin.owner_addr(), "127.0.0.1:9999");
    }

    #[test]
    fn compaction_preserves_the_replayed_image() {
        use crate::backing::UnderStore;
        use crate::metalog::MetaLog;
        let tier = std::sync::Arc::new(UnderStore::new());
        let m = Master::new();
        m.enable_journal(std::sync::Arc::new(
            MetaLog::open(std::sync::Arc::clone(&tier)).with_snapshot_every(8),
        ));
        for id in 0..40u64 {
            m.register(id, 64, vec![(id % 3) as usize]).unwrap();
            m.apply_placement(id, vec![((id + 1) % 3) as usize]).unwrap();
            m.maybe_compact();
        }
        // Compaction ran (the tail is bounded) and lost nothing.
        assert!(tier.meta_list("snap-").len() == 1);
        let twin = Master::recover(tier);
        assert_eq!(twin.image(), m.image());
        assert_eq!(twin.file_count(), 40);
    }

    #[test]
    fn fencing_state_machine() {
        let m = Master::new();
        assert_eq!(m.master_epoch(), 1);
        assert!(!m.is_fenced());
        m.self_fence(Some("10.0.0.2:4100".into()));
        assert!(m.is_fenced());
        assert_eq!(m.successor().as_deref(), Some("10.0.0.2:4100"));
        // A stale claim cannot lower the epoch.
        assert_eq!(m.claim_master_epoch(5, "b"), 5);
        assert_eq!(m.claim_master_epoch(2, "a"), 5);
        assert_eq!(m.owner_addr(), "b");
        m.activate();
        assert!(!m.is_fenced());
        assert_eq!(m.successor(), None);
    }

    #[test]
    fn concurrent_locates_are_safe() {
        let m = std::sync::Arc::new(Master::new());
        m.register(1, 10, vec![0]).unwrap();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        let _ = m.locate(1).unwrap();
                    }
                });
            }
        });
        assert_eq!(m.accesses(1), 8000);
    }
}

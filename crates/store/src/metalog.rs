//! Durable master metadata: a write-ahead op-log with compacted
//! snapshots (DESIGN.md §4.14).
//!
//! Every master mutation — file registration, placement changes with
//! their version bumps, worker adoption and fencing-epoch grants,
//! repair-registry begin/commit, threshold changes, and master-epoch
//! takeovers — becomes a typed [`MetaOp`] appended as one checksummed
//! record to an op-log persisted through the under-store's metadata
//! region ([`crate::backing::UnderStore::meta_append`]). A standby (or
//! a restarted master) replays snapshot + tail to rebuild the exact
//! [`crate::master::Master`] state.
//!
//! ## Record format
//!
//! ```text
//! | u32 len | u32 crc32 | u64 lsn | u8 tag | body... |
//!   ^ bytes after the crc field (9 + body)
//!            ^ IEEE CRC-32 over lsn|tag|body
//! ```
//!
//! All integers little-endian. A torn tail (kill -9 mid-append) or a
//! corrupt record fails its length or checksum gate and replay stops at
//! the last valid record — the log's prefix property.
//!
//! ## Snapshots and compaction
//!
//! A snapshot is itself a record ([`MetaOp::Snapshot`] carrying a full
//! [`MasterImage`]) written under `snap-{lsn}`; it consumes an LSN, so
//! "replay" is uniform: apply the newest snapshot record, then every
//! log record with a later LSN. Writing a snapshot deletes all older
//! segments and snapshots and starts a fresh segment, keeping replay
//! O(delta since last snapshot), not O(history). Ops are
//! **absolute-valued** (placements carry the resulting version, worker
//! records the resulting epoch, applied as `max`), so replaying any
//! prefix twice is idempotent — the property the proptests pin.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::backing::UnderStore;

/// Rotate the active log segment after this many bytes.
pub const SEGMENT_BYTES: usize = 64 << 10;
/// Default records between snapshots (compaction cadence).
pub const SNAPSHOT_EVERY: u64 = 512;
/// Sanity cap on a single record's length field (1 MiB of body covers
/// any snapshot this master can produce short of ~10k files; larger
/// images still fit — the cap only gates obviously-garbage lengths).
const MAX_RECORD: usize = 64 << 20;
/// Bytes of the record header after the crc field: lsn (8) + tag (1).
const RECORD_FIXED: usize = 9;

// Record tags.
const T_REGISTER_FILE: u8 = 1;
const T_UNREGISTER_FILE: u8 = 2;
const T_APPLY_PLACEMENT: u8 = 3;
const T_REGISTER_WORKER: u8 = 4;
const T_MARK_ALIVE: u8 = 5;
const T_MARK_DEAD: u8 = 6;
const T_SUSPECT: u8 = 7;
const T_BEGIN_REPAIR: u8 = 8;
const T_END_REPAIR: u8 = 9;
const T_SET_THRESHOLD: u8 = 10;
const T_MASTER_EPOCH: u8 = 11;
const T_SNAPSHOT: u8 = 12;
const T_SET_INTEGRITY: u8 = 13;

/// One journalled master mutation. Values are **absolute** (the state
/// after the mutation), never deltas, so replay is idempotent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetaOp {
    /// `Master::register`: a new file at placement version 1.
    RegisterFile {
        /// File id.
        id: u64,
        /// File size in bytes.
        size: u64,
        /// Placement (one server per partition).
        servers: Vec<usize>,
    },
    /// `Master::unregister_file`.
    UnregisterFile {
        /// File id.
        id: u64,
    },
    /// `Master::apply_placement`, carrying the *resulting* version.
    ApplyPlacement {
        /// File id.
        id: u64,
        /// New placement.
        servers: Vec<usize>,
        /// Placement version after the bump.
        version: u64,
    },
    /// `Master::register_worker`: adoption with the granted epoch.
    RegisterWorker {
        /// Worker index.
        w: u64,
        /// Granted fencing epoch (applied as `max` on replay).
        epoch: u64,
    },
    /// `Master::mark_alive` on a dead→alive transition.
    MarkAlive {
        /// Worker index.
        w: u64,
    },
    /// `Master::mark_dead` on an alive→dead transition, carrying the
    /// bumped epoch.
    MarkDead {
        /// Worker index.
        w: u64,
        /// Fencing epoch after the bump.
        epoch: u64,
    },
    /// `Master::suspect`: the absolute suspicion count plus the
    /// resulting liveness and epoch (a threshold kill bumps both).
    Suspect {
        /// Worker index.
        w: u64,
        /// Suspicion count after the increment.
        count: u32,
        /// Whether the worker is still alive afterwards.
        alive: bool,
        /// Fencing epoch afterwards.
        epoch: u64,
    },
    /// `Master::begin_repair` (slot acquired).
    BeginRepair {
        /// File id.
        id: u64,
    },
    /// `Master::end_repair`.
    EndRepair {
        /// File id.
        id: u64,
    },
    /// `Master::set_suspicion_threshold`.
    SetThreshold {
        /// New threshold (≥ 1).
        threshold: u32,
    },
    /// A master-epoch transition: boot, takeover, or forced
    /// reactivation. `addr` is the winner's listen address — a
    /// restarted master finding a newer record from a *different*
    /// address starts fenced.
    MasterEpoch {
        /// The new master epoch (applied as `max` on replay).
        epoch: u64,
        /// Listen address of the master that owns this epoch.
        addr: String,
    },
    /// `Master::set_integrity`: the file's checksum/parity row (absolute
    /// — an empty row clears).
    SetIntegrity {
        /// File id.
        id: u64,
        /// The row after the mutation.
        integrity: FileIntegrity,
    },
    /// A full-state snapshot (compaction point).
    Snapshot(MasterImage),
}

/// A file's integrity row (DESIGN.md §4.15): the CRC-64 tree checksum of
/// each data partition plus where its Cauchy-RS parity partitions live.
/// Written by the client after a verified write; cleared whenever the
/// placement changes shape (a re-split invalidates every sum).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FileIntegrity {
    /// Per-data-partition checksums, index order
    /// ([`spcache_integrity::sum`] of each partition's bytes).
    pub sums: Vec<u64>,
    /// `(server, checksum)` per parity partition, index order. Parity
    /// partition `p` of file `id` lives at `PartKey::parity(id, p)` on
    /// `parity[p].0`.
    pub parity: Vec<(usize, u64)>,
}

impl FileIntegrity {
    /// A data-only row (no parity partitions).
    pub fn data_only(sums: Vec<u64>) -> Self {
        FileIntegrity {
            sums,
            parity: Vec::new(),
        }
    }

    /// Whether the row carries nothing (the clear sentinel).
    pub fn is_empty(&self) -> bool {
        self.sums.is_empty() && self.parity.is_empty()
    }
}

/// A compacted full-state image of the master: everything replay needs,
/// nothing volatile (access counters, heartbeat counts and the repair
/// *history* are deliberately excluded — they are observability, not
/// placement truth).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MasterImage {
    /// `(id, size, servers, placement_version)` sorted by id.
    pub files: Vec<(u64, u64, Vec<usize>, u64)>,
    /// Per-worker liveness.
    pub alive: Vec<bool>,
    /// Per-worker suspicion counts.
    pub suspicion: Vec<u32>,
    /// Per-worker fencing epochs.
    pub epochs: Vec<u64>,
    /// Suspicion threshold.
    pub threshold: u32,
    /// Files with a repair slot held, sorted.
    pub repairing: Vec<u64>,
    /// The master epoch.
    pub master_epoch: u64,
    /// Listen address of the master that owned this state ("" when
    /// unknown).
    pub master_addr: String,
    /// `(id, integrity row)` sorted by id. Encoded as a tail section of
    /// the snapshot record, absent in pre-integrity snapshots (decode
    /// defaults it empty).
    pub integrity: Vec<(u64, FileIntegrity)>,
}

impl MasterImage {
    /// Stamps the master-epoch ownership pair onto the image.
    #[must_use]
    pub fn with_owner(mut self, epoch: u64, addr: String) -> Self {
        self.master_epoch = epoch;
        self.master_addr = addr;
        self
    }
}

// ---------------------------------------------------------------------
// Byte-level codec (hand-rolled; the store crate must not depend on the
// net crate's frame module).
// ---------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_servers(buf: &mut Vec<u8>, servers: &[usize]) {
    put_u32(buf, servers.len() as u32);
    for &s in servers {
        put_u64(buf, s as u64);
    }
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_integrity(buf: &mut Vec<u8>, integrity: &FileIntegrity) {
    put_u32(buf, integrity.sums.len() as u32);
    for &s in &integrity.sums {
        put_u64(buf, s);
    }
    put_u32(buf, integrity.parity.len() as u32);
    for &(server, sum) in &integrity.parity {
        put_u64(buf, server as u64);
        put_u64(buf, sum);
    }
}

/// A bounds-checked reader over a record body; every getter returns
/// `None` past the end, so corrupt bodies can never over-read.
struct Rd<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn new(b: &'a [u8]) -> Self {
        Rd { b, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.b.len() {
            return None;
        }
        let out = &self.b[self.pos..end];
        self.pos = end;
        Some(out)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn servers(&mut self) -> Option<Vec<usize>> {
        let n = self.u32()? as usize;
        // Length-lie guard: each entry takes 8 bytes.
        if n > self.b.len().saturating_sub(self.pos) / 8 {
            return None;
        }
        (0..n).map(|_| self.u64().map(|v| v as usize)).collect()
    }

    fn string(&mut self) -> Option<String> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).ok()
    }

    fn sums(&mut self) -> Option<Vec<u64>> {
        let n = self.u32()? as usize;
        if n > self.b.len().saturating_sub(self.pos) / 8 {
            return None;
        }
        (0..n).map(|_| self.u64()).collect()
    }

    fn integrity(&mut self) -> Option<FileIntegrity> {
        let sums = self.sums()?;
        let n = self.u32()? as usize;
        // Length-lie guard: each parity entry takes 16 bytes.
        if n > self.b.len().saturating_sub(self.pos) / 16 {
            return None;
        }
        let parity = (0..n)
            .map(|_| Some((self.u64()? as usize, self.u64()?)))
            .collect::<Option<Vec<_>>>()?;
        Some(FileIntegrity { sums, parity })
    }

    fn done(&self) -> bool {
        self.pos == self.b.len()
    }
}

/// IEEE CRC-32 (the zlib/Ethernet polynomial), table-driven. Hand-rolled
/// because the container has no crc crate and the log's integrity gate
/// must not depend on one.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        t
    });
    let mut c = !0u32;
    for &b in data {
        c = table[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

fn encode_body(op: &MetaOp, buf: &mut Vec<u8>) -> u8 {
    match op {
        MetaOp::RegisterFile { id, size, servers } => {
            put_u64(buf, *id);
            put_u64(buf, *size);
            put_servers(buf, servers);
            T_REGISTER_FILE
        }
        MetaOp::UnregisterFile { id } => {
            put_u64(buf, *id);
            T_UNREGISTER_FILE
        }
        MetaOp::ApplyPlacement { id, servers, version } => {
            put_u64(buf, *id);
            put_u64(buf, *version);
            put_servers(buf, servers);
            T_APPLY_PLACEMENT
        }
        MetaOp::RegisterWorker { w, epoch } => {
            put_u64(buf, *w);
            put_u64(buf, *epoch);
            T_REGISTER_WORKER
        }
        MetaOp::MarkAlive { w } => {
            put_u64(buf, *w);
            T_MARK_ALIVE
        }
        MetaOp::MarkDead { w, epoch } => {
            put_u64(buf, *w);
            put_u64(buf, *epoch);
            T_MARK_DEAD
        }
        MetaOp::Suspect { w, count, alive, epoch } => {
            put_u64(buf, *w);
            put_u32(buf, *count);
            buf.push(u8::from(*alive));
            put_u64(buf, *epoch);
            T_SUSPECT
        }
        MetaOp::BeginRepair { id } => {
            put_u64(buf, *id);
            T_BEGIN_REPAIR
        }
        MetaOp::EndRepair { id } => {
            put_u64(buf, *id);
            T_END_REPAIR
        }
        MetaOp::SetThreshold { threshold } => {
            put_u32(buf, *threshold);
            T_SET_THRESHOLD
        }
        MetaOp::MasterEpoch { epoch, addr } => {
            put_u64(buf, *epoch);
            put_str(buf, addr);
            T_MASTER_EPOCH
        }
        MetaOp::SetIntegrity { id, integrity } => {
            put_u64(buf, *id);
            put_integrity(buf, integrity);
            T_SET_INTEGRITY
        }
        MetaOp::Snapshot(image) => {
            put_u32(buf, image.files.len() as u32);
            for (id, size, servers, version) in &image.files {
                put_u64(buf, *id);
                put_u64(buf, *size);
                put_u64(buf, *version);
                put_servers(buf, servers);
            }
            put_u32(buf, image.alive.len() as u32);
            for w in 0..image.alive.len() {
                buf.push(u8::from(image.alive[w]));
                put_u32(buf, image.suspicion[w]);
                put_u64(buf, image.epochs[w]);
            }
            put_u32(buf, image.threshold);
            put_u32(buf, image.repairing.len() as u32);
            for id in &image.repairing {
                put_u64(buf, *id);
            }
            put_u64(buf, image.master_epoch);
            put_str(buf, &image.master_addr);
            // Integrity tail section (pre-integrity decoders never see
            // it: they were all replaced by this one; *this* decoder
            // accepts snapshots without it).
            put_u32(buf, image.integrity.len() as u32);
            for (id, integrity) in &image.integrity {
                put_u64(buf, *id);
                put_integrity(buf, integrity);
            }
            T_SNAPSHOT
        }
    }
}

fn decode_body(tag: u8, body: &[u8]) -> Option<MetaOp> {
    let mut r = Rd::new(body);
    let op = match tag {
        T_REGISTER_FILE => MetaOp::RegisterFile {
            id: r.u64()?,
            size: r.u64()?,
            servers: r.servers()?,
        },
        T_UNREGISTER_FILE => MetaOp::UnregisterFile { id: r.u64()? },
        T_APPLY_PLACEMENT => MetaOp::ApplyPlacement {
            id: r.u64()?,
            version: r.u64()?,
            servers: r.servers()?,
        },
        T_REGISTER_WORKER => MetaOp::RegisterWorker {
            w: r.u64()?,
            epoch: r.u64()?,
        },
        T_MARK_ALIVE => MetaOp::MarkAlive { w: r.u64()? },
        T_MARK_DEAD => MetaOp::MarkDead {
            w: r.u64()?,
            epoch: r.u64()?,
        },
        T_SUSPECT => MetaOp::Suspect {
            w: r.u64()?,
            count: r.u32()?,
            alive: r.u8()? != 0,
            epoch: r.u64()?,
        },
        T_BEGIN_REPAIR => MetaOp::BeginRepair { id: r.u64()? },
        T_END_REPAIR => MetaOp::EndRepair { id: r.u64()? },
        T_SET_THRESHOLD => MetaOp::SetThreshold { threshold: r.u32()? },
        T_MASTER_EPOCH => MetaOp::MasterEpoch {
            epoch: r.u64()?,
            addr: r.string()?,
        },
        T_SET_INTEGRITY => MetaOp::SetIntegrity {
            id: r.u64()?,
            integrity: r.integrity()?,
        },
        T_SNAPSHOT => {
            let n_files = r.u32()? as usize;
            let mut files = Vec::new();
            for _ in 0..n_files {
                let id = r.u64()?;
                let size = r.u64()?;
                let version = r.u64()?;
                let servers = r.servers()?;
                files.push((id, size, servers, version));
            }
            let n_workers = r.u32()? as usize;
            // Length-lie guard: each worker entry takes 13 bytes.
            if n_workers > body.len() / 13 {
                return None;
            }
            let (mut alive, mut suspicion, mut epochs) =
                (Vec::new(), Vec::new(), Vec::new());
            for _ in 0..n_workers {
                alive.push(r.u8()? != 0);
                suspicion.push(r.u32()?);
                epochs.push(r.u64()?);
            }
            let threshold = r.u32()?;
            let n_repairing = r.u32()? as usize;
            if n_repairing > body.len() / 8 {
                return None;
            }
            let repairing = (0..n_repairing)
                .map(|_| r.u64())
                .collect::<Option<Vec<u64>>>()?;
            MetaOp::Snapshot(MasterImage {
                files,
                alive,
                suspicion,
                epochs,
                threshold,
                repairing,
                master_epoch: r.u64()?,
                master_addr: r.string()?,
                // Snapshots written before the integrity tier carry no
                // tail section: default the rows empty.
                integrity: if r.done() {
                    Vec::new()
                } else {
                    let n = r.u32()? as usize;
                    if n > body.len() / 8 {
                        return None;
                    }
                    let mut rows = Vec::with_capacity(n);
                    for _ in 0..n {
                        rows.push((r.u64()?, r.integrity()?));
                    }
                    rows
                },
            })
        }
        _ => return None,
    };
    r.done().then_some(op)
}

/// Encodes one `(lsn, op)` record, checksummed and length-prefixed.
pub fn encode_record(lsn: u64, op: &MetaOp) -> Vec<u8> {
    let mut payload = Vec::with_capacity(32);
    put_u64(&mut payload, lsn);
    payload.push(0); // tag placeholder
    let tag = encode_body(op, &mut payload);
    payload[8] = tag;
    let mut rec = Vec::with_capacity(8 + payload.len());
    put_u32(&mut rec, payload.len() as u32);
    put_u32(&mut rec, crc32(&payload));
    rec.extend_from_slice(&payload);
    rec
}

/// Decodes every valid record from a byte stream, stopping at the first
/// truncated or corrupt one (the torn-tail rule). Never panics.
pub fn decode_records(bytes: &[u8]) -> Vec<(u64, MetaOp)> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while bytes.len() - pos >= 8 {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if !(RECORD_FIXED..=MAX_RECORD).contains(&len) || bytes.len() - pos - 8 < len {
            break;
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            break;
        }
        let lsn = u64::from_le_bytes(payload[..8].try_into().unwrap());
        let Some(op) = decode_body(payload[8], &payload[RECORD_FIXED..]) else {
            break;
        };
        out.push((lsn, op));
        pos += 8 + len;
    }
    out
}

fn segment_name(base_lsn: u64) -> String {
    format!("log-{base_lsn:020}")
}

fn snapshot_name(lsn: u64) -> String {
    format!("snap-{lsn:020}")
}

/// State behind the log's mutex: the append cursor.
#[derive(Debug)]
struct LogInner {
    next_lsn: u64,
    active: String,
    active_bytes: usize,
    since_snapshot: u64,
}

/// The write-ahead op-log over an under-store's metadata region.
///
/// Appends are O(delta) (one `meta_append` per record); snapshots
/// rewrite one blob and delete everything older. Thread-safe: one
/// internal mutex orders appends, so journal order is append order.
#[derive(Debug)]
pub struct MetaLog {
    tier: Arc<UnderStore>,
    inner: Mutex<LogInner>,
    snapshot_every: u64,
}

impl MetaLog {
    /// Opens (or creates) the log held by `tier`'s metadata region,
    /// positioning the append cursor after the last valid record.
    pub fn open(tier: Arc<UnderStore>) -> Self {
        let mut next_lsn = 1u64;
        for name in tier.meta_list("snap-") {
            if let Some(bytes) = tier.meta_get(&name) {
                for (lsn, _) in decode_records(&bytes) {
                    next_lsn = next_lsn.max(lsn + 1);
                }
            }
        }
        let segments = tier.meta_list("log-");
        let mut active = None;
        let mut active_bytes = 0;
        let mut records = 0u64;
        for name in &segments {
            if let Some(bytes) = tier.meta_get(name) {
                let recs = decode_records(&bytes);
                records += recs.len() as u64;
                for (lsn, _) in &recs {
                    next_lsn = next_lsn.max(lsn + 1);
                }
                // The append cursor sits after the last *valid* byte, so
                // a torn tail is overwritten... it cannot be (appends
                // only): instead a torn-tailed segment is retired and a
                // fresh one opened, so new records never hide behind
                // garbage bytes.
                let valid: usize = recs
                    .iter()
                    .map(|(l, op)| encode_record(*l, op).len())
                    .sum();
                if valid == bytes.len() {
                    active = Some(name.clone());
                    active_bytes = bytes.len();
                } else {
                    active = None;
                }
            }
        }
        let active = active.unwrap_or_else(|| segment_name(next_lsn));
        MetaLog {
            tier,
            inner: Mutex::new(LogInner {
                next_lsn,
                active,
                active_bytes,
                since_snapshot: records,
            }),
            snapshot_every: SNAPSHOT_EVERY,
        }
    }

    /// Overrides the snapshot cadence (records between compactions).
    #[must_use]
    pub fn with_snapshot_every(mut self, every: u64) -> Self {
        self.snapshot_every = every.max(1);
        self
    }

    /// The storage tier the log persists through.
    pub fn tier(&self) -> &Arc<UnderStore> {
        &self.tier
    }

    /// Appends one op; returns its LSN. Rotates the active segment past
    /// [`SEGMENT_BYTES`].
    pub fn append(&self, op: &MetaOp) -> u64 {
        let mut inner = self.inner.lock();
        let lsn = inner.next_lsn;
        inner.next_lsn += 1;
        let rec = encode_record(lsn, op);
        self.tier.meta_append(&inner.active, &rec);
        inner.active_bytes += rec.len();
        inner.since_snapshot += 1;
        if inner.active_bytes >= SEGMENT_BYTES {
            inner.active = segment_name(inner.next_lsn);
            inner.active_bytes = 0;
        }
        lsn
    }

    /// The LSN the next record will get.
    pub fn next_lsn(&self) -> u64 {
        self.inner.lock().next_lsn
    }

    /// Whether enough records accumulated since the last snapshot that
    /// the owner should compact (call [`MetaLog::snapshot`]).
    pub fn snapshot_due(&self) -> bool {
        self.inner.lock().since_snapshot >= self.snapshot_every
    }

    /// Writes a compacted snapshot of `image` and deletes every older
    /// segment and snapshot — after this, replay is one snapshot record
    /// plus whatever lands later.
    pub fn snapshot(&self, image: &MasterImage) {
        let mut inner = self.inner.lock();
        let lsn = inner.next_lsn;
        inner.next_lsn += 1;
        let rec = encode_record(lsn, &MetaOp::Snapshot(image.clone()));
        let name = snapshot_name(lsn);
        self.tier.meta_put(&name, &rec);
        // Everything older is superseded: all log segments (every record
        // in them has lsn < snapshot lsn) and all previous snapshots.
        for seg in self.tier.meta_list("log-") {
            self.tier.meta_remove(&seg);
        }
        for snap in self.tier.meta_list("snap-") {
            if snap != name {
                self.tier.meta_remove(&snap);
            }
        }
        inner.active = segment_name(inner.next_lsn);
        inner.active_bytes = 0;
        inner.since_snapshot = 0;
    }

    /// Replays the log: the newest snapshot op (if any) followed by
    /// every log record with a later LSN, in LSN order.
    pub fn replay(&self) -> Vec<(u64, MetaOp)> {
        Self::replay_tier(&self.tier)
    }

    /// [`MetaLog::replay`] against a bare tier (no open log needed —
    /// the standby's read-only path).
    pub fn replay_tier(tier: &UnderStore) -> Vec<(u64, MetaOp)> {
        let mut snap: Option<(u64, MetaOp)> = None;
        for name in tier.meta_list("snap-") {
            if let Some(bytes) = tier.meta_get(&name) {
                if let Some((lsn, op)) = decode_records(&bytes).pop() {
                    if snap.as_ref().is_none_or(|(l, _)| *l < lsn) {
                        snap = Some((lsn, op));
                    }
                }
            }
        }
        let snap_lsn = snap.as_ref().map_or(0, |(l, _)| *l);
        let mut out: Vec<(u64, MetaOp)> = snap.into_iter().collect();
        let mut tail = Vec::new();
        for name in tier.meta_list("log-") {
            if let Some(bytes) = tier.meta_get(&name) {
                tail.extend(
                    decode_records(&bytes)
                        .into_iter()
                        .filter(|(lsn, _)| *lsn > snap_lsn),
                );
            }
        }
        tail.sort_by_key(|(lsn, _)| *lsn);
        out.extend(tail);
        out
    }

    /// Raw record bytes for every op with `lsn >= from_lsn` (the wire
    /// `LogTail` payload), in LSN order. A follower whose cursor
    /// predates the compaction horizon gets the snapshot record first —
    /// it carries its own LSN, so the follower jumps forward; a
    /// follower past the snapshot never sees it again (re-applying an
    /// old snapshot would wipe newer replayed state). Returns
    /// `(next_lsn, bytes)`.
    pub fn tail_from(&self, from_lsn: u64) -> (u64, Vec<u8>) {
        let next = self.next_lsn();
        let mut bytes = Vec::new();
        for (lsn, op) in self.replay() {
            if lsn >= from_lsn {
                bytes.extend_from_slice(&encode_record(lsn, &op));
            }
        }
        (next, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops() -> Vec<MetaOp> {
        vec![
            MetaOp::RegisterFile {
                id: 7,
                size: 4096,
                servers: vec![0, 3, 5],
            },
            MetaOp::ApplyPlacement {
                id: 7,
                servers: vec![1, 2],
                version: 2,
            },
            MetaOp::RegisterWorker { w: 3, epoch: 4 },
            MetaOp::MarkAlive { w: 1 },
            MetaOp::MarkDead { w: 2, epoch: 9 },
            MetaOp::Suspect {
                w: 0,
                count: 2,
                alive: true,
                epoch: 1,
            },
            MetaOp::BeginRepair { id: 7 },
            MetaOp::EndRepair { id: 7 },
            MetaOp::SetThreshold { threshold: 5 },
            MetaOp::UnregisterFile { id: 7 },
            MetaOp::MasterEpoch {
                epoch: 2,
                addr: "127.0.0.1:4100".into(),
            },
            MetaOp::SetIntegrity {
                id: 1,
                integrity: FileIntegrity {
                    sums: vec![0xDEAD_BEEF, 0xFEED_FACE],
                    parity: vec![(2, 0xABAD_1DEA)],
                },
            },
            MetaOp::SetIntegrity {
                id: 9,
                integrity: FileIntegrity::default(),
            },
            MetaOp::Snapshot(MasterImage {
                files: vec![(1, 100, vec![0, 1], 3), (2, 50, vec![2], 1)],
                alive: vec![true, false, true],
                suspicion: vec![0, 3, 1],
                epochs: vec![1, 2, 1],
                threshold: 3,
                repairing: vec![2],
                master_epoch: 4,
                master_addr: "127.0.0.1:4100".into(),
                integrity: vec![(
                    1,
                    FileIntegrity {
                        sums: vec![7, 8],
                        parity: vec![(0, 9)],
                    },
                )],
            }),
        ]
    }

    #[test]
    fn pre_integrity_snapshot_decodes_with_empty_rows() {
        // A snapshot record written before the integrity tier existed
        // ends right after master_addr. Re-encode one and truncate the
        // tail section: decode must still succeed with empty rows.
        let img = MasterImage {
            files: vec![(3, 64, vec![0], 1)],
            master_epoch: 2,
            master_addr: "a:1".into(),
            ..MasterImage::default()
        };
        let rec = encode_record(5, &MetaOp::Snapshot(img.clone()));
        // Strip the 4-byte empty-integrity count from payload and refit
        // the length/crc header.
        let payload = &rec[8..rec.len() - 4];
        let mut old = Vec::new();
        put_u32(&mut old, payload.len() as u32);
        put_u32(&mut old, crc32(payload));
        old.extend_from_slice(payload);
        let decoded = decode_records(&old);
        assert_eq!(decoded.len(), 1);
        let MetaOp::Snapshot(got) = &decoded[0].1 else {
            panic!("expected snapshot");
        };
        assert_eq!(got, &img);
    }

    #[test]
    fn records_roundtrip() {
        for (i, op) in ops().into_iter().enumerate() {
            let rec = encode_record(i as u64 + 1, &op);
            let decoded = decode_records(&rec);
            assert_eq!(decoded, vec![(i as u64 + 1, op)]);
        }
    }

    #[test]
    fn concatenated_records_decode_in_order() {
        let mut stream = Vec::new();
        let expect: Vec<(u64, MetaOp)> = ops()
            .into_iter()
            .enumerate()
            .map(|(i, op)| (i as u64 + 1, op))
            .collect();
        for (lsn, op) in &expect {
            stream.extend_from_slice(&encode_record(*lsn, op));
        }
        assert_eq!(decode_records(&stream), expect);
    }

    #[test]
    fn torn_tail_stops_at_last_valid_record() {
        let a = encode_record(1, &MetaOp::MarkAlive { w: 0 });
        let b = encode_record(2, &MetaOp::MarkDead { w: 1, epoch: 2 });
        let mut stream = a.clone();
        stream.extend_from_slice(&b[..b.len() - 3]); // torn mid-record
        assert_eq!(decode_records(&stream), vec![(1, MetaOp::MarkAlive { w: 0 })]);
    }

    #[test]
    fn corrupt_record_fails_its_checksum() {
        let mut rec = encode_record(1, &MetaOp::BeginRepair { id: 42 });
        let last = rec.len() - 1;
        rec[last] ^= 0x40;
        assert!(decode_records(&rec).is_empty());
        // And a flipped byte mid-stream cuts the tail, keeps the prefix.
        let mut stream = encode_record(1, &MetaOp::EndRepair { id: 1 });
        let tail_start = stream.len();
        stream.extend_from_slice(&encode_record(2, &MetaOp::EndRepair { id: 2 }));
        stream[tail_start + 10] ^= 1;
        assert_eq!(decode_records(&stream), vec![(1, MetaOp::EndRepair { id: 1 })]);
    }

    #[test]
    fn log_appends_rotate_and_replay_in_order() {
        let tier = Arc::new(UnderStore::new());
        let log = MetaLog::open(Arc::clone(&tier));
        let mut expect = Vec::new();
        for i in 0..5000u64 {
            let op = MetaOp::BeginRepair { id: i };
            let lsn = log.append(&op);
            expect.push((lsn, op));
        }
        // Enough volume to rotate segments.
        assert!(tier.meta_list("log-").len() > 1, "no rotation happened");
        assert_eq!(log.replay(), expect);
        // Reopening resumes after the last record.
        let reopened = MetaLog::open(Arc::clone(&tier));
        assert_eq!(reopened.next_lsn(), 5001);
        assert_eq!(reopened.replay(), expect);
    }

    #[test]
    fn snapshot_compacts_to_o_delta() {
        let tier = Arc::new(UnderStore::new());
        let log = MetaLog::open(Arc::clone(&tier)).with_snapshot_every(10);
        for i in 0..100u64 {
            log.append(&MetaOp::BeginRepair { id: i });
            if log.snapshot_due() {
                log.snapshot(&MasterImage {
                    repairing: (0..=i).collect(),
                    ..MasterImage::default()
                });
            }
        }
        // One snapshot + at most the uncompacted tail.
        assert_eq!(tier.meta_list("snap-").len(), 1);
        let replayed = log.replay();
        assert!(
            replayed.len() <= 11,
            "replay is O(history), not O(delta): {} records",
            replayed.len()
        );
        assert!(matches!(replayed[0], (_, MetaOp::Snapshot(_))));
        // The snapshot + tail cover all 100 repairs.
        let MetaOp::Snapshot(img) = &replayed[0].1 else {
            panic!("first replayed op must be the snapshot")
        };
        let mut seen: Vec<u64> = img.repairing.clone();
        for (_, op) in &replayed[1..] {
            if let MetaOp::BeginRepair { id } = op {
                seen.push(*id);
            }
        }
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen, (0..100u64).collect::<Vec<_>>());
    }

    #[test]
    fn tail_from_covers_a_cold_follower_via_the_snapshot() {
        let tier = Arc::new(UnderStore::new());
        let log = MetaLog::open(Arc::clone(&tier));
        for i in 0..20u64 {
            log.append(&MetaOp::BeginRepair { id: i });
        }
        log.snapshot(&MasterImage::default());
        log.append(&MetaOp::EndRepair { id: 3 });
        // A follower from LSN 0: gets the snapshot plus the tail, not
        // the compacted-away history.
        let (next, bytes) = log.tail_from(0);
        assert_eq!(next, 23, "20 appends + snapshot (21) + 1 append (22)");
        let recs = decode_records(&bytes);
        assert!(matches!(recs[0].1, MetaOp::Snapshot(_)));
        assert_eq!(recs[1].1, MetaOp::EndRepair { id: 3 });
        // A warm follower past the tail gets nothing — in particular
        // NOT the old snapshot, which would wipe its newer state.
        let (_, bytes) = log.tail_from(23);
        assert!(decode_records(&bytes).is_empty());
        // One sitting exactly on the tail record gets just the delta.
        let (_, bytes) = log.tail_from(22);
        assert_eq!(
            decode_records(&bytes),
            vec![(22, MetaOp::EndRepair { id: 3 })]
        );
    }

    #[test]
    fn disk_mirror_survives_a_new_process_view() {
        let dir = std::env::temp_dir().join(format!(
            "spcache-metalog-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let tier = Arc::new(UnderStore::new().with_meta_dir(&dir));
            let log = MetaLog::open(Arc::clone(&tier));
            for i in 0..50u64 {
                log.append(&MetaOp::RegisterWorker { w: i % 4, epoch: i });
            }
            log.snapshot(&MasterImage {
                master_epoch: 3,
                ..MasterImage::default()
            });
            log.append(&MetaOp::MarkAlive { w: 0 });
        }
        // A different "process": fresh tier over the same directory.
        let tier = Arc::new(UnderStore::new().with_meta_dir(&dir));
        let log = MetaLog::open(Arc::clone(&tier));
        let replayed = log.replay();
        assert_eq!(replayed.len(), 2, "snapshot + 1 tail record: {replayed:?}");
        let MetaOp::Snapshot(img) = &replayed[0].1 else {
            panic!("expected snapshot first");
        };
        assert_eq!(img.master_epoch, 3);
        assert_eq!(replayed[1].1, MetaOp::MarkAlive { w: 0 });
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Deterministic fault injection for the real store.
//!
//! SP-Cache is redundancy-free, so its fault story (§8) is the part of
//! the system hardest to trust from reasoning alone: a crashed cache
//! server simply loses partitions and every reader of those files stalls
//! until recovery kicks in. This module lets tests *script* failures so
//! the recovery machinery can be exercised reproducibly:
//!
//! * [`FaultPlan`] — a seed plus a list of [`FaultEvent`]s, each saying
//!   "when worker `w` dequeues its `op`-th data-path request, do X".
//!   Triggers are **operation-indexed**, not wall-clock, so the same
//!   `(seed, plan)` against the same request sequence fires the same
//!   faults in the same places regardless of thread scheduling.
//! * [`FaultAction`] — crash the worker, hang it for a bounded duration,
//!   silently drop one cached partition, or serve a request but lose the
//!   reply (models a one-way network partition).
//! * [`FaultLog`] — a cluster-wide record of every fault that actually
//!   fired. [`FaultLog::snapshot`] returns records sorted by
//!   `(worker, op)` so two runs of the same plan compare byte-equal even
//!   though workers append concurrently.
//!
//! The worker loop consults its [`WorkerScript`] (the per-worker slice of
//! the plan) before serving each data-path request; see
//! [`crate::worker`].

use std::sync::Mutex;
use std::time::Duration;

use rand::Rng;
use spcache_sim::Xoshiro256StarStar;

use crate::rpc::PartKey;

/// What an injected fault does to a worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// The worker thread exits immediately; the in-flight request is
    /// dropped unanswered and every cached partition is lost.
    Crash,
    /// The worker sleeps before serving the request — a GC pause or
    /// overloaded machine. Readers with deadlines see a timeout.
    Hang(Duration),
    /// One cached partition silently vanishes (bit rot / eviction bug);
    /// the worker keeps serving everything else.
    DropPartition(PartKey),
    /// The request is served (side effects happen) but the reply never
    /// leaves the worker — a one-way partition between worker and client.
    LoseReply,
    /// **Wire fault.** The request is served but the connection carrying
    /// it is closed before the reply frame is written. Over TCP the
    /// client sees a reset ([`crate::rpc::StoreError::Io`], retryable);
    /// the in-process transport approximates it as a lost reply.
    DropConnection,
    /// **Wire fault.** The reply frame is held back for the given
    /// duration before hitting the socket — switch congestion or a slow
    /// NIC. Readers with deadlines may time out even though the worker
    /// served promptly.
    DelayFrame(Duration),
    /// **Wire fault.** Only a prefix of the reply frame is written
    /// before the connection drops — the classic torn TCP segment. The
    /// client's decoder must surface an incomplete frame as a retryable
    /// I/O error, never as bytes. In-process this degrades to a lost
    /// reply.
    TruncateFrame,
    /// **Heartbeat fault.** The worker swallows one supervisor `Ping`:
    /// the probe times out and the suspicion ladder advances, but the
    /// worker keeps serving data traffic — a one-way control-plane
    /// partition. Trigger indices count *pings received*, not data ops
    /// (see [`FaultPlan::heartbeat_script_for`]).
    DropHeartbeat,
    /// The worker "crashes and restarts" in place: its cached partitions
    /// vanish and its registered epoch resets to the unregistered
    /// sentinel (0), but the thread keeps serving — modelling a fast
    /// process restart with a cold cache. Until the supervisor re-adopts
    /// it (new epoch via `Register` + `SetEpoch`), fenced clients bounce
    /// off it with stale-epoch errors.
    CrashRestart,
    /// The worker answers one data-path request with a stale-epoch
    /// rejection regardless of the stamped epoch — a zombie that missed
    /// its own fencing, or a delayed delivery racing a re-registration.
    /// Clients must treat it as retryable and refresh their epoch cache.
    StaleEpochDelivery,
    /// One byte of a cached partition flips — bit rot. Where the flip
    /// lands is picked by [`CorruptSite`]: the resident copy, the spill
    /// area, or the next reply carrying the partition (an in-flight
    /// flip). The flipped byte index is `byte % len`, so the same event
    /// corrupts the same byte on every run regardless of partition
    /// size. The worker always flips a **copy** — stored `Bytes` may
    /// share the writer's allocation, and bit rot must never reach the
    /// ground-truth bytes a test compares against.
    ///
    /// Not a wire fault: the flip is applied by the worker thread on
    /// both transports (a client checksum catches the `Wire` site), so
    /// fault logs stay identical channel-vs-TCP.
    CorruptPartition {
        /// The partition to corrupt.
        key: PartKey,
        /// Where the flip lands.
        site: CorruptSite,
        /// Byte index to flip, taken modulo the partition length.
        byte: u64,
    },
}

/// Where a [`FaultAction::CorruptPartition`] flip lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptSite {
    /// The worker's resident in-memory copy.
    Resident,
    /// The under-store spill area (bit rot on the slow tier; surfaces on
    /// the next reload of the evicted partition). Falls back to the
    /// resident copy when the worker has no spill area or the key was
    /// never spilled.
    Spill,
    /// The next `Get` reply carrying this partition: the stored bytes
    /// stay clean, but the copy leaving the worker is flipped — a NIC or
    /// switch flipping a bit in flight. Only a client-side checksum can
    /// catch this one.
    Wire,
}

impl FaultAction {
    /// Whether this fault lives in the transport (connection/frame)
    /// rather than in the worker itself. Wire faults are injected by the
    /// TCP server's framing layer; the in-process transport has no
    /// frames, so its workers *approximate* them (see
    /// [`crate::worker`]) while logging the original action — the fault
    /// log of a seeded run stays identical across transports.
    pub fn is_wire(&self) -> bool {
        matches!(
            self,
            FaultAction::DropConnection
                | FaultAction::DelayFrame(_)
                | FaultAction::TruncateFrame
        )
    }

    /// Whether this fault triggers on the heartbeat (ping) stream rather
    /// than the data-path op stream. Heartbeat faults live in their own
    /// script ([`FaultPlan::heartbeat_script_for`]) with their own
    /// counter, so scripting one can never shift the op indices of data
    /// or wire faults.
    pub fn is_heartbeat(&self) -> bool {
        matches!(self, FaultAction::DropHeartbeat)
    }
}

/// One scripted fault: `action` fires when `worker` dequeues its `op`-th
/// (0-based) data-path request. Control requests (`Stats`, `Ping`,
/// `Shutdown`) do not advance the op counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// Target worker index.
    pub worker: usize,
    /// 0-based index of the data-path request that triggers the fault.
    pub op: u64,
    /// What happens.
    pub action: FaultAction,
}

/// A reproducible script of faults for one cluster run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults) — the default for every cluster.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scripted events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Adds an event (builder style).
    pub fn with_event(mut self, worker: usize, op: u64, action: FaultAction) -> Self {
        self.events.push(FaultEvent { worker, op, action });
        self
    }

    /// Crashes `worker` at its `op`-th data-path request.
    pub fn crash(self, worker: usize, op: u64) -> Self {
        self.with_event(worker, op, FaultAction::Crash)
    }

    /// Hangs `worker` for `pause` before serving its `op`-th request.
    pub fn hang(self, worker: usize, op: u64, pause: Duration) -> Self {
        self.with_event(worker, op, FaultAction::Hang(pause))
    }

    /// Drops `key` from `worker`'s store at its `op`-th request.
    pub fn drop_partition(self, worker: usize, op: u64, key: PartKey) -> Self {
        self.with_event(worker, op, FaultAction::DropPartition(key))
    }

    /// Serves `worker`'s `op`-th request but loses the reply.
    pub fn lose_reply(self, worker: usize, op: u64) -> Self {
        self.with_event(worker, op, FaultAction::LoseReply)
    }

    /// Serves `worker`'s `op`-th request but drops the connection before
    /// the reply frame leaves.
    pub fn drop_connection(self, worker: usize, op: u64) -> Self {
        self.with_event(worker, op, FaultAction::DropConnection)
    }

    /// Delays `worker`'s `op`-th reply frame by `pause`.
    pub fn delay_frame(self, worker: usize, op: u64, pause: Duration) -> Self {
        self.with_event(worker, op, FaultAction::DelayFrame(pause))
    }

    /// Truncates `worker`'s `op`-th reply frame mid-write.
    pub fn truncate_frame(self, worker: usize, op: u64) -> Self {
        self.with_event(worker, op, FaultAction::TruncateFrame)
    }

    /// Swallows `worker`'s `nth_ping`-th supervisor heartbeat (0-based,
    /// counted over pings received — not data ops).
    pub fn drop_heartbeat(self, worker: usize, nth_ping: u64) -> Self {
        self.with_event(worker, nth_ping, FaultAction::DropHeartbeat)
    }

    /// Crash-restarts `worker` in place at its `op`-th data-path
    /// request: cache cleared, epoch reset to 0, thread keeps serving.
    pub fn crash_restart(self, worker: usize, op: u64) -> Self {
        self.with_event(worker, op, FaultAction::CrashRestart)
    }

    /// Makes `worker` bounce its `op`-th data-path request with a
    /// stale-epoch rejection.
    pub fn stale_epoch(self, worker: usize, op: u64) -> Self {
        self.with_event(worker, op, FaultAction::StaleEpochDelivery)
    }

    /// Flips byte `byte % len` of `key` at `worker`'s `op`-th data-path
    /// request, at the given [`CorruptSite`].
    pub fn corrupt(self, worker: usize, op: u64, key: PartKey, site: CorruptSite, byte: u64) -> Self {
        self.with_event(worker, op, FaultAction::CorruptPartition { key, site, byte })
    }

    /// Generates a random plan from a seed — the chaos-test entry point.
    ///
    /// Draws `n_events` events against `n_workers` workers, each firing
    /// within the first `max_op` data-path operations. `files` seeds the
    /// keys used by `DropPartition` events (an empty slice disables that
    /// action). The result is a pure function of the arguments, so the
    /// same `(seed, shape)` always yields the same plan.
    pub fn random(seed: u64, n_workers: usize, n_events: usize, max_op: u64, files: &[u64]) -> Self {
        assert!(n_workers > 0 && max_op > 0);
        let mut rng = Xoshiro256StarStar::seed(seed);
        let mut plan = FaultPlan::none();
        for _ in 0..n_events {
            let worker = (rng.next_u64() % n_workers as u64) as usize;
            let op = rng.next_u64() % max_op;
            let kinds = if files.is_empty() { 3 } else { 4 };
            let action = match rng.next_u64() % kinds {
                0 => FaultAction::Crash,
                1 => FaultAction::Hang(Duration::from_millis(1 + rng.next_u64() % 20)),
                2 => FaultAction::LoseReply,
                _ => {
                    let file = files[(rng.next_u64() % files.len() as u64) as usize];
                    let part = (rng.next_u64() % 4) as u32;
                    FaultAction::DropPartition(PartKey::new(file, part))
                }
            };
            plan = plan.with_event(worker, op, action);
        }
        plan
    }

    /// Extracts worker `w`'s op-indexed slice of the plan (wire *and*
    /// worker faults; heartbeat faults are excluded — they count pings,
    /// not ops, and live in [`FaultPlan::heartbeat_script_for`]),
    /// ordered by trigger op (ties keep plan order, so `DropPartition`
    /// scripted before `Crash` at the same op fires first).
    pub fn script_for(&self, worker: usize) -> WorkerScript {
        let mut events: Vec<(u64, FaultAction)> = self
            .events
            .iter()
            .filter(|e| e.worker == worker && !e.action.is_heartbeat())
            .map(|e| (e.op, e.action.clone()))
            .collect();
        events.sort_by_key(|&(op, _)| op);
        WorkerScript { events, cursor: 0 }
    }

    /// Worker `w`'s **non-wire** op-indexed events only — what the
    /// worker thread of a TCP server consumes (its framing layer injects
    /// the wire half via [`FaultPlan::wire_script_for`]). Trigger
    /// indices are shared: both scripts count the same data-path op
    /// stream, so a plan fires identically whether a worker sits behind
    /// a channel or a socket.
    pub fn data_script_for(&self, worker: usize) -> WorkerScript {
        self.filtered_script(worker, false)
    }

    /// Worker `w`'s **wire** events only (see
    /// [`FaultAction::is_wire`]) — consumed by the TCP server's framing
    /// layer.
    pub fn wire_script_for(&self, worker: usize) -> WorkerScript {
        self.filtered_script(worker, true)
    }

    /// Worker `w`'s **heartbeat** events only, indexed over the pings it
    /// receives (a separate counter from data ops — supervisor cadence
    /// can change without shifting any scripted data fault).
    pub fn heartbeat_script_for(&self, worker: usize) -> WorkerScript {
        let mut events: Vec<(u64, FaultAction)> = self
            .events
            .iter()
            .filter(|e| e.worker == worker && e.action.is_heartbeat())
            .map(|e| (e.op, e.action.clone()))
            .collect();
        events.sort_by_key(|&(op, _)| op);
        WorkerScript { events, cursor: 0 }
    }

    fn filtered_script(&self, worker: usize, wire: bool) -> WorkerScript {
        let mut events: Vec<(u64, FaultAction)> = self
            .events
            .iter()
            .filter(|e| {
                e.worker == worker && !e.action.is_heartbeat() && e.action.is_wire() == wire
            })
            .map(|e| (e.op, e.action.clone()))
            .collect();
        events.sort_by_key(|&(op, _)| op);
        WorkerScript { events, cursor: 0 }
    }
}

/// The per-worker slice of a [`FaultPlan`], consumed as the worker's op
/// counter advances.
#[derive(Debug, Clone, Default)]
pub struct WorkerScript {
    events: Vec<(u64, FaultAction)>,
    cursor: usize,
}

impl WorkerScript {
    /// A script with no faults.
    pub fn empty() -> Self {
        WorkerScript::default()
    }

    /// Whether anything is left to fire.
    pub fn is_exhausted(&self) -> bool {
        self.cursor >= self.events.len()
    }

    /// Returns the actions due at data-path op `op` (all events with a
    /// trigger index `<= op` that have not fired yet), advancing the
    /// cursor past them.
    pub fn fire(&mut self, op: u64) -> Vec<FaultAction> {
        let mut due = Vec::new();
        while self.cursor < self.events.len() && self.events[self.cursor].0 <= op {
            due.push(self.events[self.cursor].1.clone());
            self.cursor += 1;
        }
        due
    }
}

/// One fault that actually fired, as observed by a worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// Worker the fault fired on.
    pub worker: usize,
    /// Data-path op index at which it fired.
    pub op: u64,
    /// The action taken.
    pub action: FaultAction,
}

/// Cluster-wide record of fired faults. Workers append concurrently;
/// [`FaultLog::snapshot`] canonicalises the order so identical runs
/// produce identical logs.
#[derive(Debug, Default)]
pub struct FaultLog {
    records: Mutex<Vec<FaultRecord>>,
}

impl FaultLog {
    /// An empty log.
    pub fn new() -> Self {
        FaultLog::default()
    }

    /// Appends a fired fault.
    pub fn record(&self, worker: usize, op: u64, action: FaultAction) {
        self.records
            .lock()
            .expect("fault log poisoned")
            .push(FaultRecord { worker, op, action });
    }

    /// Number of faults fired so far.
    pub fn len(&self) -> usize {
        self.records.lock().expect("fault log poisoned").len()
    }

    /// Whether no fault has fired.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A deterministic snapshot: records sorted by `(worker, op)` with
    /// per-worker firing order preserved (the sort is stable and each
    /// worker appends its own records in op order).
    pub fn snapshot(&self) -> Vec<FaultRecord> {
        let mut records = self.records.lock().expect("fault log poisoned").clone();
        records.sort_by_key(|r| (r.worker, r.op));
        records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_events() {
        let plan = FaultPlan::none()
            .crash(1, 5)
            .hang(0, 2, Duration::from_millis(3))
            .drop_partition(2, 0, PartKey::new(7, 1))
            .lose_reply(1, 3);
        assert_eq!(plan.events().len(), 4);
        assert!(!plan.is_empty());
    }

    #[test]
    fn script_filters_and_sorts_per_worker() {
        let plan = FaultPlan::none()
            .crash(1, 5)
            .lose_reply(1, 3)
            .crash(0, 0);
        let mut s1 = plan.script_for(1);
        assert_eq!(s1.fire(3), vec![FaultAction::LoseReply]);
        assert_eq!(s1.fire(4), vec![]);
        assert_eq!(s1.fire(5), vec![FaultAction::Crash]);
        assert!(s1.is_exhausted());
        let mut s2 = plan.script_for(2);
        assert_eq!(s2.fire(100), vec![]);
    }

    #[test]
    fn fire_catches_up_on_skipped_ops() {
        let plan = FaultPlan::none().lose_reply(0, 1).crash(0, 2);
        let mut s = plan.script_for(0);
        // Op counter jumps straight to 9: both overdue events fire.
        assert_eq!(
            s.fire(9),
            vec![FaultAction::LoseReply, FaultAction::Crash]
        );
    }

    #[test]
    fn random_plan_is_reproducible() {
        let a = FaultPlan::random(42, 8, 16, 100, &[1, 2, 3]);
        let b = FaultPlan::random(42, 8, 16, 100, &[1, 2, 3]);
        assert_eq!(a, b);
        let c = FaultPlan::random(43, 8, 16, 100, &[1, 2, 3]);
        assert_ne!(a, c, "different seeds should differ");
        assert_eq!(a.events().len(), 16);
        assert!(a.events().iter().all(|e| e.worker < 8 && e.op < 100));
    }

    #[test]
    fn random_plan_without_files_never_drops_partitions() {
        let plan = FaultPlan::random(7, 4, 64, 50, &[]);
        assert!(plan
            .events()
            .iter()
            .all(|e| !matches!(e.action, FaultAction::DropPartition(_))));
    }

    #[test]
    fn wire_and_data_scripts_partition_the_plan() {
        let plan = FaultPlan::none()
            .crash(0, 5)
            .drop_connection(0, 2)
            .delay_frame(0, 3, Duration::from_millis(4))
            .truncate_frame(0, 7)
            .lose_reply(0, 1);
        let mut data = plan.data_script_for(0);
        let mut wire = plan.wire_script_for(0);
        assert_eq!(
            data.fire(100),
            vec![FaultAction::LoseReply, FaultAction::Crash]
        );
        assert_eq!(
            wire.fire(100),
            vec![
                FaultAction::DropConnection,
                FaultAction::DelayFrame(Duration::from_millis(4)),
                FaultAction::TruncateFrame,
            ]
        );
        // The combined script carries everything, in op order.
        let mut all = plan.script_for(0);
        assert_eq!(all.fire(100).len(), 5);
    }

    #[test]
    fn wire_classification() {
        assert!(FaultAction::DropConnection.is_wire());
        assert!(FaultAction::DelayFrame(Duration::ZERO).is_wire());
        assert!(FaultAction::TruncateFrame.is_wire());
        assert!(!FaultAction::Crash.is_wire());
        assert!(!FaultAction::LoseReply.is_wire());
        // Corruption is a *worker* fault even at the Wire site: the
        // worker flips the reply copy itself, so the same plan fires
        // identically over channels and sockets.
        assert!(!FaultAction::CorruptPartition {
            key: PartKey::new(1, 0),
            site: CorruptSite::Wire,
            byte: 3,
        }
        .is_wire());
        assert!(!FaultAction::DropHeartbeat.is_wire());
        assert!(!FaultAction::CrashRestart.is_wire());
        assert!(!FaultAction::StaleEpochDelivery.is_wire());
    }

    #[test]
    fn heartbeat_classification() {
        assert!(FaultAction::DropHeartbeat.is_heartbeat());
        assert!(!FaultAction::CrashRestart.is_heartbeat());
        assert!(!FaultAction::StaleEpochDelivery.is_heartbeat());
        assert!(!FaultAction::Crash.is_heartbeat());
        assert!(!FaultAction::DropConnection.is_heartbeat());
    }

    #[test]
    fn heartbeat_script_is_disjoint_from_op_scripts() {
        let plan = FaultPlan::none()
            .drop_heartbeat(0, 1)
            .crash_restart(0, 4)
            .stale_epoch(0, 2)
            .drop_heartbeat(0, 0)
            .drop_connection(0, 3)
            .lose_reply(0, 5);
        // Heartbeat script sees only the ping-indexed drops, sorted.
        let mut hb = plan.heartbeat_script_for(0);
        assert_eq!(
            hb.fire(100),
            vec![FaultAction::DropHeartbeat, FaultAction::DropHeartbeat]
        );
        // The combined op script excludes heartbeats entirely.
        let mut all = plan.script_for(0);
        assert_eq!(
            all.fire(100),
            vec![
                FaultAction::StaleEpochDelivery,
                FaultAction::DropConnection,
                FaultAction::CrashRestart,
                FaultAction::LoseReply,
            ]
        );
        // Data/wire split also excludes heartbeats.
        let mut data = plan.data_script_for(0);
        assert_eq!(
            data.fire(100),
            vec![
                FaultAction::StaleEpochDelivery,
                FaultAction::CrashRestart,
                FaultAction::LoseReply,
            ]
        );
        let mut wire = plan.wire_script_for(0);
        assert_eq!(wire.fire(100), vec![FaultAction::DropConnection]);
    }

    #[test]
    fn log_snapshot_is_sorted() {
        let log = FaultLog::new();
        log.record(2, 0, FaultAction::Crash);
        log.record(0, 3, FaultAction::LoseReply);
        log.record(0, 1, FaultAction::Crash);
        let snap = log.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!((snap[0].worker, snap[0].op), (0, 1));
        assert_eq!((snap[1].worker, snap[1].op), (0, 3));
        assert_eq!((snap[2].worker, snap[2].op), (2, 0));
    }
}

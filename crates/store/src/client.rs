//! The SP-Client: parallel fork-join reads and writes.

use bytes::Bytes;
use crossbeam::channel::{bounded, Sender};
use spcache_ec::{join_shards_bytes, split_into_shards};
use std::sync::Arc;

use crate::master::Master;
use crate::rpc::{PartKey, StoreError, WorkerRequest};

/// A client handle onto a running store cluster.
///
/// Cloning is cheap; each clone can issue requests concurrently.
#[derive(Debug, Clone)]
pub struct Client {
    master: Arc<Master>,
    workers: Vec<Sender<WorkerRequest>>,
}

impl Client {
    /// Builds a client over the master and the worker channels.
    pub fn new(master: Arc<Master>, workers: Vec<Sender<WorkerRequest>>) -> Self {
        assert!(!workers.is_empty(), "need at least one worker");
        Client { master, workers }
    }

    /// Number of workers visible to this client.
    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    /// The master (for metadata queries).
    pub fn master(&self) -> &Arc<Master> {
        &self.master
    }

    /// Writes a file split into `k` partitions on the given `servers`
    /// (`servers.len() == k`, distinct). All partitions are pushed in
    /// parallel; returns when the slowest lands (§6.1 writes whole files
    /// with `k = 1`; the split-write mode of §7.8 passes larger `k`).
    ///
    /// # Errors
    ///
    /// Propagates worker failures; metadata registration errors if the id
    /// is taken.
    pub fn write(&self, id: u64, data: &[u8], servers: &[usize]) -> Result<(), StoreError> {
        assert!(!servers.is_empty(), "need at least one target server");
        let k = servers.len();
        let shards = split_into_shards(data, k);

        // Fire all puts, then collect completions (parallel fan-out).
        let mut pending = Vec::with_capacity(k);
        for (j, (shard, &server)) in shards.into_iter().zip(servers).enumerate() {
            let (tx, rx) = bounded(1);
            self.workers[server]
                .send(WorkerRequest::Put {
                    key: PartKey::new(id, j as u32),
                    data: Bytes::from(shard),
                    reply: tx,
                })
                .map_err(|_| StoreError::WorkerDown(server))?;
            pending.push((server, rx));
        }
        for (server, rx) in pending {
            rx.recv().map_err(|_| StoreError::WorkerDown(server))??;
        }
        self.master.register(id, data.len(), servers.to_vec())
    }

    /// Reads a file: locates its partitions via the master (which counts
    /// the access), fetches them all in parallel, and reassembles the
    /// original bytes (the fork-join of Fig. 9a).
    ///
    /// # Errors
    ///
    /// Propagates unknown files, missing partitions and dead workers.
    pub fn read(&self, id: u64) -> Result<Vec<u8>, StoreError> {
        let (size, servers) = self.master.locate(id)?;
        self.fetch_and_join(id, size, &servers)
    }

    /// Reads without bumping the popularity counter.
    pub fn read_quiet(&self, id: u64) -> Result<Vec<u8>, StoreError> {
        let (size, servers) = self.master.peek(id)?;
        self.fetch_and_join(id, size, &servers)
    }

    fn fetch_and_join(
        &self,
        id: u64,
        size: usize,
        servers: &[usize],
    ) -> Result<Vec<u8>, StoreError> {
        let k = servers.len();
        let mut pending = Vec::with_capacity(k);
        for (j, &server) in servers.iter().enumerate() {
            let (tx, rx) = bounded(1);
            self.workers[server]
                .send(WorkerRequest::Get {
                    key: PartKey::new(id, j as u32),
                    reply: tx,
                })
                .map_err(|_| StoreError::WorkerDown(server))?;
            pending.push((server, rx));
        }
        let mut shards: Vec<Bytes> = Vec::with_capacity(k);
        for (server, rx) in pending {
            shards.push(rx.recv().map_err(|_| StoreError::WorkerDown(server))??);
        }
        Ok(join_shards_bytes(&shards, size))
    }

    /// Deletes a file's partitions and metadata; returns how many
    /// partitions were actually resident.
    pub fn delete(&self, id: u64) -> Result<usize, StoreError> {
        let info = self
            .master
            .unregister(id)
            .ok_or(StoreError::UnknownFile(id))?;
        let mut removed = 0;
        for (j, &server) in info.servers.iter().enumerate() {
            let (tx, rx) = bounded(1);
            if self.workers[server]
                .send(WorkerRequest::Delete {
                    key: PartKey::new(id, j as u32),
                    reply: tx,
                })
                .is_ok()
            {
                if let Ok(true) = rx.recv() {
                    removed += 1;
                }
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StoreConfig;
    use crate::cluster::StoreCluster;

    fn payload(len: usize) -> Vec<u8> {
        (0..len).map(|i| ((i * 31 + 7) % 256) as u8).collect()
    }

    #[test]
    fn write_read_roundtrip_single_partition() {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(4));
        let c = cluster.client();
        let data = payload(10_000);
        c.write(1, &data, &[2]).unwrap();
        assert_eq!(c.read(1).unwrap(), data);
    }

    #[test]
    fn write_read_roundtrip_partitioned() {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(8));
        let c = cluster.client();
        for (id, len, servers) in [
            (1u64, 9_999usize, vec![0, 1, 2]),
            (2, 10_000, vec![3, 4]),
            (3, 1, vec![5]),
            (4, 0, vec![6, 7]),
        ] {
            let data = payload(len);
            c.write(id, &data, &servers).unwrap();
            assert_eq!(c.read(id).unwrap(), data, "file {id}");
        }
    }

    #[test]
    fn read_unknown_file_errors() {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(2));
        let c = cluster.client();
        assert_eq!(c.read(42).unwrap_err(), StoreError::UnknownFile(42));
    }

    #[test]
    fn duplicate_write_rejected() {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(2));
        let c = cluster.client();
        c.write(1, b"abc", &[0]).unwrap();
        assert_eq!(
            c.write(1, b"xyz", &[1]).unwrap_err(),
            StoreError::AlreadyExists(1)
        );
    }

    #[test]
    fn reads_count_accesses_quiet_reads_do_not() {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(2));
        let c = cluster.client();
        c.write(1, b"abc", &[0]).unwrap();
        let _ = c.read(1).unwrap();
        let _ = c.read(1).unwrap();
        let _ = c.read_quiet(1).unwrap();
        assert_eq!(cluster.master().accesses(1), 2);
    }

    #[test]
    fn delete_removes_partitions_and_metadata() {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(3));
        let c = cluster.client();
        c.write(1, &payload(300), &[0, 1, 2]).unwrap();
        assert_eq!(c.delete(1).unwrap(), 3);
        assert_eq!(c.read(1).unwrap_err(), StoreError::UnknownFile(1));
    }

    #[test]
    fn parallel_reads_from_many_clients() {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(4));
        let c = cluster.client();
        let data = payload(40_000);
        c.write(1, &data, &[0, 1, 2, 3]).unwrap();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                let data = data.clone();
                s.spawn(move || {
                    for _ in 0..20 {
                        assert_eq!(c.read(1).unwrap(), data);
                    }
                });
            }
        });
        assert_eq!(cluster.master().accesses(1), 160);
    }

    #[test]
    fn parallel_partition_read_is_faster_than_serial_transfer() {
        // 4 MB at 20 MB/s would take 200 ms whole; split 4 ways across
        // 4 throttled workers it should take ~50 ms + overhead.
        let cluster = StoreCluster::spawn(StoreConfig::throttled(4, 20e6));
        let c = cluster.client();
        let data = payload(4_000_000);
        c.write(1, &data, &[0, 1, 2, 3]).unwrap();
        let t0 = std::time::Instant::now();
        assert_eq!(c.read(1).unwrap(), data);
        let split_time = t0.elapsed().as_secs_f64();
        assert!(
            split_time < 0.15,
            "parallel read took {split_time}s, expected ~0.05s"
        );
    }
}

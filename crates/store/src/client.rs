//! The SP-Client: parallel fork-join reads and writes, with a robust,
//! zero-copy, select-driven data path (single per-read deadline, bounded
//! retry, hedged under-store range reads).

use bytes::Bytes;
use crossbeam::channel::{Receiver, RecvTimeoutError, Select, TryRecvError};
use parking_lot::Mutex;
use spcache_core::online::partition_range;
use spcache_ec::{split_shards_bytes, ReedSolomon};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::backing::UnderStore;
use crate::config::{DegradedPolicy, HedgePolicy, RetryPolicy};
use crate::master::MetaService;
use crate::metalog::FileIntegrity;
use crate::rpc::{PartKey, Reply, Request, StoreError};
use crate::transport::Transport;

/// A client handle onto a running store cluster.
///
/// Cloning is cheap; each clone can issue requests concurrently.
///
/// The client is **transport-agnostic**: it talks to workers through a
/// [`Transport`] (in-process channels or `spcache-net`'s TCP framing)
/// and to its master through a [`MetaService`] (the in-process
/// [`crate::master::Master`] or a wire master client) — the read/write
/// logic below is byte-identical over both.
///
/// Reads are **robust** and **out-of-order**: all `k` partition fetches
/// are issued at once and their replies consumed as they land via a
/// ready-set [`Select`] over the reply channels — no partition waits
/// behind a slower, lower-indexed one. One [`RetryPolicy::deadline`]
/// covers the whole read attempt (the fork-join of Fig. 9a really is
/// bounded by its slowest partition, not by `k` stacked timeouts). A
/// failed attempt is retried with exponential backoff after re-locating
/// the file (and, when an under-store is attached, after recovering lost
/// partitions onto live workers). With [`HedgePolicy`] enabled, the hedge
/// timer fires once per read for the *actual* stragglers: every partition
/// still outstanding at the threshold is served from its exact byte range
/// in the under-store checkpoint ([`UnderStore::load_range`]) — the
/// late-binding trick of EC-Cache, adapted to a redundancy-free cache
/// where the checkpoint is the only second copy.
///
/// Reads are also **zero-copy** up to the final assembly:
/// [`Client::write_bytes`] slices one backing buffer into partition
/// views, workers store and reply with views of that same allocation,
/// and [`Client::read_scattered`] hands those views back without ever
/// materializing a contiguous copy. [`Client::read`] performs exactly
/// one copy: each reply is scattered directly into its offset of a
/// single preallocated output buffer as it arrives.
#[derive(Debug, Clone)]
pub struct Client {
    master: Arc<dyn MetaService>,
    transport: Arc<dyn Transport>,
    retry: RetryPolicy,
    hedge: HedgePolicy,
    under: Option<Arc<UnderStore>>,
    hedged_fetches: Arc<AtomicU64>,
    hedged_bytes: Arc<AtomicU64>,
    /// Whether data requests are stamped with the target worker's
    /// fencing epoch (see [`Request::fenced`]); off by default — an
    /// unfenced client is wire-identical to the pre-supervisor store.
    fenced: bool,
    /// Admission policy for operations on files whose repair is in
    /// flight elsewhere.
    degraded: DegradedPolicy,
    /// Whether this client's data requests are stamped
    /// [`Request::Background`]: workers pace them through the
    /// background share of their NIC. On for maintenance actors
    /// (supervisor sweeps, repartitioners, heal pushes), off for
    /// foreground clients.
    background: bool,
    /// Whether fenced stamps also carry the master's **master epoch**
    /// (§4.14), so workers can detect traffic from a deposed master.
    /// On for masters' own actors (the supervisor); off for plain
    /// clients, whose stamps stay wire-identical to the pre-failover
    /// store.
    master_stamp: bool,
    /// Cached per-worker epoch table, shared across clones; refreshed
    /// from the master whenever a worker bounces a stale stamp.
    epochs: Arc<Mutex<Vec<u64>>>,
    /// Whether reads re-verify each landed partition against the
    /// master's checksum row (§4.15). Off by default: workers already
    /// verify when their `verify_reads` knob is on, and the wire adds
    /// its own framing CRCs — this knob adds the end-to-end check.
    verify: bool,
    /// How many Cauchy-RS parity partitions each write fans out (onto
    /// workers outside the file's data placement). 0 = redundancy-free
    /// (the seed behaviour); `r ≥ 1` lets a read rebuild a corrupt or
    /// lost partition from any `k` of the `k + r` partitions without an
    /// under-store round-trip.
    parity: usize,
}

impl Client {
    /// Builds a client over a metadata service and a worker transport,
    /// with a single-attempt [`RetryPolicy::none`] and hedging disabled
    /// (the seed behaviour).
    pub fn new(master: Arc<dyn MetaService>, transport: Arc<dyn Transport>) -> Self {
        assert!(transport.n_workers() > 0, "need at least one worker");
        Client {
            master,
            transport,
            retry: RetryPolicy::none(),
            hedge: HedgePolicy::disabled(),
            under: None,
            hedged_fetches: Arc::new(AtomicU64::new(0)),
            hedged_bytes: Arc::new(AtomicU64::new(0)),
            fenced: false,
            degraded: DegradedPolicy::Queue,
            background: false,
            master_stamp: false,
            epochs: Arc::new(Mutex::new(Vec::new())),
            verify: false,
            parity: 0,
        }
    }

    /// Sets the retry policy (builder style).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enables (or disables) epoch fencing: every data request carries
    /// the target worker's registration epoch, so a crash-restarted
    /// zombie can never serve it (builder style). Requires a supervisor
    /// (or manual registration) granting epochs — against an
    /// all-epoch-0 fleet the stamps are elided and behaviour is
    /// unchanged.
    pub fn with_fencing(mut self, fenced: bool) -> Self {
        self.fenced = fenced;
        self
    }

    /// Sets the degraded-mode admission policy (builder style):
    /// [`DegradedPolicy::Queue`] keeps retrying while a repair is in
    /// flight elsewhere; [`DegradedPolicy::FastFail`] surfaces
    /// [`StoreError::Degraded`] immediately.
    pub fn with_degraded_policy(mut self, policy: DegradedPolicy) -> Self {
        self.degraded = policy;
        self
    }

    /// Sets the hedge policy (builder style). Hedging only fires when an
    /// under-store is attached too.
    pub fn with_hedge(mut self, hedge: HedgePolicy) -> Self {
        self.hedge = hedge;
        self
    }

    /// Attaches the under-store used for hedged reads and read-path
    /// recovery.
    pub fn with_under_store(mut self, under: Arc<UnderStore>) -> Self {
        self.under = Some(under);
        self
    }

    /// Marks this client's data requests as background traffic (builder
    /// style): workers pace them through the background share of their
    /// NIC (§4.4), so maintenance streams never starve foreground
    /// reads.
    pub fn with_background(mut self, background: bool) -> Self {
        self.background = background;
        self
    }

    /// Stamps every request with the metadata service's current master
    /// epoch (builder style). A worker that has heard from a newer
    /// master bounces the stamp with [`StoreError::StaleEpoch`] — how a
    /// deposed master's supervisor learns it was fenced (§4.14). Plain
    /// [`MetaService`] impls report epoch 0, which stamps nothing.
    pub fn with_master_stamp(mut self, master_stamp: bool) -> Self {
        self.master_stamp = master_stamp;
        self
    }

    /// Enables end-to-end read verification (builder style): every
    /// landed partition is checked against the master's checksum row,
    /// and a mismatch surfaces as a [`StoreError::Corrupt`] erasure
    /// instead of wrong bytes. Writes from a verifying client always
    /// record an integrity row.
    pub fn with_verify(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }

    /// Sets the per-file parity width `r` (builder style): each write
    /// additionally encodes `r` Cauchy-RS parity partitions placed on
    /// workers *outside* the data placement, enabling the
    /// corruption-to-erasure recovery path of §4.15. Clamped per write
    /// to the number of spare workers.
    pub fn with_parity(mut self, parity: usize) -> Self {
        self.parity = parity;
        self
    }

    /// A clone of this client whose requests are background-stamped —
    /// handed to recovery and repartition paths running next to
    /// foreground traffic.
    pub fn as_background(&self) -> Client {
        self.clone().with_background(true)
    }

    /// Number of workers visible to this client.
    pub fn n_workers(&self) -> usize {
        self.transport.n_workers()
    }

    /// The metadata service (for metadata queries).
    pub fn master(&self) -> &Arc<dyn MetaService> {
        &self.master
    }

    /// The worker transport.
    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    /// How many partition fetches were served from the under-store by
    /// the hedging path (across all clones of this client).
    pub fn hedged_fetches(&self) -> u64 {
        self.hedged_fetches.load(Ordering::Relaxed)
    }

    /// How many bytes the hedging path actually pulled from the
    /// under-store (ranged reads — one straggling partition costs its
    /// partition's bytes, never the whole file).
    pub fn hedged_bytes(&self) -> u64 {
        self.hedged_bytes.load(Ordering::Relaxed)
    }

    /// Writes a file split into `k` partitions on the given `servers`
    /// (`servers.len() == k`). All partitions are pushed in parallel;
    /// returns when the slowest lands (§6.1 writes whole files with
    /// `k = 1`; the split-write mode of §7.8 passes larger `k`).
    ///
    /// Copies `data` once into a shared buffer; use
    /// [`Client::write_bytes`] to skip even that copy.
    ///
    /// # Errors
    ///
    /// Propagates worker failures; metadata registration errors if the id
    /// is taken.
    pub fn write(&self, id: u64, data: &[u8], servers: &[usize]) -> Result<(), StoreError> {
        self.write_bytes(id, Bytes::copy_from_slice(data), servers)
    }

    /// Zero-copy write: `data`'s backing allocation is sliced into
    /// per-partition views that the workers store directly — no byte is
    /// copied anywhere on the write path.
    ///
    /// # Errors
    ///
    /// Propagates worker failures; metadata registration errors if the id
    /// is taken.
    pub fn write_bytes(&self, id: u64, data: Bytes, servers: &[usize]) -> Result<(), StoreError> {
        let size = data.len();
        let sums = self.push_partitions(id, &data, servers)?;
        self.master.register(id, size, servers.to_vec())?;
        if self.verify || self.parity > 0 {
            // Record the integrity row only after the file exists: the
            // checksums describe exactly the partitions just pushed, and
            // the parity map tells readers where the recovery set lives.
            let parity = self.push_parity(id, &data, servers)?;
            self.master.set_integrity(id, FileIntegrity { sums, parity })?;
        }
        Ok(())
    }

    /// Writes a whole batch of files in one wave: every file's
    /// partition pushes are fired as a **single** transport batch
    /// (socket transports coalesce them into shared `writev` rounds),
    /// completions are collected under one shared deadline, and all
    /// metadata rows land through one [`MetaService::register_batch`]
    /// call — one metadata round-trip per wave instead of one per file.
    /// This is the seeding path for million-file corpora (§6.1 at
    /// fleet scale): callers stream chunks of a few thousand files
    /// through here instead of calling [`Client::write_bytes`] a
    /// million times.
    ///
    /// # Errors
    ///
    /// Propagates worker failures and metadata registration errors (a
    /// duplicate id rejects the whole chunk's metadata; already-pushed
    /// partitions are orphaned until GC, matching single-write
    /// semantics on registration failure).
    pub fn write_many(&self, files: &[(u64, Bytes, Vec<usize>)]) -> Result<(), StoreError> {
        if files.is_empty() {
            return Ok(());
        }
        let mut reqs = Vec::new();
        let mut targets = Vec::new();
        let mut rows = Vec::with_capacity(files.len());
        let mut integrity = Vec::with_capacity(files.len());
        for (id, data, servers) in files {
            assert!(!servers.is_empty(), "need at least one target server");
            let shards = split_shards_bytes(data, servers.len());
            let sums = spcache_integrity::sums(&shards);
            for (j, (shard, &server)) in shards.into_iter().zip(servers).enumerate() {
                reqs.push((
                    server,
                    Request::Put {
                        key: PartKey::new(*id, j as u32),
                        data: shard,
                        sum: sums[j],
                    },
                ));
                targets.push(server);
            }
            rows.push((*id, data.len(), servers.clone()));
            integrity.push((*id, sums));
        }
        let rxs = self.submit_batch(reqs)?;
        let deadline = Instant::now() + self.retry.deadline;
        for (server, rx) in targets.into_iter().zip(rxs) {
            let remaining = deadline.saturating_duration_since(Instant::now());
            self.await_reply(server, &rx, remaining)?.unit()?;
        }
        self.master.register_batch(&rows)?;
        if self.verify || self.parity > 0 {
            // The bulk-seeding path records checksum rows but skips the
            // parity fan-out (seed corpora are re-derivable; parity is
            // for the hot set written through `write_bytes`).
            for (id, sums) in integrity {
                self.master.set_integrity(id, FileIntegrity::data_only(sums))?;
            }
        }
        Ok(())
    }

    /// Pushes `data` re-split into `servers.len()` partition views under
    /// this file's keys without touching metadata — the building block
    /// shared by [`Client::write_bytes`] and under-store recovery
    /// ([`crate::backing::recover_file`]). The views share `data`'s
    /// allocation (see [`split_shards_bytes`]). Returns the partitions'
    /// checksums (each Put is stamped with its shard's sum, so workers
    /// can verify later reads and spill reloads).
    pub(crate) fn push_partitions(
        &self,
        id: u64,
        data: &Bytes,
        servers: &[usize],
    ) -> Result<Vec<u64>, StoreError> {
        assert!(!servers.is_empty(), "need at least one target server");
        let shards = split_shards_bytes(data, servers.len());
        let sums = spcache_integrity::sums(&shards);

        // Fire all puts as ONE batch (socket transports coalesce the
        // frames into shared `writev` rounds), then collect completions
        // under one shared deadline (parallel fan-out: the write is
        // bounded by its slowest partition, not by the sum of
        // per-partition waits).
        let reqs = shards
            .into_iter()
            .zip(servers)
            .enumerate()
            .map(|(j, (shard, &server))| {
                (
                    server,
                    Request::Put {
                        key: PartKey::new(id, j as u32),
                        data: shard,
                        sum: sums[j],
                    },
                )
            })
            .collect();
        let rxs = self.submit_batch(reqs)?;
        let pending: Vec<(usize, _)> = servers.iter().copied().zip(rxs).collect();
        let deadline = Instant::now() + self.retry.deadline;
        for (server, rx) in pending {
            let remaining = deadline.saturating_duration_since(Instant::now());
            self.await_reply(server, &rx, remaining)?.unit()?;
        }
        Ok(sums)
    }

    /// Encodes and pushes this file's Cauchy-RS parity partitions onto
    /// workers *outside* its data placement, so no single worker holds
    /// both a data partition and the parity needed to rebuild it.
    /// Returns the `(server, checksum)` pair per parity index — the
    /// parity half of the master's integrity row. The configured width
    /// is clamped to the number of spare workers (a fleet with no spare
    /// gets no parity; the read path then heals via the under-store).
    fn push_parity(
        &self,
        id: u64,
        data: &Bytes,
        servers: &[usize],
    ) -> Result<Vec<(usize, u64)>, StoreError> {
        let k = servers.len();
        let spare: Vec<usize> = (0..self.transport.n_workers())
            .filter(|w| !servers.contains(w))
            .collect();
        let r = self.parity.min(spare.len());
        if r == 0 {
            return Ok(Vec::new());
        }
        let mut shards = ReedSolomon::new_cauchy(k, k + r).encode_bytes(data);
        let parity: Vec<Bytes> = shards.split_off(k).into_iter().map(Bytes::from).collect();
        let sums = spcache_integrity::sums(&parity);
        // Rotate the spare list by file id so parity load spreads across
        // the fleet instead of piling onto the lowest-indexed workers.
        let rot = (id as usize) % spare.len();
        let place = |p: usize| spare[(rot + p) % spare.len()];
        let reqs = parity
            .into_iter()
            .enumerate()
            .map(|(p, shard)| {
                (
                    place(p),
                    Request::Put {
                        key: PartKey::parity(id, p as u32),
                        data: shard,
                        sum: sums[p],
                    },
                )
            })
            .collect();
        let rxs = self.submit_batch(reqs)?;
        let deadline = Instant::now() + self.retry.deadline;
        let mut row = Vec::with_capacity(r);
        for (p, rx) in rxs.iter().enumerate() {
            let remaining = deadline.saturating_duration_since(Instant::now());
            self.await_reply(place(p), rx, remaining)?.unit()?;
            row.push((place(p), sums[p]));
        }
        Ok(row)
    }

    /// Best-effort partition drop on one worker (recovery GC); errors
    /// and dead workers are ignored. Deliberately unfenced (a stale
    /// epoch must not block GC), but background-stamped like the rest
    /// of a maintenance client's traffic.
    pub(crate) fn discard_partition(&self, server: usize, key: PartKey) {
        let mut req = Request::Delete { key };
        if self.background {
            req = req.background();
        }
        if let Ok(rx) = self.transport.submit(server, req) {
            let _ = rx.recv_timeout(self.retry.deadline);
        }
    }

    /// Reads a file: locates its partitions via the master (which counts
    /// the access), fetches them all in parallel, and scatters each reply
    /// into its offset of one preallocated buffer (the fork-join of
    /// Fig. 9a, out of order). Failed attempts are retried per the
    /// [`RetryPolicy`], recovering from the under-store when one is
    /// attached.
    ///
    /// # Errors
    ///
    /// Propagates unknown files, and — once retries are exhausted —
    /// missing partitions, timeouts, transport I/O failures and dead
    /// workers.
    pub fn read(&self, id: u64) -> Result<Vec<u8>, StoreError> {
        match self.read_robust(id, true, true)? {
            ReadOut::Contiguous(buf) => Ok(buf),
            ReadOut::Scattered(f) => Ok(gather(f)),
        }
    }

    /// Reads without bumping the popularity counter.
    pub fn read_quiet(&self, id: u64) -> Result<Vec<u8>, StoreError> {
        match self.read_robust(id, false, true)? {
            ReadOut::Contiguous(buf) => Ok(buf),
            ReadOut::Scattered(f) => Ok(gather(f)),
        }
    }

    /// Zero-copy read: returns the file as its in-index-order partition
    /// views, sharing the workers' cached allocations — no byte is copied
    /// on the way out. Consumers that stream (checksum, socket `writev`,
    /// re-partitioning) never need the contiguous copy [`Client::read`]
    /// materializes. Counts an access like [`Client::read`].
    ///
    /// The concatenation of the views, truncated to the file's size, is
    /// the file's content (legacy padded tails are trimmed by
    /// [`ScatteredFile::to_vec`]).
    ///
    /// # Errors
    ///
    /// Same contract as [`Client::read`].
    pub fn read_scattered(&self, id: u64) -> Result<ScatteredFile, StoreError> {
        match self.read_robust(id, true, false)? {
            ReadOut::Scattered(f) => Ok(f),
            ReadOut::Contiguous(_) => unreachable!("scattered mode returns views"),
        }
    }

    /// One robust read: locate → fetch-all-partitions → retry/heal loop.
    /// With `contiguous` set, each partition is copied into its offset of
    /// one preallocated output buffer **as its reply lands**, so the
    /// read's single copy overlaps the wait for slower partitions instead
    /// of running serially after the join.
    fn read_robust(
        &self,
        id: u64,
        count_access: bool,
        contiguous: bool,
    ) -> Result<ReadOut, StoreError> {
        let mut attempt = 0u32;
        let started = Instant::now();
        loop {
            attempt += 1;
            // Re-locate every attempt: recovery and repartition both
            // change the placement under us.
            let located = if count_access && attempt == 1 {
                self.master.locate(id)
            } else {
                self.master.peek(id)
            };
            let (size, servers) = located?;
            // The integrity row travels beside the placement: the
            // checksum half drives end-to-end verification, the parity
            // half names the recovery set (§4.15).
            let integ = if self.verify {
                self.master.integrity(id)
            } else {
                None
            };
            let sums = integ
                .as_ref()
                .map(|i| i.sums.as_slice())
                // A row of the wrong width predates a re-split that has
                // not recorded fresh sums yet — don't verify against it.
                .filter(|s| s.len() == servers.len());
            let mut sink = if contiguous {
                ReadSink::contiguous(size, servers.len())
            } else {
                ReadSink::parts(servers.len())
            };
            let err = match self.fetch_into(id, size, &servers, sums, &mut sink) {
                Ok(()) => return Ok(sink.finish(size)),
                Err(e) => e,
            };
            // A corrupt partition is an *erasure* — and so is a lost
            // one (`NotFound` with no spill copy left). The parity set
            // exists for exactly this: rebuild the file from any `k` of
            // its `k + r` verified partitions, with no under-store
            // round-trip. This is part of the same read attempt (it
            // runs even under a single-attempt policy); failure here
            // (parity unreachable, too few verified shards) falls
            // through to the heal-and-retry path.
            if matches!(err, StoreError::Corrupt(_) | StoreError::NotFound(_)) {
                let row = match integ {
                    Some(i) => Some(i),
                    // Workers verify even when this client doesn't
                    // (e.g. `verify_reads` on the fleet only): fetch
                    // the row we skipped above.
                    None => self.master.integrity(id),
                };
                let row = row
                    .filter(|r| !r.parity.is_empty() && r.sums.len() == servers.len());
                if let Some(row) = row {
                    if let Ok(parts) = self.read_via_parity(id, size, &servers, &row) {
                        let f = ScatteredFile { size, parts };
                        return Ok(if contiguous {
                            ReadOut::Contiguous(gather(f))
                        } else {
                            ReadOut::Scattered(f)
                        });
                    }
                }
            }
            if !err.is_retryable() || attempt >= self.retry.max_attempts {
                return Err(err);
            }
            // Heal before retrying: recover the file from the
            // under-store onto live workers, so the next attempt reads
            // a fresh placement instead of the same hole. A denied
            // repair slot means someone else (the supervisor's sweep or
            // another client) is already healing this file — under
            // `FastFail` that sheds the operation immediately, under
            // `Queue` the retry loop simply waits the repair out.
            if let Some(under) = &self.under {
                if under.contains(id) {
                    let live = self.master.live_workers(self.transport.n_workers());
                    if !live.is_empty() {
                        let targets =
                            crate::backing::recovery_targets(&live, servers.len(), id);
                        // The heal's partition pushes are maintenance
                        // traffic riding next to this foreground read:
                        // stamp them background so the refill cannot
                        // starve other clients' reads.
                        let healed = crate::backing::recover_file(
                            &self.as_background(),
                            self.master.as_ref(),
                            under,
                            id,
                            &targets,
                        );
                        if matches!(healed, Err(StoreError::Degraded(_))) {
                            match self.degraded {
                                DegradedPolicy::FastFail => {
                                    return Err(StoreError::Degraded(id));
                                }
                                // A TTL'd queue keeps waiting the repair
                                // out only while this operation is
                                // young; past the TTL it sheds like
                                // FastFail so degraded reads have a
                                // bounded worst case.
                                DegradedPolicy::QueueTtl(ttl)
                                    if started.elapsed() >= ttl =>
                                {
                                    return Err(StoreError::Degraded(id));
                                }
                                _ => {}
                            }
                        }
                    }
                }
            }
            let backoff = self.retry.base_backoff * 2u32.saturating_pow(attempt - 1);
            if backoff > Duration::ZERO {
                std::thread::sleep(backoff);
            }
        }
    }

    /// One fork-join attempt against a fixed placement: fire all `k`
    /// fetches as a single transport batch, then consume replies **as
    /// they land** via a ready-set select over the reply channels, under
    /// a **single deadline** for the whole attempt. Each landed reply is
    /// placed into `sink` immediately — for a contiguous sink that copy
    /// runs while slower partitions are still on the wire.
    ///
    /// When hedging is armed, one hedge timer covers the read: at the
    /// straggler threshold, every partition still outstanding — i.e. the
    /// actual stragglers, whatever their index — is served from its byte
    /// range in the under-store checkpoint instead.
    /// With `sums` present, every landed worker reply is additionally
    /// verified against its stored checksum; a mismatch aborts the
    /// attempt with [`StoreError::Corrupt`] — the same erasure a
    /// verifying worker reports. (Hedged under-store ranges are the
    /// checkpoint ground truth and are not re-checked.)
    fn fetch_into(
        &self,
        id: u64,
        size: usize,
        servers: &[usize],
        sums: Option<&[u64]>,
        sink: &mut ReadSink,
    ) -> Result<(), StoreError> {
        let k = servers.len();
        let start = Instant::now();
        let deadline = start + self.retry.deadline;

        // Fork: issue every partition fetch up front, in one batch.
        let reqs = servers
            .iter()
            .enumerate()
            .map(|(j, &server)| {
                (
                    server,
                    Request::Get {
                        key: PartKey::new(id, j as u32),
                    },
                )
            })
            .collect();
        let replies = self.submit_batch(reqs)?;

        let hedging = self.hedge.enabled && self.under.is_some();
        let mut hedge_at = if hedging {
            Some(start + self.hedge.straggler_threshold.min(self.retry.deadline))
        } else {
            None
        };

        // Join: a ready-set wait over all outstanding reply channels.
        let mut remaining = k;
        while remaining > 0 {
            let wait_until = hedge_at.map_or(deadline, |h| h.min(deadline));
            let mut sel = Select::new();
            let mut outstanding = Vec::with_capacity(remaining);
            for (j, rx) in replies.iter().enumerate() {
                if sink.is_pending(j) {
                    outstanding.push(j);
                    sel.recv(rx);
                }
            }
            match sel.ready_deadline(wait_until) {
                Ok(i) => {
                    let j = outstanding[i];
                    match replies[j].try_recv() {
                        Ok(reply) => {
                            let data = self.absorb_reply(servers[j], reply)?.bytes()?;
                            if let Some(sums) = sums {
                                if !spcache_integrity::verify(&data, sums[j]) {
                                    return Err(StoreError::Corrupt(PartKey::new(
                                        id, j as u32,
                                    )));
                                }
                            }
                            sink.place(j, data);
                            remaining -= 1;
                        }
                        Err(TryRecvError::Disconnected) => {
                            return Err(self.worker_down(servers[j]));
                        }
                        // Spurious readiness; go wait again.
                        Err(TryRecvError::Empty) => {}
                    }
                }
                Err(_) if hedge_at.is_some_and(|h| h < deadline) => {
                    // Hedge timer fired before the deadline: late-bind
                    // every partition still outstanding to its exact byte
                    // range in the under-store checkpoint. If there is no
                    // checkpoint, disarm the hedge and wait out the rest
                    // of the deadline.
                    hedge_at = None;
                    let under = self.under.as_ref().expect("hedging requires under-store");
                    for &j in &outstanding {
                        let range = partition_range(size as u64, k, j);
                        let Some(data) = under.load_range(id, range.start, range.len())
                        else {
                            break;
                        };
                        self.master.suspect(servers[j]);
                        self.hedged_fetches.fetch_add(1, Ordering::Relaxed);
                        self.hedged_bytes
                            .fetch_add(data.len() as u64, Ordering::Relaxed);
                        sink.place(j, data);
                        remaining -= 1;
                    }
                }
                Err(_) => {
                    // The read deadline expired with partitions missing:
                    // the slowest partition really is the read's fate
                    // (Eq. 9). Suspect and report its actual holder.
                    let straggler = servers[outstanding[0]];
                    return Err(self.timeout(straggler));
                }
            }
        }
        Ok(())
    }

    /// Corruption-to-erasure recovery (§4.15): re-reads the file
    /// through its parity set. All `k` data fetches and `r` parity
    /// fetches fire as one batch; replies are consumed as they land and
    /// **verified** against the integrity row (this read is recovering
    /// from a corruption — nothing is taken on trust). As soon as any
    /// `k` of the `k + r` shards verify, the rest are abandoned
    /// (EC-Cache's late binding, repurposed from straggler evasion to
    /// erasure repair) and the missing data partitions are rebuilt by
    /// the Cauchy decode. Rebuilt partitions are re-pushed to their
    /// placement in the background (read repair), so the next read is
    /// clean — all without touching the under-store.
    fn read_via_parity(
        &self,
        id: u64,
        size: usize,
        servers: &[usize],
        row: &FileIntegrity,
    ) -> Result<Vec<Bytes>, StoreError> {
        let k = servers.len();
        let r = row.parity.len();
        let deadline = Instant::now() + self.retry.deadline;

        let mut reqs = Vec::with_capacity(k + r);
        for (j, &server) in servers.iter().enumerate() {
            reqs.push((
                server,
                Request::Get {
                    key: PartKey::new(id, j as u32),
                },
            ));
        }
        for (p, &(server, _)) in row.parity.iter().enumerate() {
            reqs.push((
                server,
                Request::GetParity {
                    key: PartKey::parity(id, p as u32),
                },
            ));
        }
        let endpoints: Vec<usize> = reqs.iter().map(|&(s, _)| s).collect();
        let replies = self.submit_batch(reqs)?;

        // Late-binding join: any k verified shards end the wait.
        let mut got: Vec<Option<Bytes>> = vec![None; k + r];
        let mut done = vec![false; k + r];
        let mut verified = 0usize;
        let mut last_err = StoreError::Corrupt(PartKey::new(id, 0));
        while verified < k {
            let mut sel = Select::new();
            let mut outstanding = Vec::new();
            for (i, rx) in replies.iter().enumerate() {
                if !done[i] {
                    outstanding.push(i);
                    sel.recv(rx);
                }
            }
            if outstanding.is_empty() {
                // Every channel answered and fewer than k shards
                // verified: the parity set cannot cover this failure.
                return Err(last_err);
            }
            match sel.ready_deadline(deadline) {
                Ok(sel_i) => {
                    let i = outstanding[sel_i];
                    match replies[i].try_recv() {
                        Ok(reply) => {
                            done[i] = true;
                            match self
                                .absorb_reply(endpoints[i], reply)
                                .and_then(|rep| rep.bytes())
                            {
                                Ok(data) => {
                                    let want = if i < k {
                                        row.sums[i]
                                    } else {
                                        row.parity[i - k].1
                                    };
                                    if spcache_integrity::verify(&data, want) {
                                        got[i] = Some(data);
                                        verified += 1;
                                    }
                                }
                                Err(e) => last_err = e,
                            }
                        }
                        Err(TryRecvError::Disconnected) => {
                            done[i] = true;
                            last_err = self.worker_down(endpoints[i]);
                        }
                        Err(TryRecvError::Empty) => {}
                    }
                }
                Err(_) => return Err(self.timeout(endpoints[outstanding[0]])),
            }
        }

        let missing: Vec<usize> = (0..k).filter(|&j| got[j].is_none()).collect();
        if missing.is_empty() {
            // All data partitions verified after all (the corrupt copy
            // was already overwritten under us) — no decode needed.
            return Ok(got.into_iter().take(k).map(|b| b.expect("verified")).collect());
        }

        // Data partitions arrive ragged; the codec works on the equal
        // `ceil(size / k)` slot layout they are views of (see
        // `split_shards_bytes` / `split_into_shards`) — zero-pad each to
        // its slot, decode, and slice the ragged views back out.
        let shard_len = size.div_ceil(k).max(1);
        let mut shards: Vec<Option<Vec<u8>>> = got
            .iter()
            .map(|s| {
                s.as_ref().map(|b| {
                    let mut v = b.to_vec();
                    v.resize(shard_len, 0);
                    v
                })
            })
            .collect();
        let data = ReedSolomon::new_cauchy(k, k + r)
            .reconstruct_data(&mut shards)
            .map_err(|_| StoreError::Corrupt(PartKey::new(id, missing[0] as u32)))?;
        let data = Bytes::from(data);
        let parts: Vec<Bytes> = (0..k)
            .map(|j| {
                let start = j * shard_len;
                let end = ((j + 1) * shard_len).min(size);
                if start >= size {
                    Bytes::new()
                } else {
                    data.slice(start..end)
                }
            })
            .collect();
        for &j in &missing {
            // The decode is only as good as the integrity row it used;
            // prove each rebuilt partition against its recorded sum
            // before handing it out (or re-landing it) as truth.
            if !spcache_integrity::verify(&parts[j], row.sums[j]) {
                return Err(StoreError::Corrupt(PartKey::new(id, j as u32)));
            }
        }

        // Read repair: re-land the erased partitions on their placement
        // (background-stamped, fire-and-forget). The worker counts the
        // overwrite of a corrupted-erased key as a decode
        // reconstruction.
        for &j in &missing {
            let req = Request::Put {
                key: PartKey::new(id, j as u32),
                data: parts[j].clone(),
                sum: row.sums[j],
            }
            .background();
            let _ = self.transport.submit(servers[j], req);
        }
        Ok(parts)
    }

    /// Submits a fan-out of requests — each stamped with its target's
    /// fencing epoch when fencing is on — folding a submission failure
    /// into the health table (a closed channel is definitive death; a
    /// socket error is suspicion-worthy but survivable). The whole
    /// batch goes to the transport in one call so a socket transport
    /// can coalesce the frames into shared `writev` rounds (one
    /// event-loop wakeup per shard instead of one per request).
    fn submit_batch(
        &self,
        reqs: Vec<(usize, Request)>,
    ) -> Result<Vec<Receiver<Reply>>, StoreError> {
        let reqs = if self.fenced || self.background || self.master_stamp {
            reqs.into_iter()
                .map(|(server, req)| (server, self.stamp(server, req)))
                .collect()
        } else {
            reqs
        };
        self.transport.submit_batch(reqs).inspect_err(|e| {
            self.note_error(e);
        })
    }

    /// Applies this client's request stamps in canonical nesting order:
    /// background class inside, epoch fence (worker epoch + optional
    /// master epoch) outside.
    fn stamp(&self, server: usize, req: Request) -> Request {
        let req = if self.background {
            req.background()
        } else {
            req
        };
        let epoch = if self.fenced { self.epoch_of(server) } else { 0 };
        let master = if self.master_stamp {
            self.master.master_epoch()
        } else {
            0
        };
        req.fenced_master(epoch, master)
    }

    /// The cached fencing epoch of `server`, fetching the table from
    /// the master while no worker has been granted one yet (0 = don't
    /// stamp). The cache refreshes on every stale-epoch bounce.
    fn epoch_of(&self, server: usize) -> u64 {
        let mut cache = self.epochs.lock();
        if cache.iter().all(|&e| e == 0) {
            *cache = self.master.worker_epochs(self.transport.n_workers());
        }
        cache.get(server).copied().unwrap_or(0)
    }

    /// Re-fetches the epoch table — a worker just bounced one of our
    /// stamps, so the fleet registered past our cache.
    fn refresh_epochs(&self) {
        *self.epochs.lock() = self.master.worker_epochs(self.transport.n_workers());
    }

    /// Folds an error's health signal into the master's table. Endpoint
    /// indices outside the worker fleet (e.g. the master sentinel used by
    /// wire transports) carry no worker-health signal and are ignored.
    fn note_error(&self, e: &StoreError) {
        match e {
            StoreError::WorkerDown(w) if *w < self.transport.n_workers() => {
                self.master.mark_dead(*w);
            }
            StoreError::Timeout(w) | StoreError::Io(w)
                if *w < self.transport.n_workers() =>
            {
                self.master.suspect(*w);
            }
            _ => {}
        }
    }

    /// Interprets one landed reply from `server` for the health table:
    /// an application-level error (e.g. `NotFound`) is still a live
    /// worker answering, but a transport error a wire transport folded
    /// into the reply stream (`Io`/`Timeout`) is not a sign of life.
    fn absorb_reply(&self, server: usize, reply: Reply) -> Result<Reply, StoreError> {
        match reply {
            Reply::Err(e @ (StoreError::Io(_) | StoreError::Timeout(_) | StoreError::WorkerDown(_))) => {
                self.note_error(&e);
                Err(e)
            }
            Reply::Err(e @ StoreError::StaleEpoch(_)) => {
                // The worker answered — it is alive — but our stamp (or
                // its registration) is out of date. Refresh the epoch
                // cache so the retry stamps current grants.
                self.master.mark_alive(server);
                self.refresh_epochs();
                Err(e)
            }
            Reply::Err(e) => {
                self.master.mark_alive(server);
                Err(e)
            }
            ok => {
                self.master.mark_alive(server);
                Ok(ok)
            }
        }
    }

    /// Records a closed channel (definitive death) and returns the error.
    fn worker_down(&self, server: usize) -> StoreError {
        self.master.mark_dead(server);
        StoreError::WorkerDown(server)
    }

    /// Records a timeout (suspicion, not proof of death) and returns the
    /// error.
    fn timeout(&self, server: usize) -> StoreError {
        self.master.suspect(server);
        StoreError::Timeout(server)
    }

    fn await_reply(
        &self,
        server: usize,
        rx: &Receiver<Reply>,
        deadline: Duration,
    ) -> Result<Reply, StoreError> {
        match rx.recv_timeout(deadline) {
            Ok(reply) => self.absorb_reply(server, reply),
            Err(RecvTimeoutError::Disconnected) => Err(self.worker_down(server)),
            Err(RecvTimeoutError::Timeout) => Err(self.timeout(server)),
        }
    }

    /// Deletes a file's partitions and metadata; returns how many data
    /// partitions were actually resident. Any parity partitions are
    /// dropped too (best-effort, not counted).
    pub fn delete(&self, id: u64) -> Result<usize, StoreError> {
        // Snapshot the integrity row *before* unregistering drops it:
        // the parity map is the only record of where parity lives.
        let integ = self.master.integrity(id);
        let (_, servers) = self
            .master
            .unregister_file(id)
            .ok_or(StoreError::UnknownFile(id))?;
        let mut removed = 0;
        for (j, &server) in servers.iter().enumerate() {
            if let Ok(rx) = self.transport.submit(
                server,
                Request::Delete {
                    key: PartKey::new(id, j as u32),
                },
            ) {
                if let Ok(Reply::Flag(true)) = rx.recv_timeout(self.retry.deadline) {
                    removed += 1;
                }
            }
        }
        if let Some(integ) = integ {
            for (p, &(server, _)) in integ.parity.iter().enumerate() {
                if let Ok(rx) = self.transport.submit(
                    server,
                    Request::Delete {
                        key: PartKey::parity(id, p as u32),
                    },
                ) {
                    let _ = rx.recv_timeout(self.retry.deadline);
                }
            }
        }
        Ok(removed)
    }
}

/// A file read without reassembly: its size and partition views in index
/// order, each sharing the worker's cached allocation.
#[derive(Debug, Clone)]
pub struct ScatteredFile {
    size: usize,
    parts: Vec<Bytes>,
}

impl ScatteredFile {
    /// Logical file size in bytes (the views may carry legacy padding
    /// beyond it).
    pub fn size(&self) -> usize {
        self.size
    }

    /// The partition views in index order.
    pub fn parts(&self) -> &[Bytes] {
        &self.parts
    }

    /// Materializes the contiguous file content (one copy).
    pub fn to_vec(&self) -> Vec<u8> {
        gather(self.clone())
    }
}

/// What one robust read produced: partition views (scattered mode) or
/// the already-assembled contiguous buffer (the sink copied each reply
/// into place as it arrived).
enum ReadOut {
    Scattered(ScatteredFile),
    Contiguous(Vec<u8>),
}

/// Where one fork-join attempt lands its partitions.
///
/// `Parts` collects the index-ordered zero-copy views
/// [`Client::read_scattered`] hands out. `Contiguous` assembles the
/// output buffer **as replies arrive**: whenever the landed parts form
/// a prefix of the file, they are appended to the buffer immediately,
/// so the single copy of [`Client::read`] overlaps the wait for slower
/// partitions instead of running serially after the join (the old
/// `gather`-after-join path cost ~15% of contiguous read throughput at
/// 64MB/k16). Out-of-order arrivals are staged as zero-copy views
/// until their turn. Appending into reserved-but-uninitialized
/// capacity matters: a pre-zeroed `vec![0; size]` buffer pays a full
/// extra memset pass whenever the allocator recycles a dirty block.
enum ReadSink {
    Parts(Vec<Option<Bytes>>),
    Contiguous {
        /// The in-order assembled prefix of the file.
        buf: Vec<u8>,
        /// Parts landed but not yet appendable (a predecessor missing).
        staged: Vec<Option<Bytes>>,
        /// How many parts have been appended to `buf`.
        appended: usize,
        /// Logical file size (`buf`'s final length).
        size: usize,
    },
}

impl ReadSink {
    fn parts(k: usize) -> Self {
        ReadSink::Parts((0..k).map(|_| None).collect())
    }

    fn contiguous(size: usize, k: usize) -> Self {
        ReadSink::Contiguous {
            buf: Vec::with_capacity(size),
            staged: vec![None; k],
            appended: 0,
            size,
        }
    }

    /// Is partition `j` still outstanding?
    fn is_pending(&self, j: usize) -> bool {
        match self {
            ReadSink::Parts(parts) => parts[j].is_none(),
            ReadSink::Contiguous { staged, appended, .. } => {
                j >= *appended && staged[j].is_none()
            }
        }
    }

    /// Lands partition `j`. In contiguous mode the part is staged, then
    /// every ready prefix part is appended to the buffer — this is the
    /// read's one copy, running while later partitions are still on the
    /// wire. A short part (tolerated, never produced by current write
    /// paths) gets its tail zero-padded to its range length.
    fn place(&mut self, j: usize, data: Bytes) {
        match self {
            ReadSink::Parts(parts) => parts[j] = Some(data),
            ReadSink::Contiguous { buf, staged, appended, size } => {
                staged[j] = Some(data);
                let k = staged.len();
                while *appended < k {
                    let Some(part) = staged[*appended].take() else { break };
                    let range = partition_range(*size as u64, k, *appended);
                    let take = (range.len() as usize).min(part.len());
                    buf.extend_from_slice(&part[..take]);
                    buf.resize(range.end as usize, 0);
                    *appended += 1;
                }
            }
        }
    }

    /// Converts the fully-landed sink into the read's result.
    fn finish(self, size: usize) -> ReadOut {
        match self {
            ReadSink::Parts(parts) => ReadOut::Scattered(ScatteredFile {
                size,
                parts: parts.into_iter().map(|p| p.expect("all joined")).collect(),
            }),
            ReadSink::Contiguous { buf, appended, staged, .. } => {
                debug_assert_eq!(appended, staged.len(), "finish before full join");
                ReadOut::Contiguous(buf)
            }
        }
    }
}

/// Scatters partition views into one preallocated contiguous buffer —
/// the single copy of the read path. Each partition lands at its
/// `partition_range` offset; legacy zero-padded tails are trimmed.
fn gather(file: ScatteredFile) -> Vec<u8> {
    let size = file.size;
    let k = file.parts.len();
    // Parts arrive in index order over contiguous ranges, so a
    // sequential append fills the buffer without the upfront zeroing a
    // positioned scatter into `vec![0; size]` would pay.
    let mut out = Vec::with_capacity(size);
    for (j, part) in file.parts.iter().enumerate() {
        let range = partition_range(size as u64, k, j);
        let want = (range.end - range.start) as usize;
        let take = want.min(part.len());
        out.extend_from_slice(&part[..take]);
        // A short part (never produced by the current write paths, but
        // tolerated) leaves its tail zeroed rather than shifting later
        // partitions out of place.
        out.resize(out.len() + (want - take), 0);
    }
    debug_assert_eq!(out.len(), size);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::StoreCluster;
    use crate::config::StoreConfig;
    use crate::fault::{CorruptSite, FaultPlan};

    fn payload(len: usize) -> Vec<u8> {
        (0..len).map(|i| ((i * 31 + 7) % 256) as u8).collect()
    }

    #[test]
    fn write_read_roundtrip_single_partition() {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(4));
        let c = cluster.client();
        let data = payload(10_000);
        c.write(1, &data, &[2]).unwrap();
        assert_eq!(c.read(1).unwrap(), data);
    }

    #[test]
    fn write_read_roundtrip_partitioned() {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(8));
        let c = cluster.client();
        for (id, len, servers) in [
            (1u64, 9_999usize, vec![0, 1, 2]),
            (2, 10_000, vec![3, 4]),
            (3, 1, vec![5]),
            (4, 0, vec![6, 7]),
        ] {
            let data = payload(len);
            c.write(id, &data, &servers).unwrap();
            assert_eq!(c.read(id).unwrap(), data, "file {id}");
        }
    }

    #[test]
    fn scattered_read_shares_the_written_allocation() {
        // write_bytes → worker store → reply: one allocation end to end.
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(4));
        let c = cluster.client();
        let file = Bytes::from(payload(10_000));
        c.write_bytes(1, file.clone(), &[0, 1, 2]).unwrap();
        let scattered = c.read_scattered(1).unwrap();
        assert_eq!(scattered.to_vec(), payload(10_000));
        let base = file.as_ptr() as usize;
        for part in scattered.parts() {
            let p = part.as_ptr() as usize;
            assert!(
                p >= base && p + part.len() <= base + file.len(),
                "partition view escaped the file's allocation"
            );
        }
    }

    #[test]
    fn read_unknown_file_errors() {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(2));
        let c = cluster.client();
        assert_eq!(c.read(42).unwrap_err(), StoreError::UnknownFile(42));
    }

    #[test]
    fn duplicate_write_rejected() {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(2));
        let c = cluster.client();
        c.write(1, b"abc", &[0]).unwrap();
        assert_eq!(
            c.write(1, b"xyz", &[1]).unwrap_err(),
            StoreError::AlreadyExists(1)
        );
    }

    #[test]
    fn reads_count_accesses_quiet_reads_do_not() {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(2));
        let c = cluster.client();
        c.write(1, b"abc", &[0]).unwrap();
        let _ = c.read(1).unwrap();
        let _ = c.read(1).unwrap();
        let _ = c.read_quiet(1).unwrap();
        assert_eq!(cluster.master().accesses(1), 2);
    }

    #[test]
    fn delete_removes_partitions_and_metadata() {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(3));
        let c = cluster.client();
        c.write(1, &payload(300), &[0, 1, 2]).unwrap();
        assert_eq!(c.delete(1).unwrap(), 3);
        assert_eq!(c.read(1).unwrap_err(), StoreError::UnknownFile(1));
    }

    #[test]
    fn parallel_reads_from_many_clients() {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(4));
        let c = cluster.client();
        let data = payload(40_000);
        c.write(1, &data, &[0, 1, 2, 3]).unwrap();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                let data = data.clone();
                s.spawn(move || {
                    for _ in 0..20 {
                        assert_eq!(c.read(1).unwrap(), data);
                    }
                });
            }
        });
        assert_eq!(cluster.master().accesses(1), 160);
    }

    #[test]
    fn parallel_partition_read_is_faster_than_serial_transfer() {
        // 4 MB at 20 MB/s would take 200 ms whole; split 4 ways across
        // 4 throttled workers it should take ~50 ms + overhead.
        let cluster = StoreCluster::spawn(StoreConfig::throttled(4, 20e6));
        let c = cluster.client();
        let data = payload(4_000_000);
        c.write(1, &data, &[0, 1, 2, 3]).unwrap();
        let t0 = std::time::Instant::now();
        assert_eq!(c.read(1).unwrap(), data);
        let split_time = t0.elapsed().as_secs_f64();
        assert!(
            split_time < 0.15,
            "parallel read took {split_time}s, expected ~0.05s"
        );
    }

    #[test]
    fn deadline_turns_hang_into_timeout() {
        // Worker 0 hangs for 500 ms on its second data-path op; a 50 ms
        // deadline surfaces Timeout instead of blocking.
        let cfg = StoreConfig::unthrottled(2)
            .with_faults(FaultPlan::none().hang(0, 1, Duration::from_millis(500)))
            .with_retry(RetryPolicy::none().with_deadline(Duration::from_millis(50)));
        let cluster = StoreCluster::spawn(cfg);
        let c = cluster.client();
        c.write(1, &payload(100), &[0]).unwrap();
        assert_eq!(c.read(1).unwrap_err(), StoreError::Timeout(0));
        // The worker recovers after the hang; a later read succeeds.
        std::thread::sleep(Duration::from_millis(500));
        assert_eq!(c.read(1).unwrap(), payload(100));
    }

    #[test]
    fn one_deadline_covers_the_whole_read_attempt() {
        // k = 8 partitions, the *last* one straggling 400 ms past a
        // 150 ms deadline. The select-driven join times out after ~one
        // deadline, naming the actual straggler — under the old in-order
        // join each healthy lower index could consume a fresh deadline
        // (up to 8 × 150 ms) before the straggler was even examined.
        let k = 8;
        let hang = Duration::from_millis(400);
        let deadline = Duration::from_millis(150);
        let cfg = StoreConfig::unthrottled(k)
            // Worker 7 serves (put, checkpoint-less) op 0 = its put, so
            // op 1 is its first read.
            .with_faults(FaultPlan::none().hang(7, 1, hang))
            .with_retry(RetryPolicy::none().with_deadline(deadline));
        let cluster = StoreCluster::spawn(cfg);
        let c = cluster.client();
        let servers: Vec<usize> = (0..k).collect();
        c.write(1, &payload(64 * k), &servers).unwrap();
        let t0 = Instant::now();
        assert_eq!(c.read(1).unwrap_err(), StoreError::Timeout(7));
        let elapsed = t0.elapsed();
        assert!(
            elapsed >= deadline && elapsed < deadline * 2,
            "k={k} read with one straggler took {elapsed:?}; the deadline \
             is per read attempt, not per partition (~{deadline:?} expected)"
        );
    }

    #[test]
    fn lost_reply_surfaces_as_worker_down_and_marks_suspicion() {
        let cfg = StoreConfig::unthrottled(2)
            .with_faults(FaultPlan::none().lose_reply(0, 1))
            .with_retry(RetryPolicy {
                max_attempts: 2,
                base_backoff: Duration::ZERO,
                deadline: Duration::from_millis(200),
            });
        let cluster = StoreCluster::spawn(cfg);
        let c = cluster.client();
        c.write(1, &payload(64), &[0]).unwrap();
        // First read's reply is lost; the retry succeeds.
        assert_eq!(c.read(1).unwrap(), payload(64));
    }

    #[test]
    fn retry_reads_through_crash_with_under_store() {
        let cfg = StoreConfig::unthrottled(4)
            .with_faults(FaultPlan::none().crash(1, 2))
            .with_retry(RetryPolicy {
                max_attempts: 4,
                base_backoff: Duration::from_millis(1),
                deadline: Duration::from_millis(200),
            });
        let cluster = StoreCluster::spawn(cfg);
        let under = Arc::new(UnderStore::new());
        let c = cluster.client().with_under_store(under.clone());
        let data = payload(9_000);
        c.write(1, &data, &[0, 1]).unwrap(); // worker 1 op 0 (put)
        crate::backing::checkpoint(&c, &under, 1).unwrap(); // worker 1 op 1 (get)
        // Next get on worker 1 is op 2 → crash. The retry heals from the
        // under-store onto live workers and succeeds byte-exactly.
        assert_eq!(c.read(1).unwrap(), data);
        assert!(!cluster.master().is_alive(1));
        let (_, servers) = cluster.master().peek(1).unwrap();
        assert!(servers.iter().all(|&s| s != 1), "healed onto dead worker");
    }

    #[test]
    fn io_error_replies_feed_suspicion_and_retry() {
        // A transport that answers every get with Err(Io) until attempt
        // 3: the client must classify Io as retryable, suspect the
        // worker, and keep retrying through the heal path.
        #[derive(Debug)]
        struct Flaky {
            inner: Arc<dyn Transport>,
            failures: AtomicU64,
        }
        impl Transport for Flaky {
            fn n_workers(&self) -> usize {
                self.inner.n_workers()
            }
            fn submit(
                &self,
                worker: usize,
                req: Request,
            ) -> Result<Receiver<Reply>, StoreError> {
                if matches!(req, Request::Get { .. })
                    && self.failures.fetch_add(1, Ordering::Relaxed) < 2
                {
                    let (tx, rx) = crossbeam::channel::bounded(1);
                    let _ = tx.send(Reply::Err(StoreError::Io(worker)));
                    return Ok(rx);
                }
                self.inner.submit(worker, req)
            }
        }
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(2));
        let flaky = Arc::new(Flaky {
            inner: cluster.transport().clone(),
            failures: AtomicU64::new(0),
        });
        let c = Client::new(cluster.master().clone(), flaky).with_retry(RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::ZERO,
            deadline: Duration::from_millis(200),
        });
        c.write(1, &payload(128), &[0]).unwrap();
        assert_eq!(c.read(1).unwrap(), payload(128));
        // Two Io errors → two suspicion marks, but not death (threshold 3).
        assert!(cluster.master().is_alive(0));
    }

    #[test]
    fn hedged_read_serves_straggler_from_under_store() {
        // Worker 0 hangs for 300 ms; the hedge threshold is 20 ms, so
        // the partition is served from the checkpoint instead.
        let cfg = StoreConfig::unthrottled(2)
            .with_faults(FaultPlan::none().hang(0, 2, Duration::from_millis(300)))
            .with_retry(RetryPolicy::none().with_deadline(Duration::from_secs(2)))
            .with_hedge(HedgePolicy::after(Duration::from_millis(20)));
        let cluster = StoreCluster::spawn(cfg);
        let under = Arc::new(UnderStore::new());
        let c = cluster.client().with_under_store(under.clone());
        let data = payload(5_000);
        c.write(1, &data, &[0, 1]).unwrap(); // op 0 on both
        crate::backing::checkpoint(&c, &under, 1).unwrap(); // op 1 on both
        let t0 = std::time::Instant::now();
        assert_eq!(c.read(1).unwrap(), data); // op 2: worker 0 hangs
        assert!(
            t0.elapsed() < Duration::from_millis(250),
            "hedge should beat the 300 ms hang"
        );
        assert_eq!(c.hedged_fetches(), 1);
        // Partition 0 of a 5000-byte file split 2 ways is 2500 bytes —
        // the hedge pulled exactly that range, not the whole file.
        assert_eq!(c.hedged_bytes(), 2_500);
    }

    /// Polls `f` until it holds or ~2 s pass (read repair is
    /// fire-and-forget; the counter lands asynchronously).
    fn eventually(mut f: impl FnMut() -> bool) -> bool {
        for _ in 0..200 {
            if f() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        false
    }

    #[test]
    fn parity_write_records_the_integrity_row_off_placement() {
        let cfg = StoreConfig::unthrottled(6).with_parity(2);
        let cluster = StoreCluster::spawn(cfg);
        let c = cluster.client();
        let data = payload(9_000);
        c.write(1, &data, &[0, 1, 2]).unwrap();
        let row = cluster.master().integrity(1).expect("row recorded");
        assert_eq!(row.sums.len(), 3);
        assert_eq!(row.parity.len(), 2);
        for &(server, _) in &row.parity {
            assert!(
                !(0..=2).contains(&server),
                "parity landed on a data server ({server})"
            );
        }
        assert_eq!(c.read(1).unwrap(), data);
        // Delete drops the parity partitions with the file.
        let stats_before = cluster.worker_stats().unwrap();
        assert!(stats_before.iter().any(|s| s.parity_bytes > 0));
        assert_eq!(c.delete(1).unwrap(), 3);
        assert_eq!(cluster.master().integrity(1), None);
    }

    #[test]
    fn corrupt_partition_rebuilds_from_parity_without_under_store() {
        // Worker 0's resident copy of partition 0 is flipped right
        // before the read's Get. The verifying worker erases it and
        // reports Corrupt; the client rebuilds from the 2 clean data
        // partitions + parity — there is NO under-store to fall back
        // to, so a byte-exact read proves the parity path alone healed
        // it.
        let cfg = StoreConfig::unthrottled(5)
            .with_verify_reads(true)
            .with_parity(2)
            .with_faults(FaultPlan::none().corrupt(
                0,
                1,
                PartKey::new(1, 0),
                CorruptSite::Resident,
                5,
            ));
        let cluster = StoreCluster::spawn(cfg);
        let c = cluster.client();
        let data = payload(9_000);
        c.write(1, &data, &[0, 1, 2]).unwrap(); // worker 0 op 0
        assert_eq!(c.read(1).unwrap(), data); // op 1: flip fires
        let stats = cluster.worker_stats().unwrap();
        assert_eq!(stats[0].corruptions_detected, 1);
        assert_eq!(cluster.fault_log().snapshot().len(), 1);
        // The background read repair re-lands partition 0 on worker 0,
        // which counts the overwrite of a corrupted-erased key.
        assert!(
            eventually(|| cluster.worker_stats().unwrap()[0].decode_reconstructions == 1),
            "read repair never landed"
        );
        assert_eq!(c.read(1).unwrap(), data);
    }

    #[test]
    fn lost_partition_rebuilds_from_parity_without_under_store() {
        // A *lost* partition — deleted out from under the file, no
        // corruption involved — is just as much an erasure as a corrupt
        // one: the read's `NotFound` routes through the same parity
        // rebuild, with no under-store to fall back to.
        let cfg = StoreConfig::unthrottled(5).with_verify_reads(true).with_parity(1);
        let cluster = StoreCluster::spawn(cfg);
        let c = cluster.client();
        let data = payload(9_000);
        c.write(1, &data, &[0, 1, 2]).unwrap();
        let gone = cluster
            .transport()
            .call(
                0,
                Request::Delete {
                    key: PartKey::new(1, 0),
                },
                Duration::from_secs(5),
            )
            .unwrap();
        assert_eq!(gone, Reply::Flag(true));
        assert_eq!(c.read(1).unwrap(), data);
        // The background read repair re-lands the rebuilt partition, so
        // worker 0 serves it directly again.
        assert!(
            eventually(|| {
                matches!(
                    cluster.transport().call(
                        0,
                        Request::Get {
                            key: PartKey::new(1, 0),
                        },
                        Duration::from_secs(5),
                    ),
                    Ok(Reply::Data(_))
                )
            }),
            "read repair never re-landed the lost partition"
        );
    }

    #[test]
    fn client_side_verify_catches_what_blind_workers_serve() {
        // Workers do NOT verify; the client does, against the master's
        // integrity row. The flipped resident copy is served as-is by
        // worker 0 (twice — the data fetch and the parity path's
        // re-fetch both fail verification) and the file still comes
        // back byte-exact via the Cauchy decode.
        let cfg = StoreConfig::unthrottled(5)
            .with_parity(1)
            .with_faults(FaultPlan::none().corrupt(
                0,
                1,
                PartKey::new(1, 0),
                CorruptSite::Resident,
                999,
            ));
        let cluster = StoreCluster::spawn(cfg);
        let c = cluster.client().with_verify(true).with_parity(1);
        let data = payload(10_000);
        c.write(1, &data, &[0, 1, 2]).unwrap();
        assert_eq!(c.read(1).unwrap(), data);
        // The workers never noticed anything.
        let stats = cluster.worker_stats().unwrap();
        assert_eq!(stats[0].corruptions_detected, 0);
    }

    #[test]
    fn corrupt_partition_without_parity_heals_from_under_store() {
        // r = 0: the same flip cannot be decoded around, so the read
        // falls back to the under-store heal — and still never returns
        // wrong bytes.
        let cfg = StoreConfig::unthrottled(4)
            .with_verify_reads(true)
            .with_faults(FaultPlan::none().corrupt(
                0,
                2,
                PartKey::new(1, 0),
                CorruptSite::Resident,
                0,
            ))
            .with_retry(RetryPolicy {
                max_attempts: 4,
                base_backoff: Duration::from_millis(1),
                deadline: Duration::from_millis(200),
            });
        let under = Arc::new(UnderStore::new());
        let cluster = StoreCluster::spawn_with_under_store(cfg, Some(under.clone()));
        let c = cluster.client();
        let data = payload(6_000);
        c.write(1, &data, &[0, 1]).unwrap(); // worker 0 op 0
        crate::backing::checkpoint(&c, &under, 1).unwrap(); // op 1
        assert_eq!(c.read(1).unwrap(), data); // op 2: flip fires → heal
        let stats = cluster.worker_stats().unwrap();
        assert_eq!(stats.iter().map(|s| s.corruptions_detected).sum::<u64>(), 1);
    }

    #[test]
    fn hedge_fires_for_the_actual_slowest_partition() {
        // k = 4; the straggler is partition 2 (not the first index). The
        // hedge must serve exactly that partition from the checkpoint:
        // one hedged fetch, of exactly partition 2's byte count.
        let k = 4;
        let straggler = 2usize;
        let cfg = StoreConfig::unthrottled(k)
            // Worker 2's ops: 0 = put, 1 = checkpoint get, 2 = the read.
            .with_faults(FaultPlan::none().hang(straggler, 2, Duration::from_millis(300)))
            .with_retry(RetryPolicy::none().with_deadline(Duration::from_secs(2)))
            .with_hedge(HedgePolicy::after(Duration::from_millis(25)));
        let cluster = StoreCluster::spawn(cfg);
        let under = Arc::new(UnderStore::new());
        let c = cluster.client().with_under_store(under.clone());
        let data = payload(10_000);
        let servers: Vec<usize> = (0..k).collect();
        c.write(1, &data, &servers).unwrap();
        crate::backing::checkpoint(&c, &under, 1).unwrap();
        let t0 = Instant::now();
        assert_eq!(c.read(1).unwrap(), data);
        assert!(
            t0.elapsed() < Duration::from_millis(250),
            "hedge should beat the 300 ms hang"
        );
        assert_eq!(c.hedged_fetches(), 1, "exactly the straggler was hedged");
        let range = partition_range(data.len() as u64, k, straggler);
        assert_eq!(c.hedged_bytes(), range.len());
    }
}

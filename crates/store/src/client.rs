//! The SP-Client: parallel fork-join reads and writes, with a robust
//! read path (deadlines, bounded retry, hedged under-store reads).

use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use spcache_core::online::partition_range;
use spcache_ec::{join_shards_bytes, split_into_shards};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::backing::UnderStore;
use crate::config::{HedgePolicy, RetryPolicy};
use crate::master::Master;
use crate::rpc::{PartKey, StoreError, WorkerRequest};

/// A client handle onto a running store cluster.
///
/// Cloning is cheap; each clone can issue requests concurrently.
///
/// Reads are **robust**: every partition fetch carries a deadline, a
/// failed read is retried with exponential backoff after re-locating the
/// file (and, when an under-store is attached, after recovering lost
/// partitions onto live workers), and with [`HedgePolicy`] enabled a
/// straggling partition is hedged by reading its byte range from the
/// under-store checkpoint — the late-binding trick of EC-Cache, adapted
/// to a redundancy-free cache where the checkpoint is the only second
/// copy.
#[derive(Debug, Clone)]
pub struct Client {
    master: Arc<Master>,
    workers: Vec<Sender<WorkerRequest>>,
    retry: RetryPolicy,
    hedge: HedgePolicy,
    under: Option<Arc<UnderStore>>,
    hedged_fetches: Arc<AtomicU64>,
}

impl Client {
    /// Builds a client over the master and the worker channels, with a
    /// single-attempt [`RetryPolicy::none`] and hedging disabled (the
    /// seed behaviour).
    pub fn new(master: Arc<Master>, workers: Vec<Sender<WorkerRequest>>) -> Self {
        assert!(!workers.is_empty(), "need at least one worker");
        Client {
            master,
            workers,
            retry: RetryPolicy::none(),
            hedge: HedgePolicy::disabled(),
            under: None,
            hedged_fetches: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Sets the retry policy (builder style).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the hedge policy (builder style). Hedging only fires when an
    /// under-store is attached too.
    pub fn with_hedge(mut self, hedge: HedgePolicy) -> Self {
        self.hedge = hedge;
        self
    }

    /// Attaches the under-store used for hedged reads and read-path
    /// recovery.
    pub fn with_under_store(mut self, under: Arc<UnderStore>) -> Self {
        self.under = Some(under);
        self
    }

    /// Number of workers visible to this client.
    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    /// The master (for metadata queries).
    pub fn master(&self) -> &Arc<Master> {
        &self.master
    }

    /// How many partition fetches were served from the under-store by
    /// the hedging path (across all clones of this client).
    pub fn hedged_fetches(&self) -> u64 {
        self.hedged_fetches.load(Ordering::Relaxed)
    }

    /// Writes a file split into `k` partitions on the given `servers`
    /// (`servers.len() == k`, distinct). All partitions are pushed in
    /// parallel; returns when the slowest lands (§6.1 writes whole files
    /// with `k = 1`; the split-write mode of §7.8 passes larger `k`).
    ///
    /// # Errors
    ///
    /// Propagates worker failures; metadata registration errors if the id
    /// is taken.
    pub fn write(&self, id: u64, data: &[u8], servers: &[usize]) -> Result<(), StoreError> {
        self.push_partitions(id, data, servers)?;
        self.master.register(id, data.len(), servers.to_vec())
    }

    /// Pushes `data` re-split into `servers.len()` partitions under this
    /// file's keys without touching metadata — the building block shared
    /// by [`Client::write`] and under-store recovery
    /// ([`crate::backing::recover_file`]).
    pub(crate) fn push_partitions(
        &self,
        id: u64,
        data: &[u8],
        servers: &[usize],
    ) -> Result<(), StoreError> {
        assert!(!servers.is_empty(), "need at least one target server");
        let k = servers.len();
        let shards = split_into_shards(data, k);

        // Fire all puts, then collect completions (parallel fan-out).
        let mut pending = Vec::with_capacity(k);
        for (j, (shard, &server)) in shards.into_iter().zip(servers).enumerate() {
            let (tx, rx) = bounded(1);
            self.workers[server]
                .send(WorkerRequest::Put {
                    key: PartKey::new(id, j as u32),
                    data: Bytes::from(shard),
                    reply: tx,
                })
                .map_err(|_| self.worker_down(server))?;
            pending.push((server, rx));
        }
        for (server, rx) in pending {
            self.await_reply(server, &rx, self.retry.deadline)??;
        }
        Ok(())
    }

    /// Best-effort partition drop on one worker (recovery GC); errors
    /// and dead workers are ignored.
    pub(crate) fn discard_partition(&self, server: usize, key: PartKey) {
        let (tx, rx) = bounded(1);
        if self.workers[server]
            .send(WorkerRequest::Delete { key, reply: tx })
            .is_ok()
        {
            let _ = rx.recv_timeout(self.retry.deadline);
        }
    }

    /// Reads a file: locates its partitions via the master (which counts
    /// the access), fetches them all in parallel, and reassembles the
    /// original bytes (the fork-join of Fig. 9a). Failed attempts are
    /// retried per the [`RetryPolicy`], recovering from the under-store
    /// when one is attached.
    ///
    /// # Errors
    ///
    /// Propagates unknown files, and — once retries are exhausted —
    /// missing partitions, timeouts and dead workers.
    pub fn read(&self, id: u64) -> Result<Vec<u8>, StoreError> {
        self.read_robust(id, true)
    }

    /// Reads without bumping the popularity counter.
    pub fn read_quiet(&self, id: u64) -> Result<Vec<u8>, StoreError> {
        self.read_robust(id, false)
    }

    fn read_robust(&self, id: u64, count_access: bool) -> Result<Vec<u8>, StoreError> {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            // Re-locate every attempt: recovery and repartition both
            // change the placement under us.
            let located = if count_access && attempt == 1 {
                self.master.locate(id)
            } else {
                self.master.peek(id)
            };
            let (size, servers) = located?;
            let err = match self.fetch_and_join(id, size, &servers) {
                Ok(bytes) => return Ok(bytes),
                Err(e) => e,
            };
            if !err.is_retryable() || attempt >= self.retry.max_attempts {
                return Err(err);
            }
            // Heal before retrying: recover the file from the
            // under-store onto live workers, so the next attempt reads
            // a fresh placement instead of the same hole.
            if let Some(under) = &self.under {
                if under.contains(id) {
                    let live = self.master.live_workers(self.workers.len());
                    if !live.is_empty() {
                        let targets =
                            crate::backing::recovery_targets(&live, servers.len(), id);
                        let _ = crate::backing::recover_file(
                            self,
                            &self.master,
                            under,
                            id,
                            &targets,
                        );
                    }
                }
            }
            let backoff = self.retry.base_backoff * 2u32.saturating_pow(attempt - 1);
            if backoff > Duration::ZERO {
                std::thread::sleep(backoff);
            }
        }
    }

    /// One fork-join attempt against a fixed placement.
    fn fetch_and_join(
        &self,
        id: u64,
        size: usize,
        servers: &[usize],
    ) -> Result<Vec<u8>, StoreError> {
        let k = servers.len();
        let mut pending = Vec::with_capacity(k);
        for (j, &server) in servers.iter().enumerate() {
            let (tx, rx) = bounded(1);
            self.workers[server]
                .send(WorkerRequest::Get {
                    key: PartKey::new(id, j as u32),
                    reply: tx,
                })
                .map_err(|_| self.worker_down(server))?;
            pending.push((server, rx));
        }
        let mut shards: Vec<Bytes> = Vec::with_capacity(k);
        for (j, (server, rx)) in pending.into_iter().enumerate() {
            shards.push(self.fetch_partition(id, size, k, j, server, rx)?);
        }
        Ok(join_shards_bytes(&shards, size))
    }

    /// Awaits one partition reply, hedging to the under-store after the
    /// straggler threshold when enabled.
    fn fetch_partition(
        &self,
        id: u64,
        size: usize,
        k: usize,
        j: usize,
        server: usize,
        rx: Receiver<Result<Bytes, StoreError>>,
    ) -> Result<Bytes, StoreError> {
        let deadline = self.retry.deadline;
        let hedge_after = self.hedge.straggler_threshold.min(deadline);
        let hedging = self.hedge.enabled && self.under.is_some();
        let first_wait = if hedging { hedge_after } else { deadline };

        match rx.recv_timeout(first_wait) {
            Ok(reply) => {
                self.master.mark_alive(server);
                reply
            }
            Err(RecvTimeoutError::Disconnected) => Err(self.worker_down(server)),
            Err(RecvTimeoutError::Timeout) if hedging => {
                // Late binding: try the under-store copy of exactly this
                // partition's byte range; fall back to waiting out the
                // rest of the deadline if there is no checkpoint.
                let under = self.under.as_ref().expect("hedging requires under-store");
                if let Some(data) = under.load(id) {
                    self.master.suspect(server);
                    self.hedged_fetches.fetch_add(1, Ordering::Relaxed);
                    let range = partition_range(size as u64, k, j);
                    return Ok(Bytes::from(
                        data[range.start as usize..range.end as usize].to_vec(),
                    ));
                }
                match rx.recv_timeout(deadline.saturating_sub(hedge_after)) {
                    Ok(reply) => {
                        self.master.mark_alive(server);
                        reply
                    }
                    Err(RecvTimeoutError::Disconnected) => Err(self.worker_down(server)),
                    Err(RecvTimeoutError::Timeout) => Err(self.timeout(server)),
                }
            }
            Err(RecvTimeoutError::Timeout) => Err(self.timeout(server)),
        }
    }

    /// Records a closed channel (definitive death) and returns the error.
    fn worker_down(&self, server: usize) -> StoreError {
        self.master.mark_dead(server);
        StoreError::WorkerDown(server)
    }

    /// Records a timeout (suspicion, not proof of death) and returns the
    /// error.
    fn timeout(&self, server: usize) -> StoreError {
        self.master.suspect(server);
        StoreError::Timeout(server)
    }

    fn await_reply<T>(
        &self,
        server: usize,
        rx: &Receiver<T>,
        deadline: Duration,
    ) -> Result<T, StoreError> {
        match rx.recv_timeout(deadline) {
            Ok(v) => {
                self.master.mark_alive(server);
                Ok(v)
            }
            Err(RecvTimeoutError::Disconnected) => Err(self.worker_down(server)),
            Err(RecvTimeoutError::Timeout) => Err(self.timeout(server)),
        }
    }

    /// Deletes a file's partitions and metadata; returns how many
    /// partitions were actually resident.
    pub fn delete(&self, id: u64) -> Result<usize, StoreError> {
        let info = self
            .master
            .unregister(id)
            .ok_or(StoreError::UnknownFile(id))?;
        let mut removed = 0;
        for (j, &server) in info.servers.iter().enumerate() {
            let (tx, rx) = bounded(1);
            if self.workers[server]
                .send(WorkerRequest::Delete {
                    key: PartKey::new(id, j as u32),
                    reply: tx,
                })
                .is_ok()
            {
                if let Ok(true) = rx.recv_timeout(self.retry.deadline) {
                    removed += 1;
                }
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::StoreCluster;
    use crate::config::StoreConfig;
    use crate::fault::FaultPlan;

    fn payload(len: usize) -> Vec<u8> {
        (0..len).map(|i| ((i * 31 + 7) % 256) as u8).collect()
    }

    #[test]
    fn write_read_roundtrip_single_partition() {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(4));
        let c = cluster.client();
        let data = payload(10_000);
        c.write(1, &data, &[2]).unwrap();
        assert_eq!(c.read(1).unwrap(), data);
    }

    #[test]
    fn write_read_roundtrip_partitioned() {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(8));
        let c = cluster.client();
        for (id, len, servers) in [
            (1u64, 9_999usize, vec![0, 1, 2]),
            (2, 10_000, vec![3, 4]),
            (3, 1, vec![5]),
            (4, 0, vec![6, 7]),
        ] {
            let data = payload(len);
            c.write(id, &data, &servers).unwrap();
            assert_eq!(c.read(id).unwrap(), data, "file {id}");
        }
    }

    #[test]
    fn read_unknown_file_errors() {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(2));
        let c = cluster.client();
        assert_eq!(c.read(42).unwrap_err(), StoreError::UnknownFile(42));
    }

    #[test]
    fn duplicate_write_rejected() {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(2));
        let c = cluster.client();
        c.write(1, b"abc", &[0]).unwrap();
        assert_eq!(
            c.write(1, b"xyz", &[1]).unwrap_err(),
            StoreError::AlreadyExists(1)
        );
    }

    #[test]
    fn reads_count_accesses_quiet_reads_do_not() {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(2));
        let c = cluster.client();
        c.write(1, b"abc", &[0]).unwrap();
        let _ = c.read(1).unwrap();
        let _ = c.read(1).unwrap();
        let _ = c.read_quiet(1).unwrap();
        assert_eq!(cluster.master().accesses(1), 2);
    }

    #[test]
    fn delete_removes_partitions_and_metadata() {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(3));
        let c = cluster.client();
        c.write(1, &payload(300), &[0, 1, 2]).unwrap();
        assert_eq!(c.delete(1).unwrap(), 3);
        assert_eq!(c.read(1).unwrap_err(), StoreError::UnknownFile(1));
    }

    #[test]
    fn parallel_reads_from_many_clients() {
        let cluster = StoreCluster::spawn(StoreConfig::unthrottled(4));
        let c = cluster.client();
        let data = payload(40_000);
        c.write(1, &data, &[0, 1, 2, 3]).unwrap();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                let data = data.clone();
                s.spawn(move || {
                    for _ in 0..20 {
                        assert_eq!(c.read(1).unwrap(), data);
                    }
                });
            }
        });
        assert_eq!(cluster.master().accesses(1), 160);
    }

    #[test]
    fn parallel_partition_read_is_faster_than_serial_transfer() {
        // 4 MB at 20 MB/s would take 200 ms whole; split 4 ways across
        // 4 throttled workers it should take ~50 ms + overhead.
        let cluster = StoreCluster::spawn(StoreConfig::throttled(4, 20e6));
        let c = cluster.client();
        let data = payload(4_000_000);
        c.write(1, &data, &[0, 1, 2, 3]).unwrap();
        let t0 = std::time::Instant::now();
        assert_eq!(c.read(1).unwrap(), data);
        let split_time = t0.elapsed().as_secs_f64();
        assert!(
            split_time < 0.15,
            "parallel read took {split_time}s, expected ~0.05s"
        );
    }

    #[test]
    fn deadline_turns_hang_into_timeout() {
        // Worker 0 hangs for 500 ms on its second data-path op; a 50 ms
        // deadline surfaces Timeout instead of blocking.
        let cfg = StoreConfig::unthrottled(2)
            .with_faults(FaultPlan::none().hang(0, 1, Duration::from_millis(500)))
            .with_retry(RetryPolicy::none().with_deadline(Duration::from_millis(50)));
        let cluster = StoreCluster::spawn(cfg);
        let c = cluster.client();
        c.write(1, &payload(100), &[0]).unwrap();
        assert_eq!(c.read(1).unwrap_err(), StoreError::Timeout(0));
        // The worker recovers after the hang; a later read succeeds.
        std::thread::sleep(Duration::from_millis(500));
        assert_eq!(c.read(1).unwrap(), payload(100));
    }

    #[test]
    fn lost_reply_surfaces_as_worker_down_and_marks_suspicion() {
        let cfg = StoreConfig::unthrottled(2)
            .with_faults(FaultPlan::none().lose_reply(0, 1))
            .with_retry(RetryPolicy {
                max_attempts: 2,
                base_backoff: Duration::ZERO,
                deadline: Duration::from_millis(200),
            });
        let cluster = StoreCluster::spawn(cfg);
        let c = cluster.client();
        c.write(1, &payload(64), &[0]).unwrap();
        // First read's reply is lost; the retry succeeds.
        assert_eq!(c.read(1).unwrap(), payload(64));
    }

    #[test]
    fn retry_reads_through_crash_with_under_store() {
        let cfg = StoreConfig::unthrottled(4)
            .with_faults(FaultPlan::none().crash(1, 2))
            .with_retry(RetryPolicy {
                max_attempts: 4,
                base_backoff: Duration::from_millis(1),
                deadline: Duration::from_millis(200),
            });
        let cluster = StoreCluster::spawn(cfg);
        let under = Arc::new(UnderStore::new());
        let c = cluster.client().with_under_store(under.clone());
        let data = payload(9_000);
        c.write(1, &data, &[0, 1]).unwrap(); // worker 1 op 0 (put)
        crate::backing::checkpoint(&c, &under, 1).unwrap(); // worker 1 op 1 (get)
        // Next get on worker 1 is op 2 → crash. The retry heals from the
        // under-store onto live workers and succeeds byte-exactly.
        assert_eq!(c.read(1).unwrap(), data);
        assert!(!cluster.master().is_alive(1));
        let (_, servers) = cluster.master().peek(1).unwrap();
        assert!(servers.iter().all(|&s| s != 1), "healed onto dead worker");
    }

    #[test]
    fn hedged_read_serves_straggler_from_under_store() {
        // Worker 0 hangs for 300 ms; the hedge threshold is 20 ms, so
        // the partition is served from the checkpoint instead.
        let cfg = StoreConfig::unthrottled(2)
            .with_faults(FaultPlan::none().hang(0, 2, Duration::from_millis(300)))
            .with_retry(RetryPolicy::none().with_deadline(Duration::from_secs(2)))
            .with_hedge(HedgePolicy::after(Duration::from_millis(20)));
        let cluster = StoreCluster::spawn(cfg);
        let under = Arc::new(UnderStore::new());
        let c = cluster.client().with_under_store(under.clone());
        let data = payload(5_000);
        c.write(1, &data, &[0, 1]).unwrap(); // op 0 on both
        crate::backing::checkpoint(&c, &under, 1).unwrap(); // op 1 on both
        let t0 = std::time::Instant::now();
        assert_eq!(c.read(1).unwrap(), data); // op 2: worker 0 hangs
        assert!(
            t0.elapsed() < Duration::from_millis(250),
            "hedge should beat the 300 ms hang"
        );
        assert_eq!(c.hedged_fetches(), 1);
    }
}

//! Message types between clients, workers and the master.
//!
//! Every interaction is a request enqueued on a worker's crossbeam channel
//! with a one-shot reply channel — the in-process analogue of an RPC.

use bytes::Bytes;
use crossbeam::channel::Sender;

/// Identifies one cached partition: `(file, partition index)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PartKey {
    /// File identifier.
    pub file: u64,
    /// Partition index within the file (0-based).
    pub part: u32,
}

impl PartKey {
    /// Convenience constructor.
    pub fn new(file: u64, part: u32) -> Self {
        PartKey { file, part }
    }

    /// The staged twin of this key (see [`STAGE_BIT`]).
    pub fn staged(self) -> PartKey {
        PartKey::new(self.file, self.part | STAGE_BIT)
    }
}

/// Staged-key marker: partition indices with this bit set are invisible
/// to normal reads (clients only address indices < 2³¹). The online
/// adjuster and the repartitioner both build new layouts under staged
/// keys and commit them with a rename, so an executor failing mid-build
/// never corrupts the readable layout.
pub const STAGE_BIT: u32 = 1 << 31;

/// Errors surfaced to clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The partition is not resident on the addressed worker.
    NotFound(PartKey),
    /// The worker is gone (channel closed).
    WorkerDown(usize),
    /// The master has no metadata for this file.
    UnknownFile(u64),
    /// A file with this id already exists.
    AlreadyExists(u64),
    /// The worker did not answer within the read deadline (hung or
    /// overloaded; the worker may still be alive).
    Timeout(usize),
}

impl StoreError {
    /// Whether a retry (after re-locating and possibly recovering from
    /// the under-store) could succeed. Metadata errors are permanent.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            StoreError::NotFound(_) | StoreError::WorkerDown(_) | StoreError::Timeout(_)
        )
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::NotFound(k) => write!(f, "partition {k:?} not found"),
            StoreError::WorkerDown(w) => write!(f, "worker {w} is down"),
            StoreError::UnknownFile(id) => write!(f, "unknown file {id}"),
            StoreError::AlreadyExists(id) => write!(f, "file {id} already exists"),
            StoreError::Timeout(w) => write!(f, "worker {w} timed out"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Per-worker service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkerStats {
    /// Bytes served by `Get` requests.
    pub bytes_served: u64,
    /// Bytes accepted by `Put` requests.
    pub bytes_stored: u64,
    /// Number of `Get` requests handled.
    pub gets: u64,
    /// Number of `Put` requests handled.
    pub puts: u64,
    /// Partitions currently resident.
    pub resident_parts: usize,
}

/// A request to a worker thread.
#[derive(Debug)]
pub enum WorkerRequest {
    /// Store a partition.
    Put {
        /// Partition key.
        key: PartKey,
        /// Partition bytes.
        data: Bytes,
        /// Completion signal.
        reply: Sender<Result<(), StoreError>>,
    },
    /// Fetch a partition.
    Get {
        /// Partition key.
        key: PartKey,
        /// Reply with the bytes or `NotFound`.
        reply: Sender<Result<Bytes, StoreError>>,
    },
    /// Fetch a byte sub-range of a partition (the online-adjustment path:
    /// only the bytes that change servers cross the network).
    GetRange {
        /// Partition key.
        key: PartKey,
        /// Offset within the partition.
        offset: u64,
        /// Bytes wanted.
        len: u64,
        /// Reply with the slice or `NotFound`.
        reply: Sender<Result<Bytes, StoreError>>,
    },
    /// Rename a resident partition key in place (no byte movement); used
    /// to commit staged partitions. Replies `false` if `from` is absent.
    Rename {
        /// Current key.
        from: PartKey,
        /// New key (overwrites any existing entry).
        to: PartKey,
        /// Reply channel.
        reply: Sender<bool>,
    },
    /// Drop a partition; replies whether it was resident.
    Delete {
        /// Partition key.
        key: PartKey,
        /// Reply channel.
        reply: Sender<bool>,
    },
    /// Snapshot service counters.
    Stats {
        /// Reply channel.
        reply: Sender<WorkerStats>,
    },
    /// Liveness probe: the worker echoes its id. Does not advance the
    /// fault-injection op counter, so health checks never perturb a
    /// scripted fault sequence.
    Ping {
        /// Reply channel (receives the worker id).
        reply: Sender<usize>,
    },
    /// Terminate the worker loop.
    Shutdown,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partkey_ordering_and_hash() {
        let a = PartKey::new(1, 0);
        let b = PartKey::new(1, 1);
        let c = PartKey::new(2, 0);
        assert!(a < b && b < c);
        let mut set = std::collections::HashSet::new();
        set.insert(a);
        assert!(set.contains(&PartKey::new(1, 0)));
        assert!(!set.contains(&b));
    }

    #[test]
    fn error_display() {
        let e = StoreError::NotFound(PartKey::new(3, 1));
        assert!(e.to_string().contains("not found"));
        assert!(StoreError::WorkerDown(2).to_string().contains("worker 2"));
        assert!(StoreError::UnknownFile(9).to_string().contains("9"));
    }
}
